//! Multi-tenant co-scheduling: two R3-DLA systems share one LLC/DRAM and
//! run under one discrete-event kernel with a single global clock. Each
//! tenant is measured solo first, so the printout shows what LLC/DRAM
//! contention costs each workload.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use r3dla::core::{Cluster, DlaConfig, DlaSystem, SkeletonOptions};
use r3dla::mem::SharedLlc;
use r3dla::workloads::{by_name, Scale};

const WARM: u64 = 10_000;
const WIN: u64 = 50_000;

fn main() {
    // A bandwidth-hungry streaming kernel next to a pointer chaser: the
    // classic noisy-neighbour pairing.
    let names = ["libq_like", "mcf_like"];
    let built: Vec<_> = names
        .iter()
        .map(|n| by_name(n).expect("known workload").build(Scale::Train))
        .collect();

    // Solo runs: each system owns its whole memory hierarchy.
    let solo: Vec<f64> = built
        .iter()
        .map(|wl| {
            DlaSystem::build(wl, DlaConfig::r3(), SkeletonOptions::default())
                .expect("system builds")
                .measure(WARM, WIN)
                .mt_ipc
        })
        .collect();

    // Shared run: both systems are assembled over the same SharedLlc
    // handle and pushed into one cluster. The kernel interleaves them in
    // global-time order; a pending fill (either tenant's) bounds the
    // other's skip window, so cross-tenant wakeups are honoured.
    let cfg = DlaConfig::r3();
    let shared = Rc::new(RefCell::new(SharedLlc::new(&cfg.mem)));
    let mut cluster = Cluster::with_shared(shared.clone());
    for wl in &built {
        cluster.push(
            DlaSystem::build_shared(wl, cfg.clone(), SkeletonOptions::default(), shared.clone())
                .expect("system builds"),
        );
    }
    let reports = cluster.measure_each(WARM, WIN);

    println!("tenant        solo IPC   shared IPC   slowdown   dram lines (shared channel)");
    for ((name, solo_ipc), report) in names.iter().zip(&solo).zip(&reports) {
        println!(
            "{name:<12}  {solo_ipc:>8.3}   {:>10.3}   {:>7.2}x   {:>10}",
            report.mt_ipc,
            solo_ipc / report.mt_ipc.max(1e-9),
            report.dram_traffic,
        );
    }
    let total: u64 = reports.iter().map(|r| r.mt_committed).sum();
    println!(
        "\ncluster committed {total} instructions across {} tenants",
        reports.len()
    );
}
