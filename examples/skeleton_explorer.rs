//! Skeleton explorer: shows what the offline analysis (paper Appendix A)
//! produces for a kernel — per-version densities, T1 offload marks,
//! prefetch payloads, bias conversions, and an annotated disassembly of
//! the default skeleton.
//!
//! ```sh
//! cargo run --release --example skeleton_explorer -- mcf_like
//! ```

use std::rc::Rc;

use r3dla::core::{generate_skeletons, profile, Dataflow, SkeletonOptions};
use r3dla::workloads::{by_name, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf_like".into());
    let wl = by_name(&name).expect("known workload").build(Scale::Train);
    let program = Rc::new(wl.program.clone());
    let df = Dataflow::analyze(&program);
    let prof = profile(&program, 1_000_000);
    let set = generate_skeletons(&program, &df, &prof, &SkeletonOptions::default(), true);

    println!("== {name}: {} static instructions ==\n", program.len());
    println!(
        "| version | static density | dynamic weight | prefetch payloads | bias conversions |"
    );
    println!("|---|---|---|---|---|");
    for sk in &set.versions {
        println!(
            "| {} | {:.2} | {:.2} | {} | {} |",
            sk.name,
            sk.density(),
            sk.dynamic_weight(&prof),
            sk.prefetch_only.iter().filter(|&&x| x).count(),
            sk.bias_override.len(),
        );
    }
    let sk = &set.versions[0];
    println!("\n== default skeleton, annotated ==");
    println!("(KEEP = on skeleton, PF = prefetch payload, S = T1-offloaded, . = deleted)\n");
    for (i, inst) in program.insts().iter().enumerate() {
        let mark = if sk.sbits[i] {
            "S "
        } else if sk.prefetch_only[i] {
            "PF"
        } else if sk.mask[i] {
            "KEEP"
        } else {
            "."
        };
        println!("{:>4} {:5} {}", i, mark, inst);
    }
}
