//! Quickstart: build a workload, run the conventional baseline and the
//! full R3-DLA system, and print the speedup.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use r3dla::core::{DlaConfig, DlaSystem, SingleCoreSim, SkeletonOptions};
use r3dla::cpu::CoreConfig;
use r3dla::mem::MemConfig;
use r3dla::workloads::{by_name, Scale};

fn main() {
    // cg_like: a sparse-matrix kernel — the memory-bound behaviour class
    // decoupled look-ahead was designed for.
    let wl = by_name("cg_like")
        .expect("known workload")
        .build(Scale::Train);
    println!(
        "workload: {} ({} static instructions)",
        wl.name,
        wl.program.len()
    );

    // Baseline: the paper's Table I out-of-order core with a Best-Offset
    // prefetcher at L2.
    let mut baseline = SingleCoreSim::build(
        &wl,
        CoreConfig::paper(),
        MemConfig::paper(),
        None,
        Some("bop"),
    );
    let bl_ipc = baseline.measure(20_000, 100_000).mt_ipc;
    println!("baseline IPC: {bl_ipc:.3}");

    // R3-DLA: the same core pair with look-ahead, T1 offload, value reuse,
    // a 32-entry fetch buffer and dynamic skeleton recycling.
    let mut r3 =
        DlaSystem::build(&wl, DlaConfig::r3(), SkeletonOptions::default()).expect("system builds");
    let report = r3.measure(20_000, 100_000);
    println!(
        "R3-DLA IPC: {:.3}  (look-ahead thread ran {:.0}% of the instructions)",
        report.mt_ipc,
        100.0 * report.lt_committed as f64 / report.mt_committed.max(1) as f64
    );
    println!("speedup: {:.2}x", report.mt_ipc / bl_ipc.max(1e-9));
    println!("reboots in window: {}", report.reboots);
}
