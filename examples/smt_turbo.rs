//! SMT turbo-boosting (paper §IV-B3): compares a half-core, the full wide
//! core, R3-DLA on two half-cores, and two-copy SMT throughput.
//!
//! ```sh
//! cargo run --release --example smt_turbo
//! ```

use r3dla::core::{DlaConfig, DlaSystem, SingleCoreSim, SkeletonOptions};
use r3dla::cpu::CoreConfig;
use r3dla::mem::MemConfig;
use r3dla::workloads::{by_name, Scale};
use r3dla_bench::measure_smt;

fn main() {
    let wl = by_name("bzip2_like")
        .expect("known workload")
        .build(Scale::Train);
    let mut hc = SingleCoreSim::build(
        &wl,
        CoreConfig::half_core(),
        MemConfig::paper(),
        None,
        Some("bop"),
    );
    let hc_ipc = hc.measure(15_000, 60_000).mt_ipc;
    let mut fc = SingleCoreSim::build(
        &wl,
        CoreConfig::wide_smt(),
        MemConfig::paper(),
        None,
        Some("bop"),
    );
    let fc_ipc = fc.measure(15_000, 60_000).mt_ipc;
    let mut cfg = DlaConfig::r3();
    cfg.mt_core = CoreConfig::half_core();
    cfg.mt_core.fetch_buffer = 32;
    let mut lt = CoreConfig::half_core();
    lt.fetch_masks = true;
    cfg.lt_core = lt;
    let mut r3 = DlaSystem::build(&wl, cfg, SkeletonOptions::default()).expect("builds");
    let r3_ipc = r3.measure(15_000, 60_000).mt_ipc;
    let smt = measure_smt(&wl, CoreConfig::wide_smt(), 2, 60_000);
    println!("half-core (HC):        {hc_ipc:.3} IPC (1.00x)");
    println!(
        "full wide core (FC):   {fc_ipc:.3} IPC ({:.2}x)",
        fc_ipc / hc_ipc
    );
    println!(
        "R3-DLA on half-cores:  {r3_ipc:.3} IPC ({:.2}x)",
        r3_ipc / hc_ipc
    );
    println!("SMT 2-copy throughput: {smt:.3} IPC ({:.2}x)", smt / hc_ipc);
}
