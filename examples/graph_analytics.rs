//! Graph analytics under look-ahead: runs the CRONO-like suite (BFS,
//! SSSP, PageRank, connected components, triangle counting) on baseline
//! vs DLA vs R3-DLA — the irregular-gather workloads the paper's
//! introduction motivates.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use r3dla::core::{DlaConfig, DlaSystem, SingleCoreSim, SkeletonOptions};
use r3dla::cpu::CoreConfig;
use r3dla::mem::MemConfig;
use r3dla::workloads::{by_suite, Scale, Suite};

fn main() {
    println!("| kernel | BL IPC | DLA IPC | R3 IPC | R3 speedup | LT/MT insts |");
    println!("|---|---|---|---|---|---|");
    for w in by_suite(Suite::Crono) {
        let built = w.build(Scale::Train);
        let mut bl = SingleCoreSim::build(
            &built,
            CoreConfig::paper(),
            MemConfig::paper(),
            None,
            Some("bop"),
        );
        let bl_ipc = bl.measure(15_000, 60_000).mt_ipc;
        let mut dla =
            DlaSystem::build(&built, DlaConfig::dla(), SkeletonOptions::default()).expect("builds");
        let d = dla.measure(15_000, 60_000);
        let mut r3 =
            DlaSystem::build(&built, DlaConfig::r3(), SkeletonOptions::default()).expect("builds");
        let r = r3.measure(15_000, 60_000);
        println!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.2}x | {:.2} |",
            w.name,
            bl_ipc,
            d.mt_ipc,
            r.mt_ipc,
            r.mt_ipc / bl_ipc.max(1e-9),
            r.lt_committed as f64 / r.mt_committed.max(1) as f64,
        );
    }
}
