//! Checkpoint round-trip equivalence suite (the sampled-simulation
//! analogue of `skip_equivalence.rs`).
//!
//! Three contracts:
//!
//! 1. **Functional round trip is bit-exact**: capture at instruction N,
//!    restore, run to N+M — registers, PC, instruction count and memory
//!    delta are byte-identical to an uninterrupted run to N+M.
//! 2. **Restored timing runs are architecturally correct**: a `dla` or
//!    `bl` system restored mid-workload and run to halt ends with
//!    exactly the architectural register file the functional reference
//!    produces (the golden-model check, from a checkpoint).
//! 3. **Restored measurement is deterministic**: measuring the same
//!    (checkpoint × config) cell twice yields byte-identical runner
//!    report rows, for both `dla` and baseline configs — which is what
//!    makes sampled `BENCH_*.json` reproducible at any thread count.

use std::sync::Arc;

use r3dla_bench::runner::{CellResult, ConfigSpec};
use r3dla_bench::sampled::run_sampled_cell;
use r3dla_bench::Prepared;
use r3dla_core::WindowReport;
use r3dla_cpu::CoreConfig;
use r3dla_mem::MemConfig;
use r3dla_sample::{plan_intervals, Emulator, ImageMem, SampleSpec};
use r3dla_workloads::{by_name, Scale};

/// Capture at N, restore, run M more: every piece of architectural
/// state — including the re-captured checkpoint, i.e. the memory delta —
/// must equal an uninterrupted run to N+M.
#[test]
fn functional_round_trip_is_byte_identical() {
    for name in ["libq_like", "gobmk_like", "bfs"] {
        let prog = Arc::new(by_name(name).unwrap().build(Scale::Tiny).program);
        let image = Arc::new(ImageMem::of(prog.image()));
        let (n, m) = (10_000, 7_500);
        let mut whole = Emulator::with_image(Arc::clone(&prog), Arc::clone(&image));
        whole.run(n + m);
        let mut first = Emulator::with_image(Arc::clone(&prog), Arc::clone(&image));
        first.run(n);
        let ckpt = first.checkpoint();
        assert_eq!(ckpt.icount(), n, "{name}: capture point drifted");
        let mut resumed = Emulator::from_checkpoint(Arc::clone(&prog), image, &ckpt);
        resumed.run(m);
        assert_eq!(resumed.icount(), whole.icount(), "{name}: icount");
        assert_eq!(resumed.state().pc, whole.state().pc, "{name}: pc");
        assert_eq!(resumed.state().regs(), whole.state().regs(), "{name}: regs");
        assert_eq!(
            resumed.checkpoint(),
            whole.checkpoint(),
            "{name}: memory delta diverged across the round trip"
        );
    }
}

/// A timing system restored from a mid-workload checkpoint and run to
/// halt must finish with the functional reference's architectural
/// registers — for the two-core DLA system and the single-core baseline.
#[test]
fn restored_timing_runs_reach_the_functional_end_state() {
    let name = "md5_like";
    let wl = by_name(name).unwrap().build(Scale::Tiny);
    let prog = Arc::new(wl.program.clone());
    let image = Arc::new(ImageMem::of(prog.image()));
    // Functional reference: run to halt.
    let mut reference = Emulator::with_image(Arc::clone(&prog), Arc::clone(&image));
    let total = reference.run_to_halt(10_000_000);
    // Checkpoint mid-run.
    let mut em = Emulator::with_image(Arc::clone(&prog), image);
    em.run(total / 2);
    let ckpt = em.checkpoint();

    let p = Prepared::new(&by_name(name).unwrap(), Scale::Tiny);
    // Baseline single core.
    let mut bl = r3dla_core::SingleCoreSim::restore_from_checkpoint(
        &wl,
        CoreConfig::paper(),
        MemConfig::paper(),
        None,
        Some("bop"),
        &ckpt,
    );
    bl.run_until(u64::MAX, 50_000_000);
    assert!(bl.core().halted(), "restored bl run must reach the halt");
    assert_eq!(
        bl.core().committed(0),
        total - total / 2,
        "restored bl run commits exactly the remaining instructions"
    );
    assert_eq!(bl.core().arch_regs(0), reference.state().regs(), "bl regs");
    // Two-core DLA system.
    let mut dla = p.dla_system_from_checkpoint(r3dla_core::DlaConfig::dla(), &ckpt);
    dla.run_until_mt(u64::MAX, 50_000_000);
    assert!(dla.mt_halted(), "restored dla run must reach the halt");
    assert_eq!(
        dla.mt().committed(0),
        total - total / 2,
        "restored dla run commits exactly the remaining instructions"
    );
    assert_eq!(dla.mt().arch_regs(0), reference.state().regs(), "dla regs");
}

/// Block-cache dispatch and the per-instruction interpreter must agree
/// byte-for-byte: same checkpoints (registers, PC, icount, halt state,
/// memory delta) at a mid-run capture point and at the halt, and the
/// same sampled plan. This is the in-process twin of CI's
/// `R3DLA_BLOCK_CACHE=0` grid comparison.
#[test]
fn block_cache_dispatch_matches_interpreter_checkpoints() {
    for name in ["libq_like", "gobmk_like", "md5_like", "bfs"] {
        let prog = Arc::new(by_name(name).unwrap().build(Scale::Tiny).program);
        let image = Arc::new(ImageMem::of(prog.image()));
        let mut fast = Emulator::with_image(Arc::clone(&prog), Arc::clone(&image));
        fast.set_block_cache(true);
        let mut slow = Emulator::with_image(Arc::clone(&prog), Arc::clone(&image));
        slow.set_block_cache(false);
        // Mid-run capture at an arbitrary (non-block-aligned) icount.
        fast.run(12_345);
        slow.run(12_345);
        assert_eq!(
            fast.checkpoint(),
            slow.checkpoint(),
            "{name}: mid-run checkpoints diverge across dispatch modes"
        );
        // And at the halt, where terminator handling is exercised.
        let a = fast.run_to_halt(10_000_000);
        let b = slow.run_to_halt(10_000_000);
        assert_eq!(a, b, "{name}: total instruction counts diverge");
        assert_eq!(
            fast.checkpoint(),
            slow.checkpoint(),
            "{name}: final checkpoints diverge across dispatch modes"
        );
        assert!(
            fast.decoded_blocks() > 0,
            "{name}: fast path never exercised the block cache"
        );
    }
}

/// The runner's deterministic per-cell JSON row for a sampled interval,
/// via the very formatter `BENCH_*.json` uses.
fn cell_row(p: &Prepared, config: &str, report: WindowReport) -> String {
    CellResult {
        workload: p.name.clone(),
        suite: p.suite,
        config: config.to_string(),
        report,
        wall_ms: 0,
        status: r3dla_bench::CellStatus::Ok,
        attempts: 1,
        error: None,
    }
    .stat_fields()
}

/// Measuring the same (checkpoint × config) cell twice is byte-identical
/// — counters and report rows — for dla and baseline configs, with
/// functional warmup applied both times.
#[test]
fn restored_measurement_is_deterministic() {
    let spec = SampleSpec::parse("2:3000:functional").unwrap();
    for workload in ["libq_like", "xalan_like"] {
        let p = Prepared::new(&by_name(workload).unwrap(), Scale::Tiny);
        let plan = plan_intervals(&p.program, &spec);
        assert_eq!(plan.len(), 2, "{workload}: plan must fill");
        for config in ["bl", "dla"] {
            let cfg = ConfigSpec::by_name(config).unwrap();
            for iv in &plan {
                let a = run_sampled_cell(&p, &cfg, &spec, iv, true);
                let b = run_sampled_cell(&p, &cfg, &spec, iv, true);
                assert!(
                    a.mt_committed > 0,
                    "({workload}, {config}): interval {} committed nothing",
                    iv.index
                );
                assert_eq!(
                    cell_row(&p, config, a),
                    cell_row(&p, config, b),
                    "({workload}, {config}): interval {} not deterministic",
                    iv.index
                );
            }
        }
    }
}
