//! Behavioural integration tests for the look-ahead machinery: BOQ-fed
//! prediction accuracy, shared-cache warming, reboot bounds, and the
//! reduce/reuse/recycle counters.

use r3dla::core::{DlaConfig, DlaSystem, RecycleMode, SkeletonOptions};
use r3dla::cpu::CoreConfig;
use r3dla::mem::MemConfig;
use r3dla::workloads::{by_name, Scale};

#[test]
fn boq_makes_mt_branch_prediction_nearly_perfect() {
    // Data-dependent branches defeat the baseline predictor; the BOQ
    // supplies LT-resolved outcomes so MT mispredicts almost never
    // (paper: 0.06 MPKI fed-wrong rate).
    let wl = by_name("bzip2_like").unwrap().build(Scale::Tiny);
    let mut bl = r3dla::core::SingleCoreSim::build(
        &wl,
        CoreConfig::paper(),
        MemConfig::paper(),
        None,
        Some("bop"),
    );
    bl.run_until(60_000, 10_000_000);
    let bl_mpki = bl.core().counters.mispredicts_per_kilo();
    let mut sys = DlaSystem::build(&wl, DlaConfig::dla(), SkeletonOptions::default()).unwrap();
    sys.run_until_mt(60_000, 20_000_000);
    let mt_mpki = sys.mt().counters.mispredicts_per_kilo();
    assert!(
        mt_mpki < bl_mpki / 3.0,
        "BOQ should slash MT mispredicts: MT {mt_mpki:.2} vs BL {bl_mpki:.2}"
    );
}

#[test]
fn lookahead_thread_is_lighter_than_main() {
    // Table II's premise: LT commits a fraction of MT's instructions.
    let wl = by_name("cg_like").unwrap().build(Scale::Tiny);
    let mut sys = DlaSystem::build(&wl, DlaConfig::dla(), SkeletonOptions::default()).unwrap();
    let rep = sys.measure(10_000, 50_000);
    let ratio = rep.lt_committed as f64 / rep.mt_committed.max(1) as f64;
    assert!(ratio < 0.95, "LT should be lighter: ratio {ratio:.2}");
}

#[test]
fn reboots_are_rare() {
    // Paper: ~0.6 reboots per 10k instructions on average.
    let wl = by_name("sjeng_like").unwrap().build(Scale::Tiny);
    let mut sys = DlaSystem::build(&wl, DlaConfig::dla(), SkeletonOptions::default()).unwrap();
    let rep = sys.measure(10_000, 60_000);
    let per_10k = rep.reboots as f64 * 10_000.0 / rep.mt_committed.max(1) as f64;
    assert!(per_10k < 10.0, "reboot storm: {per_10k:.1} per 10k insts");
}

#[test]
fn t1_reduces_lt_workload() {
    // The *reduce* optimization (paper §III-B): strided loads whose
    // values the skeleton does not need are offloaded to the T1 FSM and
    // leave the skeleton, so LT commits strictly less. A streaming media
    // kernel is the paper's representative case for T1.
    let wl = by_name("rgbyuv_like").unwrap().build(Scale::Tiny);
    let base = {
        let mut sys = DlaSystem::build(&wl, DlaConfig::dla(), SkeletonOptions::default()).unwrap();
        sys.measure(10_000, 40_000)
    };
    let with_t1 = {
        let mut cfg = DlaConfig::dla();
        cfg.t1 = true;
        let mut sys = DlaSystem::build(&wl, cfg, SkeletonOptions::default()).unwrap();
        sys.measure(10_000, 40_000)
    };
    assert!(with_t1.lt_committed > 0, "LT must still run under T1");
    assert!(
        (with_t1.lt_committed as f64) < 0.9 * base.lt_committed as f64,
        "T1 offload should shrink LT by >10%: {} vs {}",
        with_t1.lt_committed,
        base.lt_committed
    );
}

#[test]
fn value_reuse_serves_predictions() {
    let wl = by_name("mcf_like").unwrap().build(Scale::Tiny);
    let mut cfg = DlaConfig::dla();
    cfg.value_reuse = true;
    let mut sys = DlaSystem::build(&wl, cfg, SkeletonOptions::default()).unwrap();
    sys.run_until_mt(80_000, 30_000_000);
    let preds = sys.mt().counters.value_predictions.get();
    let wrong = sys.mt().counters.value_mispredicts.get();
    // Value reuse must actually fire on mcf_like at this scale (measured
    // ~10k predictions) — a bare `if preds > 50` guard would let the
    // accuracy assertion silently go vacuous — and when it fires it must
    // be overwhelmingly correct (paper: >98%).
    assert!(preds > 50, "value reuse never fired: {preds} predictions");
    assert!(
        (wrong as f64) < 0.25 * preds as f64,
        "too many value mispredicts: {wrong}/{preds}"
    );
}

#[test]
fn recycle_usage_is_tracked() {
    let wl = by_name("hmmer_like").unwrap().build(Scale::Tiny);
    let mut cfg = DlaConfig::dla();
    cfg.recycle = RecycleMode::Dynamic;
    let mut sys = DlaSystem::build(&wl, cfg, SkeletonOptions::default()).unwrap();
    sys.run_until_mt(120_000, 40_000_000);
    let active = sys.active_skeleton();
    let usage = active.borrow().usage.clone();
    assert_eq!(usage.len(), 6, "six skeleton versions");
    assert!(usage.iter().sum::<u64>() > 0);
}

#[test]
fn validation_skip_scoreboard_fires_only_with_value_reuse() {
    let wl = by_name("mcf_like").unwrap().build(Scale::Tiny);
    let mut sys = DlaSystem::build(&wl, DlaConfig::dla(), SkeletonOptions::default()).unwrap();
    sys.run_until_mt(50_000, 20_000_000);
    assert_eq!(sys.mt().counters.value_validation_skips.get(), 0);
}
