//! Event-kernel equivalence suite: the discrete-event run loop must be
//! byte-identical to the legacy lockstep loop in every reported
//! statistic.
//!
//! For every workload in the suite at `Scale::Tiny`, each configuration
//! is measured twice — once pumped by the event kernel, once by the
//! legacy loop (`R3DLA_EVENT_KERNEL=0` path) — and the deterministic
//! `BENCH_*.json` cell row is compared verbatim. The loops are pinned
//! per instance (not via the environment) because the test harness runs
//! in parallel.
//!
//! A second group checks the multi-tenant [`Cluster`]: two systems over
//! one shared LLC/DRAM, run twice from scratch, must produce identical
//! per-tenant reports with both tenants committing work.

use std::cell::RefCell;
use std::rc::Rc;

use r3dla_bench::runner::{run_cell_mode, CellResult, ConfigSpec};
use r3dla_bench::{parallel_map, Prepared};
use r3dla_core::{Cluster, DlaConfig, WindowReport};
use r3dla_mem::SharedLlc;
use r3dla_workloads::{suite, Scale};

fn cell_row(p: &Prepared, config: &str, report: WindowReport) -> String {
    CellResult {
        workload: p.name.clone(),
        suite: p.suite,
        config: config.to_string(),
        report,
        wall_ms: 0,
        status: r3dla_bench::CellStatus::Ok,
        attempts: 1,
        error: None,
    }
    .stat_fields()
}

fn assert_loops_equivalent(p: &Prepared, spec: &ConfigSpec, warm: u64, win: u64) {
    let kernel = run_cell_mode(p, spec, warm, win, true, true);
    let legacy = run_cell_mode(p, spec, warm, win, true, false);
    assert!(
        kernel.mt_committed > 0,
        "({}, {}): cell committed nothing",
        p.name,
        spec.label,
    );
    assert_eq!(
        cell_row(p, &spec.label, kernel),
        cell_row(p, &spec.label, legacy),
        "({}, {}): the event kernel changed the report",
        p.name,
        spec.label,
    );
}

/// Every workload in the suite, under the single-core baseline, the
/// plain DLA system and the full R3 system.
#[test]
fn every_workload_is_loop_equivalent_under_bl_dla_and_r3() {
    let workloads = suite();
    let prepared = parallel_map(&workloads, 1, |w| Prepared::new(w, Scale::Tiny));
    for config in ["bl", "dla", "r3"] {
        let spec = ConfigSpec::by_name(config).unwrap();
        for p in &prepared {
            assert_loops_equivalent(p, &spec, 1_000, 4_000);
        }
    }
}

/// Two tenants over one shared LLC/DRAM: the cluster must be
/// deterministic (two runs from scratch agree verbatim) and both tenants
/// must make progress while contending.
#[test]
fn shared_llc_cluster_is_deterministic_and_both_tenants_commit() {
    let names = ["libq_like", "mcf_like"];
    let workloads: Vec<_> = suite()
        .into_iter()
        .filter(|w| names.contains(&w.name))
        .collect();
    assert_eq!(workloads.len(), names.len(), "subset names must all exist");
    let prepared = parallel_map(&workloads, 1, |w| Prepared::new(w, Scale::Tiny));

    let run = || {
        let cfg = DlaConfig::r3();
        let shared = Rc::new(RefCell::new(SharedLlc::new(&cfg.mem)));
        let mut cluster = Cluster::with_shared(shared.clone());
        for p in &prepared {
            cluster.push(p.dla_system_shared(cfg.clone(), shared.clone()));
        }
        let rows: Vec<String> = cluster
            .measure_each(1_000, 4_000)
            .into_iter()
            .zip(&prepared)
            .map(|(report, p)| {
                assert!(
                    report.mt_committed > 0,
                    "tenant {} committed nothing while co-running",
                    p.name
                );
                cell_row(p, "r3+shared", report)
            })
            .collect();
        rows
    };
    assert_eq!(run(), run(), "cluster run is not deterministic");
}
