//! Property-based tests over the core data structures and the analytic
//! model (proptest).

use proptest::prelude::*;
use r3dla::analytic::FetchBufferModel;
use r3dla::core::Boq;
use r3dla::isa::{eval_alu, eval_cond, Op};
use r3dla::stats::{geomean, Histogram, Rng};

proptest! {
    #[test]
    fn alu_add_commutes(a: u64, b: u64) {
        prop_assert_eq!(eval_alu(Op::Add, a, b, 0), eval_alu(Op::Add, b, a, 0));
    }

    #[test]
    fn alu_xor_self_inverse(a: u64, b: u64) {
        let x = eval_alu(Op::Xor, a, b, 0);
        prop_assert_eq!(eval_alu(Op::Xor, x, b, 0), a);
    }

    #[test]
    fn alu_sub_add_round_trip(a: u64, b: u64) {
        let d = eval_alu(Op::Sub, a, b, 0);
        prop_assert_eq!(eval_alu(Op::Add, d, b, 0), a);
    }

    #[test]
    fn cond_blt_bge_partition(a: u64, b: u64) {
        prop_assert_ne!(eval_cond(Op::Blt, a, b), eval_cond(Op::Bge, a, b));
    }

    #[test]
    fn cond_beq_symmetric(a: u64, b: u64) {
        prop_assert_eq!(eval_cond(Op::Beq, a, b), eval_cond(Op::Beq, b, a));
    }

    #[test]
    fn histogram_pmf_sums_to_one(values in prop::collection::vec(0u64..64, 1..200)) {
        let mut h = Histogram::new();
        for v in &values {
            h.record(*v);
        }
        let sum: f64 = h.to_pmf().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(h.total(), values.len() as u64);
    }

    #[test]
    fn geomean_bounded_by_extremes(values in prop::collection::vec(0.01f64..100.0, 1..50)) {
        let g = geomean(&values);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }

    #[test]
    fn rng_is_deterministic(seed: u64) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn boq_depth_never_exceeds_pushes(outcomes in prop::collection::vec(any::<bool>(), 1..100)) {
        let mut boq = Boq::new(512);
        for &t in &outcomes {
            boq.push(t);
        }
        prop_assert_eq!(boq.depth(), outcomes.len());
        // Consuming replays outcomes in order.
        for &t in &outcomes {
            prop_assert_eq!(boq.consume().map(|e| e.taken), Some(t));
        }
        prop_assert_eq!(boq.depth(), 0);
    }

    #[test]
    fn boq_rewind_replays_identically(outcomes in prop::collection::vec(any::<bool>(), 2..60)) {
        let mut boq = Boq::new(512);
        for &t in &outcomes {
            boq.push(t);
        }
        let cursor = boq.consume_cursor();
        let first: Vec<_> = (0..outcomes.len()).map(|_| boq.consume().unwrap().taken).collect();
        boq.rewind(cursor);
        let second: Vec<_> = (0..outcomes.len()).map(|_| boq.consume().unwrap().taken).collect();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn fetch_model_steady_state_is_distribution(
        sup_raw in prop::collection::vec(0.01f64..1.0, 2..9),
        dem_raw in prop::collection::vec(0.01f64..1.0, 2..5),
        cap in 1usize..48,
    ) {
        let norm = |v: &[f64]| {
            let s: f64 = v.iter().sum();
            v.iter().map(|x| x / s).collect::<Vec<_>>()
        };
        let m = FetchBufferModel::new(norm(&sup_raw), norm(&dem_raw), cap).unwrap();
        let q = m.steady_state();
        let sum: f64 = q.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!(q.iter().all(|&x| x >= -1e-9));
        prop_assert!(m.expected_bubbles(&q) >= 0.0);
    }

    #[test]
    fn bigger_fetch_buffers_never_increase_bubbles(
        sup_raw in prop::collection::vec(0.01f64..1.0, 2..9),
        dem_raw in prop::collection::vec(0.01f64..1.0, 2..5),
    ) {
        let norm = |v: &[f64]| {
            let s: f64 = v.iter().sum();
            v.iter().map(|x| x / s).collect::<Vec<_>>()
        };
        let sup = norm(&sup_raw);
        let dem = norm(&dem_raw);
        let mut prev = f64::INFINITY;
        for cap in [2usize, 4, 8, 16, 32] {
            let m = FetchBufferModel::new(sup.clone(), dem.clone(), cap).unwrap();
            let q = m.steady_state();
            let e = m.expected_bubbles(&q);
            prop_assert!(e <= prev + 1e-6, "E[FB] rose from {prev} to {e} at cap {cap}");
            prev = e;
        }
    }
}

// ---------------------------------------------------------------------
// Additional structural properties: caches, dataflow slicing, T1.
// ---------------------------------------------------------------------

use r3dla::core::{Dataflow, T1};
use r3dla::isa::{Asm, Reg};
use r3dla::mem::{Cache, CacheConfig};

proptest! {
    #[test]
    fn cache_never_evicts_most_recent_line(addrs in prop::collection::vec(0u64..(1 << 20), 2..200)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 4096, ways: 2, latency: 1, mshrs: 4, discard_dirty: false });
        for &a in &addrs {
            c.touch(a & !63);
            prop_assert!(c.contains(a & !63), "most recent line must be resident");
        }
    }

    #[test]
    fn slice_grows_monotonically_with_seeds(seed_count in 1usize..6) {
        // A chain program: each instruction depends on the previous.
        let mut a = Asm::new();
        let r = Reg::int(10);
        a.li(r, 1);
        for _ in 0..12 {
            a.addi(r, r, 1);
        }
        a.halt();
        let p = a.finish().unwrap();
        let df = Dataflow::analyze(&p);
        let deps = std::collections::HashMap::new();
        let mut prev = 0;
        for k in 1..=seed_count {
            let seeds: Vec<usize> = (1..=k * 2).collect();
            let slice = df.backward_slice(&seeds, &deps, 1000);
            prop_assert!(slice.count() >= prev, "slices must grow with more seeds");
            prev = slice.count();
        }
    }

    #[test]
    fn t1_only_prefetches_on_consistent_strides(stride_words in 1u64..64, n in 4u64..32) {
        // T1 prefetches are 8-byte aligned, so probe with word strides.
        let stride = stride_words * 8;
        let mut t1 = T1::new(16, 200);
        let mut out = Vec::new();
        for i in 0..n {
            out.clear();
            t1.observe(0x100, 0x10_0000 + i * stride, i * 25, &mut out);
            // Every prefetch target extends the stream in stride units.
            for &addr in &out {
                let delta = addr as i64 - (0x10_0000 + i * stride) as i64;
                prop_assert_eq!(delta.rem_euclid(stride as i64), 0);
                prop_assert!(delta > 0);
            }
        }
        // Steady state reached: exactly one prefetch per iteration.
        prop_assert!(out.len() <= 1);
    }

    #[test]
    fn boq_commit_front_preserves_fifo(outcomes in prop::collection::vec(any::<bool>(), 2..50)) {
        let mut boq = Boq::new(512);
        for &t in &outcomes {
            boq.push(t);
        }
        // Interleave consume + commit like MT fetch/commit do.
        for &expected in &outcomes {
            let served = boq.consume().unwrap();
            prop_assert_eq!(served.taken, expected);
            let retired = boq.commit_front().unwrap();
            prop_assert_eq!(retired.tag, served.tag);
        }
        prop_assert_eq!(boq.depth(), 0);
    }
}
