//! Every workload must run to completion on the timing core and match
//! the functional executor — across the whole suite (the strongest
//! cross-crate correctness net we have).

use r3dla::bpred::Tage;
use r3dla::cpu::{BaseMem, Core, CoreConfig, PredictorDirection};
use r3dla::isa::{run, ArchState, Reg, VecMem};
use r3dla::mem::{CoreMem, MemConfig, SharedLlc};
use r3dla::workloads::{suite, Scale};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn timing_core_matches_functional_on_every_workload() {
    for w in suite() {
        let built = w.build(Scale::Tiny);
        let program = Rc::new(built.program.clone());
        // Functional golden run.
        let mut st = ArchState::new(program.entry());
        let mut fm = VecMem::new();
        fm.load_image(program.image());
        let steps = run(&program, &mut st, &mut fm, 500_000_000).expect("halts");
        // Timing run.
        let shared = Rc::new(RefCell::new(SharedLlc::new(&MemConfig::paper())));
        let mem = CoreMem::new(&MemConfig::paper(), shared);
        let mut core = Core::new(CoreConfig::paper(), Rc::clone(&program), mem);
        let vm = Rc::new(RefCell::new(VecMem::new()));
        vm.borrow_mut().load_image(program.image());
        let dir = Box::new(PredictorDirection::new(Box::new(Tage::paper())));
        let t = core.add_thread(
            program.entry(),
            ArchState::new(program.entry()).regs(),
            dir,
            Rc::new(RefCell::new(BaseMem(vm))),
        );
        core.run(steps * 60 + 2_000_000);
        assert!(
            core.thread_halted(t),
            "{}: timing core did not halt",
            w.name
        );
        assert_eq!(core.committed(t), steps, "{}: instruction count", w.name);
        for r in 0..Reg::COUNT {
            assert_eq!(
                core.arch_regs(t)[r],
                st.regs()[r],
                "{}: register {r}",
                w.name
            );
        }
    }
}
