//! Smoke test: every workload in the suite must build and make forward
//! progress under the full R3-DLA configuration at `Scale::Tiny`. This
//! keeps newly added workloads from silently rotting — a workload that
//! panics, fails to build a skeleton, or deadlocks the MT/LT pair fails
//! here within a short window.

use r3dla::core::{DlaConfig, DlaSystem, SkeletonOptions};
use r3dla::workloads::{suite, Scale};

#[test]
fn every_workload_smokes_under_r3() {
    for w in suite() {
        let wl = w.build(Scale::Tiny);
        assert!(!wl.program.is_empty(), "{}: empty program", w.name);
        let mut sys = DlaSystem::build(&wl, DlaConfig::r3(), SkeletonOptions::default())
            .unwrap_or_else(|e| panic!("{}: DlaSystem::build failed: {e:?}", w.name));
        // A short window: enough to exercise fetch/commit on both
        // threads without turning the smoke test into a benchmark.
        sys.run_until_mt(2_000, 2_000_000);
        let committed = sys.mt().committed(0);
        assert!(committed > 0, "{}: MT committed nothing", w.name);
    }
}
