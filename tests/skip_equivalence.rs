//! Cycle-skipping equivalence suite: the event-driven fast path must be
//! invisible in every reported statistic.
//!
//! For every workload in the suite at `Scale::Tiny`, the runner's cell
//! measurement is executed twice — cycle-by-cycle and with event-driven
//! fast-forwarding — and the resulting reports must be identical. The
//! deterministic `BENCH_*.json` cell row is compared verbatim, so any
//! divergence in cycles, commits, DRAM traffic, cache statistics or
//! reboot counts fails the suite.

use r3dla_bench::runner::{run_cell, CellResult, ConfigSpec};
use r3dla_bench::{parallel_map, Prepared};
use r3dla_core::WindowReport;
use r3dla_workloads::{suite, Scale};

/// The runner's deterministic per-cell JSON row — the very formatter
/// `GridResult::to_json` uses, so this comparison is verbatim against
/// the real `BENCH_*.json` schema by construction.
fn cell_row(p: &Prepared, config: &str, report: WindowReport) -> String {
    CellResult {
        workload: p.name.clone(),
        suite: p.suite,
        config: config.to_string(),
        report,
        wall_ms: 0,
        status: r3dla_bench::CellStatus::Ok,
        attempts: 1,
        error: None,
    }
    .stat_fields()
}

fn assert_cell_equivalent(p: &Prepared, spec: &ConfigSpec, warm: u64, win: u64) {
    let fast = run_cell(p, spec, warm, win, true);
    let slow = run_cell(p, spec, warm, win, false);
    assert!(
        fast.mt_committed > 0,
        "({}, {}): cell committed nothing",
        p.name,
        spec.label,
    );
    assert_eq!(
        cell_row(p, &spec.label, fast),
        cell_row(p, &spec.label, slow),
        "({}, {}): cycle skipping changed the report",
        p.name,
        spec.label,
    );
}

/// Every workload in the suite, under the two-core DLA system.
#[test]
fn every_workload_is_skip_equivalent_under_dla() {
    let workloads = suite();
    let prepared = parallel_map(&workloads, 1, |w| Prepared::new(w, Scale::Tiny));
    let dla = ConfigSpec::by_name("dla").unwrap();
    for p in &prepared {
        assert_cell_equivalent(p, &dla, 1_000, 4_000);
    }
}

/// A representative subset (memory-bound, branchy, FP, graph) under the
/// single-core baseline and the full R3 system, so the `SingleCoreSim`
/// fast path and the complete reuse/recycle feature set are covered too.
#[test]
fn representative_workloads_are_skip_equivalent_under_bl_and_r3() {
    let names = ["libq_like", "mcf_like", "xalan_like", "cg_like", "bfs"];
    let workloads: Vec<_> = suite()
        .into_iter()
        .filter(|w| names.contains(&w.name))
        .collect();
    assert_eq!(workloads.len(), names.len(), "subset names must all exist");
    let prepared = parallel_map(&workloads, 1, |w| Prepared::new(w, Scale::Tiny));
    for config in ["bl", "r3"] {
        let spec = ConfigSpec::by_name(config).unwrap();
        for p in &prepared {
            assert_cell_equivalent(p, &spec, 1_000, 4_000);
        }
    }
}
