//! Cross-crate integration tests: the DLA system must preserve
//! architectural semantics end to end — the main thread's committed state
//! equals a pure functional execution, no matter how speculative the
//! look-ahead thread got.

use r3dla::core::{DlaConfig, DlaSystem, SkeletonOptions};
use r3dla::isa::{run, ArchState, VecMem};
use r3dla::workloads::{by_name, Scale};

fn check_semantics(name: &str, cfg: DlaConfig) {
    let wl = by_name(name).expect("workload exists").build(Scale::Tiny);
    // Functional golden run.
    let mut st = ArchState::new(wl.program.entry());
    let mut mem = VecMem::new();
    mem.load_image(wl.program.image());
    let steps = run(&wl.program, &mut st, &mut mem, 200_000_000).expect("halts");
    // DLA system run to completion.
    let mut sys = DlaSystem::build(&wl, cfg, SkeletonOptions::default()).expect("builds");
    let max_cycles = steps * 80 + 2_000_000;
    sys.run_until_mt(u64::MAX, max_cycles);
    assert!(
        sys.mt_halted(),
        "{name}: MT did not halt within {max_cycles} cycles"
    );
    assert_eq!(
        sys.mt().committed(0),
        steps,
        "{name}: committed count diverged from functional execution"
    );
    let regs = sys.mt().arch_regs(0);
    for (r, (got, want)) in regs.iter().zip(st.regs().iter()).enumerate() {
        assert_eq!(got, want, "{name}: register {r} mismatch");
    }
}

#[test]
fn dla_preserves_architectural_semantics() {
    for name in ["md5_like", "gobmk_like", "xalan_like"] {
        check_semantics(name, DlaConfig::dla());
    }
}

#[test]
fn r3_preserves_architectural_semantics() {
    // R3 adds value prediction, bias-converted branches and skeleton
    // switching — none of which may corrupt the main thread.
    for name in ["md5_like", "bzip2_like", "mcf_like"] {
        check_semantics(name, DlaConfig::r3());
    }
}

#[test]
fn r3_preserves_semantics_on_graph_code() {
    check_semantics("bfs", DlaConfig::r3());
}
