//! SPEC2006-integer-like kernels: one per dominant behaviour class of the
//! integer suite (pointer chasing, DP loops, streaming, recursion, hash
//! probing, histograms, grid search, indirect dispatch).

use r3dla_isa::{Asm, Program, Reg};
use r3dla_stats::Rng;

use crate::Scale;

const T0: Reg = Reg::int(10);
const T1: Reg = Reg::int(11);
const T2: Reg = Reg::int(12);
const T3: Reg = Reg::int(13);
const T4: Reg = Reg::int(14);
const T5: Reg = Reg::int(15);
const T6: Reg = Reg::int(16);
const T7: Reg = Reg::int(17);
const S0: Reg = Reg::int(18);
const S1: Reg = Reg::int(19);
const S2: Reg = Reg::int(20);
const S3: Reg = Reg::int(21);
const S4: Reg = Reg::int(22);

/// `mcf`-like: pointer chasing over a shuffled arc list with cost updates
/// — the canonical memory-latency-bound integer workload.
pub fn mcf_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x6D63_6600);
    let u = scale.units();
    let nodes = (16_384 * u) as usize; // 3 words each: next, cost, flag
    let steps = 9_000 * u;
    let mut a = Asm::named("mcf_like");
    let base = a.data().alloc_words(nodes * 3);
    // Sattolo's algorithm: a single-cycle permutation, so the chase
    // visits every record before repeating (no degenerate short cycles).
    let mut perm: Vec<u64> = (0..nodes as u64).collect();
    for i in (1..nodes).rev() {
        let j = rng.range_usize(0, i);
        perm.swap(i, j);
    }
    for (i, &p) in perm.iter().enumerate() {
        let rec = base + (i as u64) * 24;
        a.data().put_word(rec, base + p * 24); // next pointer
        a.data().put_word(rec + 8, rng.range_u64(0, 1000)); // cost
        if rng.chance(0.1) {
            a.data().put_word(rec + 16, 1); // flag
        }
    }
    // cur = base; acc = 0; for step in 0..steps { ... }
    a.li(S0, base as i64); // cur
    a.li(S1, 0); // acc
    a.li(S2, 0); // step
    a.li(S3, steps as i64);
    a.label("chase");
    a.ld(T0, S0, 8); // cost
    a.ld(T1, S0, 16); // flag
    a.beq(T1, Reg::ZERO, "no_update");
    a.addi(T0, T0, 7);
    a.st(T0, S0, 8); // update cost on flagged arcs
    a.label("no_update");
    a.andi(T2, T0, 1);
    a.beq(T2, Reg::ZERO, "even");
    a.add(S1, S1, T0);
    a.j("next");
    a.label("even");
    a.sub(S1, S1, T0);
    a.label("next");
    a.ld(S0, S0, 0); // follow the pointer (serialising load)
    a.addi(S2, S2, 1);
    a.blt(S2, S3, "chase");
    a.halt();
    a.finish().expect("mcf_like assembles")
}

/// `hmmer`-like: a Viterbi-style dynamic-programming inner loop — strided
/// loads, predictable branches, high ILP.
pub fn hmmer_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x686D_6D00);
    let u = scale.units();
    let cols = (512 * u) as usize;
    let rows = 16;
    let mut a = Asm::named("hmmer_like");
    let mm = a.data().alloc_words(cols);
    let dd = a.data().alloc_words(cols);
    let sc = a.data().alloc_words(cols);
    for j in 0..cols {
        a.data().put_word(sc + (j as u64) * 8, rng.range_u64(0, 64));
    }
    a.li(S0, 0); // row
    a.li(S1, rows as i64);
    a.label("row");
    a.li(T0, 1); // j
    a.li(T1, cols as i64);
    a.label("col");
    a.slli(T2, T0, 3);
    a.li(T3, mm as i64);
    a.add(T3, T3, T2);
    a.ld(T4, T3, -8); // m[j-1]
    a.li(T5, dd as i64);
    a.add(T5, T5, T2);
    a.ld(T6, T5, -8); // d[j-1]
    a.li(T7, sc as i64);
    a.add(T7, T7, T2);
    a.ld(T7, T7, 0); // sc[j]
    a.add(T4, T4, T7); // m-path score
    a.addi(T6, T6, 3); // d-path score
    a.blt(T4, T6, "take_d");
    a.st(T4, T3, 0);
    a.j("stored");
    a.label("take_d");
    a.st(T6, T3, 0);
    a.label("stored");
    a.srli(T7, T4, 1);
    a.st(T7, T5, 0); // d[j] = m-path / 2
    a.addi(T0, T0, 1);
    a.blt(T0, T1, "col");
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "row");
    a.halt();
    a.finish().expect("hmmer_like assembles")
}

/// `libquantum`-like: long unit-stride sweeps over a large array with a
/// biased conditional toggle — the prefetcher-friendly streaming class.
pub fn libq_like(scale: Scale) -> Program {
    let u = scale.units();
    let n = (32_768 * u) as usize;
    let sweeps = 3;
    let mut a = Asm::named("libq_like");
    let arr = a.data().alloc_words(n);
    a.li(S0, 0); // sweep
    a.li(S1, sweeps);
    a.label("sweep");
    a.li(T0, arr as i64);
    a.li(T1, (arr + (n as u64) * 8) as i64);
    a.label("elem");
    a.ld(T2, T0, 0);
    a.andi(T3, T2, 2);
    a.beq(T3, Reg::ZERO, "skip");
    a.xori(T2, T2, 1); // toggle control bit
    a.st(T2, T0, 0);
    a.label("skip");
    a.addi(T2, T2, 1);
    a.st(T2, T0, 0);
    a.addi(T0, T0, 8);
    a.bltu(T0, T1, "elem");
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "sweep");
    a.halt();
    a.finish().expect("libq_like assembles")
}

/// `gobmk`-like: recursive game-tree walk with branchy evaluation — the
/// call-heavy, hard-to-predict class (also the paper's recursive-function
/// loop-detection case).
pub fn gobmk_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x676F_0000);
    let u = scale.units();
    let board = 4096usize;
    let games = 24 * u;
    let depth = 12;
    let mut a = Asm::named("gobmk_like");
    let cells = a.data().alloc_words(board);
    for i in 0..board {
        a.data()
            .put_word(cells + (i as u64) * 8, rng.range_u64(0, 256));
    }
    // main: for g in 0..games { r10 = g*2654435761 % board; r11 = depth; call eval; acc += r12 }
    a.li(S0, 0);
    a.li(S1, games as i64);
    a.li(S2, 0); // acc
    a.label("game");
    a.li(T0, 2654435761);
    a.mul(T0, S0, T0);
    a.li(T1, board as i64);
    a.rem(T0, T0, T1); // position
    a.li(T1, depth);
    a.call("eval");
    a.add(S2, S2, T2);
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "game");
    a.halt();
    // eval(pos=T0, depth=T1) -> T2
    a.label("eval");
    a.addi(Reg::SP, Reg::SP, -32);
    a.st(Reg::RA, Reg::SP, 0);
    a.st(T0, Reg::SP, 8);
    a.st(T1, Reg::SP, 16);
    // score = cells[pos]
    a.slli(T2, T0, 3);
    a.li(T3, cells as i64);
    a.add(T3, T3, T2);
    a.ld(T2, T3, 0);
    a.beq(T1, Reg::ZERO, "leaf");
    // branchy: explore 1 or 2 children depending on score bits
    a.andi(T4, T2, 3);
    a.beq(T4, Reg::ZERO, "leaf"); // prune

    // child A: pos' = (pos*31+7) % board, depth-1
    a.li(T5, 31);
    a.mul(T0, T0, T5);
    a.addi(T0, T0, 7);
    a.li(T5, board as i64);
    a.rem(T0, T0, T5);
    a.addi(T1, T1, -1);
    a.call("eval");
    a.st(T2, Reg::SP, 24); // save child A score

    // maybe child B
    a.ld(T0, Reg::SP, 8);
    a.ld(T1, Reg::SP, 16);
    a.slli(T3, T0, 3);
    a.li(T4, cells as i64);
    a.add(T4, T4, T3);
    a.ld(T3, T4, 0);
    a.andi(T4, T3, 4);
    a.beq(T4, Reg::ZERO, "one_child");
    a.li(T5, 17);
    a.mul(T0, T0, T5);
    a.addi(T0, T0, 3);
    a.li(T5, board as i64);
    a.rem(T0, T0, T5);
    a.addi(T1, T1, -1);
    a.call("eval");
    a.ld(T3, Reg::SP, 24);
    a.blt(T2, T3, "keep_b");
    a.mv(T2, T3); // min of the two
    a.label("keep_b");
    a.j("unwind");
    a.label("one_child");
    a.ld(T2, Reg::SP, 24);
    a.label("unwind");
    a.ld(T3, Reg::SP, 8);
    a.andi(T3, T3, 7);
    a.add(T2, T2, T3);
    a.label("leaf");
    a.ld(Reg::RA, Reg::SP, 0);
    a.addi(Reg::SP, Reg::SP, 32);
    a.ret();
    a.finish().expect("gobmk_like assembles")
}

/// `sjeng`-like: transposition-table probing — pseudo-random indexed
/// loads with data-dependent branches (cache-hostile, predictor-hostile).
pub fn sjeng_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x736A_0000);
    let u = scale.units();
    let table_bits = 13 + u.ilog2() as i64; // 8K..64K entries of 2 words
    let table = 1usize << table_bits;
    let probes = 12_000 * u;
    let mut a = Asm::named("sjeng_like");
    let tbl = a.data().alloc_words(table * 2);
    for i in 0..table {
        if rng.chance(0.5) {
            a.data().put_word(tbl + (i as u64) * 16, rng.next_u64() | 1);
            a.data()
                .put_word(tbl + (i as u64) * 16 + 8, rng.range_u64(0, 100));
        }
    }
    a.li(S0, 0x9E3779B97F4A7C15u64 as i64); // hash state
    a.li(S1, 0); // i
    a.li(S2, probes as i64);
    a.li(S3, 0); // hits
    a.label("probe");
    // xorshift hash step
    a.srli(T0, S0, 13);
    a.xor(S0, S0, T0);
    a.slli(T0, S0, 7);
    a.xor(S0, S0, T0);
    a.srli(T0, S0, 17);
    a.xor(S0, S0, T0);
    // index = (hash >> 4) & (table-1)
    a.srli(T1, S0, 4);
    a.andi(T1, T1, (table - 1) as i64);
    a.slli(T1, T1, 4); // ×16 bytes
    a.li(T2, tbl as i64);
    a.add(T2, T2, T1);
    a.ld(T3, T2, 0); // key
    a.beq(T3, Reg::ZERO, "miss");
    a.ld(T4, T2, 8); // payload
    a.add(S3, S3, T4);
    a.andi(T5, T4, 1);
    a.beq(T5, Reg::ZERO, "nostore");
    a.addi(T4, T4, 1);
    a.st(T4, T2, 8);
    a.label("nostore");
    a.label("miss");
    a.addi(S1, S1, 1);
    a.blt(S1, S2, "probe");
    a.halt();
    a.finish().expect("sjeng_like assembles")
}

/// `bzip2`-like: byte histogram with range-classified branches — the
/// data-dependent-branch compression class.
pub fn bzip2_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x627A_0000);
    let u = scale.units();
    let n = (16_384 * u) as usize;
    let mut a = Asm::named("bzip2_like");
    let input = a.data().alloc_words(n);
    for i in 0..n {
        // Skewed byte distribution, like real text.
        let b = if rng.chance(0.6) {
            rng.range_u64(97, 123)
        } else {
            rng.range_u64(0, 256)
        };
        a.data().put_word(input + (i as u64) * 8, b);
    }
    let hist = a.data().alloc_words(256);
    a.li(S0, input as i64);
    a.li(S1, (input + (n as u64) * 8) as i64);
    a.li(S2, hist as i64);
    a.li(S3, 0); // letters seen
    a.label("byte");
    a.ld(T0, S0, 0);
    a.slli(T1, T0, 3);
    a.add(T1, T1, S2);
    a.ld(T2, T1, 0);
    a.addi(T2, T2, 1);
    a.st(T2, T1, 0); // hist[b]++
    a.slti(T3, T0, 97);
    a.bne(T3, Reg::ZERO, "not_lower");
    a.slti(T3, T0, 123);
    a.beq(T3, Reg::ZERO, "not_lower");
    a.addi(S3, S3, 1);
    a.label("not_lower");
    a.addi(S0, S0, 8);
    a.bltu(S0, S1, "byte");
    a.halt();
    a.finish().expect("bzip2_like assembles")
}

/// `astar`-like: greedy descent over a 2-D cost grid — semi-local,
/// data-dependent addressing with branchy minimum selection.
pub fn astar_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x6173_0000);
    let u = scale.units();
    let w = 128usize * (u as usize); // grid width
    let cells = w * w;
    let moves = 9_000 * u;
    let mut a = Asm::named("astar_like");
    let grid = a.data().alloc_words(cells);
    for i in 0..cells {
        a.data()
            .put_word(grid + (i as u64) * 8, rng.range_u64(1, 1 << 20));
    }
    let wmask = (w - 1) as i64;
    a.li(S0, (cells / 2) as i64); // position index
    a.li(S1, 0); // step
    a.li(S2, moves as i64);
    a.li(S3, grid as i64);
    a.li(S4, 0); // path cost acc
    a.label("step");
    // Load 4 neighbours (±1, ±w) with wraparound via masking.
    a.andi(T0, S0, wmask); // x
    a.srli(T1, S0, w.trailing_zeros() as i64); // y

    // east: x+1 (mod w)
    a.addi(T2, T0, 1);
    a.andi(T2, T2, wmask);
    a.slli(T3, T1, w.trailing_zeros() as i64);
    a.add(T2, T2, T3);
    a.slli(T2, T2, 3);
    a.add(T2, T2, S3);
    a.ld(T2, T2, 0); // east cost

    // south: y+1 (mod w)
    a.addi(T4, T1, 1);
    a.andi(T4, T4, wmask);
    a.slli(T4, T4, w.trailing_zeros() as i64);
    a.add(T4, T4, T0);
    a.slli(T4, T4, 3);
    a.add(T4, T4, S3);
    a.ld(T4, T4, 0); // south cost

    // pick cheaper; move there
    a.bltu(T2, T4, "go_east");
    // go south
    a.addi(T5, T1, 1);
    a.andi(T5, T5, wmask);
    a.slli(T5, T5, w.trailing_zeros() as i64);
    a.add(S0, T5, T0);
    a.add(S4, S4, T4);
    a.j("moved");
    a.label("go_east");
    a.addi(T5, T0, 1);
    a.andi(T5, T5, wmask);
    a.slli(T6, T1, w.trailing_zeros() as i64);
    a.add(S0, T6, T5);
    a.add(S4, S4, T2);
    a.label("moved");
    // Perturb the grid so the walk does not cycle degenerately.
    a.slli(T6, S0, 3);
    a.add(T6, T6, S3);
    a.ld(T7, T6, 0);
    a.addi(T7, T7, 13);
    a.st(T7, T6, 0);
    a.addi(S1, S1, 1);
    a.blt(S1, S2, "step");
    a.halt();
    a.finish().expect("astar_like assembles")
}

/// `xalancbmk`-like: a tokenized document processed through an indirect
/// dispatch table — the virtual-call/switch class (indirect branches).
pub fn xalan_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x7861_0000);
    let u = scale.units();
    let tokens = (6_000 * u) as usize;
    let handlers = 8;
    let mut a = Asm::named("xalan_like");
    let stream = a.data().alloc_words(tokens);
    for i in 0..tokens {
        // Skewed handler popularity, like real markup.
        let t = if rng.chance(0.5) {
            0
        } else {
            rng.range_u64(1, handlers)
        };
        a.data().put_word(stream + (i as u64) * 8, t);
    }
    let table = a.data().alloc_words(handlers as usize);
    for h in 0..handlers {
        a.put_label_addr(table + h * 8, format!("h{h}"));
    }
    a.li(S0, stream as i64);
    a.li(S1, (stream + (tokens as u64) * 8) as i64);
    a.li(S2, table as i64);
    a.li(S3, 0); // acc
    a.label("tok");
    a.ld(T0, S0, 0); // token type
    a.slli(T1, T0, 3);
    a.add(T1, T1, S2);
    a.ld(T1, T1, 0); // handler address
    a.callr(T1); // indirect call
    a.addi(S0, S0, 8);
    a.bltu(S0, S1, "tok");
    a.halt();
    for h in 0..handlers {
        a.label(format!("h{h}"));
        // Each handler does distinct small work on the accumulator.
        match h % 4 {
            0 => {
                a.addi(S3, S3, h as i64 + 1);
            }
            1 => {
                a.slli(T2, S3, 1);
                a.xor(S3, S3, T2);
            }
            2 => {
                a.srli(T2, S3, 3);
                a.add(S3, S3, T2);
            }
            _ => {
                a.xori(S3, S3, 0x5A);
                a.addi(S3, S3, 7);
            }
        }
        a.ret();
    }
    a.finish().expect("xalan_like assembles")
}
