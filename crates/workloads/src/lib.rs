//! Synthetic benchmark kernels for the R3-DLA simulator.
//!
//! The paper evaluates on SPEC2006, CRONO (graphs), STARBENCH (embedded)
//! and NPB (scientific). We cannot ship those binaries, so each suite is
//! represented by kernels that reproduce its *dominant microarchitectural
//! behaviour class*: pointer chasing, strided streaming, data-dependent
//! branches, CSR graph traversal, hashing, recursion, stencils, sparse
//! algebra, and so on. DLA's benefits are a function of these behaviour
//! classes, not of the trademarked source code.
//!
//! Every kernel is generated at three [`Scale`]s; `Train` uses a different
//! data seed than `Ref`, so offline profiling (skeleton construction) is
//! honest about train-vs-reference input drift, exactly like the paper's
//! methodology ("we collect these statistics by executing the programs
//! with training inputs").
//!
//! # Examples
//!
//! ```
//! use r3dla_workloads::{suite, Scale, Suite};
//! let all = suite();
//! assert!(all.len() >= 16);
//! let bfs = all.iter().find(|w| w.name == "bfs").unwrap();
//! assert_eq!(bfs.suite, Suite::Crono);
//! let built = bfs.build(Scale::Tiny);
//! assert!(built.program.len() > 10);
//! ```

mod crono;
mod npb;
mod spec;
mod star;

use r3dla_isa::Program;

/// The benchmark suite a kernel belongs to (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC2006-integer-like behaviour classes.
    SpecInt,
    /// CRONO-like graph workloads.
    Crono,
    /// STARBENCH-like embedded workloads.
    Star,
    /// NPB-like scientific workloads.
    Npb,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::SpecInt => "spec",
            Suite::Crono => "crono",
            Suite::Star => "star",
            Suite::Npb => "npb",
        };
        f.write_str(s)
    }
}

/// Input scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Very small inputs for unit tests (tens of kilo-instructions).
    Tiny,
    /// Training inputs for offline profiling (different data seed).
    Train,
    /// Reference inputs for measurement.
    Ref,
}

impl Scale {
    /// The data-generation seed for this scale. `Train` differs from
    /// `Ref` so profiling cannot cheat.
    pub fn seed(self) -> u64 {
        match self {
            Scale::Tiny => 0x7157,
            Scale::Train => 0x7261_696E,
            Scale::Ref => 0x5245_4600,
        }
    }

    /// A baseline size knob kernels scale from.
    pub fn units(self) -> u64 {
        match self {
            Scale::Tiny => 1,
            Scale::Train => 4,
            Scale::Ref => 8,
        }
    }
}

/// A built workload: the program (code + initial data image).
#[derive(Debug, Clone)]
pub struct BuiltWorkload {
    /// Kernel name.
    pub name: String,
    /// The program binary.
    pub program: Program,
}

/// A workload descriptor.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Kernel name (stable identifier used in experiment output).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    build_fn: fn(Scale) -> Program,
}

impl Workload {
    /// Builds the kernel at the given scale.
    pub fn build(&self, scale: Scale) -> BuiltWorkload {
        BuiltWorkload {
            name: self.name.to_string(),
            program: (self.build_fn)(scale),
        }
    }
}

/// All workloads, grouped suite by suite.
pub fn suite() -> Vec<Workload> {
    let mut v = Vec::new();
    macro_rules! w {
        ($name:literal, $suite:expr, $f:path) => {
            v.push(Workload {
                name: $name,
                suite: $suite,
                build_fn: $f,
            });
        };
    }
    // SPEC2006-int-like.
    w!("mcf_like", Suite::SpecInt, spec::mcf_like);
    w!("hmmer_like", Suite::SpecInt, spec::hmmer_like);
    w!("libq_like", Suite::SpecInt, spec::libq_like);
    w!("gobmk_like", Suite::SpecInt, spec::gobmk_like);
    w!("sjeng_like", Suite::SpecInt, spec::sjeng_like);
    w!("bzip2_like", Suite::SpecInt, spec::bzip2_like);
    w!("astar_like", Suite::SpecInt, spec::astar_like);
    w!("xalan_like", Suite::SpecInt, spec::xalan_like);
    // CRONO-like graph kernels.
    w!("bfs", Suite::Crono, crono::bfs);
    w!("sssp", Suite::Crono, crono::sssp);
    w!("pagerank", Suite::Crono, crono::pagerank);
    w!("cc", Suite::Crono, crono::connected_components);
    w!("tc", Suite::Crono, crono::triangle_count);
    // STARBENCH-like embedded kernels.
    w!("kmeans_like", Suite::Star, star::kmeans_like);
    w!("md5_like", Suite::Star, star::md5_like);
    w!("rgbyuv_like", Suite::Star, star::rgbyuv_like);
    w!("rotate_like", Suite::Star, star::rotate_like);
    // NPB-like scientific kernels.
    w!("cg_like", Suite::Npb, npb::cg_like);
    w!("mg_like", Suite::Npb, npb::mg_like);
    w!("ft_like", Suite::Npb, npb::ft_like);
    w!("is_like", Suite::Npb, npb::is_like);
    w!("ep_like", Suite::Npb, npb::ep_like);
    v
}

/// The workloads belonging to one suite.
pub fn by_suite(s: Suite) -> Vec<Workload> {
    suite().into_iter().filter(|w| w.suite == s).collect()
}

/// Finds a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    suite().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_isa::{run, ArchState, VecMem};

    #[test]
    fn every_workload_builds_and_halts_functionally() {
        for w in suite() {
            let built = w.build(Scale::Tiny);
            let prog = built.program;
            let mut st = ArchState::new(prog.entry());
            let mut mem = VecMem::new();
            mem.load_image(prog.image());
            let steps = run(&prog, &mut st, &mut mem, 50_000_000)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            assert!(
                steps > 5_000,
                "{} too small at Tiny scale: {steps} dynamic instructions",
                w.name
            );
        }
    }

    #[test]
    fn scales_are_ordered_by_work() {
        for name in ["libq_like", "bfs", "cg_like"] {
            let w = by_name(name).unwrap();
            let mut counts = Vec::new();
            for s in [Scale::Tiny, Scale::Train, Scale::Ref] {
                let built = w.build(s);
                let mut st = ArchState::new(built.program.entry());
                let mut mem = VecMem::new();
                mem.load_image(built.program.image());
                let steps = run(&built.program, &mut st, &mut mem, 200_000_000).expect("halts");
                counts.push(steps);
            }
            assert!(
                counts[0] < counts[1] && counts[1] < counts[2],
                "{name}: {counts:?}"
            );
        }
    }

    #[test]
    fn train_and_ref_differ_in_data() {
        // Same code shape, different data image (honest profiling).
        let w = by_name("sjeng_like").unwrap();
        let a = w.build(Scale::Train);
        let b = w.build(Scale::Ref);
        assert_ne!(a.program.image(), b.program.image());
    }

    #[test]
    fn suites_are_nonempty() {
        for s in [Suite::SpecInt, Suite::Crono, Suite::Star, Suite::Npb] {
            assert!(by_suite(s).len() >= 4, "suite {s} too small");
        }
    }

    #[test]
    fn by_name_finds_and_rejects() {
        assert!(by_name("pagerank").is_some());
        assert!(by_name("nonexistent").is_none());
    }
}
