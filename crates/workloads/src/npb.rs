//! NPB-like scientific kernels: sparse algebra (CG), stencils (MG),
//! power-of-two butterflies (FT), integer sort (IS), and embarrassingly
//! parallel random generation (EP).

use r3dla_isa::{Asm, Program, Reg};
use r3dla_stats::Rng;

use crate::crono::generate_graph;
use crate::Scale;

const T0: Reg = Reg::int(10);
const T1: Reg = Reg::int(11);
const T2: Reg = Reg::int(12);
const T3: Reg = Reg::int(13);
const T4: Reg = Reg::int(14);
const T5: Reg = Reg::int(15);
const S0: Reg = Reg::int(18);
const S1: Reg = Reg::int(19);
const S2: Reg = Reg::int(20);
const S3: Reg = Reg::int(21);

/// `CG`-like: repeated sparse matrix-vector products (CSR gather with FP
/// multiply-accumulate).
pub fn cg_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x6367_0000);
    let n = (2048 * scale.units()) as usize;
    let g = generate_graph(&mut rng, n, 7);
    let iters = 3;
    let mut a = Asm::named("cg_like");
    let rp = a.data().words(&g.row_ptr);
    let cl = a.data().words(&g.col);
    let x = a.data().alloc_words(n);
    let y = a.data().alloc_words(n);
    for v in 0..n {
        a.data()
            .put_word(x + (v as u64) * 8, (1.0 + rng.f64()).to_bits());
    }
    let (facc, fval, fxv) = (Reg::fp(0), Reg::fp(1), Reg::fp(2));
    a.li(S0, 0);
    a.li(S1, iters);
    a.label("iter");
    a.li(S2, 0); // row
    a.li(S3, n as i64);
    a.label("row");
    a.slli(T0, S2, 3);
    a.li(T1, rp as i64);
    a.add(T0, T0, T1);
    a.ld(T1, T0, 0); // begin
    a.ld(T2, T0, 8); // end
    a.li(T3, 0);
    a.cvtif(facc, T3); // acc = 0.0
    a.label("nz");
    a.bge(T1, T2, "store");
    a.slli(T3, T1, 3);
    a.li(T4, cl as i64);
    a.add(T3, T3, T4);
    a.ld(T3, T3, 0); // col j

    // A[i][j] = 1/(1 + ((i^j)&7))  — deterministic value from indices
    a.xor(T4, S2, T3);
    a.andi(T4, T4, 7);
    a.addi(T4, T4, 1);
    a.cvtif(fval, T4);
    a.li(fxv, 1.0f64.to_bits() as i64);
    a.fdiv(fval, fxv, fval);
    a.slli(T3, T3, 3);
    a.li(T4, x as i64);
    a.add(T3, T3, T4);
    a.ld(fxv, T3, 0); // x[j] gather
    a.fmul(fval, fval, fxv);
    a.fadd(facc, facc, fval);
    a.addi(T1, T1, 1);
    a.j("nz");
    a.label("store");
    a.slli(T3, S2, 3);
    a.li(T4, y as i64);
    a.add(T3, T3, T4);
    a.st(facc, T3, 0);
    a.addi(S2, S2, 1);
    a.blt(S2, S3, "row");
    // x ← y (next iteration input)
    a.li(T0, 0);
    a.li(T1, n as i64);
    a.label("copy");
    a.slli(T2, T0, 3);
    a.li(T3, y as i64);
    a.add(T3, T3, T2);
    a.ld(T4, T3, 0);
    a.li(T3, x as i64);
    a.add(T3, T3, T2);
    a.st(T4, T3, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, T1, "copy");
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "iter");
    a.halt();
    a.finish().expect("cg_like assembles")
}

/// `MG`-like: repeated 3-point stencil sweeps over a 1-D grid (the
/// multigrid smoother's memory behaviour).
pub fn mg_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x6D67_0000);
    let u = scale.units();
    let n = (8_192 * u) as usize;
    let sweeps = 2;
    let mut a = Asm::named("mg_like");
    let grid = a.data().alloc_words(n);
    let out = a.data().alloc_words(n);
    for _ in 0..n / 16 {
        let idx = rng.range_u64(0, n as u64);
        a.data()
            .put_word(grid + idx * 8, (rng.f64() * 8.0).to_bits());
    }
    let (fl, fc, fr, fq) = (Reg::fp(0), Reg::fp(1), Reg::fp(2), Reg::fp(3));
    a.li(S0, 0);
    a.li(S1, sweeps);
    a.label("sweep");
    a.li(T0, (grid + 8) as i64); // &grid[1]
    a.li(T1, (grid + ((n - 1) as u64) * 8) as i64); // &grid[n-1]
    a.li(T2, (out + 8) as i64);
    a.label("cell");
    a.ld(fl, T0, -8);
    a.ld(fc, T0, 0);
    a.ld(fr, T0, 8);
    a.fadd(fl, fl, fr);
    a.li(fq, 0.25f64.to_bits() as i64);
    a.fmul(fl, fl, fq);
    a.li(fq, 0.5f64.to_bits() as i64);
    a.fmul(fc, fc, fq);
    a.fadd(fc, fc, fl);
    a.st(fc, T2, 0);
    a.addi(T0, T0, 8);
    a.addi(T2, T2, 8);
    a.bltu(T0, T1, "cell");
    // Copy out→grid for the next sweep (second unit-stride stream).
    a.li(T0, grid as i64);
    a.li(T1, out as i64);
    a.li(T3, (grid + (n as u64) * 8) as i64);
    a.label("copyback");
    a.ld(T4, T1, 0);
    a.st(T4, T0, 0);
    a.addi(T0, T0, 8);
    a.addi(T1, T1, 8);
    a.bltu(T0, T3, "copyback");
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "sweep");
    a.halt();
    a.finish().expect("mg_like assembles")
}

/// `FT`-like: butterfly passes with power-of-two strides (FFT memory
/// behaviour: cache-set hostile, prefetcher-ambivalent).
pub fn ft_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x6674_0000);
    let u = scale.units();
    let log_n = 12 + u.ilog2() as usize; // 4K..32K points
    let n = 1usize << log_n;
    let mut a = Asm::named("ft_like");
    let re = a.data().alloc_words(n);
    for i in 0..n {
        a.data()
            .put_word(re + (i as u64) * 8, (rng.f64() - 0.5).to_bits());
    }
    let (fa, fb, fs) = (Reg::fp(0), Reg::fp(1), Reg::fp(2));
    // for s in [1, 2, 4, ..., n/2]: for i in 0..n where (i & s) == 0:
    //   a' = a + b; b' = (a - b) * 0.5
    a.li(S0, 1); // stride
    a.li(S1, n as i64);
    a.label("pass");
    a.li(T0, 0); // i
    a.label("bf");
    a.and_(T1, T0, S0);
    a.bne(T1, Reg::ZERO, "skip");
    a.slli(T2, T0, 3);
    a.li(T3, re as i64);
    a.add(T2, T2, T3);
    a.ld(fa, T2, 0);
    a.slli(T4, S0, 3);
    a.add(T5, T2, T4);
    a.ld(fb, T5, 0); // strided partner
    a.fadd(fs, fa, fb);
    a.st(fs, T2, 0);
    a.fsub(fs, fa, fb);
    a.li(fa, 0.5f64.to_bits() as i64);
    a.fmul(fs, fs, fa);
    a.st(fs, T5, 0);
    a.label("skip");
    a.addi(T0, T0, 1);
    a.blt(T0, S1, "bf");
    a.slli(S0, S0, 1);
    a.blt(S0, S1, "pass");
    a.halt();
    a.finish().expect("ft_like assembles")
}

/// `IS`-like: integer bucket sort — histogram, prefix sum, scatter.
pub fn is_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x6973_0000);
    let u = scale.units();
    let n = (12_288 * u) as usize;
    let buckets = 1024usize;
    let mut a = Asm::named("is_like");
    let keys = a.data().alloc_words(n);
    for i in 0..n {
        a.data()
            .put_word(keys + (i as u64) * 8, rng.range_u64(0, buckets as u64));
    }
    let hist = a.data().alloc_words(buckets);
    let outp = a.data().alloc_words(n);
    // Phase 1: histogram.
    a.li(S0, keys as i64);
    a.li(S1, (keys + (n as u64) * 8) as i64);
    a.li(S2, hist as i64);
    a.label("h1");
    a.ld(T0, S0, 0);
    a.slli(T0, T0, 3);
    a.add(T0, T0, S2);
    a.ld(T1, T0, 0);
    a.addi(T1, T1, 1);
    a.st(T1, T0, 0);
    a.addi(S0, S0, 8);
    a.bltu(S0, S1, "h1");
    // Phase 2: exclusive prefix sum.
    a.li(T0, 0); // running
    a.li(T1, 0); // b
    a.li(T2, buckets as i64);
    a.label("scan");
    a.slli(T3, T1, 3);
    a.add(T3, T3, S2);
    a.ld(T4, T3, 0);
    a.st(T0, T3, 0);
    a.add(T0, T0, T4);
    a.addi(T1, T1, 1);
    a.blt(T1, T2, "scan");
    // Phase 3: scatter.
    a.li(S0, keys as i64);
    a.li(S3, outp as i64);
    a.label("scatter");
    a.ld(T0, S0, 0); // key
    a.slli(T1, T0, 3);
    a.add(T1, T1, S2);
    a.ld(T2, T1, 0); // position
    a.addi(T3, T2, 1);
    a.st(T3, T1, 0); // bump
    a.slli(T2, T2, 3);
    a.add(T2, T2, S3);
    a.st(T0, T2, 0); // out[pos] = key (scatter store)
    a.addi(S0, S0, 8);
    a.bltu(S0, S1, "scatter");
    a.halt();
    a.finish().expect("is_like assembles")
}

/// `EP`-like: embarrassingly parallel pseudo-random FP accumulation —
/// compute bound, almost no memory traffic.
pub fn ep_like(scale: Scale) -> Program {
    let u = scale.units();
    let samples = 5_000 * u;
    let mut a = Asm::named("ep_like");
    let (fx, fy, fs, fone) = (Reg::fp(0), Reg::fp(1), Reg::fp(2), Reg::fp(3));
    a.li(S0, 0x2545F4914F6CDD1Du64 as i64); // rng state
    a.li(S1, 0);
    a.li(S2, samples as i64);
    a.li(T5, 0);
    a.cvtif(fs, T5);
    a.li(fone, 1.0f64.to_bits() as i64);
    a.label("sample");
    // xorshift64*
    a.srli(T0, S0, 12);
    a.xor(S0, S0, T0);
    a.slli(T0, S0, 25);
    a.xor(S0, S0, T0);
    a.srli(T0, S0, 27);
    a.xor(S0, S0, T0);
    // two uniform doubles from the state
    a.srli(T1, S0, 12);
    a.cvtif(fx, T1);
    a.srli(T2, S0, 24);
    a.cvtif(fy, T2);
    a.fadd(fx, fx, fone);
    a.fdiv(fy, fy, fx); // ratio in (0, ~4k)
    a.fmul(fy, fy, fy);
    a.fadd(fs, fs, fy);
    a.addi(S1, S1, 1);
    a.blt(S1, S2, "sample");
    a.halt();
    a.finish().expect("ep_like assembles")
}
