//! CRONO-like graph kernels over CSR representations.
//!
//! The paper uses CRONO with google/amazon/twitter/mathoverflow/road
//! graphs; we substitute deterministic synthetic graphs with a power-law
//! flavour (hub-biased endpoints), which reproduces the irregular-gather
//! behaviour those inputs exercise.

use r3dla_isa::{Asm, DataBuilder, Program, Reg};
use r3dla_stats::Rng;

use crate::Scale;

const T0: Reg = Reg::int(10);
const T1: Reg = Reg::int(11);
const T2: Reg = Reg::int(12);
const T3: Reg = Reg::int(13);
const T4: Reg = Reg::int(14);
const T5: Reg = Reg::int(15);
const T6: Reg = Reg::int(16);
const T7: Reg = Reg::int(17);
const S0: Reg = Reg::int(18);
const S1: Reg = Reg::int(19);
const S2: Reg = Reg::int(20);
const S3: Reg = Reg::int(21);
const S4: Reg = Reg::int(22);
const S5: Reg = Reg::int(23);
const S6: Reg = Reg::int(24);

/// A synthetic directed graph in CSR form.
pub struct Csr {
    /// Row pointers, length `n + 1`.
    pub row_ptr: Vec<u64>,
    /// Column indices (sorted per row), length `m`.
    pub col: Vec<u64>,
}

/// Generates a hub-biased random graph: half the endpoints are drawn from
/// a small hub set (power-law flavour), half uniformly.
pub fn generate_graph(rng: &mut Rng, n: usize, avg_deg: usize) -> Csr {
    let m = n * avg_deg;
    let hubs = (n / 16).max(1);
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n];
    for _ in 0..m {
        let src = rng.range_usize(0, n);
        let dst = if rng.chance(0.5) {
            rng.range_u64(0, hubs as u64)
        } else {
            rng.range_u64(0, n as u64)
        };
        adj[src].push(dst);
    }
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col = Vec::with_capacity(m);
    row_ptr.push(0);
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
        col.extend_from_slice(list);
        row_ptr.push(col.len() as u64);
    }
    Csr { row_ptr, col }
}

/// Lays the CSR arrays into the data segment; returns
/// `(row_ptr_base, col_base, n, m)`.
fn lay_out_graph(data: &mut DataBuilder, g: &Csr) -> (u64, u64, usize, usize) {
    let rp = data.words(&g.row_ptr);
    let cl = data.words(&g.col);
    (rp, cl, g.row_ptr.len() - 1, g.col.len())
}

fn graph_for(scale: Scale, salt: u64, deg: usize) -> Csr {
    let mut rng = Rng::new(scale.seed() ^ salt);
    let n = (2048 * scale.units()) as usize;
    generate_graph(&mut rng, n, deg)
}

/// Breadth-first search from vertex 0 with an explicit work queue.
pub fn bfs(scale: Scale) -> Program {
    let g = graph_for(scale, 0x6266_7300, 8);
    let mut a = Asm::named("bfs");
    let (rp, cl, n, _m) = lay_out_graph(a.data(), &g);
    let visited = a.data().alloc_words(n);
    let queue = a.data().alloc_words(n + 1);
    a.data().put_word(visited, 1); // visited[0] = 1
    a.data().put_word(queue, 0); // queue[0] = vertex 0

    // head (S0), tail (S1) are *indices*; S2 = rp, S3 = cl, S4 = visited,
    // S5 = queue, S6 = reachable count.
    a.li(S0, 0);
    a.li(S1, 1);
    a.li(S2, rp as i64);
    a.li(S3, cl as i64);
    a.li(S4, visited as i64);
    a.li(S5, queue as i64);
    a.li(S6, 1);
    a.label("pop");
    a.bge(S0, S1, "done");
    a.slli(T0, S0, 3);
    a.add(T0, T0, S5);
    a.ld(T0, T0, 0); // u
    a.addi(S0, S0, 1);
    // edge range [rp[u], rp[u+1])
    a.slli(T1, T0, 3);
    a.add(T1, T1, S2);
    a.ld(T2, T1, 0); // begin
    a.ld(T3, T1, 8); // end
    a.label("edge");
    a.bge(T2, T3, "pop");
    a.slli(T4, T2, 3);
    a.add(T4, T4, S3);
    a.ld(T4, T4, 0); // v = col[e]  (irregular gather)
    a.slli(T5, T4, 3);
    a.add(T5, T5, S4);
    a.ld(T6, T5, 0); // visited[v]
    a.bne(T6, Reg::ZERO, "next_edge");
    a.li(T6, 1);
    a.st(T6, T5, 0); // visited[v] = 1
    a.slli(T7, S1, 3);
    a.add(T7, T7, S5);
    a.st(T4, T7, 0); // queue[tail] = v
    a.addi(S1, S1, 1);
    a.addi(S6, S6, 1);
    a.label("next_edge");
    a.addi(T2, T2, 1);
    a.j("edge");
    a.label("done");
    a.halt();
    a.finish().expect("bfs assembles")
}

/// Bellman-Ford-style SSSP: fixed relaxation rounds over the edge list.
pub fn sssp(scale: Scale) -> Program {
    let g = graph_for(scale, 0x7373_7370, 6);
    let rounds = 4;
    let mut a = Asm::named("sssp");
    let (rp, cl, n, _m) = lay_out_graph(a.data(), &g);
    let dist = a.data().alloc_words(n);
    let inf = 1i64 << 40;
    for v in 1..n {
        a.data().put_word(dist + (v as u64) * 8, inf as u64);
    }
    a.li(S0, 0); // round
    a.li(S1, rounds);
    a.label("round");
    a.li(S2, 0); // u
    a.li(S3, n as i64);
    a.label("vertex");
    a.slli(T0, S2, 3);
    a.li(T1, rp as i64);
    a.add(T0, T0, T1);
    a.ld(T1, T0, 0); // begin
    a.ld(T2, T0, 8); // end

    // du = dist[u]
    a.slli(T3, S2, 3);
    a.li(T4, dist as i64);
    a.add(T3, T3, T4);
    a.ld(T3, T3, 0);
    a.label("edge");
    a.bge(T1, T2, "next_vertex");
    a.slli(T4, T1, 3);
    a.li(T5, cl as i64);
    a.add(T4, T4, T5);
    a.ld(T4, T4, 0); // v

    // w(u,v) = (u ^ v) & 15 + 1
    a.xor(T5, S2, T4);
    a.andi(T5, T5, 15);
    a.addi(T5, T5, 1);
    a.add(T5, T3, T5); // cand = du + w
    a.slli(T6, T4, 3);
    a.li(T7, dist as i64);
    a.add(T6, T6, T7);
    a.ld(T7, T6, 0); // dist[v]
    a.bge(T5, T7, "no_relax");
    a.st(T5, T6, 0); // relax (scatter store)
    a.label("no_relax");
    a.addi(T1, T1, 1);
    a.j("edge");
    a.label("next_vertex");
    a.addi(S2, S2, 1);
    a.blt(S2, S3, "vertex");
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "round");
    a.halt();
    a.finish().expect("sssp assembles")
}

/// PageRank-style iteration: gather neighbour ranks, FP combine, store.
pub fn pagerank(scale: Scale) -> Program {
    let g = graph_for(scale, 0x7072_0000, 6);
    let iters = 3;
    let mut a = Asm::named("pagerank");
    let (rp, cl, n, _m) = lay_out_graph(a.data(), &g);
    let rank = a.data().alloc_words(n);
    let next = a.data().alloc_words(n);
    let one = 1.0f64.to_bits();
    for v in 0..n {
        a.data().put_word(rank + (v as u64) * 8, one);
    }
    let f0 = Reg::fp(0);
    let f1 = Reg::fp(1);
    let f2 = Reg::fp(2);
    let f3 = Reg::fp(3);
    a.li(S0, 0); // iter
    a.li(S1, iters);
    a.label("iter");
    a.li(S2, 0); // u
    a.li(S3, n as i64);
    a.label("vertex");
    a.slli(T0, S2, 3);
    a.li(T1, rp as i64);
    a.add(T0, T0, T1);
    a.ld(T1, T0, 0); // begin
    a.ld(T2, T0, 8); // end

    // sum = 0.0
    a.li(T3, 0);
    a.cvtif(f0, T3);
    a.label("edge");
    a.bge(T1, T2, "store_rank");
    a.slli(T4, T1, 3);
    a.li(T5, cl as i64);
    a.add(T4, T4, T5);
    a.ld(T4, T4, 0); // v
    a.slli(T4, T4, 3);
    a.li(T5, rank as i64);
    a.add(T4, T4, T5);
    a.ld(f1, T4, 0); // rank[v] (fp gather)
    a.fadd(f0, f0, f1);
    a.addi(T1, T1, 1);
    a.j("edge");
    a.label("store_rank");
    // next[u] = 0.15 + 0.85 * sum / (deg+1)
    a.ld(T5, T0, 0); // begin again
    a.sub(T4, T2, T5); // deg
    a.addi(T4, T4, 1);
    a.cvtif(f1, T4);
    a.fdiv(f0, f0, f1);
    a.li(f2, 0.85f64.to_bits() as i64);
    a.fmul(f0, f0, f2);
    a.li(f3, 0.15f64.to_bits() as i64);
    a.fadd(f0, f0, f3);
    a.slli(T6, S2, 3);
    a.li(T7, next as i64);
    a.add(T6, T6, T7);
    a.st(f0, T6, 0);
    a.addi(S2, S2, 1);
    a.blt(S2, S3, "vertex");
    // swap rank/next by copying back (keeps layout simple).
    a.li(T0, 0);
    a.li(T1, n as i64);
    a.label("copy");
    a.slli(T2, T0, 3);
    a.li(T3, next as i64);
    a.add(T3, T3, T2);
    a.ld(T4, T3, 0);
    a.li(T3, rank as i64);
    a.add(T3, T3, T2);
    a.st(T4, T3, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, T1, "copy");
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "iter");
    a.halt();
    a.finish().expect("pagerank assembles")
}

/// Connected components by label propagation (fixed rounds).
pub fn connected_components(scale: Scale) -> Program {
    let g = graph_for(scale, 0x6363_0000, 6);
    let rounds = 4;
    let mut a = Asm::named("cc");
    let (rp, cl, n, _m) = lay_out_graph(a.data(), &g);
    let label_arr = a.data().alloc_words(n);
    for v in 0..n {
        a.data().put_word(label_arr + (v as u64) * 8, v as u64);
    }
    a.li(S0, 0);
    a.li(S1, rounds);
    a.label("round");
    a.li(S2, 0);
    a.li(S3, n as i64);
    a.label("vertex");
    a.slli(T0, S2, 3);
    a.li(T1, rp as i64);
    a.add(T0, T0, T1);
    a.ld(T1, T0, 0);
    a.ld(T2, T0, 8);
    a.slli(T3, S2, 3);
    a.li(T4, label_arr as i64);
    a.add(T3, T3, T4);
    a.ld(T4, T3, 0); // label[u]
    a.label("edge");
    a.bge(T1, T2, "next_vertex");
    a.slli(T5, T1, 3);
    a.li(T6, cl as i64);
    a.add(T5, T5, T6);
    a.ld(T5, T5, 0); // v
    a.slli(T5, T5, 3);
    a.li(T6, label_arr as i64);
    a.add(T5, T5, T6);
    a.ld(T6, T5, 0); // label[v]
    a.bgeu(T6, T4, "no_adopt");
    a.mv(T4, T6); // adopt smaller label
    a.st(T4, T3, 0);
    a.label("no_adopt");
    a.bgeu(T4, T6, "fwd_done");
    a.st(T4, T5, 0); // propagate forward
    a.label("fwd_done");
    a.addi(T1, T1, 1);
    a.j("edge");
    a.label("next_vertex");
    a.addi(S2, S2, 1);
    a.blt(S2, S3, "vertex");
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "round");
    a.halt();
    a.finish().expect("cc assembles")
}

/// Triangle counting by sorted-adjacency merge-intersection — branch- and
/// pointer-intensive.
pub fn triangle_count(scale: Scale) -> Program {
    // Smaller graph: intersection is O(deg²)-ish.
    let mut rng = Rng::new(scale.seed() ^ 0x7463_0000);
    let n = (512 * scale.units()) as usize;
    let g = generate_graph(&mut rng, n, 6);
    let mut a = Asm::named("tc");
    let (rp, cl, n, _m) = lay_out_graph(a.data(), &g);
    // for u: for each edge (u,v): count |adj(u) ∩ adj(v)| via merge.
    a.li(S0, 0); // u
    a.li(S1, n as i64);
    a.li(S6, 0); // triangles
    a.label("vertex");
    a.slli(T0, S0, 3);
    a.li(T1, rp as i64);
    a.add(T0, T0, T1);
    a.ld(S2, T0, 0); // ubegin
    a.ld(S3, T0, 8); // uend
    a.mv(S4, S2); // e iterator
    a.label("edge");
    a.bge(S4, S3, "next_vertex");
    a.slli(T2, S4, 3);
    a.li(T3, cl as i64);
    a.add(T2, T2, T3);
    a.ld(T2, T2, 0); // v

    // merge-intersect adj(u) [S2..S3) with adj(v) [T3..T4)
    a.slli(T3, T2, 3);
    a.li(T4, rp as i64);
    a.add(T3, T3, T4);
    a.ld(T4, T3, 8); // vend
    a.ld(T3, T3, 0); // vbegin
    a.mv(T5, S2); // i over adj(u)
    a.label("merge");
    a.bge(T5, S3, "merge_done");
    a.bge(T3, T4, "merge_done");
    a.slli(T6, T5, 3);
    a.li(T7, cl as i64);
    a.add(T6, T6, T7);
    a.ld(T6, T6, 0); // a = col[i]
    a.slli(T7, T3, 3);
    a.li(T1, cl as i64);
    a.add(T7, T7, T1);
    a.ld(T7, T7, 0); // b = col[j]
    a.bltu(T6, T7, "adv_a");
    a.bltu(T7, T6, "adv_b");
    a.addi(S6, S6, 1); // common neighbour
    a.addi(T5, T5, 1);
    a.addi(T3, T3, 1);
    a.j("merge");
    a.label("adv_a");
    a.addi(T5, T5, 1);
    a.j("merge");
    a.label("adv_b");
    a.addi(T3, T3, 1);
    a.j("merge");
    a.label("merge_done");
    a.addi(S4, S4, 1);
    a.j("edge");
    a.label("next_vertex");
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "vertex");
    a.halt();
    a.finish().expect("tc assembles")
}
