//! STARBENCH-like embedded kernels: clustering, hashing, colour-space
//! conversion and image rotation.

use r3dla_isa::{Asm, Program, Reg};
use r3dla_stats::Rng;

use crate::Scale;

const T0: Reg = Reg::int(10);
const T1: Reg = Reg::int(11);
const T2: Reg = Reg::int(12);
const T3: Reg = Reg::int(13);
const T4: Reg = Reg::int(14);
const T5: Reg = Reg::int(15);
const S0: Reg = Reg::int(18);
const S1: Reg = Reg::int(19);
const S2: Reg = Reg::int(20);
const S3: Reg = Reg::int(21);
const S4: Reg = Reg::int(22);

/// `kmeans`-like: nearest-centroid assignment over 2-D points — FP
/// distance math with a branchy arg-min.
pub fn kmeans_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x6B6D_0000);
    let u = scale.units();
    let points = (3_000 * u) as usize;
    let k = 8usize;
    let mut a = Asm::named("kmeans_like");
    let px = a.data().alloc_words(points * 2); // interleaved x, y
    for i in 0..points * 2 {
        a.data()
            .put_word(px + (i as u64) * 8, (rng.f64() * 100.0).to_bits());
    }
    let cx = a.data().alloc_words(k * 2);
    for i in 0..k * 2 {
        a.data()
            .put_word(cx + (i as u64) * 8, (rng.f64() * 100.0).to_bits());
    }
    let assign = a.data().alloc_words(points);
    let (fx, fy, fcx, fcy, fd, fbest) = (
        Reg::fp(0),
        Reg::fp(1),
        Reg::fp(2),
        Reg::fp(3),
        Reg::fp(4),
        Reg::fp(5),
    );
    a.li(S0, 0); // point index
    a.li(S1, points as i64);
    a.label("point");
    a.slli(T0, S0, 4); // ×16 (two words)
    a.li(T1, px as i64);
    a.add(T0, T0, T1);
    a.ld(fx, T0, 0);
    a.ld(fy, T0, 8);
    a.li(fbest, f64::MAX.to_bits() as i64);
    a.li(S2, 0); // best k
    a.li(T2, 0); // k index
    a.li(T3, k as i64);
    a.label("cent");
    a.slli(T4, T2, 4);
    a.li(T5, cx as i64);
    a.add(T4, T4, T5);
    a.ld(fcx, T4, 0);
    a.ld(fcy, T4, 8);
    a.fsub(fcx, fx, fcx);
    a.fmul(fcx, fcx, fcx);
    a.fsub(fcy, fy, fcy);
    a.fmul(fcy, fcy, fcy);
    a.fadd(fd, fcx, fcy);
    a.flt(T4, fd, fbest);
    a.beq(T4, Reg::ZERO, "not_better");
    a.mv(fbest, fd); // bitwise copy of the f64
    a.mv(S2, T2);
    a.label("not_better");
    a.addi(T2, T2, 1);
    a.blt(T2, T3, "cent");
    a.slli(T4, S0, 3);
    a.li(T5, assign as i64);
    a.add(T4, T4, T5);
    a.st(S2, T4, 0);
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "point");
    a.halt();
    a.finish().expect("kmeans_like assembles")
}

/// `md5`-like: a long serial chain of mixing rounds — low-ILP ALU work
/// with perfect branch behaviour.
pub fn md5_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x6D64_0000);
    let u = scale.units();
    let blocks = (1_500 * u) as usize;
    let mut a = Asm::named("md5_like");
    let msg = a.data().alloc_words(blocks);
    for i in 0..blocks {
        a.data().put_word(msg + (i as u64) * 8, rng.next_u64());
    }
    // state in S1..S4
    a.li(S1, 0x6745_2301);
    a.li(S2, 0xEFCD_AB89u32 as i64);
    a.li(S3, 0x98BA_DCFEu32 as i64);
    a.li(S4, 0x1032_5476);
    a.li(S0, msg as i64);
    a.li(T5, (msg + (blocks as u64) * 8) as i64);
    a.label("block");
    a.ld(T0, S0, 0);
    // Four dependent mixing rounds per block.
    for round in 0..4 {
        a.xor(T1, S2, S3);
        a.and_(T1, T1, S4);
        a.add(S1, S1, T1);
        a.add(S1, S1, T0);
        a.slli(T2, S1, 7 + round);
        a.srli(T3, S1, 57 - round);
        a.or_(S1, T2, T3); // rotate
        a.add(S1, S1, S2);
        // rotate the state registers
        a.mv(T4, S4);
        a.mv(S4, S3);
        a.mv(S3, S2);
        a.mv(S2, S1);
        a.mv(S1, T4);
    }
    a.addi(S0, S0, 8);
    a.bltu(S0, T5, "block");
    a.halt();
    a.finish().expect("md5_like assembles")
}

/// `rgbyuv`-like: streaming colour conversion — unit-stride FP loads,
/// multiply-accumulate, stores (the classic SIMD-friendly stream).
pub fn rgbyuv_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x7267_0000);
    let u = scale.units();
    let pixels = (8_000 * u) as usize;
    let mut a = Asm::named("rgbyuv_like");
    let rgb = a.data().alloc_words(pixels * 3);
    for i in 0..pixels * 3 {
        a.data()
            .put_word(rgb + (i as u64) * 8, (rng.f64() * 255.0).to_bits());
    }
    let yout = a.data().alloc_words(pixels);
    let (fr, fg, fb, fy, fc) = (Reg::fp(0), Reg::fp(1), Reg::fp(2), Reg::fp(3), Reg::fp(4));
    a.li(S0, 0);
    a.li(S1, pixels as i64);
    a.label("pix");
    a.slli(T0, S0, 3);
    a.li(T1, 3);
    a.mul(T2, T0, T1); // ×3 words
    a.li(T1, rgb as i64);
    a.add(T2, T2, T1);
    a.ld(fr, T2, 0);
    a.ld(fg, T2, 8);
    a.ld(fb, T2, 16);
    a.li(fc, 0.299f64.to_bits() as i64);
    a.fmul(fy, fr, fc);
    a.li(fc, 0.587f64.to_bits() as i64);
    a.fmul(fg, fg, fc);
    a.fadd(fy, fy, fg);
    a.li(fc, 0.114f64.to_bits() as i64);
    a.fmul(fb, fb, fc);
    a.fadd(fy, fy, fb);
    a.li(T1, yout as i64);
    a.add(T1, T1, T0);
    a.st(fy, T1, 0);
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "pix");
    a.halt();
    a.finish().expect("rgbyuv_like assembles")
}

/// `rotate`-like: matrix transpose — column-strided reads against
/// row-major storage (cache-set-conflict heavy).
pub fn rotate_like(scale: Scale) -> Program {
    let mut rng = Rng::new(scale.seed() ^ 0x726F_0000);
    let dim = match scale {
        Scale::Tiny => 64usize,
        Scale::Train => 160,
        Scale::Ref => 224,
    };
    let mut a = Asm::named("rotate_like");
    let src = a.data().alloc_words(dim * dim);
    for _ in 0..(dim * dim / 7) {
        let idx = rng.range_u64(0, (dim * dim) as u64);
        a.data().put_word(src + idx * 8, rng.next_u64());
    }
    let dst = a.data().alloc_words(dim * dim);
    a.li(S0, 0); // i (row of src)
    a.li(S1, dim as i64);
    a.label("row");
    a.li(S2, 0); // j
    a.label("col");
    // dst[j][dim-1-i] = src[i][j]
    a.mul(T0, S0, S1);
    a.add(T0, T0, S2);
    a.slli(T0, T0, 3);
    a.li(T1, src as i64);
    a.add(T0, T0, T1);
    a.ld(T2, T0, 0);
    a.mul(T3, S2, S1);
    a.addi(T4, S1, -1);
    a.sub(T4, T4, S0);
    a.add(T3, T3, T4);
    a.slli(T3, T3, 3);
    a.li(T1, dst as i64);
    a.add(T3, T3, T1);
    a.st(T2, T3, 0);
    a.addi(S2, S2, 1);
    a.blt(S2, S1, "col");
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "row");
    a.halt();
    a.finish().expect("rotate_like assembles")
}
