//! The fetch-buffer occupancy model of paper Appendix B: a Markov chain
//! over queue lengths driven by empirical instruction supply (I-cache or
//! trace cache) and demand (decode) distributions, yielding the
//! steady-state queue-length distribution and the expected fetch bubbles
//! per cycle (Fig 5, Fig 14).
//!
//! # Examples
//!
//! ```
//! use r3dla_analytic::FetchBufferModel;
//!
//! // Supply: 0 or 8 instructions per cycle; demand: always 4.
//! let supply = vec![0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5];
//! let demand = vec![0.0, 0.0, 0.0, 0.0, 1.0];
//! let model = FetchBufferModel::new(supply, demand, 16).unwrap();
//! let q = model.steady_state();
//! let sum: f64 = q.iter().sum();
//! assert!((sum - 1.0).abs() < 1e-9);
//! let bubbles = model.expected_bubbles(&q);
//! assert!(bubbles >= 0.0);
//! ```

/// Errors from model construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A probability vector was empty or did not sum to ~1.
    BadDistribution,
    /// The queue capacity was zero.
    ZeroCapacity,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::BadDistribution => write!(f, "distribution must be nonempty and sum to 1"),
            ModelError::ZeroCapacity => write!(f, "queue capacity must be positive"),
        }
    }
}

impl std::error::Error for ModelError {}

fn is_distribution(p: &[f64]) -> bool {
    !p.is_empty()
        && p.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x))
        && (p.iter().sum::<f64>() - 1.0).abs() < 1e-6
}

/// Convolves the supply distribution with the (negated) demand
/// distribution, yielding the probability vector `C` of per-cycle queue
/// length change (paper Appendix B-A).
///
/// The result is indexed from `-(demand_max)` to `+(supply_max)`; the
/// returned pair is `(offset, probabilities)` where `probabilities[k]`
/// is the probability of a change of `k - offset`.
pub fn change_distribution(supply: &[f64], demand: &[f64]) -> (usize, Vec<f64>) {
    let max_up = supply.len() - 1;
    let max_down = demand.len() - 1;
    let mut c = vec![0.0; max_up + max_down + 1];
    for (s, &ps) in supply.iter().enumerate() {
        for (d, &pd) in demand.iter().enumerate() {
            c[max_down + s - d] += ps * pd;
        }
    }
    (max_down, c)
}

/// The Markov-chain fetch-buffer model.
#[derive(Debug, Clone)]
pub struct FetchBufferModel {
    /// P[i][j]: probability of moving from queue length j to length i.
    transition: Vec<Vec<f64>>,
    demand: Vec<f64>,
    capacity: usize,
}

impl FetchBufferModel {
    /// Builds the model from empirical supply and demand distributions
    /// (probability of supplying/consuming `k` instructions per cycle)
    /// and the queue capacity `N`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the inputs are not distributions or
    /// the capacity is zero.
    pub fn new(supply: Vec<f64>, demand: Vec<f64>, capacity: usize) -> Result<Self, ModelError> {
        if capacity == 0 {
            return Err(ModelError::ZeroCapacity);
        }
        if !is_distribution(&supply) || !is_distribution(&demand) {
            return Err(ModelError::BadDistribution);
        }
        let n = capacity;
        let (offset, c) = change_distribution(&supply, &demand);
        // Transition matrix: columns are current length j, rows next
        // length i; boundary rows absorb the out-of-range mass
        // (paper Appendix B-B).
        let mut p = vec![vec![0.0; n + 1]; n + 1];
        #[allow(clippy::needless_range_loop)] // `j` also feeds the clamped row index
        for j in 0..=n {
            for (k, &pc) in c.iter().enumerate() {
                let delta = k as i64 - offset as i64;
                let i = j as i64 + delta;
                let i = i.clamp(0, n as i64) as usize;
                p[i][j] += pc;
            }
        }
        Ok(Self {
            transition: p,
            demand,
            capacity,
        })
    }

    /// Queue capacity `N`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Computes the steady-state queue-length distribution `Q_ss` by
    /// power iteration (the eigenvector of eigenvalue 1; paper Appendix
    /// B-C).
    pub fn steady_state(&self) -> Vec<f64> {
        let n = self.capacity;
        let mut q = vec![1.0 / (n + 1) as f64; n + 1];
        let mut next = vec![0.0; n + 1];
        for _ in 0..10_000 {
            for x in next.iter_mut() {
                *x = 0.0;
            }
            for (nx, row) in next.iter_mut().zip(&self.transition) {
                let mut acc = 0.0;
                for (rj, qj) in row.iter().zip(&q) {
                    acc += rj * qj;
                }
                *nx = acc;
            }
            let mut delta = 0.0;
            for i in 0..=n {
                delta += (next[i] - q[i]).abs();
            }
            std::mem::swap(&mut q, &mut next);
            if delta < 1e-12 {
                break;
            }
        }
        // Normalize against accumulated rounding.
        let sum: f64 = q.iter().sum();
        if sum > 0.0 {
            q.iter_mut().for_each(|x| *x /= sum);
        }
        q
    }

    /// The expectation of fetch bubbles per cycle under queue
    /// distribution `q`:
    /// `E(FB) = Σ_i Q_i × Σ_{j>i} D_j × (j − i)` (paper Appendix B).
    pub fn expected_bubbles(&self, q: &[f64]) -> f64 {
        let mut e = 0.0;
        for (i, &qi) in q.iter().enumerate() {
            for (j, &dj) in self.demand.iter().enumerate() {
                if j > i {
                    e += qi * dj * (j - i) as f64;
                }
            }
        }
        e
    }
}

/// Sweeps queue capacities and returns `(capacity, E[FB])` pairs — the
/// data series of paper Fig 5-b.
pub fn bubble_sweep(
    supply: &[f64],
    demand: &[f64],
    capacities: &[usize],
) -> Result<Vec<(usize, f64)>, ModelError> {
    capacities
        .iter()
        .map(|&cap| {
            let m = FetchBufferModel::new(supply.to_vec(), demand.to_vec(), cap)?;
            let q = m.steady_state();
            Ok((cap, m.expected_bubbles(&q)))
        })
        .collect()
}

/// Derives a trace-cache-like supply distribution from an I-cache supply
/// distribution: a trace cache can deliver past taken branches, shifting
/// supply mass upward (paper Fig 5 compares the two).
pub fn trace_cache_supply(icache_supply: &[f64], boost: f64) -> Vec<f64> {
    // Move a `boost` fraction of each non-maximal supply bin one bin up.
    let n = icache_supply.len();
    let mut out = icache_supply.to_vec();
    out.resize(n + n / 2 + 1, 0.0);
    for k in (0..out.len() - 1).rev() {
        let moved = out[k] * boost;
        out[k] -= moved;
        out[k + 1] += moved;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_model(cap: usize) -> FetchBufferModel {
        // Supply 0 or 6 with equal probability; demand always 3.
        let mut supply = vec![0.0; 7];
        supply[0] = 0.5;
        supply[6] = 0.5;
        let mut demand = vec![0.0; 4];
        demand[3] = 1.0;
        FetchBufferModel::new(supply, demand, cap).unwrap()
    }

    #[test]
    fn steady_state_is_a_distribution() {
        let m = simple_model(8);
        let q = m.steady_state();
        assert_eq!(q.len(), 9);
        let sum: f64 = q.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(q.iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn steady_state_is_fixed_point() {
        let m = simple_model(8);
        let q = m.steady_state();
        // Apply the transition once more; must not move.
        let mut next = vec![0.0; q.len()];
        for (i, nx) in next.iter_mut().enumerate() {
            for (j, &qj) in q.iter().enumerate() {
                *nx += m.transition[i][j] * qj;
            }
        }
        for (a, b) in q.iter().zip(&next) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn bigger_buffers_reduce_bubbles() {
        // The headline claim of Fig 5-b.
        let sweep = bubble_sweep(
            &{
                let mut s = vec![0.0; 17];
                s[0] = 0.4;
                s[16] = 0.6;
                s
            },
            &{
                let mut d = vec![0.0; 5];
                d[4] = 1.0;
                d
            },
            &[4, 8, 16, 32],
        )
        .unwrap();
        for w in sweep.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "E[FB] must be non-increasing in capacity: {sweep:?}"
            );
        }
    }

    #[test]
    fn zero_capacity_rejected() {
        assert_eq!(
            FetchBufferModel::new(vec![1.0], vec![1.0], 0).unwrap_err(),
            ModelError::ZeroCapacity
        );
    }

    #[test]
    fn bad_distribution_rejected() {
        assert_eq!(
            FetchBufferModel::new(vec![0.5, 0.2], vec![1.0], 4).unwrap_err(),
            ModelError::BadDistribution
        );
    }

    #[test]
    fn change_distribution_convolves() {
        // Supply always 2, demand always 1 → change always +1.
        let (off, c) = change_distribution(&[0.0, 0.0, 1.0], &[0.0, 1.0]);
        assert_eq!(off, 1);
        let expect_idx = off + 2 - 1;
        assert!((c[expect_idx] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn saturated_supply_keeps_queue_full() {
        // Supply 8 every cycle, demand 1: queue pins at capacity.
        let mut supply = vec![0.0; 9];
        supply[8] = 1.0;
        let mut demand = vec![0.0; 2];
        demand[1] = 1.0;
        let m = FetchBufferModel::new(supply, demand, 8).unwrap();
        let q = m.steady_state();
        assert!(q[8] > 0.99, "q={q:?}");
        assert!(m.expected_bubbles(&q) < 1e-9);
    }

    #[test]
    fn starved_supply_keeps_queue_empty() {
        let mut supply = vec![0.0; 2];
        supply[0] = 1.0;
        let mut demand = vec![0.0; 5];
        demand[4] = 1.0;
        let m = FetchBufferModel::new(supply, demand, 8).unwrap();
        let q = m.steady_state();
        assert!(q[0] > 0.99);
        assert!((m.expected_bubbles(&q) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn trace_cache_shifts_supply_up() {
        let ic = vec![0.3, 0.3, 0.4];
        let tc = trace_cache_supply(&ic, 0.5);
        let mean_ic: f64 = ic.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        let mean_tc: f64 = tc.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        assert!(mean_tc > mean_ic);
        assert!((tc.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
