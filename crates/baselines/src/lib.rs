//! Comparison systems for paper Fig 9-b: B-Fetch (branch-prediction-
//! directed prefetching), SlipStream (reduced A-stream + R-stream), and
//! the Continuous Runahead Engine (CRE).
//!
//! Each is a *behaviourally faithful simplification*: it exercises the
//! mechanism class that defines the original design on the same
//! substrate, so the Fig 9-b ordering (B-Fetch < SlipStream < CRE < DLA <
//! R3-DLA) is reproduced structurally rather than numerically.
//!
//! # Event-driven fast path
//!
//! [`slipstream_system`] returns a `DlaSystem` and the plain single-core
//! baselines run on `SingleCoreSim`, so both inherit event-driven cycle
//! skipping from `r3dla-core` automatically. [`BFetchSim`] and
//! [`CreSim`] deliberately do **not** skip: their side engines (the
//! B-Fetch walker, the runahead engine) do real work every cycle by
//! design, so they are never quiescent and fast-forwarding them would
//! change what the models compute, not just how fast.

mod bfetch;
mod cre;
mod slipstream;

pub use bfetch::BFetchSim;
pub use cre::CreSim;
pub use slipstream::slipstream_system;

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_workloads::{by_name, Scale};

    #[test]
    fn all_baselines_run_a_workload() {
        let wl = by_name("libq_like").unwrap().build(Scale::Tiny);
        let mut bf = BFetchSim::build(&wl);
        let (ipc, _, _) = bf.measure(3_000, 10_000);
        assert!(ipc > 0.0);
        let mut cre = CreSim::build(&wl);
        let (ipc, _, _) = cre.measure(3_000, 10_000);
        assert!(ipc > 0.0);
        let mut ss = slipstream_system(&wl);
        let rep = ss.measure(3_000, 10_000);
        assert!(rep.mt_ipc > 0.0);
    }
}
