//! The Continuous Runahead Engine (Hashemi, Mutlu & Patt, MICRO 2016) —
//! the strongest related design in paper Fig 9-b.
//!
//! CRE extracts the backward dependence chains of delinquent loads at
//! runtime, then executes those chains *continuously* on a tiny engine at
//! the memory controller, prefetching for the core. Following the paper's
//! note, our CRE prefetches into L1.
//!
//! Simplifications: chains are limited to 32 µops (as in the original),
//! extracted with our dataflow substrate from the committed-miss stream,
//! and executed functionally against committed memory at a fixed engine
//! rate. The chain re-seeds its registers from architectural state every
//! re-dispatch, then free-runs — which reproduces CRE's defining
//! behaviour (autonomous loop-carried chain execution).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use r3dla_core::{Dataflow, SingleCoreSim};
use r3dla_cpu::{CommitRecord, CommitSink, CoreConfig};
use r3dla_isa::{eval_alu, mem_addr, DataMem, Inst, Program, Reg, VecMem};
use r3dla_mem::MemConfig;
use r3dla_workloads::BuiltWorkload;

/// Maximum chain length in instructions (CRE's 32-µop limit).
const CHAIN_LIMIT: usize = 32;
/// Engine execution rate: instructions per core cycle.
const ENGINE_RATE: usize = 2;
/// How many chain iterations the engine may run ahead per dispatch.
const MAX_ITERATIONS: u32 = 48;

#[derive(Debug, Default)]
struct MissTracker {
    misses: HashMap<u64, u64>, // load pc -> L1-miss count
}

struct TrackerSink {
    tracker: Rc<RefCell<MissTracker>>,
}

impl CommitSink for TrackerSink {
    fn on_commit(&mut self, rec: &CommitRecord) {
        if rec.inst.is_load() && rec.l2_miss {
            *self.tracker.borrow_mut().misses.entry(rec.pc).or_insert(0) += 1;
        }
    }
}

/// A runnable dependence chain: the instruction subsequence (program
/// order) that produces the delinquent load's address, including its
/// loop-carried updates.
#[derive(Debug, Clone)]
struct Chain {
    insts: Vec<Inst>,
    target_pos: usize, // position of the delinquent load within `insts`
}

fn extract_chain(prog: &Program, df: &Dataflow, load_idx: usize) -> Option<Chain> {
    // Closure over register producers, bounded to CHAIN_LIMIT.
    let mut included = vec![load_idx];
    let mut queue = vec![load_idx];
    while let Some(i) = queue.pop() {
        for &p in df.producers(i) {
            if !included.contains(&p) {
                included.push(p);
                if included.len() > CHAIN_LIMIT {
                    return None; // too complex for the engine
                }
                queue.push(p);
            }
        }
    }
    included.sort_unstable();
    let insts: Vec<Inst> = included.iter().map(|&i| prog.insts()[i]).collect();
    let target_pos = included.iter().position(|&i| i == load_idx)?;
    // Drop chains containing control flow or stores: the engine replays
    // pure address-generation dataflow.
    if insts
        .iter()
        .enumerate()
        .any(|(k, i)| (i.is_branch() || i.is_store()) && k != target_pos)
    {
        return None;
    }
    Some(Chain { insts, target_pos })
}

struct Engine {
    chain: Option<Chain>,
    regs: [u64; Reg::COUNT],
    pos: usize,
    iterations: u32,
    mem: Rc<RefCell<VecMem>>,
}

impl Engine {
    fn dispatch(&mut self, chain: Chain, regs: [u64; Reg::COUNT]) {
        self.chain = Some(chain);
        self.regs = regs;
        self.pos = 0;
        self.iterations = 0;
    }

    /// Executes up to `budget` chain instructions; pushes prefetch
    /// addresses into `out`.
    fn run(&mut self, budget: usize, out: &mut Vec<u64>) {
        let Some(chain) = &self.chain else { return };
        for _ in 0..budget {
            if self.iterations >= MAX_ITERATIONS {
                return;
            }
            let inst = &chain.insts[self.pos];
            if self.pos == chain.target_pos {
                // The delinquent load: emit the prefetch; feed the engine
                // the (committed) value so dependent iterations advance.
                let addr = mem_addr(inst, self.regs[inst.rs1.index()]);
                out.push(addr);
                if let Some(rd) = inst.def() {
                    self.regs[rd.index()] = self.mem.borrow_mut().load(addr);
                }
            } else if inst.is_load() {
                let addr = mem_addr(inst, self.regs[inst.rs1.index()]);
                if let Some(rd) = inst.def() {
                    self.regs[rd.index()] = self.mem.borrow_mut().load(addr);
                }
            } else if let Some(rd) = inst.def() {
                let a = self.regs[inst.rs1.index()];
                let b = self.regs[inst.rs2.index()];
                self.regs[rd.index()] = eval_alu(inst.op, a, b, inst.imm);
            }
            self.pos += 1;
            if self.pos == chain.insts.len() {
                self.pos = 0;
                self.iterations += 1;
            }
        }
    }
}

/// A single core with the CRE attached at the memory side.
pub struct CreSim {
    sim: SingleCoreSim,
    program: Rc<Program>,
    dataflow: Dataflow,
    tracker: Rc<RefCell<MissTracker>>,
    engine: Engine,
    arch_mem: Rc<RefCell<VecMem>>,
    redispatch_interval: u64,
    last_dispatch: u64,
    prefetch_buf: Vec<u64>,
    fast_forward: bool,
    /// Prefetches the engine has issued.
    pub prefetches: u64,
}

impl std::fmt::Debug for CreSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CreSim")
            .field("prefetches", &self.prefetches)
            .finish_non_exhaustive()
    }
}

impl CreSim {
    /// Builds the system for a workload.
    pub fn build(built: &BuiltWorkload) -> Self {
        let program = Rc::new(built.program.clone());
        let dataflow = Dataflow::analyze(&program);
        let mut sim = SingleCoreSim::build(
            built,
            CoreConfig::paper(),
            MemConfig::paper(),
            None,
            Some("bop"),
        );
        let tracker = Rc::new(RefCell::new(MissTracker::default()));
        sim.core_mut().set_commit_sink(
            0,
            Rc::new(RefCell::new(TrackerSink {
                tracker: tracker.clone(),
            })),
        );
        // The engine reads committed memory: mirror the image.
        let arch_mem = Rc::new(RefCell::new(VecMem::new()));
        arch_mem.borrow_mut().load_image(program.image());
        let engine = Engine {
            chain: None,
            regs: [0; Reg::COUNT],
            pos: 0,
            iterations: 0,
            mem: Rc::clone(&arch_mem),
        };
        Self {
            sim,
            program,
            dataflow,
            tracker,
            engine,
            arch_mem,
            redispatch_interval: 512,
            last_dispatch: 0,
            prefetch_buf: Vec::new(),
            fast_forward: true,
            prefetches: 0,
        }
    }

    /// Enables or disables the event-driven fast path in
    /// [`run_until`](Self::run_until) (on by default; behavior-preserving
    /// either way — the off position exists for equivalence tests).
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    fn redispatch(&mut self) {
        // Pick the hottest delinquent load and extract its chain.
        let tracker = self.tracker.borrow();
        let Some((&pc, _)) = tracker.misses.iter().max_by_key(|(_, &c)| c) else {
            return;
        };
        drop(tracker);
        let Some(idx) = self.program.pc_to_index(pc) else {
            return;
        };
        if let Some(chain) = extract_chain(&self.program, &self.dataflow, idx) {
            let regs = self.sim.core().arch_regs(0);
            self.engine.dispatch(chain, regs);
        }
    }

    /// Steps core + engine one cycle.
    pub fn step(&mut self) {
        let cycle = self.sim.core().cycle();
        if cycle - self.last_dispatch >= self.redispatch_interval {
            self.redispatch();
            self.last_dispatch = cycle;
            // Keep the engine's memory view loosely synchronized: committed
            // stores are not mirrored (the engine tolerates stale data,
            // like real CRE running from stale physical registers).
        }
        self.prefetch_buf.clear();
        self.engine.run(ENGINE_RATE, &mut self.prefetch_buf);
        for i in 0..self.prefetch_buf.len() {
            let addr = self.prefetch_buf[i];
            self.sim.core_mut().mem_mut().prefetch_into_l1(addr, cycle);
            self.prefetches += 1;
        }
        self.sim.core_mut().step();
    }

    /// Event-source surface for the run loop: `None` when the next cycle
    /// may act (a redispatch is due, the engine still runs its chain, or
    /// the core itself), else the earliest cycle anything can happen.
    /// The redispatch boundary is a known future event even while the
    /// core sleeps, so the bound includes it — the same lower-bound
    /// contract as `Core::next_event_at`.
    pub fn next_event_at(&self) -> Option<u64> {
        let cycle = self.sim.core().cycle();
        // A redispatch fires on the very next step (it mutates
        // `last_dispatch` even when no chain qualifies).
        if cycle - self.last_dispatch >= self.redispatch_interval {
            return None;
        }
        // The engine executes chain instructions every cycle until it
        // exhausts its iteration budget.
        let exhausted = match &self.engine.chain {
            None => true,
            Some(_) => self.engine.iterations >= MAX_ITERATIONS,
        };
        if !exhausted {
            return None;
        }
        let wake = self.sim.core().next_event_at()?;
        Some(wake.min(self.last_dispatch + self.redispatch_interval))
    }

    /// Runs until `target` instructions commit (bounded by `max_cycles`).
    /// Stretches where the core is provably stalled and the engine is
    /// exhausted are skipped to the next wakeup (or the next redispatch
    /// boundary, whichever is earlier), byte-identically.
    pub fn run_until(&mut self, target: u64, max_cycles: u64) -> u64 {
        let c0 = self.sim.core().committed(0);
        let y0 = self.sim.core().cycle();
        let cap = y0.saturating_add(max_cycles);
        let mut last_probe = u64::MAX;
        let mut guard_last = y0;
        while self.sim.core().committed(0) - c0 < target
            && !self.sim.core().halted()
            && self.sim.core().cycle() - y0 < max_cycles
        {
            if r3dla_core::guard::tick_since(self.sim.core().cycle(), &mut guard_last) {
                break;
            }
            if self.fast_forward {
                let probe = self.sim.core().activity_probe();
                if probe == last_probe {
                    if let Some(wake) = self.next_event_at() {
                        self.sim.core_mut().skip_to(wake.min(cap));
                        continue;
                    }
                }
                last_probe = probe;
            }
            self.step();
        }
        self.sim.core().cycle() - y0
    }

    /// Warm up, then measure a window; returns `(IPC, insts, cycles)`.
    pub fn measure(&mut self, warmup: u64, window: u64) -> (f64, u64, u64) {
        self.run_until(warmup, warmup * 60 + 500_000);
        let c0 = self.sim.core().committed(0);
        let y0 = self.sim.core().cycle();
        self.run_until(window, window * 60 + 500_000);
        let insts = self.sim.core().committed(0) - c0;
        let cycles = self.sim.core().cycle() - y0;
        (
            if cycles == 0 {
                0.0
            } else {
                insts as f64 / cycles as f64
            },
            insts,
            cycles,
        )
    }

    /// The underlying single-core simulation.
    pub fn sim(&self) -> &SingleCoreSim {
        &self.sim
    }

    /// Mirrors the architectural memory (tests).
    pub fn arch_mem(&self) -> Rc<RefCell<VecMem>> {
        Rc::clone(&self.arch_mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_workloads::{by_name, Scale};

    #[test]
    fn chains_extracted_for_pointer_chase() {
        let wl = by_name("mcf_like").unwrap().build(Scale::Tiny);
        let mut cre = CreSim::build(&wl);
        cre.run_until(30_000, 3_000_000);
        assert!(
            cre.engine.chain.is_some(),
            "a delinquent chain should have been dispatched"
        );
        assert!(cre.prefetches > 0, "the engine should issue prefetches");
    }

    #[test]
    fn fast_forward_is_equivalent() {
        // Skipping must be invisible: same workload, fast path on and
        // off, every observable statistic identical.
        let wl = by_name("mcf_like").unwrap().build(Scale::Tiny);
        let mut fast = CreSim::build(&wl);
        let mut slow = CreSim::build(&wl);
        slow.set_fast_forward(false);
        assert_eq!(fast.measure(2_000, 8_000), slow.measure(2_000, 8_000));
        let fp = |cre: &CreSim| {
            let core = cre.sim().core();
            format!(
                "{} {} {} {} {} {}",
                core.cycle(),
                core.committed(0),
                cre.prefetches,
                core.mem().l1d_stats().accesses.get(),
                core.mem().l1d_stats().misses.get(),
                core.mem().shared().borrow().dram_stats().traffic_lines(),
            )
        };
        assert_eq!(fp(&fast), fp(&slow), "skipping changed simulated state");
    }

    #[test]
    fn chain_limit_respected() {
        let wl = by_name("mcf_like").unwrap().build(Scale::Tiny);
        let cre = CreSim::build(&wl);
        for idx in 0..cre.program.len() {
            if let Some(c) = extract_chain(&cre.program, &cre.dataflow, idx) {
                assert!(c.insts.len() <= CHAIN_LIMIT);
            }
        }
    }
}
