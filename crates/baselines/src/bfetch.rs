//! B-Fetch (Kadjo et al., MICRO 2014): branch-prediction-directed
//! prefetching. A front-end walker runs ahead of fetch along the
//! *predicted* control flow, speculatively computing load addresses from
//! a register-file snapshot and prefetching them.
//!
//! Our simplification: the walker restarts from the committed
//! architectural state whenever it drifts, walks up to a bounded number
//! of basic blocks ahead using its own bimodal predictor + the static
//! binary, evaluates simple address-generation instructions (moves, adds,
//! shifts with immediate/known operands), and prefetches loads whose
//! addresses become computable.

use std::rc::Rc;

use r3dla_bpred::{Bimodal, DirectionPredictor, Tage};
use r3dla_core::SingleCoreSim;
use r3dla_cpu::CoreConfig;
use r3dla_isa::{eval_alu, BranchKind, Program, Reg, INST_BYTES};
use r3dla_mem::MemConfig;
use r3dla_workloads::BuiltWorkload;

/// How many instructions the walker advances per core cycle.
const WALK_RATE: usize = 6;
/// Walk window: how far beyond the restart point the walker may roam.
const WALK_LIMIT: usize = 256;

struct Walker {
    program: Rc<Program>,
    predictor: Bimodal,
    pc: u64,
    regs: [u64; Reg::COUNT],
    known: [bool; Reg::COUNT],
    walked: usize,
}

impl Walker {
    fn restart(&mut self, pc: u64, regs: [u64; Reg::COUNT]) {
        self.pc = pc;
        self.regs = regs;
        self.known = [true; Reg::COUNT];
        self.walked = 0;
    }

    /// Advances one instruction; returns a prefetch address if a load
    /// with a computable address was found.
    fn step(&mut self) -> Option<u64> {
        if self.walked >= WALK_LIMIT {
            return None;
        }
        let inst = self.program.fetch(self.pc)?;
        self.walked += 1;
        let mut next = self.pc + INST_BYTES;
        let mut out = None;
        match inst.branch_kind() {
            Some(BranchKind::Cond) => {
                // Train-free speculative walk: use the small predictor.
                if self.predictor.predict(self.pc) {
                    next = inst.imm as u64;
                }
            }
            Some(BranchKind::Jump) | Some(BranchKind::Call) => {
                next = inst.imm as u64;
            }
            Some(_) => {
                // Indirect control flow ends the walk.
                self.walked = WALK_LIMIT;
                return None;
            }
            None => {
                if inst.is_mem() {
                    let base = inst.rs1;
                    if self.known[base.index()] {
                        out = Some(self.regs[base.index()].wrapping_add(inst.imm as u64) & !7);
                    }
                    if inst.is_load() {
                        // The loaded value is unknown to the walker.
                        if let Some(rd) = inst.def() {
                            self.known[rd.index()] = false;
                        }
                    }
                } else if let Some(rd) = inst.def() {
                    // Evaluate simple value-generating instructions when
                    // operands are known; otherwise poison the result.
                    let srcs_known = inst.uses().iter().flatten().all(|r| self.known[r.index()]);
                    if srcs_known && !inst.is_branch() {
                        let a = self.regs[inst.rs1.index()];
                        let b = self.regs[inst.rs2.index()];
                        self.regs[rd.index()] = eval_alu(inst.op, a, b, inst.imm);
                        self.known[rd.index()] = true;
                    } else {
                        self.known[rd.index()] = false;
                    }
                }
            }
        }
        self.pc = next;
        out
    }

    /// Trains the walker's predictor from committed outcomes.
    fn train(&mut self, pc: u64, taken: bool) {
        let pred = self.predictor.predict(pc);
        self.predictor.update(pc, taken, pred != taken);
    }
}

/// A single core with the B-Fetch walker attached.
pub struct BFetchSim {
    sim: SingleCoreSim,
    walker: Walker,
    resync_interval: u64,
    last_resync: u64,
    /// MT committed-instruction count at the last walker restart
    /// (`u64::MAX` before the first): a resync only fires after commit
    /// progress, so a stalled core leaves the walker exhausted and pure.
    last_restart_commits: u64,
    fast_forward: bool,
}

impl std::fmt::Debug for BFetchSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BFetchSim").finish_non_exhaustive()
    }
}

impl BFetchSim {
    /// Builds the system for a workload with the paper's baseline core
    /// (BOP at L2 stays, as in Fig 9-b's common baseline).
    pub fn build(built: &BuiltWorkload) -> Self {
        let program = Rc::new(built.program.clone());
        let sim = SingleCoreSim::build(
            built,
            CoreConfig::paper(),
            MemConfig::paper(),
            None,
            Some("bop"),
        );
        // Predictor sized like B-Fetch's front-end tables.
        let _ = Tage::paper(); // (documented alternative; bimodal walks cheaper)
        let walker = Walker {
            program,
            predictor: Bimodal::new(4096),
            pc: 0,
            regs: [0; Reg::COUNT],
            known: [false; Reg::COUNT],
            walked: WALK_LIMIT,
        };
        Self {
            sim,
            walker,
            resync_interval: 64,
            last_resync: 0,
            last_restart_commits: u64::MAX,
            fast_forward: true,
        }
    }

    /// Enables or disables the event-driven fast path in
    /// [`run_until`](Self::run_until) (on by default; behavior-preserving
    /// either way — the off position exists for equivalence tests).
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Steps core + walker one cycle.
    pub fn step(&mut self) {
        let cycle = self.sim.core().cycle();
        let commits = self.sim.core().committed(0);
        // Periodically re-sync the walker with committed state (the
        // register snapshot B-Fetch reads at branch dispatch) — but only
        // once the core has committed since the last restart: re-walking
        // the identical predicted path from the identical snapshot would
        // issue the identical prefetches, and gating on progress leaves
        // a stalled core with an exhausted, side-effect-free walker,
        // which is what makes stall stretches provably quiescent.
        let due =
            cycle - self.last_resync >= self.resync_interval || self.walker.walked >= WALK_LIMIT;
        if due && commits != self.last_restart_commits {
            let pc = self.sim.core().arch_pc(0);
            let regs = self.sim.core().arch_regs(0);
            self.walker.restart(pc, regs);
            self.last_resync = cycle;
            self.last_restart_commits = commits;
        }
        for _ in 0..WALK_RATE {
            if let Some(addr) = self.walker.step() {
                self.sim.core_mut().mem_mut().prefetch_into_l1(addr, cycle);
            }
        }
        self.sim.core_mut().step();
    }

    /// Event-source surface for the run loop: `None` when the next cycle
    /// may act (walker mid-walk, restart pending, or the core itself),
    /// else the earliest cycle anything can happen — a lower bound with
    /// the same contract as `Core::next_event_at`, so a kernel can host
    /// this baseline like any other actor.
    pub fn next_event_at(&self) -> Option<u64> {
        // Walker mid-walk: it mutates its own state (and may prefetch)
        // every cycle until the window exhausts.
        if self.walker.walked < WALK_LIMIT {
            return None;
        }
        // Commit progress since the last restart arms a resync.
        if self.sim.core().committed(0) != self.last_restart_commits {
            return None;
        }
        self.sim.core().next_event_at()
    }

    /// Runs until `target` instructions commit (bounded by `max_cycles`).
    /// Stretches where the core is provably stalled and the walker is
    /// exhausted are skipped to the next wakeup, byte-identically.
    pub fn run_until(&mut self, target: u64, max_cycles: u64) -> u64 {
        let c0 = self.sim.core().committed(0);
        let y0 = self.sim.core().cycle();
        let cap = y0.saturating_add(max_cycles);
        let mut last_probe = u64::MAX;
        let mut guard_last = y0;
        while self.sim.core().committed(0) - c0 < target
            && !self.sim.core().halted()
            && self.sim.core().cycle() - y0 < max_cycles
        {
            if r3dla_core::guard::tick_since(self.sim.core().cycle(), &mut guard_last) {
                break;
            }
            if self.fast_forward {
                let probe = self.sim.core().activity_probe();
                if probe == last_probe {
                    if let Some(wake) = self.next_event_at() {
                        self.sim.core_mut().skip_to(wake.min(cap));
                        continue;
                    }
                }
                last_probe = probe;
            }
            self.step();
        }
        self.sim.core().cycle() - y0
    }

    /// Warm up, then measure a window; returns `(IPC, insts, cycles)`.
    pub fn measure(&mut self, warmup: u64, window: u64) -> (f64, u64, u64) {
        self.run_until(warmup, warmup * 60 + 500_000);
        let c0 = self.sim.core().committed(0);
        let y0 = self.sim.core().cycle();
        self.run_until(window, window * 60 + 500_000);
        let insts = self.sim.core().committed(0) - c0;
        let cycles = self.sim.core().cycle() - y0;
        (
            if cycles == 0 {
                0.0
            } else {
                insts as f64 / cycles as f64
            },
            insts,
            cycles,
        )
    }

    /// Trains the walker's direction predictor (driven by an external
    /// commit observer in tests; the periodic resync keeps it roughly
    /// aligned regardless).
    pub fn train_walker(&mut self, pc: u64, taken: bool) {
        self.walker.train(pc, taken);
    }

    /// The underlying single-core simulation.
    pub fn sim(&self) -> &SingleCoreSim {
        &self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_workloads::{by_name, Scale};

    #[test]
    fn walker_prefetches_streaming_loads() {
        // On a streaming workload the walker should find computable load
        // addresses and help (or at least not hurt).
        let wl = by_name("libq_like").unwrap().build(Scale::Tiny);
        let mut plain = SingleCoreSim::build(
            &wl,
            CoreConfig::paper(),
            MemConfig::paper(),
            None,
            Some("bop"),
        );
        let base_ipc = plain.measure(5_000, 20_000).mt_ipc;
        let mut bf = BFetchSim::build(&wl);
        let (bf_ipc, _, _) = bf.measure(5_000, 20_000);
        assert!(
            bf_ipc > base_ipc * 0.9,
            "B-Fetch should not cripple the core: {bf_ipc} vs {base_ipc}"
        );
    }

    #[test]
    fn fast_forward_is_equivalent() {
        // The event-driven fast path must be invisible in every
        // statistic: measure the same memory-bound workload with
        // skipping on and off and compare everything observable.
        let wl = by_name("libq_like").unwrap().build(Scale::Tiny);
        let mut fast = BFetchSim::build(&wl);
        let mut slow = BFetchSim::build(&wl);
        slow.set_fast_forward(false);
        assert_eq!(fast.measure(2_000, 8_000), slow.measure(2_000, 8_000));
        let fp = |bf: &BFetchSim| {
            let core = bf.sim().core();
            format!(
                "{} {} {} {} {}",
                core.cycle(),
                core.committed(0),
                core.mem().l1d_stats().accesses.get(),
                core.mem().l1d_stats().misses.get(),
                core.mem().shared().borrow().dram_stats().traffic_lines(),
            )
        };
        assert_eq!(fp(&fast), fp(&slow), "skipping changed simulated state");
    }

    #[test]
    fn walker_restart_reseeds_registers() {
        let wl = by_name("md5_like").unwrap().build(Scale::Tiny);
        let mut bf = BFetchSim::build(&wl);
        bf.run_until(2_000, 200_000);
        // After running, the walker must have resynced at least once and
        // be inside the binary.
        assert!(bf.walker.walked <= WALK_LIMIT);
    }
}
