//! SlipStream (Sundaramoorthy, Purser & Rotenberg, ASPLOS 2000): an
//! A-stream shortened by removing ineffectual computation and biased
//! branches runs ahead of the architecturally safe R-stream, passing
//! branch outcomes and warming the shared memory hierarchy.
//!
//! Mapped onto our substrate: a DLA system whose skeleton is built
//! SlipStream-style — the control slice with aggressive biased-branch
//! conversion but *without* DLA's prefetch payloads — and whose only
//! communication is the branch-outcome queue plus shared-cache warming
//! (no footnote-queue hints, no T1 / value reuse / recycling).

use std::rc::Rc;

use r3dla_core::{
    generate_skeletons, profile, Dataflow, DlaConfig, DlaSystem, RecycleMode, SkeletonOptions,
    SkeletonSet,
};
use r3dla_workloads::BuiltWorkload;

/// Builds a SlipStream-style system for a workload.
pub fn slipstream_system(built: &BuiltWorkload) -> DlaSystem {
    let mut cfg = DlaConfig::dla();
    cfg.t1 = false;
    cfg.value_reuse = false;
    cfg.recycle = RecycleMode::Off;
    cfg.fq_hints = false; // branch outcomes + cache warming only
    let program = Rc::new(built.program.clone());
    let df = Dataflow::analyze(&program);
    let prof = profile(&program, cfg.profile_insts);
    // SlipStream's IR-detector removes ineffectual writes and highly
    // biased branches; it does NOT add prefetch payloads for missing
    // loads. Model that with seed thresholds that exclude all miss-driven
    // seeds and a slightly laxer bias threshold.
    let opt = SkeletonOptions {
        l1_seed_rate: 2.0, // > 1.0: no L1-miss seeds can qualify
        l2_seed_rate: 2.0, // no L2-miss seeds either
        bias_threshold: 0.99,
        ..SkeletonOptions::default()
    };
    let set = generate_skeletons(&program, &df, &prof, &opt, false);
    // Use the bias-converted version as the A-stream (version 4 in the
    // generator's layout); keep only that one so no recycling happens.
    let a_stream = set.versions[4].clone();
    let single = SkeletonSet {
        versions: vec![a_stream],
    };
    DlaSystem::assemble(program, cfg, single, prof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_workloads::{by_name, Scale};

    #[test]
    fn slipstream_runs_and_reports() {
        let wl = by_name("bzip2_like").unwrap().build(Scale::Tiny);
        let mut sys = slipstream_system(&wl);
        let rep = sys.measure(3_000, 12_000);
        assert!(rep.mt_ipc > 0.0);
        assert!(rep.mt_committed >= 12_000 || sys.mt_halted());
    }

    #[test]
    fn a_stream_is_reduced() {
        let wl = by_name("hmmer_like").unwrap().build(Scale::Tiny);
        let sys = slipstream_system(&wl);
        let active = sys.active_skeleton();
        let d = active.borrow().set().versions[0].density();
        assert!(d < 1.0, "A-stream must drop something, density={d}");
    }
}
