//! Branch prediction for the R3-DLA simulator: direction predictors
//! (bimodal, gshare and a TAGE-style tagged predictor standing in for the
//! paper's TAGE SC-L), a branch target buffer, and a return address stack.
//!
//! # Examples
//!
//! ```
//! use r3dla_bpred::{DirectionPredictor, Tage};
//! let mut p = Tage::paper();
//! // A strongly biased branch becomes predictable after warmup.
//! for _ in 0..64 {
//!     let pred = p.predict(0x4000);
//!     p.update(0x4000, true, pred);
//! }
//! assert!(p.predict(0x4000));
//! ```

mod btb;
mod dir;
mod ras;

pub use btb::{Btb, BtbConfig};
pub use dir::{Bimodal, DirectionPredictor, Gshare, Tage};
pub use ras::{Ras, RasState};
