//! Direction predictors.
//!
//! Speculative global history is advanced in [`DirectionPredictor::predict`]
//! and repaired by the core on squash via history snapshots — the same
//! discipline real front ends use.

/// A conditional-branch direction predictor.
///
/// The core calls [`predict`](Self::predict) at fetch (which may advance
/// speculative history), then [`update`](Self::update) at branch
/// resolution/commit with the true outcome. On a pipeline squash the core
/// restores speculative history with
/// [`restore_history`](Self::restore_history).
pub trait DirectionPredictor {
    /// Predictor name for reports.
    fn name(&self) -> &str;
    /// Predicts the direction of the conditional branch at `pc`,
    /// speculatively advancing history with the prediction.
    fn predict(&mut self, pc: u64) -> bool;
    /// Trains with the architectural outcome. `mispredicted` reports
    /// whether the earlier prediction disagreed (used for allocation).
    fn update(&mut self, pc: u64, taken: bool, mispredicted: bool);
    /// Returns the current speculative history register.
    fn history(&self) -> u64 {
        0
    }
    /// Restores speculative history after a squash, then re-inserts the
    /// resolved outcome of the mispredicted branch.
    fn restore_history(&mut self, _history: u64, _resolved_taken: Option<bool>) {}

    /// Trains on one architectural outcome without a pipeline around it —
    /// functional warmup for sampled simulation. Follows the core's real
    /// discipline: predict (advancing speculative history), repair history
    /// on a wrong guess, then update with the true outcome, so a warmed
    /// predictor is indistinguishable from one that ran the same stream
    /// in a mispredict-free pipeline.
    fn warm(&mut self, pc: u64, taken: bool) {
        let pred = self.predict(pc);
        if pred != taken {
            let h = self.history();
            self.restore_history(h >> 1, Some(taken));
        }
        self.update(pc, taken, pred != taken);
    }
}

#[inline]
fn saturate_up(c: &mut u8, max: u8) {
    if *c < max {
        *c += 1;
    }
}

#[inline]
fn saturate_down(c: &mut u8) {
    if *c > 0 {
        *c -= 1;
    }
}

/// A classic bimodal (per-PC 2-bit counter) predictor.
#[derive(Debug, Clone)]
pub struct Bimodal {
    counters: Vec<u8>,
    mask: usize,
}

impl Bimodal {
    /// Creates a table with `entries` 2-bit counters (rounded up to a
    /// power of two), initialized weakly taken.
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two();
        Self {
            counters: vec![2; n],
            mask: n - 1,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }
}

impl DirectionPredictor for Bimodal {
    fn name(&self) -> &str {
        "bimodal"
    }

    fn predict(&mut self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool, _mispredicted: bool) {
        let i = self.index(pc);
        if taken {
            saturate_up(&mut self.counters[i], 3);
        } else {
            saturate_down(&mut self.counters[i]);
        }
    }
}

/// A gshare predictor: global history XOR PC indexes a 2-bit table.
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    mask: usize,
    history: u64,
    hist_bits: u32,
}

impl Gshare {
    /// Creates a gshare with `entries` counters and `hist_bits` bits of
    /// global history.
    pub fn new(entries: usize, hist_bits: u32) -> Self {
        let n = entries.next_power_of_two();
        Self {
            counters: vec![2; n],
            mask: n - 1,
            history: 0,
            hist_bits,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) as usize) & self.mask
    }
}

impl DirectionPredictor for Gshare {
    fn name(&self) -> &str {
        "gshare"
    }

    fn predict(&mut self, pc: u64) -> bool {
        let taken = self.counters[self.index(pc)] >= 2;
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.hist_bits) - 1);
        taken
    }

    fn update(&mut self, pc: u64, taken: bool, _mispredicted: bool) {
        // Reconstruct the index with the history *before* this branch: the
        // core calls restore_history on mispredicts, so the last history
        // bit is this branch's prediction; shift it off for training.
        let prior = self.history >> 1;
        let i = (((pc >> 2) ^ prior) as usize) & self.mask;
        if taken {
            saturate_up(&mut self.counters[i], 3);
        } else {
            saturate_down(&mut self.counters[i]);
        }
    }

    fn history(&self) -> u64 {
        self.history
    }

    fn restore_history(&mut self, history: u64, resolved_taken: Option<bool>) {
        self.history = history;
        if let Some(t) = resolved_taken {
            self.history = ((self.history << 1) | t as u64) & ((1 << self.hist_bits) - 1);
        }
    }
}

const TAGE_TABLES: usize = 5;
const TAGE_HIST: [u32; TAGE_TABLES] = [4, 9, 17, 33, 62];
const TAGE_TAG_BITS: u32 = 11;

#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    tag: u16,
    ctr: u8, // 3-bit, ≥4 = taken
    useful: u8,
}

/// A TAGE-style predictor: a bimodal base plus tagged tables indexed with
/// geometrically increasing history lengths.
///
/// This stands in for the paper's 256-kbit TAGE SC-L: it reproduces the
/// accuracy *class* (high-90s on loop-heavy code, graceful degradation on
/// data-dependent branches) rather than the exact component design.
#[derive(Debug, Clone)]
pub struct Tage {
    base: Bimodal,
    tables: Vec<Vec<TageEntry>>,
    table_mask: usize,
    history: u64,
    tick: u64,
}

impl Tage {
    /// A configuration sized like the paper's predictor budget.
    pub fn paper() -> Self {
        Self::new(8192, 2048)
    }

    /// Creates a TAGE with `base_entries` bimodal counters and
    /// `table_entries` entries per tagged table.
    pub fn new(base_entries: usize, table_entries: usize) -> Self {
        let n = table_entries.next_power_of_two();
        Self {
            base: Bimodal::new(base_entries),
            tables: vec![vec![TageEntry::default(); n]; TAGE_TABLES],
            table_mask: n - 1,
            history: 0,
            tick: 0,
        }
    }

    #[inline]
    fn folded_history(&self, bits: u32, out_bits: u32) -> u64 {
        // Fold `bits` of history into `out_bits` by XOR-ing segments.
        let mut h = self.history & (u64::MAX >> (64 - bits.min(64)));
        let mut folded = 0u64;
        while h != 0 {
            folded ^= h & ((1 << out_bits) - 1);
            h >>= out_bits;
        }
        folded
    }

    #[inline]
    fn index(&self, pc: u64, t: usize) -> usize {
        let f = self.folded_history(TAGE_HIST[t], (self.table_mask.trailing_ones()).max(1));
        (((pc >> 2) ^ (pc >> 7) ^ f) as usize) & self.table_mask
    }

    #[inline]
    fn tag(&self, pc: u64, t: usize) -> u16 {
        let f = self.folded_history(TAGE_HIST[t], TAGE_TAG_BITS);
        ((((pc >> 2) ^ (pc >> 12)) ^ (f << 1)) & ((1 << TAGE_TAG_BITS) - 1)) as u16 | 1
        // tag 0 means empty
    }

    /// Finds the longest matching table, returning (table, index).
    fn provider(&self, pc: u64) -> Option<(usize, usize)> {
        for t in (0..TAGE_TABLES).rev() {
            let i = self.index(pc, t);
            if self.tables[t][i].tag == self.tag(pc, t) {
                return Some((t, i));
            }
        }
        None
    }
}

impl DirectionPredictor for Tage {
    fn name(&self) -> &str {
        "tage"
    }

    fn predict(&mut self, pc: u64) -> bool {
        let taken = match self.provider(pc) {
            Some((t, i)) => self.tables[t][i].ctr >= 4,
            None => self.base.predict(pc),
        };
        self.history = (self.history << 1) | taken as u64;
        taken
    }

    fn update(&mut self, pc: u64, taken: bool, mispredicted: bool) {
        // Training happens with post-prediction history; recover the
        // pre-branch view by shifting off the newest bit.
        let saved = self.history;
        self.history >>= 1;
        let provider = self.provider(pc);
        match provider {
            Some((t, i)) => {
                let e = &mut self.tables[t][i];
                if taken {
                    saturate_up(&mut e.ctr, 7);
                } else {
                    saturate_down(&mut e.ctr);
                }
                if !mispredicted {
                    saturate_up(&mut e.useful, 3);
                } else {
                    saturate_down(&mut e.useful);
                }
            }
            None => self.base.update(pc, taken, mispredicted),
        }
        // Allocate a longer-history entry on mispredict.
        if mispredicted {
            let start = provider.map(|(t, _)| t + 1).unwrap_or(0);
            let mut allocated = false;
            for t in start..TAGE_TABLES {
                let i = self.index(pc, t);
                if self.tables[t][i].useful == 0 {
                    self.tables[t][i] = TageEntry {
                        tag: self.tag(pc, t),
                        ctr: if taken { 4 } else { 3 },
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Decay usefulness so future allocations can succeed.
                self.tick += 1;
                if self.tick.is_multiple_of(8) {
                    for t in start..TAGE_TABLES {
                        let i = self.index(pc, t);
                        saturate_down(&mut self.tables[t][i].useful);
                    }
                }
            }
        }
        self.history = saved;
    }

    fn history(&self) -> u64 {
        self.history
    }

    fn restore_history(&mut self, history: u64, resolved_taken: Option<bool>) {
        self.history = history;
        if let Some(t) = resolved_taken {
            self.history = (self.history << 1) | t as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train<P: DirectionPredictor>(p: &mut P, seq: impl Iterator<Item = (u64, bool)>) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (pc, taken) in seq {
            let pred = p.predict(pc);
            if pred == taken {
                correct += 1;
            } else {
                let h = p.history();
                p.restore_history(h >> 1, Some(taken));
            }
            p.update(pc, taken, pred != taken);
            total += 1;
        }
        correct as f64 / total as f64
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut p = Bimodal::new(1024);
        let acc = train(&mut p, (0..1000).map(|_| (0x100, true)));
        assert!(acc > 0.95, "acc={acc}");
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut p = Gshare::new(4096, 12);
        let acc = train(&mut p, (0..4000).map(|i| (0x100, i % 2 == 0)));
        assert!(acc > 0.9, "acc={acc}");
    }

    #[test]
    fn bimodal_cannot_learn_alternating_pattern() {
        let mut p = Bimodal::new(1024);
        let acc = train(&mut p, (0..4000).map(|i| (0x100, i % 2 == 0)));
        assert!(acc < 0.7, "bimodal should fail on T/NT/T/NT, acc={acc}");
    }

    #[test]
    fn tage_learns_loop_exit() {
        // An 8-iteration loop: branch taken 7 times then not taken.
        let mut p = Tage::paper();
        let seq = (0..8000).map(|i| (0x200u64, i % 8 != 7));
        let acc = train(&mut p, seq);
        assert!(acc > 0.95, "TAGE should capture loop period 8, acc={acc}");
    }

    #[test]
    fn tage_beats_bimodal_on_history_patterns() {
        let make_seq = || (0..6000).map(|i| (0x300u64, (i % 5) < 2));
        let mut t = Tage::paper();
        let mut b = Bimodal::new(8192);
        let ta = train(&mut t, make_seq());
        let ba = train(&mut b, make_seq());
        assert!(ta > ba, "tage {ta} vs bimodal {ba}");
    }

    #[test]
    fn tage_handles_many_branches() {
        let mut p = Tage::paper();
        // 64 branches with distinct biases.
        let seq = (0..32_000).map(|i| {
            let b = i % 64;
            let pc = 0x1000 + (b as u64) * 4;
            (pc, b % 3 != 0)
        });
        let acc = train(&mut p, seq);
        assert!(acc > 0.9, "acc={acc}");
    }

    #[test]
    fn warm_matches_pipeline_discipline() {
        // `warm` must leave the predictor in exactly the state the
        // `train` harness (which models the core's predict/repair/update
        // discipline) produces for the same outcome stream.
        let seq: Vec<(u64, bool)> = (0..2000u64)
            .map(|i| (0x40 + (i % 7) * 4, i % 3 != 0))
            .collect();
        let mut warmed = Tage::paper();
        for &(pc, t) in &seq {
            warmed.warm(pc, t);
        }
        let mut trained = Tage::paper();
        train(&mut trained, seq.iter().copied());
        assert_eq!(warmed.history(), trained.history());
        for &(pc, _) in seq.iter().take(7) {
            assert_eq!(warmed.predict(pc), trained.predict(pc));
        }
    }

    #[test]
    fn warm_learns_bias() {
        let mut p = Tage::paper();
        for _ in 0..64 {
            p.warm(0x4000, true);
        }
        assert!(p.predict(0x4000));
    }

    #[test]
    fn history_snapshot_round_trip() {
        let mut p = Tage::paper();
        p.predict(0x10);
        let h = p.history();
        p.predict(0x20);
        p.predict(0x30);
        p.restore_history(h, Some(true));
        assert_eq!(p.history(), (h << 1) | 1);
    }

    #[test]
    fn random_outcomes_bound_accuracy() {
        // Nothing can predict a fair coin; sanity-check we don't somehow
        // exceed ~60% (which would indicate training on future data).
        let mut rng = r3dla_stats::Rng::new(9);
        let mut p = Tage::paper();
        let outcomes: Vec<(u64, bool)> = (0..20_000).map(|_| (0x500, rng.chance(0.5))).collect();
        let acc = train(&mut p, outcomes.into_iter());
        assert!((0.4..0.6).contains(&acc), "acc={acc}");
    }
}
