//! Return address stack with snapshot/restore for squash recovery.

/// A snapshot of the full RAS state.
///
/// The RAS is small (32 entries per the paper's Table I), so checkpointing
/// the whole stack per in-flight branch is cheap and gives exact recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasState {
    entries: [u64; Ras::DEPTH],
    top: usize,
    len: usize,
}

/// A circular return-address stack.
///
/// # Examples
///
/// ```
/// use r3dla_bpred::Ras;
/// let mut ras = Ras::new();
/// ras.push(0x104);
/// ras.push(0x208);
/// assert_eq!(ras.pop(), Some(0x208));
/// assert_eq!(ras.pop(), Some(0x104));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ras {
    entries: [u64; Ras::DEPTH],
    top: usize,
    len: usize,
}

impl Default for Ras {
    fn default() -> Self {
        Self::new()
    }
}

impl Ras {
    /// Stack depth (paper Table I: 32-entry RAS).
    pub const DEPTH: usize = 32;

    /// Creates an empty stack.
    pub fn new() -> Self {
        Self {
            entries: [0; Self::DEPTH],
            top: 0,
            len: 0,
        }
    }

    /// Pushes a return address (a call was fetched). Overwrites the oldest
    /// entry when full, as hardware does.
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % Self::DEPTH;
        self.entries[self.top] = addr;
        if self.len < Self::DEPTH {
            self.len += 1;
        }
    }

    /// Pops the predicted return address (a return was fetched).
    pub fn pop(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let addr = self.entries[self.top];
        self.top = (self.top + Self::DEPTH - 1) % Self::DEPTH;
        self.len -= 1;
        Some(addr)
    }

    /// Captures the complete state for squash recovery.
    pub fn snapshot(&self) -> RasState {
        RasState {
            entries: self.entries,
            top: self.top,
            len: self.len,
        }
    }

    /// Restores a previously captured state.
    pub fn restore(&mut self, snap: RasState) {
        self.entries = snap.entries;
        self.top = snap.top;
        self.len = snap.len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = Ras::new();
        for a in [1u64, 2, 3] {
            r.push(a);
        }
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_wraps_keeping_newest() {
        let mut r = Ras::new();
        for a in 0..(Ras::DEPTH as u64 + 4) {
            r.push(a);
        }
        // Newest survive.
        assert_eq!(r.pop(), Some(Ras::DEPTH as u64 + 3));
        assert_eq!(r.pop(), Some(Ras::DEPTH as u64 + 2));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut r = Ras::new();
        r.push(10);
        r.push(20);
        let snap = r.snapshot();
        r.pop();
        r.push(99);
        r.push(98);
        r.restore(snap);
        assert_eq!(r.pop(), Some(20));
        assert_eq!(r.pop(), Some(10));
    }

    #[test]
    fn deep_nesting_round_trip() {
        let mut r = Ras::new();
        for a in 0..Ras::DEPTH as u64 {
            r.push(a);
        }
        for a in (0..Ras::DEPTH as u64).rev() {
            assert_eq!(r.pop(), Some(a));
        }
        assert_eq!(r.pop(), None);
    }
}
