//! Branch target buffer: predicts targets for taken branches at fetch.

use r3dla_stats::Counter;

/// BTB geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl BtbConfig {
    /// The paper's 4K-entry BTB (4-way).
    pub fn paper() -> Self {
        Self {
            entries: 4096,
            ways: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    pc: u64,
    target: u64,
    valid: bool,
    stamp: u64,
}

/// A set-associative branch target buffer.
///
/// # Examples
///
/// ```
/// use r3dla_bpred::{Btb, BtbConfig};
/// let mut btb = Btb::new(BtbConfig::paper());
/// assert_eq!(btb.predict(0x1000), None);
/// btb.update(0x1000, 0x2000);
/// assert_eq!(btb.predict(0x1000), Some(0x2000));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<Vec<BtbEntry>>,
    stamp: u64,
    /// Lookup count.
    pub lookups: Counter,
    /// Lookups that found no entry.
    pub misses: Counter,
}

impl Btb {
    /// Creates a BTB from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if geometry does not divide into at least one set.
    pub fn new(cfg: BtbConfig) -> Self {
        let sets = (cfg.entries / cfg.ways).next_power_of_two();
        assert!(sets > 0, "BTB must have at least one set");
        Self {
            sets: vec![vec![BtbEntry::default(); cfg.ways]; sets],
            stamp: 0,
            lookups: Counter::new(),
            misses: Counter::new(),
        }
    }

    #[inline]
    fn set_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets.len() - 1)
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn predict(&mut self, pc: u64) -> Option<u64> {
        self.lookups.inc();
        let si = self.set_index(pc);
        self.stamp += 1;
        let stamp = self.stamp;
        let hit = self.sets[si]
            .iter_mut()
            .find(|e| e.valid && e.pc == pc)
            .map(|e| {
                e.stamp = stamp;
                e.target
            });
        if hit.is_none() {
            self.misses.inc();
        }
        hit
    }

    /// Installs or refreshes the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let si = self.set_index(pc);
        self.stamp += 1;
        let stamp = self.stamp;
        let set = &mut self.sets[si];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.pc == pc) {
            e.target = target;
            e.stamp = stamp;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.stamp } else { 0 })
            .expect("nonzero ways");
        *victim = BtbEntry {
            pc,
            target,
            valid: true,
            stamp,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Btb {
        Btb::new(BtbConfig {
            entries: 8,
            ways: 2,
        })
    }

    #[test]
    fn update_then_predict() {
        let mut b = tiny();
        b.update(0x100, 0x500);
        assert_eq!(b.predict(0x100), Some(0x500));
        assert_eq!(b.lookups.get(), 1);
        assert_eq!(b.misses.get(), 0);
    }

    #[test]
    fn retarget_overwrites() {
        let mut b = tiny();
        b.update(0x100, 0x500);
        b.update(0x100, 0x700);
        assert_eq!(b.predict(0x100), Some(0x700));
    }

    #[test]
    fn lru_within_set() {
        let mut b = tiny(); // 4 sets × 2 ways; pcs 16 bytes apart collide per set of 4

        // Set index uses pc>>2 & 3: pcs 0x100, 0x110, 0x120 all map to set 0.
        b.update(0x100, 1);
        b.update(0x110, 2);
        b.predict(0x100); // refresh
        b.update(0x120, 3); // evicts 0x110
        assert_eq!(b.predict(0x100), Some(1));
        assert_eq!(b.predict(0x110), None);
        assert_eq!(b.predict(0x120), Some(3));
    }

    #[test]
    fn miss_counted() {
        let mut b = tiny();
        assert_eq!(b.predict(0xABC0), None);
        assert_eq!(b.misses.get(), 1);
    }
}
