//! Integer-valued histograms, used for queue occupancies, latencies and
//! the empirical supply/demand distributions of the fetch-buffer model.

/// A dense histogram over small non-negative integer values.
///
/// Bins grow on demand; values are `u64` sample keys with `u64` counts.
///
/// # Examples
///
/// ```
/// use r3dla_stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(3);
/// h.record(3);
/// h.record(5);
/// assert_eq!(h.count(3), 2);
/// assert_eq!(h.total(), 3);
/// assert!((h.mean() - (3.0 + 3.0 + 5.0) / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample of `value`.
    pub fn record(&mut self, value: u64) {
        let idx = value as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Records `n` samples of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        let idx = value as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += n;
        self.total += n;
    }

    /// Returns the number of samples equal to `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.bins.get(value as usize).copied().unwrap_or(0)
    }

    /// Returns the total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns the largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        self.bins.iter().rposition(|&c| c > 0).map(|i| i as u64)
    }

    /// Returns the sample mean.
    ///
    /// Returns 0.0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .sum();
        sum / self.total as f64
    }

    /// Converts the histogram into a probability mass function.
    ///
    /// The returned vector has one entry per bin, summing to 1 (empty
    /// histograms yield an empty vector).
    pub fn to_pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        self.bins
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Iterates over `(value, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
    }

    /// Removes all samples.
    pub fn reset(&mut self) {
        self.bins.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(7);
        h.record_n(7, 3);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(7), 4);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.total(), 5);
        assert_eq!(h.max(), Some(7));
    }

    #[test]
    fn pmf_sums_to_one() {
        let mut h = Histogram::new();
        for v in [1, 1, 2, 3, 3, 3] {
            h.record(v);
        }
        let pmf = h.to_pmf();
        let sum: f64 = pmf.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((pmf[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert!(h.to_pmf().is_empty());
    }

    #[test]
    fn iter_skips_empty_bins() {
        let mut h = Histogram::new();
        h.record(2);
        h.record(5);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(2, 1), (5, 1)]);
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(4);
        h.reset();
        assert_eq!(h.total(), 0);
        assert_eq!(h.count(4), 0);
    }
}
