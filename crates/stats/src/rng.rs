//! Deterministic pseudo-random number generation.
//!
//! [`Rng`] is a xoshiro256** generator seeded through SplitMix64, the
//! initialization recommended by the xoshiro authors. It is small, fast and
//! fully reproducible across platforms, which is all the simulator needs.

/// Advances a SplitMix64 state and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use r3dla_stats::Rng;
/// let mut rng = Rng::new(7);
/// let roll = rng.range_u64(1, 7); // 1..7
/// assert!((1..7).contains(&roll));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Lemire-style rejection-free-enough reduction; bias is negligible
        // for simulation purposes when span << 2^64.
        lo + (self.next_u64() % span)
    }

    /// Returns a uniformly distributed `usize` in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Returns a uniform f64 in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        if xs.is_empty() {
            return;
        }
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(0, i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// workload component its own stream.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_for_same_seed() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng::new(99);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(5);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(11);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_estimates_probability() {
        let mut rng = Rng::new(77);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng::new(3);
        let mut child = a.fork();
        // The child should not replay the parent's stream.
        let parent_next = a.next_u64();
        let child_next = child.next_u64();
        assert_ne!(parent_next, child_next);
    }
}
