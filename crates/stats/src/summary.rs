//! Suite-level summary statistics: geometric means (the paper's headline
//! aggregation), ranges, and simple descriptive statistics.

/// Returns the geometric mean of `xs`.
///
/// The paper reports suite-wide speedups as geometric means, so this is the
/// canonical aggregation for experiment harnesses.
///
/// Returns 0.0 for an empty slice; non-positive inputs are clamped to a tiny
/// positive value so a single degenerate measurement cannot poison a suite
/// aggregate.
///
/// # Examples
///
/// ```
/// use r3dla_stats::geomean;
/// let g = geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Returns the arithmetic mean of `xs` (0.0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Returns the median of `xs` (0.0 when empty).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Descriptive statistics over a set of per-benchmark values, as used to
/// print a paper-style "bar plus I-beam" row (geometric mean plus range).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Geometric mean of the values.
    pub geomean: f64,
    /// Arithmetic mean of the values.
    pub mean: f64,
    /// Median of the values.
    pub median: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Number of values summarized.
    pub n: usize,
}

impl Summary {
    /// Summarizes a slice of values.
    ///
    /// # Examples
    ///
    /// ```
    /// use r3dla_stats::Summary;
    /// let s = Summary::of(&[1.0, 2.0, 4.0]);
    /// assert_eq!(s.n, 3);
    /// assert_eq!(s.min, 1.0);
    /// assert_eq!(s.max, 4.0);
    /// ```
    pub fn of(xs: &[f64]) -> Self {
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            geomean: geomean(xs),
            mean: mean(xs),
            median: median(xs),
            min: if xs.is_empty() { 0.0 } else { min },
            max: if xs.is_empty() { 0.0 } else { max },
            n: xs.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gm={:.3} [{:.3}..{:.3}] (n={})",
            self.geomean, self.min, self.max, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_le_mean() {
        // AM-GM inequality.
        let xs = [1.0, 3.0, 9.0, 0.5];
        assert!(geomean(&xs) <= mean(&xs) + 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn summary_display_is_nonempty() {
        let s = Summary::of(&[1.5]);
        assert!(!format!("{s}").is_empty());
    }
}
