//! Deterministic PRNGs, counters, histograms and summary statistics used
//! throughout the R3-DLA simulator.
//!
//! The simulator must be bit-reproducible: no wall clock, no OS entropy.
//! Everything random flows from [`Rng`], a SplitMix64-seeded xoshiro256**
//! generator.
//!
//! # Examples
//!
//! ```
//! use r3dla_stats::Rng;
//! let mut rng = Rng::new(42);
//! let a = rng.next_u64();
//! let b = Rng::new(42).next_u64();
//! assert_eq!(a, b);
//! ```

mod ci;
mod hist;
mod rng;
mod summary;

pub use ci::{mean_ci95, sample_variance, t_crit95, MeanCi};
pub use hist::Histogram;
pub use rng::Rng;
pub use summary::{geomean, mean, median, Summary};

/// A monotonically increasing event counter.
///
/// Used by the core and memory models to expose per-structure activity to
/// the energy model.
///
/// # Examples
///
/// ```
/// use r3dla_stats::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
        c.reset();
        assert_eq!(c.get(), 0);
    }
}
