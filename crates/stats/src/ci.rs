//! Confidence intervals for sampled simulation (SMARTS-style interval
//! sampling reports mean ± 95% CI over per-interval measurements).
//!
//! Sample counts are small (a handful to a few dozen intervals), so the
//! half-width uses the Student-t critical value for the actual degrees of
//! freedom instead of the normal 1.96.

/// Two-sided 95% Student-t critical values for 1..=30 degrees of freedom.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The two-sided 95% Student-t critical value for `df` degrees of
/// freedom (the normal approximation 1.96 beyond the table).
pub fn t_crit95(df: usize) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T95[df - 1],
        _ => 1.96,
    }
}

/// Unbiased sample variance (n−1 denominator); 0.0 for fewer than two
/// samples.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = crate::mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// A sample mean with its 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Half-width of the two-sided 95% confidence interval
    /// (`t · s / √n`); 0.0 when fewer than two samples exist.
    pub half: f64,
    /// Number of samples.
    pub n: usize,
}

impl MeanCi {
    /// Whether `value` lies within the interval `mean ± half`.
    pub fn contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.half
    }

    /// Relative half-width (`half / mean`); 0.0 for a zero mean.
    pub fn relative(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.half / self.mean.abs()
        }
    }
}

impl std::fmt::Display for MeanCi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4} (n={})", self.mean, self.half, self.n)
    }
}

/// Mean ± 95% confidence half-width of `xs` using the Student-t
/// distribution (small-sample aware).
///
/// # Examples
///
/// ```
/// use r3dla_stats::mean_ci95;
/// let ci = mean_ci95(&[1.0, 2.0, 3.0, 4.0]);
/// assert!((ci.mean - 2.5).abs() < 1e-12);
/// assert!(ci.contains(2.5) && !ci.contains(10.0));
/// ```
pub fn mean_ci95(xs: &[f64]) -> MeanCi {
    let n = xs.len();
    let mean = crate::mean(xs);
    if n < 2 {
        return MeanCi { mean, half: 0.0, n };
    }
    let s = sample_variance(xs).sqrt();
    MeanCi {
        mean,
        half: t_crit95(n - 1) * s / (n as f64).sqrt(),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_shrinks_toward_normal() {
        assert!(t_crit95(1) > t_crit95(3));
        assert!(t_crit95(3) > t_crit95(30));
        assert!((t_crit95(31) - 1.96).abs() < 1e-12);
        assert!((t_crit95(3) - 3.182).abs() < 1e-12);
        assert!(t_crit95(0).is_infinite());
    }

    #[test]
    fn variance_matches_hand_computation() {
        // xs = [2, 4, 4, 4, 5, 5, 7, 9]: mean 5, sum sq dev 32, s² = 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(sample_variance(&[3.0]), 0.0);
        assert_eq!(sample_variance(&[]), 0.0);
    }

    #[test]
    fn ci_hand_computed_k4() {
        // k=4, df=3, t=3.182. xs = [1, 2, 3, 4]: mean 2.5, s² = 5/3.
        let ci = mean_ci95(&[1.0, 2.0, 3.0, 4.0]);
        let expect = 3.182 * (5.0f64 / 3.0).sqrt() / 2.0;
        assert!((ci.half - expect).abs() < 1e-9);
        assert_eq!(ci.n, 4);
    }

    #[test]
    fn identical_samples_have_zero_width() {
        let ci = mean_ci95(&[1.5, 1.5, 1.5]);
        assert_eq!(ci.half, 0.0);
        assert!(ci.contains(1.5));
        assert!(!ci.contains(1.5001));
    }

    #[test]
    fn singleton_is_degenerate() {
        let ci = mean_ci95(&[7.0]);
        assert_eq!(ci.mean, 7.0);
        assert_eq!(ci.half, 0.0);
        assert_eq!(ci.relative(), 0.0 / 7.0);
    }

    #[test]
    fn display_is_readable() {
        let s = format!("{}", mean_ci95(&[1.0, 3.0]));
        assert!(s.contains("±") && s.contains("n=2"));
    }
}
