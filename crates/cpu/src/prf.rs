//! Physical register file with a free list and readiness tracking.
//!
//! Values are written at producer *issue* (the execute-in-execute model
//! computes results early) but become architecturally visible to
//! consumers only at `ready_cycle`.

/// The physical register file.
#[derive(Debug, Clone)]
pub struct Prf {
    values: Vec<u64>,
    ready_cycle: Vec<u64>,
    free: Vec<u16>,
}

impl Prf {
    /// Creates a PRF with `size` registers, of which the first `reserved`
    /// are pre-allocated (initial architectural mappings) and start ready.
    ///
    /// # Panics
    ///
    /// Panics if `reserved > size` or `size > u16::MAX as usize`.
    pub fn new(size: usize, reserved: usize) -> Self {
        assert!(reserved <= size, "reserved mappings exceed PRF size");
        assert!(size <= u16::MAX as usize, "PRF too large for u16 tags");
        Self {
            values: vec![0; size],
            ready_cycle: vec![0; size],
            free: (reserved as u16..size as u16).rev().collect(),
        }
    }

    /// Allocates a fresh physical register, or `None` when exhausted.
    pub fn alloc(&mut self) -> Option<u16> {
        let p = self.free.pop()?;
        self.values[p as usize] = 0;
        self.ready_cycle[p as usize] = u64::MAX;
        Some(p)
    }

    /// Returns a register to the free list.
    pub fn free(&mut self, p: u16) {
        debug_assert!(!self.free.contains(&p), "double free of p{p}");
        self.free.push(p);
    }

    /// Number of registers currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Writes a value, becoming visible at `ready`.
    #[inline]
    pub fn write(&mut self, p: u16, value: u64, ready: u64) {
        self.values[p as usize] = value;
        self.ready_cycle[p as usize] = ready;
    }

    /// Reads the value (caller must have checked readiness).
    #[inline]
    pub fn read(&self, p: u16) -> u64 {
        self.values[p as usize]
    }

    /// Whether `p` is ready at `cycle`.
    #[inline]
    pub fn is_ready(&self, p: u16, cycle: u64) -> bool {
        self.ready_cycle[p as usize] <= cycle
    }

    /// The cycle at which `p` becomes ready (`u64::MAX` if unwritten).
    #[inline]
    pub fn ready_at(&self, p: u16) -> u64 {
        self.ready_cycle[p as usize]
    }

    /// Marks an initially reserved register with a value ready at cycle 0.
    pub fn init(&mut self, p: u16, value: u64) {
        self.values[p as usize] = value;
        self.ready_cycle[p as usize] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut prf = Prf::new(8, 4);
        assert_eq!(prf.available(), 4);
        let a = prf.alloc().unwrap();
        assert_eq!(prf.available(), 3);
        prf.free(a);
        assert_eq!(prf.available(), 4);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut prf = Prf::new(5, 4);
        assert!(prf.alloc().is_some());
        assert!(prf.alloc().is_none());
    }

    #[test]
    fn alloc_resets_readiness() {
        let mut prf = Prf::new(8, 4);
        let a = prf.alloc().unwrap();
        assert!(!prf.is_ready(a, 1_000_000));
        prf.write(a, 42, 10);
        assert!(!prf.is_ready(a, 9));
        assert!(prf.is_ready(a, 10));
        assert_eq!(prf.read(a), 42);
        prf.free(a);
        let b = prf.alloc().unwrap();
        assert_eq!(b, a);
        assert!(
            !prf.is_ready(b, 1_000_000),
            "reallocation must reset readiness"
        );
    }

    #[test]
    fn reserved_registers_start_ready() {
        let mut prf = Prf::new(8, 4);
        prf.init(2, 99);
        assert!(prf.is_ready(2, 0));
        assert_eq!(prf.read(2), 99);
    }

    #[test]
    #[should_panic]
    fn reserved_beyond_size_panics() {
        let _ = Prf::new(4, 8);
    }
}
