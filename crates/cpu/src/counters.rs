//! Per-core activity counters: the raw material for the McPAT-substitute
//! energy model (Table II, Fig 10) and for the paper's D/X/C activity
//! ratios.

use r3dla_stats::Counter;

/// Event counts accumulated by one core over a simulation.
///
/// Fields are public: this is a passive record consumed by the energy
/// model and experiment harnesses.
#[derive(Debug, Default, Clone)]
pub struct ActivityCounters {
    /// Instructions fetched into the fetch buffer (post-mask for LT).
    pub fetched: Counter,
    /// Instruction slots deleted at fetch by the skeleton mask.
    pub mask_deleted: Counter,
    /// Instruction-cache line fetch requests.
    pub icache_lines: Counter,
    /// Instructions decoded/renamed (the paper's "D" activity).
    pub decoded: Counter,
    /// Instructions issued to functional units (the paper's "X").
    pub executed: Counter,
    /// Instructions committed (the paper's "C").
    pub committed: Counter,
    /// Instructions squashed (wrong path or replay).
    pub squashed: Counter,
    /// Issue-queue writes.
    pub iq_writes: Counter,
    /// Register-file read ports exercised.
    pub rf_reads: Counter,
    /// Register-file writes.
    pub rf_writes: Counter,
    /// Reorder-buffer writes.
    pub rob_writes: Counter,
    /// Loads executed.
    pub loads: Counter,
    /// Stores executed.
    pub stores: Counter,
    /// Branch-direction lookups at fetch.
    pub bpred_lookups: Counter,
    /// Conditional-branch mispredictions (at resolution).
    pub branch_mispredicts: Counter,
    /// Value predictions applied at rename.
    pub value_predictions: Counter,
    /// Value predictions that were validated by execution.
    pub value_validations: Counter,
    /// Value-prediction validations skipped by the scoreboard
    /// optimization (paper Fig 4).
    pub value_validation_skips: Counter,
    /// Value mispredictions (triggering replays).
    pub value_mispredicts: Counter,
    /// Cycles the fetch stage produced nothing while decode could accept
    /// (fetch bubbles, Appendix B's E(FB) numerator).
    pub fetch_bubble_insts: Counter,
    /// Cycles simulated.
    pub cycles: Counter,
}

impl ActivityCounters {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        let c = self.cycles.get();
        if c == 0 {
            0.0
        } else {
            self.committed.get() as f64 / c as f64
        }
    }

    /// Conditional mispredictions per kilo committed instructions.
    pub fn mispredicts_per_kilo(&self) -> f64 {
        let c = self.committed.get();
        if c == 0 {
            0.0
        } else {
            1000.0 * self.branch_mispredicts.get() as f64 / c as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let c = ActivityCounters::default();
        assert_eq!(c.ipc(), 0.0);
    }

    #[test]
    fn ipc_computes_ratio() {
        let mut c = ActivityCounters::default();
        c.committed.add(300);
        c.cycles.add(100);
        assert!((c.ipc() - 3.0).abs() < 1e-12);
        c.branch_mispredicts.add(3);
        assert!((c.mispredicts_per_kilo() - 10.0).abs() < 1e-12);
    }
}
