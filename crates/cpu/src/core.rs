//! The cycle-stepped out-of-order core.
//!
//! One [`Core`] owns a private memory hierarchy ([`CoreMem`]) and one or
//! more hardware threads (SMT). Each cycle advances commit → writeback →
//! issue → rename → fetch, so results flow strictly forward in time.
//!
//! The model is *execute-in-execute*: functional results are computed when
//! an instruction issues, using real values held in the physical register
//! file. Wrong-path instructions therefore execute real (garbage-input)
//! work and pollute caches — exactly the effect decoupled look-ahead is
//! designed to absorb on behalf of the main thread.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use r3dla_bpred::{Btb, BtbConfig, Ras, RasState};
use r3dla_isa::{
    eval_alu, eval_cond, mem_addr, BranchKind, FuClass, Inst, Op, Program, Reg, INST_BYTES,
};
use r3dla_mem::CoreMem;
use r3dla_stats::Histogram;

use crate::config::CoreConfig;
use crate::counters::ActivityCounters;
use crate::iface::{
    BranchOverride, CommitRecord, CommitSink, FetchDirection, FetchFilter, ThreadMem, ValueSource,
};
use crate::prf::Prf;

/// Base address where skeleton mask bits live in the binary image; the
/// look-ahead front end fetches mask lines from here (paper §III-A iii).
pub const MASK_BASE: u64 = 0x0800_0000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Dispatched,
    Issued,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    pc: u64,
    inst: Inst,
    stage: Stage,
    exec_done: u64,
    dest_new: Option<u16>,
    dest_old: Option<u16>,
    src: [Option<u16>; 2],
    // Branch bookkeeping.
    pred_next_pc: u64,
    actual_taken: Option<bool>,
    actual_next_pc: u64,
    dir_snapshot: u64,
    ras_snapshot: RasState,
    // Value-reuse alignment context (tag of the governing conditional
    // branch and distance from it).
    branch_tag: u64,
    branch_offset: u32,
    // Memory bookkeeping.
    addr: Option<u64>,
    store_val: Option<u64>,
    l1_miss: bool,
    l2_miss: bool,
    tlb_miss: bool,
    // Value prediction.
    vpred: Option<u64>,
    // Results & stats.
    result: Option<u64>,
    dispatch_cycle: u64,
    resolved: bool,
}

#[derive(Debug, Clone, Copy)]
struct IqEntry {
    thread: usize,
    seq: u64,
}

#[derive(Debug, Clone)]
struct FetchedInst {
    pc: u64,
    inst: Inst,
    pred_next_pc: u64,
    dir_snapshot: u64,
    ras_snapshot: RasState,
    decode_ready: u64,
    branch_tag: u64,
    branch_offset: u32,
}

/// Per-thread results exposed after simulation.
#[derive(Debug, Default, Clone)]
pub struct ThreadStats {
    /// Committed instruction count.
    pub committed: u64,
    /// Conditional branches committed.
    pub cond_branches: u64,
    /// L1D load misses observed at execute (committed loads only).
    pub l1d_load_misses: u64,
    /// Loads committed.
    pub loads: u64,
    /// Occupancy histogram of the fetch buffer (sampled every cycle).
    pub fetch_occupancy: Histogram,
    /// Histogram of instructions renamed per cycle (decode supply).
    pub renamed_per_cycle: Histogram,
    /// Histogram of instructions fetched per cycle (I-side supply).
    pub fetched_per_cycle: Histogram,
}

struct Thread {
    // Front end.
    fetch_pc: u64,
    fetch_stall_until: u64,
    fetch_buffer: VecDeque<FetchedInst>,
    /// Decode/rename pipeline registers: instructions drained from the
    /// fetch buffer spend `frontend_depth` cycles here, modelling the
    /// 20-stage pipe without consuming fetch-buffer capacity.
    decode_pipe: VecDeque<FetchedInst>,
    dir: Box<dyn FetchDirection>,
    btb: Btb,
    ras: Ras,
    filter: Option<Rc<RefCell<dyn FetchFilter>>>,
    // Value-reuse alignment: tag of the last fetched conditional branch
    // and the distance of the fetch cursor from it.
    last_branch_tag: u64,
    cursor_offset: u32,
    next_local_tag: u64,
    halted_fetch: bool,
    // Rename state.
    rat: [u16; Reg::COUNT],
    validated: [bool; Reg::COUNT],
    // Backend.
    rob: VecDeque<RobEntry>,
    rob_head_seq: u64,
    next_seq: u64,
    store_queue: VecDeque<u64>, // seqs of in-flight stores, oldest first

    // Architectural state.
    arch_regs: [u64; Reg::COUNT],
    arch_pc: u64,
    mem: Rc<RefCell<dyn ThreadMem>>,
    halted: bool,
    // Hooks.
    value_source: Option<Rc<RefCell<dyn ValueSource>>>,
    commit_sink: Option<Rc<RefCell<dyn CommitSink>>>,
    branch_override: Option<Rc<RefCell<dyn BranchOverride>>>,
    // Stats.
    stats: ThreadStats,
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread")
            .field("fetch_pc", &self.fetch_pc)
            .field("committed", &self.stats.committed)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

/// A cycle-stepped out-of-order core.
pub struct Core {
    cfg: CoreConfig,
    program: Rc<Program>,
    mem: CoreMem,
    threads: Vec<Thread>,
    prf: Prf,
    iq: Vec<IqEntry>,
    cycle: u64,
    int_busy_until: Vec<u64>,
    fp_busy_until: Vec<u64>,
    mem_used_this_cycle: usize,
    int_used_this_cycle: usize,
    fp_used_this_cycle: usize,
    /// Activity counters (consumed by the energy model).
    pub counters: ActivityCounters,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("cycle", &self.cycle)
            .field("threads", &self.threads.len())
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates a core running `program` against the given private
    /// hierarchy. Threads are added with [`Core::add_thread`].
    pub fn new(cfg: CoreConfig, program: Rc<Program>, mem: CoreMem) -> Self {
        let prf = Prf::new(cfg.prf_size, 0);
        Self {
            int_busy_until: vec![0; cfg.int_units],
            fp_busy_until: vec![0; cfg.fp_units],
            mem_used_this_cycle: 0,
            int_used_this_cycle: 0,
            fp_used_this_cycle: 0,
            cfg,
            program,
            mem,
            threads: Vec::new(),
            prf,
            iq: Vec::new(),
            cycle: 0,
            counters: ActivityCounters::default(),
        }
    }

    /// Adds a hardware thread starting at `entry` with architectural
    /// registers `regs`, fed by `dir` and viewing memory through `mem`.
    /// Returns the thread id.
    ///
    /// # Panics
    ///
    /// Panics if the PRF cannot seat another thread's architectural state.
    pub fn add_thread(
        &mut self,
        entry: u64,
        regs: [u64; Reg::COUNT],
        dir: Box<dyn FetchDirection>,
        mem: Rc<RefCell<dyn ThreadMem>>,
    ) -> usize {
        let mut rat = [0u16; Reg::COUNT];
        for (i, r) in rat.iter_mut().enumerate() {
            let p = self.prf.alloc().expect("PRF too small for thread state");
            self.prf.init(p, regs[i]);
            *r = p;
        }
        self.threads.push(Thread {
            fetch_pc: entry,
            fetch_stall_until: 0,
            fetch_buffer: VecDeque::with_capacity(self.cfg.fetch_buffer),
            decode_pipe: VecDeque::new(),
            dir,
            btb: Btb::new(BtbConfig::paper()),
            ras: Ras::new(),
            filter: None,
            last_branch_tag: 0,
            cursor_offset: 0,
            next_local_tag: 1,
            halted_fetch: false,
            rat,
            validated: [false; Reg::COUNT],
            rob: VecDeque::with_capacity(self.cfg.rob_size),
            rob_head_seq: 0,
            next_seq: 0,
            store_queue: VecDeque::new(),
            arch_regs: regs,
            arch_pc: entry,
            mem,
            halted: false,
            value_source: None,
            commit_sink: None,
            branch_override: None,
            stats: ThreadStats::default(),
        });
        self.threads.len() - 1
    }

    /// Attaches a branch-direction override (bias-converted skeleton
    /// branches in a look-ahead thread).
    pub fn set_branch_override(&mut self, thread: usize, ov: Rc<RefCell<dyn BranchOverride>>) {
        self.threads[thread].branch_override = Some(ov);
    }

    /// Attaches a fetch filter (skeleton mask) to a thread.
    pub fn set_fetch_filter(&mut self, thread: usize, filter: Rc<RefCell<dyn FetchFilter>>) {
        self.threads[thread].filter = Some(filter);
    }

    /// Attaches a value-prediction source to a thread.
    pub fn set_value_source(&mut self, thread: usize, src: Rc<RefCell<dyn ValueSource>>) {
        self.threads[thread].value_source = Some(src);
    }

    /// Attaches a commit sink to a thread.
    pub fn set_commit_sink(&mut self, thread: usize, sink: Rc<RefCell<dyn CommitSink>>) {
        self.threads[thread].commit_sink = Some(sink);
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Whether every thread has committed a halt.
    pub fn halted(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// Whether thread `t` has halted.
    pub fn thread_halted(&self, t: usize) -> bool {
        self.threads[t].halted
    }

    /// Per-thread statistics.
    pub fn thread_stats(&self, t: usize) -> &ThreadStats {
        &self.threads[t].stats
    }

    /// Architectural (committed) register state of a thread — the source
    /// for DLA reboot copies.
    pub fn arch_regs(&self, t: usize) -> [u64; Reg::COUNT] {
        self.threads[t].arch_regs
    }

    /// Architectural next PC of a thread.
    pub fn arch_pc(&self, t: usize) -> u64 {
        self.threads[t].arch_pc
    }

    /// Committed instruction count of a thread.
    pub fn committed(&self, t: usize) -> u64 {
        self.threads[t].stats.committed
    }

    /// Number of in-flight (renamed, uncommitted) instructions in a
    /// thread's ROB.
    pub fn in_flight(&self, t: usize) -> usize {
        self.threads[t].rob.len()
    }

    /// Access to the private memory hierarchy.
    pub fn mem(&self) -> &CoreMem {
        &self.mem
    }

    /// Mutable access to the private memory hierarchy (prefetch hints).
    pub fn mem_mut(&mut self) -> &mut CoreMem {
        &mut self.mem
    }

    /// Fully flushes a thread's pipeline and restarts it at `pc` with the
    /// supplied architectural registers — the DLA reboot operation. The
    /// register-copy delay is charged by stalling fetch for `stall`
    /// cycles (64 in the paper).
    pub fn reboot_thread(&mut self, thread: usize, pc: u64, regs: [u64; Reg::COUNT], stall: u64) {
        self.squash_all(thread);
        let t = &mut self.threads[thread];
        t.arch_regs = regs;
        t.arch_pc = pc;
        t.fetch_pc = pc;
        t.fetch_stall_until = self.cycle + stall;
        t.halted = false;
        t.halted_fetch = false;
        t.last_branch_tag = 0;
        t.cursor_offset = 0;
        t.validated = [false; Reg::COUNT];
        for (i, &p) in t.rat.iter().enumerate() {
            self.prf.init(p, regs[i]);
        }
    }

    /// Advances the whole core by one cycle.
    pub fn step(&mut self) {
        self.counters.cycles.inc();
        self.mem_used_this_cycle = 0;
        self.int_used_this_cycle = 0;
        self.fp_used_this_cycle = 0;
        self.stage_commit();
        self.stage_writeback();
        self.stage_issue();
        self.stage_rename();
        self.stage_fetch();
        for t in &mut self.threads {
            t.stats.fetch_occupancy.record(t.fetch_buffer.len() as u64);
        }
        self.cycle += 1;
    }

    /// Runs until all threads halt or `max_cycles` elapse; returns cycles
    /// executed.
    pub fn run(&mut self, max_cycles: u64) -> u64 {
        let start = self.cycle;
        while !self.halted() && self.cycle - start < max_cycles {
            self.step();
        }
        self.cycle - start
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn stage_commit(&mut self) {
        let nthreads = self.threads.len();
        if nthreads == 0 {
            return;
        }
        let mut budget = self.cfg.commit_width;
        for k in 0..nthreads {
            let tid = (self.cycle as usize + k) % nthreads;
            while budget > 0 {
                if !self.commit_one(tid) {
                    break;
                }
                budget -= 1;
            }
        }
    }

    fn commit_one(&mut self, tid: usize) -> bool {
        let cycle = self.cycle;
        let t = &mut self.threads[tid];
        let Some(head) = t.rob.front() else {
            return false;
        };
        if head.stage != Stage::Done || head.exec_done > cycle {
            return false;
        }
        let e = t.rob.pop_front().expect("head exists");
        t.rob_head_seq = e.seq + 1;
        if let Some(rd) = e.inst.def() {
            if let Some(old) = e.dest_old {
                self.prf.free(old);
            }
            if let Some(v) = e.result {
                t.arch_regs[rd.index()] = v;
            }
        }
        t.arch_pc = e.actual_next_pc;
        if e.inst.is_store() {
            if let (Some(addr), Some(val)) = (e.addr, e.store_val) {
                t.mem.borrow_mut().store(addr, val);
                self.mem.store(addr, e.pc, cycle);
            }
            if t.store_queue.front() == Some(&e.seq) {
                t.store_queue.pop_front();
            }
        }
        if e.inst.op == Op::Halt {
            t.halted = true;
        }
        t.stats.committed += 1;
        if e.inst.is_cond_branch() {
            t.stats.cond_branches += 1;
        }
        if e.inst.is_load() {
            t.stats.loads += 1;
            if e.l1_miss {
                t.stats.l1d_load_misses += 1;
            }
        }
        self.counters.committed.inc();
        let sink = t.commit_sink.clone();
        if let Some(sink) = sink {
            let rec = CommitRecord {
                thread: tid,
                seq: e.seq,
                inst: e.inst,
                pc: e.pc,
                cycle,
                next_pc: e.actual_next_pc,
                taken: e.actual_taken,
                value: e.result,
                mem_addr: e.addr,
                l1_miss: e.l1_miss,
                l2_miss: e.l2_miss,
                tlb_miss: e.tlb_miss,
                dispatch_to_exec: e.exec_done.saturating_sub(e.dispatch_cycle),
            };
            sink.borrow_mut().on_commit(&rec);
        }
        true
    }

    // ------------------------------------------------------------------
    // Writeback / branch resolution / value validation
    // ------------------------------------------------------------------

    fn stage_writeback(&mut self) {
        let cycle = self.cycle;
        for tid in 0..self.threads.len() {
            let mut seq = self.threads[tid].rob_head_seq;
            loop {
                let t = &self.threads[tid];
                let idx = (seq - t.rob_head_seq) as usize;
                if idx >= t.rob.len() {
                    break;
                }
                let needs_resolve = {
                    let e = &t.rob[idx];
                    e.stage == Stage::Issued && e.exec_done <= cycle && !e.resolved
                };
                let this_seq = seq;
                seq += 1;
                if !needs_resolve {
                    continue;
                }
                if self.resolve_entry(tid, this_seq) {
                    break; // squashed everything younger
                }
            }
        }
    }

    /// Completes one instruction; returns true if it squashed younger ones.
    fn resolve_entry(&mut self, tid: usize, seq: u64) -> bool {
        let e = {
            let t = &mut self.threads[tid];
            let idx = (seq - t.rob_head_seq) as usize;
            let en = &mut t.rob[idx];
            en.stage = Stage::Done;
            en.resolved = true;
            *en
        };
        // Value-prediction validation.
        if let Some(pred) = e.vpred {
            self.counters.value_validations.inc();
            let actual = e.result.unwrap_or(0);
            let correct = actual == pred;
            if let Some(src) = self.threads[tid].value_source.clone() {
                src.borrow_mut().on_outcome(e.pc, correct);
            }
            if !correct {
                self.counters.value_mispredicts.inc();
                // Replay: squash younger instructions (which consumed the
                // bad value) and refetch after this instruction. The
                // instruction itself keeps its correct result.
                self.squash_younger(tid, seq, &e, false);
                return true;
            }
        }
        // Branch resolution.
        if e.inst.is_branch() {
            let mispredicted = e.actual_next_pc != e.pred_next_pc;
            if e.inst.is_cond_branch() {
                let taken = e.actual_taken.unwrap_or(false);
                self.threads[tid].dir.resolve(e.pc, taken, mispredicted);
            }
            if e.actual_taken.unwrap_or(true) {
                self.threads[tid].btb.update(e.pc, e.actual_next_pc);
            }
            if mispredicted {
                self.counters.branch_mispredicts.inc();
                self.squash_younger(tid, seq, &e, true);
                return true;
            }
        }
        false
    }

    /// Squashes all entries younger than `seq` and redirects fetch after
    /// the squashing entry `e`. `was_branch_mispredict` selects the
    /// front-end repair flavour.
    fn squash_younger(&mut self, tid: usize, seq: u64, e: &RobEntry, was_branch_mispredict: bool) {
        let cycle = self.cycle;
        {
            let t = &mut self.threads[tid];
            while let Some(back) = t.rob.back() {
                if back.seq <= seq {
                    break;
                }
                let victim = t.rob.pop_back().expect("back exists");
                if let Some(rd) = victim.inst.def() {
                    if let (Some(new), Some(old)) = (victim.dest_new, victim.dest_old) {
                        t.rat[rd.index()] = old;
                        self.prf.free(new);
                    }
                }
                if victim.inst.is_store() && t.store_queue.back() == Some(&victim.seq) {
                    t.store_queue.pop_back();
                }
                self.counters.squashed.inc();
            }
            t.next_seq = seq + 1;
            t.fetch_buffer.clear();
            t.decode_pipe.clear();
            t.validated = [false; Reg::COUNT];
            // Redirect fetch down the architecturally correct path.
            t.fetch_pc = e.actual_next_pc;
            t.fetch_stall_until = cycle + 1;
            t.halted_fetch = false;
            // Repair speculative front-end state to just-after `e`.
            t.dir.restore(e.dir_snapshot, e.actual_taken);
            t.ras.restore(e.ras_snapshot);
            if matches!(
                e.inst.branch_kind(),
                Some(BranchKind::Call | BranchKind::IndCall)
            ) {
                t.ras.push(e.pc + INST_BYTES);
            }
            // Restore the value-reuse alignment cursor.
            if e.inst.is_cond_branch() {
                t.last_branch_tag = e.branch_tag;
                t.cursor_offset = 0;
                t.next_local_tag = e.branch_tag + 1;
            } else {
                t.last_branch_tag = e.branch_tag;
                t.cursor_offset = e.branch_offset;
                t.next_local_tag = e.branch_tag + 1;
            }
            let _ = was_branch_mispredict;
        }
        self.iq.retain(|q| q.thread != tid || q.seq <= seq);
    }

    /// Squashes the entire pipeline state of a thread (reboot).
    fn squash_all(&mut self, tid: usize) {
        let t = &mut self.threads[tid];
        while let Some(e) = t.rob.pop_back() {
            if let Some(rd) = e.inst.def() {
                if let (Some(new), Some(old)) = (e.dest_new, e.dest_old) {
                    t.rat[rd.index()] = old;
                    self.prf.free(new);
                }
            }
            self.counters.squashed.inc();
        }
        t.rob_head_seq = t.next_seq;
        t.store_queue.clear();
        t.fetch_buffer.clear();
        t.decode_pipe.clear();
        t.ras = Ras::new();
        t.validated = [false; Reg::COUNT];
        t.next_local_tag = 1;
        self.iq.retain(|q| q.thread != tid);
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn fu_available(&self, class: FuClass) -> bool {
        match class {
            FuClass::IntAlu | FuClass::Branch | FuClass::IntMul => {
                self.int_used_this_cycle < self.cfg.int_units
            }
            FuClass::IntDiv => {
                self.int_used_this_cycle < self.cfg.int_units
                    && self.int_busy_until.iter().any(|&b| b <= self.cycle)
            }
            FuClass::Mem => self.mem_used_this_cycle < self.cfg.mem_units,
            FuClass::Fp => self.fp_used_this_cycle < self.cfg.fp_units,
            FuClass::FpDiv => {
                self.fp_used_this_cycle < self.cfg.fp_units
                    && self.fp_busy_until.iter().any(|&b| b <= self.cycle)
            }
        }
    }

    fn fu_consume(&mut self, class: FuClass, done: u64) {
        let cycle = self.cycle;
        match class {
            FuClass::IntAlu | FuClass::Branch | FuClass::IntMul => {
                self.int_used_this_cycle += 1;
            }
            FuClass::IntDiv => {
                self.int_used_this_cycle += 1;
                if let Some(b) = self.int_busy_until.iter_mut().find(|b| **b <= cycle) {
                    *b = done;
                }
            }
            FuClass::Mem => self.mem_used_this_cycle += 1,
            FuClass::Fp => self.fp_used_this_cycle += 1,
            FuClass::FpDiv => {
                self.fp_used_this_cycle += 1;
                if let Some(b) = self.fp_busy_until.iter_mut().find(|b| **b <= cycle) {
                    *b = done;
                }
            }
        }
    }

    fn stage_issue(&mut self) {
        let mut issued = 0usize;
        let mut i = 0;
        while i < self.iq.len() && issued < self.cfg.issue_width {
            let q = self.iq[i];
            match self.try_issue(q.thread, q.seq) {
                IssueResult::Issued => {
                    self.iq.remove(i);
                    issued += 1;
                }
                IssueResult::NotReady => i += 1,
                IssueResult::Gone => {
                    self.iq.remove(i);
                }
            }
        }
    }

    fn entry_index(&self, tid: usize, seq: u64) -> Option<usize> {
        let t = &self.threads[tid];
        if seq < t.rob_head_seq {
            return None;
        }
        let idx = (seq - t.rob_head_seq) as usize;
        (idx < t.rob.len() && t.rob[idx].seq == seq).then_some(idx)
    }

    fn try_issue(&mut self, tid: usize, seq: u64) -> IssueResult {
        let cycle = self.cycle;
        let Some(idx) = self.entry_index(tid, seq) else {
            return IssueResult::Gone;
        };
        let e = self.threads[tid].rob[idx];
        if e.stage != Stage::Dispatched || e.dispatch_cycle >= cycle {
            return IssueResult::NotReady;
        }
        for src in e.src.iter().flatten() {
            if !self.prf.is_ready(*src, cycle) {
                return IssueResult::NotReady;
            }
        }
        let class = e.inst.fu_class();
        if !self.fu_available(class) {
            return IssueResult::NotReady;
        }
        let prefetch_only = e.inst.is_load()
            && self.threads[tid]
                .filter
                .clone()
                .map(|f| f.borrow_mut().prefetch_only(e.pc))
                .unwrap_or(false);
        if e.inst.is_load() && !prefetch_only && !self.load_may_issue(tid, seq) {
            return IssueResult::NotReady;
        }
        let a = e.src[0].map(|p| self.prf.read(p)).unwrap_or(0);
        let b = e.src[1].map(|p| self.prf.read(p)).unwrap_or(0);
        self.counters
            .rf_reads
            .add(e.src.iter().flatten().count() as u64);
        self.counters.executed.inc();
        let seq_pc = e.pc + INST_BYTES;
        let mut result: Option<u64> = None;
        let mut actual_taken: Option<bool> = None;
        let mut actual_next = seq_pc;
        let mut exec_done = cycle + e.inst.latency();
        let mut addr = None;
        let mut store_val = None;
        let mut flags = (false, false, false);
        match e.inst.op {
            Op::Ld => {
                let a_addr = mem_addr(&e.inst, a);
                addr = Some(a_addr);
                let (ready, value, fl) = self.execute_load(tid, seq, a_addr, e.pc);
                // Prefetch payloads (skeleton loads with dead results)
                // touch the memory system but never stall the pipeline.
                exec_done = if prefetch_only { cycle + 3 } else { ready };
                result = Some(value);
                flags = fl;
            }
            Op::St => {
                let a_addr = mem_addr(&e.inst, a);
                addr = Some(a_addr);
                store_val = Some(b);
                exec_done = cycle + 1;
            }
            Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu => {
                let mut taken = eval_cond(e.inst.op, a, b);
                if let Some(ov) = self.threads[tid].branch_override.clone() {
                    if let Some(forced) = ov.borrow().force(e.pc) {
                        taken = forced;
                    }
                }
                actual_taken = Some(taken);
                actual_next = if taken { e.inst.imm as u64 } else { seq_pc };
            }
            Op::Jal => {
                actual_next = e.inst.imm as u64;
                if e.inst.def().is_some() {
                    result = Some(seq_pc);
                }
            }
            Op::Jalr => {
                actual_next = a.wrapping_add(e.inst.imm as u64) & !3;
                if e.inst.def().is_some() {
                    result = Some(seq_pc);
                }
            }
            Op::Nop | Op::Halt => {}
            _ => {
                result = Some(eval_alu(e.inst.op, a, b, e.inst.imm));
            }
        }
        if e.inst.is_load() {
            self.counters.loads.inc();
        } else if e.inst.is_store() {
            self.counters.stores.inc();
        }
        self.fu_consume(class, exec_done);
        // Write the PRF early; readiness gates visibility. For correctly
        // value-predicted instructions, keep the early availability the
        // prediction established (same value, earlier ready).
        if let (Some(p), Some(v)) = (e.dest_new, result) {
            match e.vpred {
                Some(pv) if pv == v => {} // prediction already in place
                _ => {
                    self.prf.write(p, v, exec_done);
                    self.counters.rf_writes.inc();
                }
            }
        }
        let t = &mut self.threads[tid];
        let en = &mut t.rob[idx];
        en.stage = Stage::Issued;
        en.exec_done = exec_done;
        en.result = result;
        en.actual_taken = actual_taken;
        en.actual_next_pc = actual_next;
        en.addr = addr;
        en.store_val = store_val;
        en.l1_miss = flags.0;
        en.l2_miss = flags.1;
        en.tlb_miss = flags.2;
        IssueResult::Issued
    }

    fn load_may_issue(&self, tid: usize, seq: u64) -> bool {
        let t = &self.threads[tid];
        for &sseq in &t.store_queue {
            if sseq >= seq {
                break;
            }
            let idx = (sseq - t.rob_head_seq) as usize;
            if t.rob[idx].addr.is_none() {
                return false; // unresolved older store address
            }
        }
        true
    }

    /// Executes a load: forwards from the store queue when possible,
    /// otherwise accesses the data cache. Returns `(ready, value,
    /// (l1_miss, l2_miss, tlb_miss))`.
    fn execute_load(
        &mut self,
        tid: usize,
        seq: u64,
        addr: u64,
        pc: u64,
    ) -> (u64, u64, (bool, bool, bool)) {
        let cycle = self.cycle;
        let mut forwarded: Option<u64> = None;
        {
            let t = &self.threads[tid];
            for &sseq in t.store_queue.iter().rev() {
                if sseq >= seq {
                    continue;
                }
                let idx = (sseq - t.rob_head_seq) as usize;
                let se = &t.rob[idx];
                if se.addr == Some(addr) {
                    forwarded = se.store_val;
                    break;
                }
            }
        }
        if let Some(v) = forwarded {
            return (cycle + 2, v, (false, false, false));
        }
        let value = self.threads[tid].mem.borrow_mut().load(addr);
        let out = self.mem.load(addr, pc, cycle);
        (
            out.ready.max(cycle + 1),
            value,
            (!out.l1_hit, !out.l2_hit, out.tlb_penalty > 0),
        )
    }

    // ------------------------------------------------------------------
    // Rename / dispatch
    // ------------------------------------------------------------------

    fn stage_rename(&mut self) {
        let nthreads = self.threads.len();
        if nthreads == 0 {
            return;
        }
        // Drain the fetch buffer into the decode pipe (the decode stage
        // proper), which imposes the front-end depth without consuming
        // fetch-buffer capacity.
        let cycle = self.cycle;
        let pipe_cap = self.cfg.decode_width * self.cfg.frontend_depth as usize + 1;
        let mut drain_budget = self.cfg.decode_width;
        for k in 0..nthreads {
            let tid = (cycle as usize + k) % nthreads;
            let depth = self.cfg.frontend_depth;
            let t = &mut self.threads[tid];
            while drain_budget > 0 && t.decode_pipe.len() < pipe_cap && !t.fetch_buffer.is_empty() {
                let mut f = t.fetch_buffer.pop_front().expect("nonempty");
                f.decode_ready = cycle + depth;
                t.decode_pipe.push_back(f);
                drain_budget -= 1;
            }
        }
        let mut budget = self.cfg.decode_width;
        let mut renamed_per_thread = vec![0u64; nthreads];
        for k in 0..nthreads {
            let tid = (self.cycle as usize + k) % nthreads;
            while budget > 0 && self.rename_one(tid) {
                budget -= 1;
                renamed_per_thread[tid] += 1;
            }
        }
        let absorbed: u64 = renamed_per_thread.iter().sum();
        if budget > 0 && self.backend_has_room() && self.threads.iter().any(|t| !t.halted) {
            self.counters.fetch_bubble_insts.add(budget as u64);
        }
        for (tid, n) in renamed_per_thread.iter().enumerate() {
            self.threads[tid].stats.renamed_per_cycle.record(*n);
        }
        self.counters.decoded.add(absorbed);
    }

    fn backend_has_room(&self) -> bool {
        self.threads.iter().any(|t| t.rob.len() < self.cfg.rob_size)
            && self.iq.len() < self.cfg.iq_size
    }

    fn rename_one(&mut self, tid: usize) -> bool {
        let cycle = self.cycle;
        if self.iq.len() >= self.cfg.iq_size || self.prf.available() == 0 {
            return false;
        }
        {
            let t = &self.threads[tid];
            if t.rob.len() >= self.cfg.rob_size {
                return false;
            }
            let Some(f) = t.decode_pipe.front() else {
                return false;
            };
            if f.decode_ready > cycle {
                return false;
            }
            if f.inst.is_store() && t.store_queue.len() >= self.cfg.lsq_size {
                return false;
            }
        }
        let f = self.threads[tid]
            .decode_pipe
            .pop_front()
            .expect("presence checked");
        // Value-prediction lookup (main-thread value reuse).
        let mut vpred = None;
        if let Some(src) = self.threads[tid].value_source.clone() {
            vpred = src
                .borrow_mut()
                .predict(f.pc, f.branch_tag, f.branch_offset);
        }
        let t = &mut self.threads[tid];
        let seq = t.next_seq;
        t.next_seq += 1;
        let src = [
            f.inst.uses()[0].map(|r| t.rat[r.index()]),
            f.inst.uses()[1].map(|r| t.rat[r.index()]),
        ];
        let (dest_new, dest_old) = match f.inst.def() {
            Some(rd) => {
                let p = self.prf.alloc().expect("availability checked");
                let old = t.rat[rd.index()];
                t.rat[rd.index()] = p;
                (Some(p), Some(old))
            }
            None => (None, None),
        };
        // Validation-skip scoreboard (paper Fig 4): an ALU instruction
        // whose sources are all validated-predicted values and which
        // itself has a value prediction need not execute for validation.
        let mut skip_validation = false;
        if let Some(v) = vpred {
            self.counters.value_predictions.inc();
            let alu_like = !f.inst.is_mem() && !f.inst.is_branch();
            let n_sources = f.inst.uses().iter().flatten().count();
            let all_sources_validated = f
                .inst
                .uses()
                .iter()
                .flatten()
                .all(|r| t.validated[r.index()]);
            if alu_like && n_sources > 0 && all_sources_validated {
                skip_validation = true;
                self.counters.value_validation_skips.inc();
            }
            if let Some(p) = dest_new {
                self.prf.write(p, v, cycle + 1);
                self.counters.rf_writes.inc();
            }
        }
        if let Some(rd) = f.inst.def() {
            t.validated[rd.index()] = vpred.is_some();
        }
        let is_store = f.inst.is_store();
        let entry = RobEntry {
            seq,
            pc: f.pc,
            inst: f.inst,
            stage: if skip_validation {
                Stage::Done
            } else {
                Stage::Dispatched
            },
            exec_done: if skip_validation { cycle + 1 } else { u64::MAX },
            dest_new,
            dest_old,
            src,
            pred_next_pc: f.pred_next_pc,
            actual_taken: None,
            actual_next_pc: f.pc + INST_BYTES,
            dir_snapshot: f.dir_snapshot,
            ras_snapshot: f.ras_snapshot,
            branch_tag: f.branch_tag,
            branch_offset: f.branch_offset,
            addr: None,
            store_val: None,
            l1_miss: false,
            l2_miss: false,
            tlb_miss: false,
            vpred: if skip_validation { None } else { vpred },
            result: vpred,
            dispatch_cycle: cycle,
            resolved: skip_validation,
        };
        t.rob.push_back(entry);
        if is_store {
            t.store_queue.push_back(seq);
        }
        self.counters.rob_writes.inc();
        if !skip_validation {
            self.iq.push(IqEntry { thread: tid, seq });
            self.counters.iq_writes.inc();
        }
        true
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn stage_fetch(&mut self) {
        for tid in 0..self.threads.len() {
            self.fetch_thread(tid);
        }
    }

    fn fetch_thread(&mut self, tid: usize) {
        let cycle = self.cycle;
        if self.threads[tid].halted
            || self.threads[tid].halted_fetch
            || self.threads[tid].fetch_stall_until > cycle
        {
            return;
        }
        let mut pushed = 0usize;
        let mut slots = 0usize;
        let max_slots = self.cfg.fetch_width * 2;
        let mut current_line = u64::MAX;
        while pushed < self.cfg.fetch_width && slots < max_slots {
            if self.threads[tid].fetch_buffer.len() >= self.cfg.fetch_buffer {
                break;
            }
            let pc = self.threads[tid].fetch_pc;
            let line = pc & !63;
            if line != current_line {
                let (ready, hit) = self.mem.inst_fetch(pc, cycle);
                self.counters.icache_lines.inc();
                if self.cfg.fetch_masks && !hit {
                    // Skeleton masks (2 bits/inst) live elsewhere in the
                    // binary: one mask line covers 16 instruction lines.
                    // Fetch it alongside the instruction line on a miss.
                    let mask_addr = MASK_BASE + (line >> 4);
                    let (mready, _mhit) = self.mem.inst_fetch(mask_addr & !63, cycle);
                    let t = &mut self.threads[tid];
                    t.fetch_stall_until = t.fetch_stall_until.max(mready);
                }
                if !hit {
                    let t = &mut self.threads[tid];
                    t.fetch_stall_until = t.fetch_stall_until.max(ready);
                    break;
                }
                current_line = line;
            }
            let Some(inst) = self.program.fetch(pc) else {
                // Ran off the binary (deep wrong path): wait for a squash.
                self.threads[tid].halted_fetch = true;
                return;
            };
            slots += 1;
            // Skeleton masking: deleted instructions consume a fetch slot
            // but never enter the fetch buffer (paper §III-A iii).
            if let Some(filter) = self.threads[tid].filter.clone() {
                if !filter.borrow_mut().keep(pc) {
                    self.counters.mask_deleted.inc();
                    self.threads[tid].fetch_pc = pc + INST_BYTES;
                    continue;
                }
            }
            let mut next_pc = pc + INST_BYTES;
            let mut is_taken_branch = false;
            let kind = inst.branch_kind();
            if matches!(kind, Some(BranchKind::Cond)) {
                self.counters.bpred_lookups.inc();
            }
            let t = &mut self.threads[tid];
            let dir_snapshot = t.dir.snapshot();
            let ras_snapshot = t.ras.snapshot();
            match kind {
                Some(BranchKind::Cond) => match t.dir.predict(pc) {
                    Some(taken) => {
                        if taken {
                            next_pc = inst.imm as u64;
                            is_taken_branch = true;
                        }
                    }
                    None => {
                        // BOQ empty: stall fetch this cycle.
                        return;
                    }
                },
                Some(BranchKind::Jump) => {
                    next_pc = inst.imm as u64;
                    is_taken_branch = true;
                }
                Some(BranchKind::Call) => {
                    next_pc = inst.imm as u64;
                    t.ras.push(pc + INST_BYTES);
                    is_taken_branch = true;
                }
                Some(BranchKind::Ret) => {
                    next_pc = t
                        .ras
                        .pop()
                        .or_else(|| t.btb.predict(pc))
                        .unwrap_or(pc + INST_BYTES);
                    is_taken_branch = true;
                }
                Some(BranchKind::IndCall) | Some(BranchKind::IndJump) => {
                    next_pc = t
                        .dir
                        .indirect_target(pc)
                        .or_else(|| t.btb.predict(pc))
                        .unwrap_or(pc + INST_BYTES);
                    if matches!(kind, Some(BranchKind::IndCall)) {
                        t.ras.push(pc + INST_BYTES);
                    }
                    is_taken_branch = true;
                }
                None => {}
            }
            let (branch_tag, branch_offset);
            if inst.is_cond_branch() {
                let tag = t.dir.last_tag().unwrap_or_else(|| {
                    let g = t.next_local_tag;
                    t.next_local_tag += 1;
                    g
                });
                branch_tag = tag;
                branch_offset = 0;
                t.last_branch_tag = tag;
                t.cursor_offset = 0;
            } else {
                t.cursor_offset = t.cursor_offset.saturating_add(1);
                branch_tag = t.last_branch_tag;
                branch_offset = t.cursor_offset;
            }
            t.fetch_buffer.push_back(FetchedInst {
                pc,
                inst,
                pred_next_pc: next_pc,
                dir_snapshot,
                ras_snapshot,
                decode_ready: 0, // assigned when drained into the decode pipe
                branch_tag,
                branch_offset,
            });
            t.fetch_pc = next_pc;
            pushed += 1;
            self.counters.fetched.inc();
            if inst.op == Op::Halt {
                t.halted_fetch = true;
                break;
            }
            if is_taken_branch {
                break; // one taken branch per cycle
            }
        }
        self.threads[tid]
            .stats
            .fetched_per_cycle
            .record(pushed as u64);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueResult {
    Issued,
    NotReady,
    Gone,
}
