//! The cycle-stepped out-of-order core.
//!
//! One [`Core`] owns a private memory hierarchy ([`CoreMem`]) and one or
//! more hardware threads (SMT). Each cycle advances commit → writeback →
//! issue → rename → fetch, so results flow strictly forward in time.
//!
//! The model is *execute-in-execute*: functional results are computed when
//! an instruction issues, using real values held in the physical register
//! file. Wrong-path instructions therefore execute real (garbage-input)
//! work and pollute caches — exactly the effect decoupled look-ahead is
//! designed to absorb on behalf of the main thread.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use r3dla_bpred::{Btb, BtbConfig, Ras, RasState};
use r3dla_isa::{
    eval_alu, eval_cond, mem_addr, BranchKind, FuClass, Inst, Op, Program, Reg, INST_BYTES,
};
use r3dla_mem::CoreMem;
use r3dla_stats::Histogram;

use crate::config::CoreConfig;
use crate::counters::ActivityCounters;
use crate::iface::{
    BranchOverride, CommitRecord, CommitSink, FetchDirection, FetchFilter, ThreadMem, ValueSource,
};
use crate::prf::Prf;

/// Base address where skeleton mask bits live in the binary image; the
/// look-ahead front end fetches mask lines from here (paper §III-A iii).
pub const MASK_BASE: u64 = 0x0800_0000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Dispatched,
    Issued,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    pc: u64,
    inst: Inst,
    stage: Stage,
    exec_done: u64,
    dest_new: Option<u16>,
    dest_old: Option<u16>,
    src: [Option<u16>; 2],
    // Branch bookkeeping.
    pred_next_pc: u64,
    actual_taken: Option<bool>,
    actual_next_pc: u64,
    dir_snapshot: u64,
    ras_snapshot: RasState,
    // Value-reuse alignment context (tag of the governing conditional
    // branch and distance from it).
    branch_tag: u64,
    branch_offset: u32,
    // Memory bookkeeping.
    addr: Option<u64>,
    store_val: Option<u64>,
    l1_miss: bool,
    l2_miss: bool,
    tlb_miss: bool,
    // Value prediction.
    vpred: Option<u64>,
    // Results & stats.
    result: Option<u64>,
    dispatch_cycle: u64,
    resolved: bool,
}

#[derive(Debug, Clone, Copy)]
struct IqEntry {
    thread: usize,
    seq: u64,
}

#[derive(Debug, Clone)]
struct FetchedInst {
    pc: u64,
    inst: Inst,
    pred_next_pc: u64,
    dir_snapshot: u64,
    ras_snapshot: RasState,
    decode_ready: u64,
    branch_tag: u64,
    branch_offset: u32,
}

/// Per-thread results exposed after simulation.
#[derive(Debug, Default, Clone)]
pub struct ThreadStats {
    /// Committed instruction count.
    pub committed: u64,
    /// Conditional branches committed.
    pub cond_branches: u64,
    /// L1D load misses observed at execute (committed loads only).
    pub l1d_load_misses: u64,
    /// Loads committed.
    pub loads: u64,
    /// Occupancy histogram of the fetch buffer (sampled every cycle).
    pub fetch_occupancy: Histogram,
    /// Histogram of instructions renamed per cycle (decode supply).
    pub renamed_per_cycle: Histogram,
    /// Histogram of instructions fetched per cycle (I-side supply).
    pub fetched_per_cycle: Histogram,
}

struct Thread {
    // Front end.
    fetch_pc: u64,
    fetch_stall_until: u64,
    fetch_buffer: VecDeque<FetchedInst>,
    /// Decode/rename pipeline registers: instructions drained from the
    /// fetch buffer spend `frontend_depth` cycles here, modelling the
    /// 20-stage pipe without consuming fetch-buffer capacity.
    decode_pipe: VecDeque<FetchedInst>,
    dir: Box<dyn FetchDirection>,
    btb: Btb,
    ras: Ras,
    filter: Option<Rc<RefCell<dyn FetchFilter>>>,
    // Value-reuse alignment: tag of the last fetched conditional branch
    // and the distance of the fetch cursor from it.
    last_branch_tag: u64,
    cursor_offset: u32,
    next_local_tag: u64,
    halted_fetch: bool,
    // Rename state.
    rat: [u16; Reg::COUNT],
    validated: [bool; Reg::COUNT],
    // Backend.
    rob: VecDeque<RobEntry>,
    rob_head_seq: u64,
    next_seq: u64,
    store_queue: VecDeque<u64>, // seqs of in-flight stores, oldest first

    // Architectural state.
    arch_regs: [u64; Reg::COUNT],
    arch_pc: u64,
    mem: Rc<RefCell<dyn ThreadMem>>,
    halted: bool,
    // Hooks.
    value_source: Option<Rc<RefCell<dyn ValueSource>>>,
    commit_sink: Option<Rc<RefCell<dyn CommitSink>>>,
    branch_override: Option<Rc<RefCell<dyn BranchOverride>>>,
    // Stats.
    stats: ThreadStats,
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread")
            .field("fetch_pc", &self.fetch_pc)
            .field("committed", &self.stats.committed)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

/// A cycle-stepped out-of-order core.
pub struct Core {
    cfg: CoreConfig,
    program: Rc<Program>,
    mem: CoreMem,
    threads: Vec<Thread>,
    prf: Prf,
    iq: Vec<IqEntry>,
    cycle: u64,
    int_busy_until: Vec<u64>,
    fp_busy_until: Vec<u64>,
    mem_used_this_cycle: usize,
    int_used_this_cycle: usize,
    fp_used_this_cycle: usize,
    /// Activity counters (consumed by the energy model).
    pub counters: ActivityCounters,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("cycle", &self.cycle)
            .field("threads", &self.threads.len())
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates a core running `program` against the given private
    /// hierarchy. Threads are added with [`Core::add_thread`].
    pub fn new(cfg: CoreConfig, program: Rc<Program>, mem: CoreMem) -> Self {
        let prf = Prf::new(cfg.prf_size, 0);
        Self {
            int_busy_until: vec![0; cfg.int_units],
            fp_busy_until: vec![0; cfg.fp_units],
            mem_used_this_cycle: 0,
            int_used_this_cycle: 0,
            fp_used_this_cycle: 0,
            cfg,
            program,
            mem,
            threads: Vec::new(),
            prf,
            iq: Vec::new(),
            cycle: 0,
            counters: ActivityCounters::default(),
        }
    }

    /// Adds a hardware thread starting at `entry` with architectural
    /// registers `regs`, fed by `dir` and viewing memory through `mem`.
    /// Returns the thread id.
    ///
    /// # Panics
    ///
    /// Panics if the PRF cannot seat another thread's architectural state.
    pub fn add_thread(
        &mut self,
        entry: u64,
        regs: [u64; Reg::COUNT],
        dir: Box<dyn FetchDirection>,
        mem: Rc<RefCell<dyn ThreadMem>>,
    ) -> usize {
        let mut rat = [0u16; Reg::COUNT];
        for (i, r) in rat.iter_mut().enumerate() {
            let p = self.prf.alloc().expect("PRF too small for thread state");
            self.prf.init(p, regs[i]);
            *r = p;
        }
        self.threads.push(Thread {
            fetch_pc: entry,
            fetch_stall_until: 0,
            fetch_buffer: VecDeque::with_capacity(self.cfg.fetch_buffer),
            decode_pipe: VecDeque::new(),
            dir,
            btb: Btb::new(BtbConfig::paper()),
            ras: Ras::new(),
            filter: None,
            last_branch_tag: 0,
            cursor_offset: 0,
            next_local_tag: 1,
            halted_fetch: false,
            rat,
            validated: [false; Reg::COUNT],
            rob: VecDeque::with_capacity(self.cfg.rob_size),
            rob_head_seq: 0,
            next_seq: 0,
            store_queue: VecDeque::new(),
            arch_regs: regs,
            arch_pc: entry,
            mem,
            halted: false,
            value_source: None,
            commit_sink: None,
            branch_override: None,
            stats: ThreadStats::default(),
        });
        self.threads.len() - 1
    }

    /// Functionally warms a thread's branch-direction source with one
    /// architectural outcome (no-op for queue-fed sources). Part of the
    /// sampled-simulation warmup surface; see
    /// [`FetchDirection::warm_outcome`].
    pub fn warm_branch(&mut self, thread: usize, pc: u64, taken: bool) {
        self.threads[thread].dir.warm_outcome(pc, taken);
    }

    /// Attaches a branch-direction override (bias-converted skeleton
    /// branches in a look-ahead thread).
    pub fn set_branch_override(&mut self, thread: usize, ov: Rc<RefCell<dyn BranchOverride>>) {
        self.threads[thread].branch_override = Some(ov);
    }

    /// Attaches a fetch filter (skeleton mask) to a thread.
    pub fn set_fetch_filter(&mut self, thread: usize, filter: Rc<RefCell<dyn FetchFilter>>) {
        self.threads[thread].filter = Some(filter);
    }

    /// Attaches a value-prediction source to a thread.
    pub fn set_value_source(&mut self, thread: usize, src: Rc<RefCell<dyn ValueSource>>) {
        self.threads[thread].value_source = Some(src);
    }

    /// Attaches a commit sink to a thread.
    pub fn set_commit_sink(&mut self, thread: usize, sink: Rc<RefCell<dyn CommitSink>>) {
        self.threads[thread].commit_sink = Some(sink);
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Whether every thread has committed a halt.
    pub fn halted(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// Whether thread `t` has halted.
    pub fn thread_halted(&self, t: usize) -> bool {
        self.threads[t].halted
    }

    /// Per-thread statistics.
    pub fn thread_stats(&self, t: usize) -> &ThreadStats {
        &self.threads[t].stats
    }

    /// Architectural (committed) register state of a thread — the source
    /// for DLA reboot copies.
    pub fn arch_regs(&self, t: usize) -> [u64; Reg::COUNT] {
        self.threads[t].arch_regs
    }

    /// Architectural next PC of a thread.
    pub fn arch_pc(&self, t: usize) -> u64 {
        self.threads[t].arch_pc
    }

    /// Committed instruction count of a thread.
    pub fn committed(&self, t: usize) -> u64 {
        self.threads[t].stats.committed
    }

    /// Number of in-flight (renamed, uncommitted) instructions in a
    /// thread's ROB.
    pub fn in_flight(&self, t: usize) -> usize {
        self.threads[t].rob.len()
    }

    /// Access to the private memory hierarchy.
    pub fn mem(&self) -> &CoreMem {
        &self.mem
    }

    /// Mutable access to the private memory hierarchy (prefetch hints).
    pub fn mem_mut(&mut self) -> &mut CoreMem {
        &mut self.mem
    }

    /// Fully flushes a thread's pipeline and restarts it at `pc` with the
    /// supplied architectural registers — the DLA reboot operation. The
    /// register-copy delay is charged by stalling fetch for `stall`
    /// cycles (64 in the paper).
    pub fn reboot_thread(&mut self, thread: usize, pc: u64, regs: [u64; Reg::COUNT], stall: u64) {
        self.squash_all(thread);
        let t = &mut self.threads[thread];
        t.arch_regs = regs;
        t.arch_pc = pc;
        t.fetch_pc = pc;
        t.fetch_stall_until = self.cycle + stall;
        t.halted = false;
        t.halted_fetch = false;
        t.last_branch_tag = 0;
        t.cursor_offset = 0;
        t.validated = [false; Reg::COUNT];
        for (i, &p) in t.rat.iter().enumerate() {
            self.prf.init(p, regs[i]);
        }
    }

    /// Advances the whole core by one cycle.
    pub fn step(&mut self) {
        self.counters.cycles.inc();
        self.mem_used_this_cycle = 0;
        self.int_used_this_cycle = 0;
        self.fp_used_this_cycle = 0;
        self.stage_commit();
        self.stage_writeback();
        self.stage_issue();
        self.stage_rename();
        self.stage_fetch();
        for t in &mut self.threads {
            t.stats.fetch_occupancy.record(t.fetch_buffer.len() as u64);
        }
        self.cycle += 1;
    }

    /// Runs until all threads halt or `max_cycles` elapse; returns cycles
    /// executed. Quiescent stretches are fast-forwarded through
    /// [`Core::next_event_at`] / [`Core::skip_to`]; the result is
    /// identical to stepping every cycle.
    pub fn run(&mut self, max_cycles: u64) -> u64 {
        let start = self.cycle;
        let mut last_probe = u64::MAX;
        while !self.halted() && self.cycle - start < max_cycles {
            self.step_or_skip(start.saturating_add(max_cycles), &mut last_probe);
        }
        self.cycle - start
    }

    /// One fast-path iteration of a single-core run loop: fast-forwards
    /// to the next event when the previous iteration already looked idle
    /// (and quiescence proves out), else steps one cycle. `cap` bounds
    /// the skip target; `last_probe` carries the idleness gate across
    /// calls (seed it with `u64::MAX`). Shared by [`Core::run`], the
    /// single-core simulators and the profiler so the gate logic cannot
    /// drift between them.
    pub fn step_or_skip(&mut self, cap: u64, last_probe: &mut u64) {
        // Only pay for the quiescence proof when the previous cycle
        // already looked idle.
        let probe = self.activity_probe();
        if probe == *last_probe {
            if let Some(wake) = self.next_event_at() {
                self.skip_to(wake.min(cap));
                return;
            }
        }
        *last_probe = probe;
        self.step();
    }

    /// The core as an event *source* for a discrete-event kernel: one
    /// scheduler quantum ([`step_or_skip`](Core::step_or_skip) — a single
    /// cycle, or a proven-quiescent skip capped at `cap`), returning the
    /// cycle at which the kernel must next dispatch this core. After a
    /// skip that is exactly the wakeup [`next_event_at`](Core::next_event_at)
    /// reported; after a step it is the very next cycle (the core may act
    /// again immediately). The kernel thus never polls
    /// [`activity_probe`](Core::activity_probe) itself — the probe memo
    /// lives in `last_probe`, owned by the caller, and the quiescence
    /// question stays inside the core.
    pub fn advance_quantum(&mut self, cap: u64, last_probe: &mut u64) -> u64 {
        self.step_or_skip(cap, last_probe);
        self.cycle
    }

    // ------------------------------------------------------------------
    // Event-driven fast path
    // ------------------------------------------------------------------

    /// A cheap monotone activity signature: unchanged across a cycle
    /// means that cycle (very likely) did no observable work, so a run
    /// loop should bother asking [`Core::next_event_at`]. It may miss
    /// rare progress kinds (a writeback with nothing else, a
    /// drain-only cycle) — that only costs one wasted query, never
    /// correctness, because `next_event_at` re-proves quiescence itself.
    pub fn activity_probe(&self) -> u64 {
        let c = &self.counters;
        c.fetched.get()
            + c.mask_deleted.get()
            + c.icache_lines.get()
            + c.decoded.get()
            + c.executed.get()
            + c.committed.get()
            + c.squashed.get()
    }

    /// Earliest-activity query for the event-driven fast path.
    ///
    /// Returns `None` when the core may change state at the *current*
    /// cycle — the caller must [`step`](Core::step). Returns `Some(wake)`
    /// with `wake > cycle()` when the core is provably quiescent until
    /// `wake`: every cycle before it would only advance clocks and record
    /// per-cycle occupancy samples, which [`Core::skip_to`] replays in
    /// bulk. The bound aggregates, per thread, the fetch-stall expiry,
    /// the decode-pipe head's ready cycle, the commit head's completion,
    /// every in-flight instruction's `exec_done`, and each issue-queue
    /// entry's earliest source-ready cycle (for loads, also the earliest
    /// resolve of a blocking older store).
    ///
    /// `wake` is a lower bound, not a prediction: waking early merely
    /// re-asks the question next cycle; waking late can never happen. A
    /// direction-starved thread (BOQ-fed fetch at a conditional branch
    /// with an empty queue) is quiescent with no intrinsic wake — only a
    /// sibling core can refill its queue, so the system-level scheduler
    /// combines both cores' bounds.
    pub fn next_event_at(&self) -> Option<u64> {
        let now = self.cycle;
        let mut wake = u64::MAX;
        let pipe_cap = self.cfg.decode_width * self.cfg.frontend_depth as usize + 1;
        for t in &self.threads {
            // Fetch buffer → decode pipe drain possible this cycle?
            if !t.fetch_buffer.is_empty() && t.decode_pipe.len() < pipe_cap {
                return None;
            }
            // Rename.
            if let Some(f) = t.decode_pipe.front() {
                if f.decode_ready > now {
                    wake = wake.min(f.decode_ready);
                } else if self.iq.len() < self.cfg.iq_size
                    && self.prf.available() > 0
                    && t.rob.len() < self.cfg.rob_size
                    && !(f.inst.is_store() && t.store_queue.len() >= self.cfg.lsq_size)
                {
                    return None; // rename absorbs it this cycle
                }
                // Otherwise blocked on backend capacity, which frees only
                // at an issue or commit event — both accounted for below.
            }
            // Fetch.
            if !t.halted && !t.halted_fetch {
                if t.fetch_stall_until > now {
                    wake = wake.min(t.fetch_stall_until);
                } else if t.fetch_buffer.len() < self.cfg.fetch_buffer {
                    match self.program.fetch(t.fetch_pc) {
                        // Direction-starved: quiescent with no intrinsic
                        // wake (see above).
                        Some(inst) if inst.is_cond_branch() && !t.dir.available() => {}
                        // Anything else fetches — or mutates cache and
                        // front-end state trying to.
                        _ => return None,
                    }
                }
                // A full fetch buffer only records the per-cycle
                // zero-fetch sample, replayed by `skip_to`.
            }
            // Commit: a completed head retires at its exec_done.
            if let Some(head) = t.rob.front() {
                if head.stage == Stage::Done {
                    if head.exec_done <= now {
                        return None;
                    }
                    wake = wake.min(head.exec_done);
                }
            }
            // Writeback: issued, unresolved entries complete at exec_done.
            for e in &t.rob {
                if e.stage == Stage::Issued && !e.resolved {
                    if e.exec_done <= now {
                        return None;
                    }
                    wake = wake.min(e.exec_done);
                }
            }
        }
        // Issue: earliest cycle any queued entry could become ready.
        for q in &self.iq {
            let Some(idx) = self.entry_index(q.thread, q.seq) else {
                return None; // stale entry: compacting it away is an event
            };
            let t = &self.threads[q.thread];
            let e = &t.rob[idx];
            let mut ready = Self::entry_ready_bound(&self.prf, e);
            // A load also waits for older stores with unresolved
            // addresses. Skeleton-filtered threads may issue some loads
            // as prefetch payloads that bypass that check, so the
            // refinement applies only to unfiltered threads (for the
            // others the plain source bound is already a valid floor).
            if e.inst.is_load() && t.filter.is_none() {
                ready = ready.max(Self::load_block_bound(&self.prf, t, q.seq));
            }
            if ready <= now {
                return None;
            }
            wake = wake.min(ready);
        }
        Some(wake)
    }

    /// Lower bound on the cycle at which `e` could issue: past its
    /// dispatch cycle with every present source readable.
    fn entry_ready_bound(prf: &Prf, e: &RobEntry) -> u64 {
        let mut ready = e.dispatch_cycle + 1;
        for src in e.src.iter().flatten() {
            ready = ready.max(prf.ready_at(*src));
        }
        ready
    }

    /// Lower bound on the cycle at which the oldest address-unresolved
    /// store blocking loads at `seq` could resolve (0 when none blocks).
    fn load_block_bound(prf: &Prf, t: &Thread, seq: u64) -> u64 {
        for &sseq in &t.store_queue {
            if sseq >= seq {
                break;
            }
            let idx = (sseq - t.rob_head_seq) as usize;
            let se = &t.rob[idx];
            if se.addr.is_none() {
                // The store resolves its address no earlier than it can
                // issue.
                return Self::entry_ready_bound(prf, se);
            }
        }
        0
    }

    /// Bulk-advances a quiescent core to `target`, replaying exactly the
    /// per-cycle effects that idle stepping would have produced: the
    /// cycle counter, the fetch-bubble accounting, and the per-thread
    /// occupancy/zero-throughput samples.
    ///
    /// The caller must have proven quiescence with
    /// [`Core::next_event_at`] and must not pass a `target` beyond the
    /// returned wake cycle; the two together keep counters and state
    /// byte-identical to the cycle-by-cycle path.
    pub fn skip_to(&mut self, target: u64) {
        let n = target.saturating_sub(self.cycle);
        if n == 0 {
            return;
        }
        self.counters.cycles.add(n);
        if self.cfg.decode_width > 0
            && self.backend_has_room()
            && self.threads.iter().any(|t| !t.halted)
        {
            self.counters
                .fetch_bubble_insts
                .add(n * self.cfg.decode_width as u64);
        }
        let now = self.cycle;
        let fetch_cap = self.cfg.fetch_buffer;
        for t in &mut self.threads {
            t.stats
                .fetch_occupancy
                .record_n(t.fetch_buffer.len() as u64, n);
            t.stats.renamed_per_cycle.record_n(0, n);
            // Only a buffer-full thread reaches its per-cycle zero-fetch
            // sample; stalled, starved or halted threads return before
            // recording.
            if !t.halted
                && !t.halted_fetch
                && t.fetch_stall_until <= now
                && t.fetch_buffer.len() >= fetch_cap
            {
                t.stats.fetched_per_cycle.record_n(0, n);
            }
        }
        self.mem_used_this_cycle = 0;
        self.int_used_this_cycle = 0;
        self.fp_used_this_cycle = 0;
        self.cycle = target;
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn stage_commit(&mut self) {
        let nthreads = self.threads.len();
        if nthreads == 0 {
            return;
        }
        let mut budget = self.cfg.commit_width;
        for k in 0..nthreads {
            let tid = (self.cycle as usize + k) % nthreads;
            while budget > 0 {
                if !self.commit_one(tid) {
                    break;
                }
                budget -= 1;
            }
        }
    }

    fn commit_one(&mut self, tid: usize) -> bool {
        let cycle = self.cycle;
        let t = &mut self.threads[tid];
        let Some(head) = t.rob.front() else {
            return false;
        };
        if head.stage != Stage::Done || head.exec_done > cycle {
            return false;
        }
        let e = t.rob.pop_front().expect("head exists");
        t.rob_head_seq = e.seq + 1;
        if let Some(rd) = e.inst.def() {
            if let Some(old) = e.dest_old {
                self.prf.free(old);
            }
            if let Some(v) = e.result {
                t.arch_regs[rd.index()] = v;
            }
        }
        t.arch_pc = e.actual_next_pc;
        if e.inst.is_store() {
            if let (Some(addr), Some(val)) = (e.addr, e.store_val) {
                t.mem.borrow_mut().store(addr, val);
                self.mem.store(addr, e.pc, cycle);
            }
            if t.store_queue.front() == Some(&e.seq) {
                t.store_queue.pop_front();
            }
        }
        if e.inst.op == Op::Halt {
            t.halted = true;
        }
        t.stats.committed += 1;
        if e.inst.is_cond_branch() {
            t.stats.cond_branches += 1;
        }
        if e.inst.is_load() {
            t.stats.loads += 1;
            if e.l1_miss {
                t.stats.l1d_load_misses += 1;
            }
        }
        self.counters.committed.inc();
        // Borrow the sink in place — no per-commit `Rc` refcount churn.
        // The record is built entirely from the popped entry, so no core
        // borrow is live while the sink runs.
        if let Some(sink) = &self.threads[tid].commit_sink {
            let rec = CommitRecord {
                thread: tid,
                seq: e.seq,
                inst: e.inst,
                pc: e.pc,
                cycle,
                next_pc: e.actual_next_pc,
                taken: e.actual_taken,
                value: e.result,
                mem_addr: e.addr,
                l1_miss: e.l1_miss,
                l2_miss: e.l2_miss,
                tlb_miss: e.tlb_miss,
                dispatch_to_exec: e.exec_done.saturating_sub(e.dispatch_cycle),
            };
            sink.borrow_mut().on_commit(&rec);
        }
        true
    }

    // ------------------------------------------------------------------
    // Writeback / branch resolution / value validation
    // ------------------------------------------------------------------

    fn stage_writeback(&mut self) {
        let cycle = self.cycle;
        for tid in 0..self.threads.len() {
            let mut seq = self.threads[tid].rob_head_seq;
            loop {
                let t = &self.threads[tid];
                let idx = (seq - t.rob_head_seq) as usize;
                if idx >= t.rob.len() {
                    break;
                }
                let needs_resolve = {
                    let e = &t.rob[idx];
                    e.stage == Stage::Issued && e.exec_done <= cycle && !e.resolved
                };
                let this_seq = seq;
                seq += 1;
                if !needs_resolve {
                    continue;
                }
                if self.resolve_entry(tid, this_seq) {
                    break; // squashed everything younger
                }
            }
        }
    }

    /// Completes one instruction; returns true if it squashed younger ones.
    fn resolve_entry(&mut self, tid: usize, seq: u64) -> bool {
        let e = {
            let t = &mut self.threads[tid];
            let idx = (seq - t.rob_head_seq) as usize;
            let en = &mut t.rob[idx];
            en.stage = Stage::Done;
            en.resolved = true;
            *en
        };
        // Value-prediction validation.
        if let Some(pred) = e.vpred {
            self.counters.value_validations.inc();
            let actual = e.result.unwrap_or(0);
            let correct = actual == pred;
            if let Some(src) = &self.threads[tid].value_source {
                src.borrow_mut().on_outcome(e.pc, correct);
            }
            if !correct {
                self.counters.value_mispredicts.inc();
                // Replay: squash younger instructions (which consumed the
                // bad value) and refetch after this instruction. The
                // instruction itself keeps its correct result.
                self.squash_younger(tid, seq, &e, false);
                return true;
            }
        }
        // Branch resolution.
        if e.inst.is_branch() {
            let mispredicted = e.actual_next_pc != e.pred_next_pc;
            if e.inst.is_cond_branch() {
                let taken = e.actual_taken.unwrap_or(false);
                self.threads[tid].dir.resolve(e.pc, taken, mispredicted);
            }
            if e.actual_taken.unwrap_or(true) {
                self.threads[tid].btb.update(e.pc, e.actual_next_pc);
            }
            if mispredicted {
                self.counters.branch_mispredicts.inc();
                self.squash_younger(tid, seq, &e, true);
                return true;
            }
        }
        false
    }

    /// Squashes all entries younger than `seq` and redirects fetch after
    /// the squashing entry `e`. `was_branch_mispredict` selects the
    /// front-end repair flavour.
    fn squash_younger(&mut self, tid: usize, seq: u64, e: &RobEntry, was_branch_mispredict: bool) {
        let cycle = self.cycle;
        {
            let t = &mut self.threads[tid];
            while let Some(back) = t.rob.back() {
                if back.seq <= seq {
                    break;
                }
                let victim = t.rob.pop_back().expect("back exists");
                if let Some(rd) = victim.inst.def() {
                    if let (Some(new), Some(old)) = (victim.dest_new, victim.dest_old) {
                        t.rat[rd.index()] = old;
                        self.prf.free(new);
                    }
                }
                if victim.inst.is_store() && t.store_queue.back() == Some(&victim.seq) {
                    t.store_queue.pop_back();
                }
                self.counters.squashed.inc();
            }
            t.next_seq = seq + 1;
            t.fetch_buffer.clear();
            t.decode_pipe.clear();
            t.validated = [false; Reg::COUNT];
            // Redirect fetch down the architecturally correct path.
            t.fetch_pc = e.actual_next_pc;
            t.fetch_stall_until = cycle + 1;
            t.halted_fetch = false;
            // Repair speculative front-end state to just-after `e`.
            t.dir.restore(e.dir_snapshot, e.actual_taken);
            t.ras.restore(e.ras_snapshot);
            if matches!(
                e.inst.branch_kind(),
                Some(BranchKind::Call | BranchKind::IndCall)
            ) {
                t.ras.push(e.pc + INST_BYTES);
            }
            // Restore the value-reuse alignment cursor.
            if e.inst.is_cond_branch() {
                t.last_branch_tag = e.branch_tag;
                t.cursor_offset = 0;
                t.next_local_tag = e.branch_tag + 1;
            } else {
                t.last_branch_tag = e.branch_tag;
                t.cursor_offset = e.branch_offset;
                t.next_local_tag = e.branch_tag + 1;
            }
            let _ = was_branch_mispredict;
        }
        self.iq.retain(|q| q.thread != tid || q.seq <= seq);
    }

    /// Squashes the entire pipeline state of a thread (reboot).
    fn squash_all(&mut self, tid: usize) {
        let t = &mut self.threads[tid];
        while let Some(e) = t.rob.pop_back() {
            if let Some(rd) = e.inst.def() {
                if let (Some(new), Some(old)) = (e.dest_new, e.dest_old) {
                    t.rat[rd.index()] = old;
                    self.prf.free(new);
                }
            }
            self.counters.squashed.inc();
        }
        t.rob_head_seq = t.next_seq;
        t.store_queue.clear();
        t.fetch_buffer.clear();
        t.decode_pipe.clear();
        t.ras = Ras::new();
        t.validated = [false; Reg::COUNT];
        t.next_local_tag = 1;
        self.iq.retain(|q| q.thread != tid);
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn fu_available(&self, class: FuClass) -> bool {
        match class {
            FuClass::IntAlu | FuClass::Branch | FuClass::IntMul => {
                self.int_used_this_cycle < self.cfg.int_units
            }
            FuClass::IntDiv => {
                self.int_used_this_cycle < self.cfg.int_units
                    && self.int_busy_until.iter().any(|&b| b <= self.cycle)
            }
            FuClass::Mem => self.mem_used_this_cycle < self.cfg.mem_units,
            FuClass::Fp => self.fp_used_this_cycle < self.cfg.fp_units,
            FuClass::FpDiv => {
                self.fp_used_this_cycle < self.cfg.fp_units
                    && self.fp_busy_until.iter().any(|&b| b <= self.cycle)
            }
        }
    }

    fn fu_consume(&mut self, class: FuClass, done: u64) {
        let cycle = self.cycle;
        match class {
            FuClass::IntAlu | FuClass::Branch | FuClass::IntMul => {
                self.int_used_this_cycle += 1;
            }
            FuClass::IntDiv => {
                self.int_used_this_cycle += 1;
                if let Some(b) = self.int_busy_until.iter_mut().find(|b| **b <= cycle) {
                    *b = done;
                }
            }
            FuClass::Mem => self.mem_used_this_cycle += 1,
            FuClass::Fp => self.fp_used_this_cycle += 1,
            FuClass::FpDiv => {
                self.fp_used_this_cycle += 1;
                if let Some(b) = self.fp_busy_until.iter_mut().find(|b| **b <= cycle) {
                    *b = done;
                }
            }
        }
    }

    fn stage_issue(&mut self) {
        // Single age-ordered pass with in-place compaction: issued and
        // stale entries are dropped by not copying them forward, so one
        // cycle costs O(iq) instead of O(iq²) `Vec::remove` shifts.
        // Entries past the issue-width cutoff are copied through
        // untouched, exactly as the shifting loop left them.
        let mut issued = 0usize;
        let mut kept = 0usize;
        for i in 0..self.iq.len() {
            let q = self.iq[i];
            if issued < self.cfg.issue_width {
                match self.try_issue(q.thread, q.seq) {
                    IssueResult::Issued => {
                        issued += 1;
                        continue;
                    }
                    IssueResult::Gone => continue,
                    IssueResult::NotReady => {}
                }
            }
            self.iq[kept] = q;
            kept += 1;
        }
        self.iq.truncate(kept);
    }

    fn entry_index(&self, tid: usize, seq: u64) -> Option<usize> {
        let t = &self.threads[tid];
        if seq < t.rob_head_seq {
            return None;
        }
        let idx = (seq - t.rob_head_seq) as usize;
        (idx < t.rob.len() && t.rob[idx].seq == seq).then_some(idx)
    }

    fn try_issue(&mut self, tid: usize, seq: u64) -> IssueResult {
        let cycle = self.cycle;
        let Some(idx) = self.entry_index(tid, seq) else {
            return IssueResult::Gone;
        };
        let e = self.threads[tid].rob[idx];
        if e.stage != Stage::Dispatched || e.dispatch_cycle >= cycle {
            return IssueResult::NotReady;
        }
        for src in e.src.iter().flatten() {
            if !self.prf.is_ready(*src, cycle) {
                return IssueResult::NotReady;
            }
        }
        let class = e.inst.fu_class();
        if !self.fu_available(class) {
            return IssueResult::NotReady;
        }
        let prefetch_only = e.inst.is_load()
            && self.threads[tid]
                .filter
                .as_ref()
                .map(|f| f.borrow_mut().prefetch_only(e.pc))
                .unwrap_or(false);
        if e.inst.is_load() && !prefetch_only && !self.load_may_issue(tid, seq) {
            return IssueResult::NotReady;
        }
        let a = e.src[0].map(|p| self.prf.read(p)).unwrap_or(0);
        let b = e.src[1].map(|p| self.prf.read(p)).unwrap_or(0);
        self.counters
            .rf_reads
            .add(e.src.iter().flatten().count() as u64);
        self.counters.executed.inc();
        let seq_pc = e.pc + INST_BYTES;
        let mut result: Option<u64> = None;
        let mut actual_taken: Option<bool> = None;
        let mut actual_next = seq_pc;
        let mut exec_done = cycle + e.inst.latency();
        let mut addr = None;
        let mut store_val = None;
        let mut flags = (false, false, false);
        match e.inst.op {
            Op::Ld => {
                let a_addr = mem_addr(&e.inst, a);
                addr = Some(a_addr);
                let (ready, value, fl) = self.execute_load(tid, seq, a_addr, e.pc);
                // Prefetch payloads (skeleton loads with dead results)
                // touch the memory system but never stall the pipeline.
                exec_done = if prefetch_only { cycle + 3 } else { ready };
                result = Some(value);
                flags = fl;
            }
            Op::St => {
                let a_addr = mem_addr(&e.inst, a);
                addr = Some(a_addr);
                store_val = Some(b);
                exec_done = cycle + 1;
            }
            Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu => {
                let mut taken = eval_cond(e.inst.op, a, b);
                if let Some(ov) = &self.threads[tid].branch_override {
                    if let Some(forced) = ov.borrow().force(e.pc) {
                        taken = forced;
                    }
                }
                actual_taken = Some(taken);
                actual_next = if taken { e.inst.imm as u64 } else { seq_pc };
            }
            Op::Jal => {
                actual_next = e.inst.imm as u64;
                if e.inst.def().is_some() {
                    result = Some(seq_pc);
                }
            }
            Op::Jalr => {
                actual_next = a.wrapping_add(e.inst.imm as u64) & !3;
                if e.inst.def().is_some() {
                    result = Some(seq_pc);
                }
            }
            Op::Nop | Op::Halt => {}
            _ => {
                result = Some(eval_alu(e.inst.op, a, b, e.inst.imm));
            }
        }
        if e.inst.is_load() {
            self.counters.loads.inc();
        } else if e.inst.is_store() {
            self.counters.stores.inc();
        }
        self.fu_consume(class, exec_done);
        // Write the PRF early; readiness gates visibility. For correctly
        // value-predicted instructions, keep the early availability the
        // prediction established (same value, earlier ready).
        if let (Some(p), Some(v)) = (e.dest_new, result) {
            match e.vpred {
                Some(pv) if pv == v => {} // prediction already in place
                _ => {
                    self.prf.write(p, v, exec_done);
                    self.counters.rf_writes.inc();
                }
            }
        }
        let t = &mut self.threads[tid];
        let en = &mut t.rob[idx];
        en.stage = Stage::Issued;
        en.exec_done = exec_done;
        en.result = result;
        en.actual_taken = actual_taken;
        en.actual_next_pc = actual_next;
        en.addr = addr;
        en.store_val = store_val;
        en.l1_miss = flags.0;
        en.l2_miss = flags.1;
        en.tlb_miss = flags.2;
        IssueResult::Issued
    }

    fn load_may_issue(&self, tid: usize, seq: u64) -> bool {
        let t = &self.threads[tid];
        for &sseq in &t.store_queue {
            if sseq >= seq {
                break;
            }
            let idx = (sseq - t.rob_head_seq) as usize;
            if t.rob[idx].addr.is_none() {
                return false; // unresolved older store address
            }
        }
        true
    }

    /// Executes a load: forwards from the store queue when possible,
    /// otherwise accesses the data cache. Returns `(ready, value,
    /// (l1_miss, l2_miss, tlb_miss))`.
    fn execute_load(
        &mut self,
        tid: usize,
        seq: u64,
        addr: u64,
        pc: u64,
    ) -> (u64, u64, (bool, bool, bool)) {
        let cycle = self.cycle;
        let mut forwarded: Option<u64> = None;
        {
            let t = &self.threads[tid];
            for &sseq in t.store_queue.iter().rev() {
                if sseq >= seq {
                    continue;
                }
                let idx = (sseq - t.rob_head_seq) as usize;
                let se = &t.rob[idx];
                if se.addr == Some(addr) {
                    forwarded = se.store_val;
                    break;
                }
            }
        }
        if let Some(v) = forwarded {
            return (cycle + 2, v, (false, false, false));
        }
        let value = self.threads[tid].mem.borrow_mut().load(addr);
        let out = self.mem.load(addr, pc, cycle);
        (
            out.ready.max(cycle + 1),
            value,
            (!out.l1_hit, !out.l2_hit, out.tlb_penalty > 0),
        )
    }

    // ------------------------------------------------------------------
    // Rename / dispatch
    // ------------------------------------------------------------------

    fn stage_rename(&mut self) {
        let nthreads = self.threads.len();
        if nthreads == 0 {
            return;
        }
        // Drain the fetch buffer into the decode pipe (the decode stage
        // proper), which imposes the front-end depth without consuming
        // fetch-buffer capacity.
        let cycle = self.cycle;
        let pipe_cap = self.cfg.decode_width * self.cfg.frontend_depth as usize + 1;
        let mut drain_budget = self.cfg.decode_width;
        for k in 0..nthreads {
            let tid = (cycle as usize + k) % nthreads;
            let depth = self.cfg.frontend_depth;
            let t = &mut self.threads[tid];
            while drain_budget > 0 && t.decode_pipe.len() < pipe_cap && !t.fetch_buffer.is_empty() {
                let mut f = t.fetch_buffer.pop_front().expect("nonempty");
                f.decode_ready = cycle + depth;
                t.decode_pipe.push_back(f);
                drain_budget -= 1;
            }
        }
        // Shared backend capacity is computed once per cycle and tracked
        // as the loop consumes it, instead of re-derived per renamed
        // instruction.
        let mut budget = self.cfg.decode_width;
        let mut iq_free = self.cfg.iq_size.saturating_sub(self.iq.len());
        let mut prf_free = self.prf.available();
        let mut renamed_per_thread = vec![0u64; nthreads];
        for k in 0..nthreads {
            let tid = (self.cycle as usize + k) % nthreads;
            while budget > 0 && self.rename_one(tid, &mut iq_free, &mut prf_free) {
                budget -= 1;
                renamed_per_thread[tid] += 1;
            }
        }
        let absorbed: u64 = renamed_per_thread.iter().sum();
        if budget > 0 && self.backend_has_room() && self.threads.iter().any(|t| !t.halted) {
            self.counters.fetch_bubble_insts.add(budget as u64);
        }
        for (tid, n) in renamed_per_thread.iter().enumerate() {
            self.threads[tid].stats.renamed_per_cycle.record(*n);
        }
        self.counters.decoded.add(absorbed);
    }

    fn backend_has_room(&self) -> bool {
        self.threads.iter().any(|t| t.rob.len() < self.cfg.rob_size)
            && self.iq.len() < self.cfg.iq_size
    }

    fn rename_one(&mut self, tid: usize, iq_free: &mut usize, prf_free: &mut usize) -> bool {
        let cycle = self.cycle;
        if *iq_free == 0 || *prf_free == 0 {
            return false;
        }
        {
            let t = &self.threads[tid];
            if t.rob.len() >= self.cfg.rob_size {
                return false;
            }
            let Some(f) = t.decode_pipe.front() else {
                return false;
            };
            if f.decode_ready > cycle {
                return false;
            }
            if f.inst.is_store() && t.store_queue.len() >= self.cfg.lsq_size {
                return false;
            }
        }
        let f = self.threads[tid]
            .decode_pipe
            .pop_front()
            .expect("presence checked");
        // Value-prediction lookup (main-thread value reuse).
        let mut vpred = None;
        if let Some(src) = &self.threads[tid].value_source {
            vpred = src
                .borrow_mut()
                .predict(f.pc, f.branch_tag, f.branch_offset);
        }
        let t = &mut self.threads[tid];
        let seq = t.next_seq;
        t.next_seq += 1;
        let src = [
            f.inst.uses()[0].map(|r| t.rat[r.index()]),
            f.inst.uses()[1].map(|r| t.rat[r.index()]),
        ];
        let (dest_new, dest_old) = match f.inst.def() {
            Some(rd) => {
                let p = self.prf.alloc().expect("availability checked");
                *prf_free -= 1;
                let old = t.rat[rd.index()];
                t.rat[rd.index()] = p;
                (Some(p), Some(old))
            }
            None => (None, None),
        };
        // Validation-skip scoreboard (paper Fig 4): an ALU instruction
        // whose sources are all validated-predicted values and which
        // itself has a value prediction need not execute for validation.
        let mut skip_validation = false;
        if let Some(v) = vpred {
            self.counters.value_predictions.inc();
            let alu_like = !f.inst.is_mem() && !f.inst.is_branch();
            let n_sources = f.inst.uses().iter().flatten().count();
            let all_sources_validated = f
                .inst
                .uses()
                .iter()
                .flatten()
                .all(|r| t.validated[r.index()]);
            if alu_like && n_sources > 0 && all_sources_validated {
                skip_validation = true;
                self.counters.value_validation_skips.inc();
            }
            if let Some(p) = dest_new {
                self.prf.write(p, v, cycle + 1);
                self.counters.rf_writes.inc();
            }
        }
        if let Some(rd) = f.inst.def() {
            t.validated[rd.index()] = vpred.is_some();
        }
        let is_store = f.inst.is_store();
        let entry = RobEntry {
            seq,
            pc: f.pc,
            inst: f.inst,
            stage: if skip_validation {
                Stage::Done
            } else {
                Stage::Dispatched
            },
            exec_done: if skip_validation { cycle + 1 } else { u64::MAX },
            dest_new,
            dest_old,
            src,
            pred_next_pc: f.pred_next_pc,
            actual_taken: None,
            actual_next_pc: f.pc + INST_BYTES,
            dir_snapshot: f.dir_snapshot,
            ras_snapshot: f.ras_snapshot,
            branch_tag: f.branch_tag,
            branch_offset: f.branch_offset,
            addr: None,
            store_val: None,
            l1_miss: false,
            l2_miss: false,
            tlb_miss: false,
            vpred: if skip_validation { None } else { vpred },
            result: vpred,
            dispatch_cycle: cycle,
            resolved: skip_validation,
        };
        t.rob.push_back(entry);
        if is_store {
            t.store_queue.push_back(seq);
        }
        self.counters.rob_writes.inc();
        if !skip_validation {
            self.iq.push(IqEntry { thread: tid, seq });
            *iq_free -= 1;
            self.counters.iq_writes.inc();
        }
        true
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn stage_fetch(&mut self) {
        for tid in 0..self.threads.len() {
            self.fetch_thread(tid);
        }
    }

    fn fetch_thread(&mut self, tid: usize) {
        let cycle = self.cycle;
        if self.threads[tid].halted
            || self.threads[tid].halted_fetch
            || self.threads[tid].fetch_stall_until > cycle
        {
            return;
        }
        let mut pushed = 0usize;
        let mut slots = 0usize;
        let max_slots = self.cfg.fetch_width * 2;
        let mut current_line = u64::MAX;
        while pushed < self.cfg.fetch_width && slots < max_slots {
            if self.threads[tid].fetch_buffer.len() >= self.cfg.fetch_buffer {
                break;
            }
            let pc = self.threads[tid].fetch_pc;
            // Decoded once here; consumed after the icache probe below.
            let fetched = self.program.fetch(pc);
            // Direction starvation (a BOQ-fed thread with an empty BOQ at
            // a conditional branch) stalls fetch before any cache or
            // predictor state is touched: the stalled cycles are then
            // perfectly quiescent, which is what lets `next_event_at`
            // prove the thread skippable while it waits for the queue.
            if let Some(inst) = &fetched {
                if inst.is_cond_branch() && !self.threads[tid].dir.available() {
                    return;
                }
            }
            let line = pc & !63;
            if line != current_line {
                let (ready, hit) = self.mem.inst_fetch(pc, cycle);
                self.counters.icache_lines.inc();
                if self.cfg.fetch_masks && !hit {
                    // Skeleton masks (2 bits/inst) live elsewhere in the
                    // binary: one mask line covers 16 instruction lines.
                    // Fetch it alongside the instruction line on a miss.
                    let mask_addr = MASK_BASE + (line >> 4);
                    let (mready, _mhit) = self.mem.inst_fetch(mask_addr & !63, cycle);
                    let t = &mut self.threads[tid];
                    t.fetch_stall_until = t.fetch_stall_until.max(mready);
                }
                if !hit {
                    let t = &mut self.threads[tid];
                    t.fetch_stall_until = t.fetch_stall_until.max(ready);
                    break;
                }
                current_line = line;
            }
            let Some(inst) = fetched else {
                // Ran off the binary (deep wrong path): wait for a squash.
                self.threads[tid].halted_fetch = true;
                return;
            };
            slots += 1;
            // Skeleton masking: deleted instructions consume a fetch slot
            // but never enter the fetch buffer (paper §III-A iii).
            let mask_deleted = match &self.threads[tid].filter {
                Some(filter) => !filter.borrow_mut().keep(pc),
                None => false,
            };
            if mask_deleted {
                self.counters.mask_deleted.inc();
                self.threads[tid].fetch_pc = pc + INST_BYTES;
                continue;
            }
            let mut next_pc = pc + INST_BYTES;
            let mut is_taken_branch = false;
            let kind = inst.branch_kind();
            if matches!(kind, Some(BranchKind::Cond)) {
                self.counters.bpred_lookups.inc();
            }
            let t = &mut self.threads[tid];
            let dir_snapshot = t.dir.snapshot();
            let ras_snapshot = t.ras.snapshot();
            match kind {
                Some(BranchKind::Cond) => match t.dir.predict(pc) {
                    Some(taken) => {
                        if taken {
                            next_pc = inst.imm as u64;
                            is_taken_branch = true;
                        }
                    }
                    None => {
                        // BOQ empty: stall fetch this cycle.
                        return;
                    }
                },
                Some(BranchKind::Jump) => {
                    next_pc = inst.imm as u64;
                    is_taken_branch = true;
                }
                Some(BranchKind::Call) => {
                    next_pc = inst.imm as u64;
                    t.ras.push(pc + INST_BYTES);
                    is_taken_branch = true;
                }
                Some(BranchKind::Ret) => {
                    next_pc = t
                        .ras
                        .pop()
                        .or_else(|| t.btb.predict(pc))
                        .unwrap_or(pc + INST_BYTES);
                    is_taken_branch = true;
                }
                Some(BranchKind::IndCall) | Some(BranchKind::IndJump) => {
                    next_pc = t
                        .dir
                        .indirect_target(pc)
                        .or_else(|| t.btb.predict(pc))
                        .unwrap_or(pc + INST_BYTES);
                    if matches!(kind, Some(BranchKind::IndCall)) {
                        t.ras.push(pc + INST_BYTES);
                    }
                    is_taken_branch = true;
                }
                None => {}
            }
            let (branch_tag, branch_offset);
            if inst.is_cond_branch() {
                let tag = t.dir.last_tag().unwrap_or_else(|| {
                    let g = t.next_local_tag;
                    t.next_local_tag += 1;
                    g
                });
                branch_tag = tag;
                branch_offset = 0;
                t.last_branch_tag = tag;
                t.cursor_offset = 0;
            } else {
                t.cursor_offset = t.cursor_offset.saturating_add(1);
                branch_tag = t.last_branch_tag;
                branch_offset = t.cursor_offset;
            }
            t.fetch_buffer.push_back(FetchedInst {
                pc,
                inst,
                pred_next_pc: next_pc,
                dir_snapshot,
                ras_snapshot,
                decode_ready: 0, // assigned when drained into the decode pipe
                branch_tag,
                branch_offset,
            });
            t.fetch_pc = next_pc;
            pushed += 1;
            self.counters.fetched.inc();
            if inst.op == Op::Halt {
                t.halted_fetch = true;
                break;
            }
            if is_taken_branch {
                break; // one taken branch per cycle
            }
        }
        self.threads[tid]
            .stats
            .fetched_per_cycle
            .record(pushed as u64);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueResult {
    Issued,
    NotReady,
    Gone,
}
