//! Core configuration.

/// Out-of-order core parameters.
///
/// Defaults follow the paper's Table I baseline: a 20-stage, 4-wide
/// pipeline with 192 ROB entries, 96 LSQ entries, 4 INT / 2 MEM / 4 FP
/// functional units. Build custom configurations with
/// [`CoreConfig::builder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle (slots scanned is twice this).
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub decode_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer capacity (per thread when SMT).
    pub rob_size: usize,
    /// Load/store-queue capacity (per thread when SMT).
    pub lsq_size: usize,
    /// Unified issue-queue capacity.
    pub iq_size: usize,
    /// Physical register file size (shared by all threads).
    pub prf_size: usize,
    /// Fetch-buffer (fetch-to-decode decoupling queue) capacity, in
    /// instructions. The paper's baseline uses 8; R3-DLA's FB uses 32.
    pub fetch_buffer: usize,
    /// Front-end depth in cycles from fetch to rename — models the
    /// 20-stage pipeline's branch-misprediction refill penalty.
    pub frontend_depth: u64,
    /// Integer functional units (ALU/MUL/DIV/branch share these).
    pub int_units: usize,
    /// Memory ports.
    pub mem_units: usize,
    /// Floating-point units.
    pub fp_units: usize,
    /// Whether this core fetches skeleton mask bits alongside
    /// instructions (look-ahead cores; paper §III-A iii).
    pub fetch_masks: bool,
}

impl CoreConfig {
    /// The paper's Table I baseline core.
    pub fn paper() -> Self {
        Self {
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 192,
            lsq_size: 96,
            iq_size: 60,
            prf_size: 320,
            fetch_buffer: 8,
            frontend_depth: 12,
            int_units: 4,
            mem_units: 2,
            fp_units: 4,
            fetch_masks: false,
        }
    }

    /// The paper's §IV-B3 wide SMT core (POWER9 SMT8-like):
    /// 16/12/16/16-wide with a 512-entry ROB.
    pub fn wide_smt() -> Self {
        Self {
            fetch_width: 16,
            decode_width: 12,
            issue_width: 16,
            commit_width: 16,
            rob_size: 512,
            lsq_size: 192,
            iq_size: 120,
            prf_size: 768,
            fetch_buffer: 16,
            frontend_depth: 12,
            int_units: 8,
            mem_units: 4,
            fp_units: 8,
            fetch_masks: false,
        }
    }

    /// One half of the wide core when split into two independent cores.
    pub fn half_core() -> Self {
        Self {
            fetch_width: 8,
            decode_width: 6,
            issue_width: 8,
            commit_width: 8,
            rob_size: 256,
            lsq_size: 96,
            iq_size: 60,
            prf_size: 448,
            fetch_buffer: 8,
            frontend_depth: 12,
            int_units: 4,
            mem_units: 2,
            fp_units: 4,
            fetch_masks: false,
        }
    }

    /// Starts a builder from the paper baseline.
    pub fn builder() -> CoreConfigBuilder {
        CoreConfigBuilder { cfg: Self::paper() }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Builder for [`CoreConfig`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone)]
pub struct CoreConfigBuilder {
    cfg: CoreConfig,
}

impl CoreConfigBuilder {
    /// Sets the fetch-buffer capacity.
    pub fn fetch_buffer(&mut self, n: usize) -> &mut Self {
        self.cfg.fetch_buffer = n;
        self
    }

    /// Sets all four pipeline widths at once.
    pub fn widths(
        &mut self,
        fetch: usize,
        decode: usize,
        issue: usize,
        commit: usize,
    ) -> &mut Self {
        self.cfg.fetch_width = fetch;
        self.cfg.decode_width = decode;
        self.cfg.issue_width = issue;
        self.cfg.commit_width = commit;
        self
    }

    /// Sets the ROB capacity.
    pub fn rob(&mut self, n: usize) -> &mut Self {
        self.cfg.rob_size = n;
        self
    }

    /// Sets the LSQ capacity.
    pub fn lsq(&mut self, n: usize) -> &mut Self {
        self.cfg.lsq_size = n;
        self
    }

    /// Enables skeleton-mask fetching (look-ahead core front end).
    pub fn fetch_masks(&mut self, on: bool) -> &mut Self {
        self.cfg.fetch_masks = on;
        self
    }

    /// Sets the front-end depth (mispredict refill penalty).
    pub fn frontend_depth(&mut self, d: u64) -> &mut Self {
        self.cfg.frontend_depth = d;
        self
    }

    /// Finalizes the configuration.
    pub fn build(&self) -> CoreConfig {
        self.cfg.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let c = CoreConfig::paper();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.rob_size, 192);
        assert_eq!(c.lsq_size, 96);
        assert_eq!(c.int_units, 4);
        assert_eq!(c.mem_units, 2);
        assert_eq!(c.fp_units, 4);
        assert_eq!(c.fetch_buffer, 8);
    }

    #[test]
    fn builder_overrides_fields() {
        let c = CoreConfig::builder().fetch_buffer(32).rob(256).build();
        assert_eq!(c.fetch_buffer, 32);
        assert_eq!(c.rob_size, 256);
        assert_eq!(c.decode_width, 4); // untouched
    }

    #[test]
    fn wide_smt_matches_paper_text() {
        let c = CoreConfig::wide_smt();
        assert_eq!(
            (c.fetch_width, c.decode_width, c.issue_width, c.commit_width),
            (16, 12, 16, 16)
        );
        assert_eq!(c.rob_size, 512);
    }
}
