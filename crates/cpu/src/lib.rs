//! A cycle-stepped out-of-order core for the R3-DLA simulator.
//!
//! Models the paper's Table I baseline: a 20-stage, 4-wide out-of-order
//! pipeline with a 192-entry ROB, 96-entry LSQ, TAGE-class branch
//! prediction, BTB and RAS, plus everything decoupled look-ahead needs to
//! attach to it:
//!
//! * pluggable fetch-direction sources ([`FetchDirection`]) so the main
//!   thread can be fed from the Branch Outcome Queue;
//! * fetch filters ([`FetchFilter`]) so the look-ahead thread can delete
//!   skeleton-masked instructions at fetch;
//! * value-prediction sources ([`ValueSource`]) with replay-on-mispredict
//!   and the validation-skip scoreboard (paper Fig 4);
//! * commit sinks ([`CommitSink`]) from which the BOQ/FQ are generated;
//! * SMT: several hardware threads sharing one wide backend (paper
//!   §IV-B3).
//!
//! # Examples
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use r3dla_bpred::Tage;
//! use r3dla_cpu::{BaseMem, Core, CoreConfig, PredictorDirection};
//! use r3dla_isa::{Asm, Reg, VecMem, ArchState};
//! use r3dla_mem::{CoreMem, MemConfig, SharedLlc};
//!
//! // A counted loop.
//! let mut a = Asm::new();
//! let (i, n) = (Reg::int(10), Reg::int(11));
//! a.li(i, 0);
//! a.li(n, 100);
//! a.label("loop");
//! a.addi(i, i, 1);
//! a.blt(i, n, "loop");
//! a.halt();
//! let prog = Rc::new(a.finish().unwrap());
//!
//! let shared = Rc::new(RefCell::new(SharedLlc::new(&MemConfig::paper())));
//! let mem = CoreMem::new(&MemConfig::paper(), shared);
//! let mut core = Core::new(CoreConfig::paper(), Rc::clone(&prog), mem);
//! let vm = Rc::new(RefCell::new(VecMem::new()));
//! let dir = Box::new(PredictorDirection::new(Box::new(Tage::paper())));
//! let t = core.add_thread(
//!     prog.entry(),
//!     ArchState::new(prog.entry()).regs(),
//!     dir,
//!     Rc::new(RefCell::new(BaseMem(vm))),
//! );
//! core.run(100_000);
//! assert!(core.thread_halted(t));
//! assert_eq!(core.arch_regs(t)[10], 100);
//! ```

mod config;
mod core;
mod counters;
mod iface;
mod prf;

pub use crate::core::{Core, ThreadStats, MASK_BASE};
pub use config::{CoreConfig, CoreConfigBuilder};
pub use counters::ActivityCounters;
pub use iface::{
    BaseMem, BranchOverride, CommitRecord, CommitSink, FetchDirection, FetchFilter,
    PredictorDirection, ThreadMem, ValueSource,
};
pub use prf::Prf;

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_bpred::Tage;
    use r3dla_isa::{ArchState, Asm, Program, Reg, VecMem};
    use r3dla_mem::{CoreMem, MemConfig, SharedLlc};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn build_core(prog: &Rc<Program>) -> (Core, usize, Rc<RefCell<VecMem>>) {
        let shared = Rc::new(RefCell::new(SharedLlc::new(&MemConfig::paper())));
        let mem = CoreMem::new(&MemConfig::paper(), shared);
        let mut core = Core::new(CoreConfig::paper(), Rc::clone(prog), mem);
        let vm = Rc::new(RefCell::new(VecMem::new()));
        vm.borrow_mut().load_image(prog.image());
        let dir = Box::new(PredictorDirection::new(Box::new(Tage::paper())));
        let t = core.add_thread(
            prog.entry(),
            ArchState::new(prog.entry()).regs(),
            dir,
            Rc::new(RefCell::new(BaseMem(Rc::clone(&vm)))),
        );
        (core, t, vm)
    }

    /// Runs a program on the timing core and functionally, asserting the
    /// architectural end states agree — the golden-model check.
    fn check_against_functional(prog: Rc<Program>, max_cycles: u64) -> (Core, usize) {
        let (mut core, t, _vm) = build_core(&prog);
        core.run(max_cycles);
        assert!(core.thread_halted(t), "core did not halt");
        let mut st = ArchState::new(prog.entry());
        let mut fm = VecMem::new();
        fm.load_image(prog.image());
        let steps = r3dla_isa::run(&prog, &mut st, &mut fm, 100_000_000).expect("functional run");
        assert_eq!(
            core.committed(t),
            steps,
            "committed count must equal functional instruction count"
        );
        for r in 0..Reg::COUNT {
            assert_eq!(core.arch_regs(t)[r], st.regs()[r], "register {r} mismatch");
        }
        (core, t)
    }

    #[test]
    fn straightline_alu_program() {
        let mut a = Asm::new();
        let x = Reg::int(10);
        let y = Reg::int(11);
        a.li(x, 6);
        a.li(y, 7);
        a.mul(x, x, y);
        a.addi(x, x, 58);
        a.halt();
        check_against_functional(Rc::new(a.finish().unwrap()), 10_000);
    }

    #[test]
    fn loop_with_memory_matches_functional() {
        let mut a = Asm::new();
        let arr = a.data().words(&[0; 64]);
        let (i, n, base, v) = (Reg::int(10), Reg::int(11), Reg::int(12), Reg::int(13));
        a.li(i, 0);
        a.li(n, 64);
        a.li(base, arr as i64);
        a.label("loop");
        a.slli(v, i, 1); // v = 2i
        a.slli(Reg::int(14), i, 3);
        a.add(Reg::int(14), Reg::int(14), base);
        a.st(v, Reg::int(14), 0); // arr[i] = 2i
        a.ld(Reg::int(15), Reg::int(14), 0);
        a.add(Reg::int(16), Reg::int(16), Reg::int(15)); // acc += arr[i]
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let (core, t) = check_against_functional(Rc::new(a.finish().unwrap()), 200_000);
        // acc = sum of 2i for i in 0..64 = 64*63 = 4032.
        assert_eq!(core.arch_regs(t)[16], 4032);
    }

    #[test]
    fn store_to_load_forwarding_value_correct() {
        let mut a = Asm::new();
        let slot = a.data().words(&[0]);
        let b = Reg::int(10);
        a.li(b, slot as i64);
        a.li(Reg::int(11), 1234);
        a.st(Reg::int(11), b, 0);
        a.ld(Reg::int(12), b, 0); // must forward 1234
        a.addi(Reg::int(12), Reg::int(12), 1);
        a.halt();
        let (core, t) = check_against_functional(Rc::new(a.finish().unwrap()), 10_000);
        assert_eq!(core.arch_regs(t)[12], 1235);
    }

    #[test]
    fn calls_and_returns_match_functional() {
        let mut a = Asm::new();
        let x = Reg::int(10);
        a.li(x, 1);
        a.call("f");
        a.call("f");
        a.call("f");
        a.halt();
        a.label("f");
        a.add(x, x, x);
        a.ret();
        check_against_functional(Rc::new(a.finish().unwrap()), 20_000);
    }

    #[test]
    fn data_dependent_branches_match_functional() {
        // Branches whose direction depends on loaded data (predictor will
        // mispredict; squash/recovery must preserve semantics).
        let mut a = Asm::new();
        let mut vals = Vec::new();
        let mut rng = r3dla_stats::Rng::new(42);
        for _ in 0..128 {
            vals.push(rng.range_u64(0, 2));
        }
        let arr = a.data().words(&vals);
        let (i, n, base, v, acc) = (
            Reg::int(10),
            Reg::int(11),
            Reg::int(12),
            Reg::int(13),
            Reg::int(14),
        );
        a.li(i, 0);
        a.li(n, 128);
        a.li(base, arr as i64);
        a.label("loop");
        a.slli(v, i, 3);
        a.add(v, v, base);
        a.ld(v, v, 0);
        a.beq(v, Reg::ZERO, "skip");
        a.addi(acc, acc, 1);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let expected: u64 = vals.iter().sum();
        let (core, t) = check_against_functional(Rc::new(a.finish().unwrap()), 500_000);
        assert_eq!(core.arch_regs(t)[14], expected);
        assert!(
            core.counters.branch_mispredicts.get() > 0,
            "should mispredict sometimes"
        );
        assert!(core.counters.squashed.get() > 0, "squashes should occur");
    }

    #[test]
    fn division_and_fp_latencies_respected() {
        let mut a = Asm::new();
        let (x, y) = (Reg::int(10), Reg::int(11));
        a.li(x, 1000);
        a.li(y, 7);
        a.div(x, x, y); // 142
        a.cvtif(Reg::fp(1), x);
        a.fadd(Reg::fp(2), Reg::fp(1), Reg::fp(1));
        a.cvtfi(Reg::int(12), Reg::fp(2)); // 284
        a.halt();
        let (core, t) = check_against_functional(Rc::new(a.finish().unwrap()), 10_000);
        assert_eq!(core.arch_regs(t)[12], 284);
    }

    #[test]
    fn ipc_bounded_by_machine_width() {
        // A loop of independent ALU work: the I-cache warms quickly and
        // steady-state IPC should approach (but never exceed) the width.
        let mut a = Asm::new();
        let (i, n) = (Reg::int(10), Reg::int(11));
        a.li(i, 0);
        a.li(n, 2000);
        a.label("loop");
        for k in 0..16 {
            a.li(Reg::int(12 + (k % 8) as u8), k);
        }
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let prog = Rc::new(a.finish().unwrap());
        let (mut core, t, _) = build_core(&prog);
        core.run(200_000);
        assert!(core.thread_halted(t));
        let ipc = core.committed(t) as f64 / core.cycle() as f64;
        assert!(ipc <= 4.0 + 1e-9, "IPC {ipc} exceeds machine width");
        assert!(ipc > 1.5, "IPC {ipc} suspiciously low for pure ALU loop");
    }

    #[test]
    fn pointer_chase_is_memory_bound() {
        // Build a random cyclic permutation and chase it: every load
        // depends on the previous one and misses often.
        let mut rng = r3dla_stats::Rng::new(7);
        let n = 4096usize;
        let mut perm: Vec<u64> = (0..n as u64).collect();
        rng.shuffle(&mut perm);
        let mut a = Asm::new();
        let arr = a.data().alloc_words(n);
        for (i, &p) in perm.iter().enumerate() {
            a.data().put_word(arr + (i as u64) * 8, arr + p * 8);
        }
        let (cur, cnt, lim) = (Reg::int(10), Reg::int(11), Reg::int(12));
        a.li(cur, arr as i64);
        a.li(cnt, 0);
        a.li(lim, 2000);
        a.label("chase");
        a.ld(cur, cur, 0);
        a.addi(cnt, cnt, 1);
        a.blt(cnt, lim, "chase");
        a.halt();
        let prog = Rc::new(a.finish().unwrap());
        let (mut core, t, _) = build_core(&prog);
        core.run(3_000_000);
        assert!(core.thread_halted(t));
        let ipc = core.committed(t) as f64 / core.cycle() as f64;
        assert!(ipc < 1.0, "pointer chasing should be slow, IPC={ipc}");
    }

    #[test]
    fn wrong_path_work_is_counted() {
        // A hard-to-predict branch causes wrong-path execution; executed
        // must exceed committed.
        let mut rng = r3dla_stats::Rng::new(3);
        let vals: Vec<u64> = (0..256).map(|_| rng.range_u64(0, 2)).collect();
        let mut a = Asm::new();
        let arr = a.data().words(&vals);
        let (i, n, base, v, x) = (
            Reg::int(10),
            Reg::int(11),
            Reg::int(12),
            Reg::int(13),
            Reg::int(14),
        );
        a.li(i, 0);
        a.li(n, 256);
        a.li(base, arr as i64);
        a.label("loop");
        a.slli(v, i, 3);
        a.add(v, v, base);
        a.ld(v, v, 0);
        a.beq(v, Reg::ZERO, "zero");
        a.addi(x, x, 3);
        a.addi(x, x, 5);
        a.j("join");
        a.label("zero");
        a.addi(x, x, 1);
        a.addi(x, x, 2);
        a.label("join");
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let prog = Rc::new(a.finish().unwrap());
        let (mut core, t, _) = build_core(&prog);
        core.run(1_000_000);
        assert!(core.thread_halted(t));
        assert!(
            core.counters.executed.get() > core.committed(t),
            "wrong-path execution should inflate executed count"
        );
    }

    #[test]
    fn smt_two_threads_both_make_progress() {
        let mut a = Asm::new();
        let (i, n) = (Reg::int(10), Reg::int(11));
        a.li(i, 0);
        a.li(n, 2000);
        a.label("loop");
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let prog = Rc::new(a.finish().unwrap());
        let shared = Rc::new(RefCell::new(SharedLlc::new(&MemConfig::paper())));
        let mem = CoreMem::new(&MemConfig::paper(), shared);
        let mut core = Core::new(CoreConfig::wide_smt(), Rc::clone(&prog), mem);
        for _ in 0..2 {
            let vm = Rc::new(RefCell::new(VecMem::new()));
            let dir = Box::new(PredictorDirection::new(Box::new(Tage::paper())));
            core.add_thread(
                prog.entry(),
                ArchState::new(prog.entry()).regs(),
                dir,
                Rc::new(RefCell::new(BaseMem(vm))),
            );
        }
        core.run(1_000_000);
        assert!(core.thread_halted(0));
        assert!(core.thread_halted(1));
        assert_eq!(core.arch_regs(0)[10], 2000);
        assert_eq!(core.arch_regs(1)[10], 2000);
    }

    #[test]
    fn reboot_restarts_thread_with_new_state() {
        let mut a = Asm::new();
        a.label("spin");
        a.addi(Reg::int(10), Reg::int(10), 1);
        a.j("spin");
        a.halt();
        let prog = Rc::new(a.finish().unwrap());
        let (mut core, t, _) = build_core(&prog);
        for _ in 0..2000 {
            core.step();
        }
        let before = core.committed(t);
        assert!(before > 0);
        let mut regs = [0u64; Reg::COUNT];
        regs[10] = 5_000_000;
        core.reboot_thread(t, prog.entry(), regs, 64);
        // After reboot, the counter continues from the injected state.
        for _ in 0..2000 {
            core.step();
        }
        assert!(
            core.arch_regs(t)[10] >= 5_000_000,
            "reboot state not applied"
        );
    }

    #[test]
    fn fetch_buffer_capacity_is_respected() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let prog = Rc::new(a.finish().unwrap());
        let (mut core, t, _) = build_core(&prog);
        for _ in 0..200 {
            core.step();
        }
        let max_occ = core.thread_stats(t).fetch_occupancy.max().unwrap_or(0);
        assert!(
            max_occ <= CoreConfig::paper().fetch_buffer as u64,
            "occupancy {max_occ} exceeded capacity"
        );
    }
}
