//! A cycle-stepped out-of-order core for the R3-DLA simulator.
//!
//! Models the paper's Table I baseline: a 20-stage, 4-wide out-of-order
//! pipeline with a 192-entry ROB, 96-entry LSQ, TAGE-class branch
//! prediction, BTB and RAS, plus everything decoupled look-ahead needs to
//! attach to it:
//!
//! * pluggable fetch-direction sources ([`FetchDirection`]) so the main
//!   thread can be fed from the Branch Outcome Queue;
//! * fetch filters ([`FetchFilter`]) so the look-ahead thread can delete
//!   skeleton-masked instructions at fetch;
//! * value-prediction sources ([`ValueSource`]) with replay-on-mispredict
//!   and the validation-skip scoreboard (paper Fig 4);
//! * commit sinks ([`CommitSink`]) from which the BOQ/FQ are generated;
//! * SMT: several hardware threads sharing one wide backend (paper
//!   §IV-B3).
//!
//! # Examples
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use r3dla_bpred::Tage;
//! use r3dla_cpu::{BaseMem, Core, CoreConfig, PredictorDirection};
//! use r3dla_isa::{Asm, Reg, VecMem, ArchState};
//! use r3dla_mem::{CoreMem, MemConfig, SharedLlc};
//!
//! // A counted loop.
//! let mut a = Asm::new();
//! let (i, n) = (Reg::int(10), Reg::int(11));
//! a.li(i, 0);
//! a.li(n, 100);
//! a.label("loop");
//! a.addi(i, i, 1);
//! a.blt(i, n, "loop");
//! a.halt();
//! let prog = Rc::new(a.finish().unwrap());
//!
//! let shared = Rc::new(RefCell::new(SharedLlc::new(&MemConfig::paper())));
//! let mem = CoreMem::new(&MemConfig::paper(), shared);
//! let mut core = Core::new(CoreConfig::paper(), Rc::clone(&prog), mem);
//! let vm = Rc::new(RefCell::new(VecMem::new()));
//! let dir = Box::new(PredictorDirection::new(Box::new(Tage::paper())));
//! let t = core.add_thread(
//!     prog.entry(),
//!     ArchState::new(prog.entry()).regs(),
//!     dir,
//!     Rc::new(RefCell::new(BaseMem(vm))),
//! );
//! core.run(100_000);
//! assert!(core.thread_halted(t));
//! assert_eq!(core.arch_regs(t)[10], 100);
//! ```

mod config;
mod core;
mod counters;
mod iface;
mod prf;

pub use crate::core::{Core, ThreadStats, MASK_BASE};
pub use config::{CoreConfig, CoreConfigBuilder};
pub use counters::ActivityCounters;
pub use iface::{
    BaseMem, BranchOverride, CommitRecord, CommitSink, FetchDirection, FetchFilter,
    PredictorDirection, ThreadMem, ValueSource,
};
pub use prf::Prf;

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_bpred::Tage;
    use r3dla_isa::{ArchState, Asm, DataMem, Program, Reg, VecMem};
    use r3dla_mem::{CoreMem, MemConfig, SharedLlc};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn build_core(prog: &Rc<Program>) -> (Core, usize, Rc<RefCell<VecMem>>) {
        let shared = Rc::new(RefCell::new(SharedLlc::new(&MemConfig::paper())));
        let mem = CoreMem::new(&MemConfig::paper(), shared);
        let mut core = Core::new(CoreConfig::paper(), Rc::clone(prog), mem);
        let vm = Rc::new(RefCell::new(VecMem::new()));
        vm.borrow_mut().load_image(prog.image());
        let dir = Box::new(PredictorDirection::new(Box::new(Tage::paper())));
        let t = core.add_thread(
            prog.entry(),
            ArchState::new(prog.entry()).regs(),
            dir,
            Rc::new(RefCell::new(BaseMem(Rc::clone(&vm)))),
        );
        (core, t, vm)
    }

    /// Runs a program on the timing core and functionally, asserting the
    /// architectural end states agree — the golden-model check.
    fn check_against_functional(prog: Rc<Program>, max_cycles: u64) -> (Core, usize) {
        let (mut core, t, _vm) = build_core(&prog);
        core.run(max_cycles);
        assert!(core.thread_halted(t), "core did not halt");
        let mut st = ArchState::new(prog.entry());
        let mut fm = VecMem::new();
        fm.load_image(prog.image());
        let steps = r3dla_isa::run(&prog, &mut st, &mut fm, 100_000_000).expect("functional run");
        assert_eq!(
            core.committed(t),
            steps,
            "committed count must equal functional instruction count"
        );
        for r in 0..Reg::COUNT {
            assert_eq!(core.arch_regs(t)[r], st.regs()[r], "register {r} mismatch");
        }
        (core, t)
    }

    #[test]
    fn straightline_alu_program() {
        let mut a = Asm::new();
        let x = Reg::int(10);
        let y = Reg::int(11);
        a.li(x, 6);
        a.li(y, 7);
        a.mul(x, x, y);
        a.addi(x, x, 58);
        a.halt();
        check_against_functional(Rc::new(a.finish().unwrap()), 10_000);
    }

    #[test]
    fn loop_with_memory_matches_functional() {
        let mut a = Asm::new();
        let arr = a.data().words(&[0; 64]);
        let (i, n, base, v) = (Reg::int(10), Reg::int(11), Reg::int(12), Reg::int(13));
        a.li(i, 0);
        a.li(n, 64);
        a.li(base, arr as i64);
        a.label("loop");
        a.slli(v, i, 1); // v = 2i
        a.slli(Reg::int(14), i, 3);
        a.add(Reg::int(14), Reg::int(14), base);
        a.st(v, Reg::int(14), 0); // arr[i] = 2i
        a.ld(Reg::int(15), Reg::int(14), 0);
        a.add(Reg::int(16), Reg::int(16), Reg::int(15)); // acc += arr[i]
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let (core, t) = check_against_functional(Rc::new(a.finish().unwrap()), 200_000);
        // acc = sum of 2i for i in 0..64 = 64*63 = 4032.
        assert_eq!(core.arch_regs(t)[16], 4032);
    }

    #[test]
    fn store_to_load_forwarding_value_correct() {
        let mut a = Asm::new();
        let slot = a.data().words(&[0]);
        let b = Reg::int(10);
        a.li(b, slot as i64);
        a.li(Reg::int(11), 1234);
        a.st(Reg::int(11), b, 0);
        a.ld(Reg::int(12), b, 0); // must forward 1234
        a.addi(Reg::int(12), Reg::int(12), 1);
        a.halt();
        let (core, t) = check_against_functional(Rc::new(a.finish().unwrap()), 10_000);
        assert_eq!(core.arch_regs(t)[12], 1235);
    }

    #[test]
    fn calls_and_returns_match_functional() {
        let mut a = Asm::new();
        let x = Reg::int(10);
        a.li(x, 1);
        a.call("f");
        a.call("f");
        a.call("f");
        a.halt();
        a.label("f");
        a.add(x, x, x);
        a.ret();
        check_against_functional(Rc::new(a.finish().unwrap()), 20_000);
    }

    #[test]
    fn data_dependent_branches_match_functional() {
        // Branches whose direction depends on loaded data (predictor will
        // mispredict; squash/recovery must preserve semantics).
        let mut a = Asm::new();
        let mut vals = Vec::new();
        let mut rng = r3dla_stats::Rng::new(42);
        for _ in 0..128 {
            vals.push(rng.range_u64(0, 2));
        }
        let arr = a.data().words(&vals);
        let (i, n, base, v, acc) = (
            Reg::int(10),
            Reg::int(11),
            Reg::int(12),
            Reg::int(13),
            Reg::int(14),
        );
        a.li(i, 0);
        a.li(n, 128);
        a.li(base, arr as i64);
        a.label("loop");
        a.slli(v, i, 3);
        a.add(v, v, base);
        a.ld(v, v, 0);
        a.beq(v, Reg::ZERO, "skip");
        a.addi(acc, acc, 1);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let expected: u64 = vals.iter().sum();
        let (core, t) = check_against_functional(Rc::new(a.finish().unwrap()), 500_000);
        assert_eq!(core.arch_regs(t)[14], expected);
        assert!(
            core.counters.branch_mispredicts.get() > 0,
            "should mispredict sometimes"
        );
        assert!(core.counters.squashed.get() > 0, "squashes should occur");
    }

    #[test]
    fn division_and_fp_latencies_respected() {
        let mut a = Asm::new();
        let (x, y) = (Reg::int(10), Reg::int(11));
        a.li(x, 1000);
        a.li(y, 7);
        a.div(x, x, y); // 142
        a.cvtif(Reg::fp(1), x);
        a.fadd(Reg::fp(2), Reg::fp(1), Reg::fp(1));
        a.cvtfi(Reg::int(12), Reg::fp(2)); // 284
        a.halt();
        let (core, t) = check_against_functional(Rc::new(a.finish().unwrap()), 10_000);
        assert_eq!(core.arch_regs(t)[12], 284);
    }

    #[test]
    fn ipc_bounded_by_machine_width() {
        // A loop of independent ALU work: the I-cache warms quickly and
        // steady-state IPC should approach (but never exceed) the width.
        let mut a = Asm::new();
        let (i, n) = (Reg::int(10), Reg::int(11));
        a.li(i, 0);
        a.li(n, 2000);
        a.label("loop");
        for k in 0..16 {
            a.li(Reg::int(12 + (k % 8) as u8), k);
        }
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let prog = Rc::new(a.finish().unwrap());
        let (mut core, t, _) = build_core(&prog);
        core.run(200_000);
        assert!(core.thread_halted(t));
        let ipc = core.committed(t) as f64 / core.cycle() as f64;
        assert!(ipc <= 4.0 + 1e-9, "IPC {ipc} exceeds machine width");
        assert!(ipc > 1.5, "IPC {ipc} suspiciously low for pure ALU loop");
    }

    #[test]
    fn pointer_chase_is_memory_bound() {
        // Build a random cyclic permutation and chase it: every load
        // depends on the previous one and misses often.
        let mut rng = r3dla_stats::Rng::new(7);
        let n = 4096usize;
        let mut perm: Vec<u64> = (0..n as u64).collect();
        rng.shuffle(&mut perm);
        let mut a = Asm::new();
        let arr = a.data().alloc_words(n);
        for (i, &p) in perm.iter().enumerate() {
            a.data().put_word(arr + (i as u64) * 8, arr + p * 8);
        }
        let (cur, cnt, lim) = (Reg::int(10), Reg::int(11), Reg::int(12));
        a.li(cur, arr as i64);
        a.li(cnt, 0);
        a.li(lim, 2000);
        a.label("chase");
        a.ld(cur, cur, 0);
        a.addi(cnt, cnt, 1);
        a.blt(cnt, lim, "chase");
        a.halt();
        let prog = Rc::new(a.finish().unwrap());
        let (mut core, t, _) = build_core(&prog);
        core.run(3_000_000);
        assert!(core.thread_halted(t));
        let ipc = core.committed(t) as f64 / core.cycle() as f64;
        assert!(ipc < 1.0, "pointer chasing should be slow, IPC={ipc}");
    }

    #[test]
    fn wrong_path_work_is_counted() {
        // A hard-to-predict branch causes wrong-path execution; executed
        // must exceed committed.
        let mut rng = r3dla_stats::Rng::new(3);
        let vals: Vec<u64> = (0..256).map(|_| rng.range_u64(0, 2)).collect();
        let mut a = Asm::new();
        let arr = a.data().words(&vals);
        let (i, n, base, v, x) = (
            Reg::int(10),
            Reg::int(11),
            Reg::int(12),
            Reg::int(13),
            Reg::int(14),
        );
        a.li(i, 0);
        a.li(n, 256);
        a.li(base, arr as i64);
        a.label("loop");
        a.slli(v, i, 3);
        a.add(v, v, base);
        a.ld(v, v, 0);
        a.beq(v, Reg::ZERO, "zero");
        a.addi(x, x, 3);
        a.addi(x, x, 5);
        a.j("join");
        a.label("zero");
        a.addi(x, x, 1);
        a.addi(x, x, 2);
        a.label("join");
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let prog = Rc::new(a.finish().unwrap());
        let (mut core, t, _) = build_core(&prog);
        core.run(1_000_000);
        assert!(core.thread_halted(t));
        assert!(
            core.counters.executed.get() > core.committed(t),
            "wrong-path execution should inflate executed count"
        );
    }

    #[test]
    fn smt_two_threads_both_make_progress() {
        let mut a = Asm::new();
        let (i, n) = (Reg::int(10), Reg::int(11));
        a.li(i, 0);
        a.li(n, 2000);
        a.label("loop");
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let prog = Rc::new(a.finish().unwrap());
        let shared = Rc::new(RefCell::new(SharedLlc::new(&MemConfig::paper())));
        let mem = CoreMem::new(&MemConfig::paper(), shared);
        let mut core = Core::new(CoreConfig::wide_smt(), Rc::clone(&prog), mem);
        for _ in 0..2 {
            let vm = Rc::new(RefCell::new(VecMem::new()));
            let dir = Box::new(PredictorDirection::new(Box::new(Tage::paper())));
            core.add_thread(
                prog.entry(),
                ArchState::new(prog.entry()).regs(),
                dir,
                Rc::new(RefCell::new(BaseMem(vm))),
            );
        }
        core.run(1_000_000);
        assert!(core.thread_halted(0));
        assert!(core.thread_halted(1));
        assert_eq!(core.arch_regs(0)[10], 2000);
        assert_eq!(core.arch_regs(1)[10], 2000);
    }

    #[test]
    fn reboot_restarts_thread_with_new_state() {
        let mut a = Asm::new();
        a.label("spin");
        a.addi(Reg::int(10), Reg::int(10), 1);
        a.j("spin");
        a.halt();
        let prog = Rc::new(a.finish().unwrap());
        let (mut core, t, _) = build_core(&prog);
        for _ in 0..2000 {
            core.step();
        }
        let before = core.committed(t);
        assert!(before > 0);
        let mut regs = [0u64; Reg::COUNT];
        regs[10] = 5_000_000;
        core.reboot_thread(t, prog.entry(), regs, 64);
        // After reboot, the counter continues from the injected state.
        for _ in 0..2000 {
            core.step();
        }
        assert!(
            core.arch_regs(t)[10] >= 5_000_000,
            "reboot state not applied"
        );
    }

    #[test]
    fn fetch_buffer_capacity_is_respected() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let prog = Rc::new(a.finish().unwrap());
        let (mut core, t, _) = build_core(&prog);
        for _ in 0..200 {
            core.step();
        }
        let max_occ = core.thread_stats(t).fetch_occupancy.max().unwrap_or(0);
        assert!(
            max_occ <= CoreConfig::paper().fetch_buffer as u64,
            "occupancy {max_occ} exceeded capacity"
        );
    }

    // ------------------------------------------------------------------
    // Event-driven fast path (`next_event_at` / `skip_to`)
    // ------------------------------------------------------------------

    /// A pointer-chase program over a shuffled permutation — every load
    /// depends on the previous one and misses, producing the long
    /// quiescent stalls the fast path exists for.
    fn chase_program(iters: i64) -> Rc<Program> {
        let mut rng = r3dla_stats::Rng::new(7);
        let n = 4096usize;
        let mut perm: Vec<u64> = (0..n as u64).collect();
        rng.shuffle(&mut perm);
        let mut a = Asm::new();
        let arr = a.data().alloc_words(n);
        for (i, &p) in perm.iter().enumerate() {
            a.data().put_word(arr + (i as u64) * 8, arr + p * 8);
        }
        let (cur, cnt, lim) = (Reg::int(10), Reg::int(11), Reg::int(12));
        a.li(cur, arr as i64);
        a.li(cnt, 0);
        a.li(lim, iters);
        a.label("chase");
        a.ld(cur, cur, 0);
        a.addi(cnt, cnt, 1);
        a.blt(cnt, lim, "chase");
        a.halt();
        Rc::new(a.finish().unwrap())
    }

    /// Full observable state of a core, for skip-equivalence comparisons:
    /// clock, per-thread architectural state, activity counters and
    /// per-cycle statistics (histograms included).
    fn core_fingerprint(core: &Core, threads: usize) -> String {
        let mut s = format!("cycle={} counters={:?}", core.cycle(), core.counters);
        for t in 0..threads {
            s.push_str(&format!(
                " t{}: committed={} pc={:#x} regs={:?} stats={:?}",
                t,
                core.committed(t),
                core.arch_pc(t),
                core.arch_regs(t),
                core.thread_stats(t),
            ));
        }
        s
    }

    /// Drives `core` cycle by cycle (the reference path).
    fn run_slow(core: &mut Core, max_cycles: u64) {
        let start = core.cycle();
        while !core.halted() && core.cycle() - start < max_cycles {
            core.step();
        }
    }

    /// Drives `core` through the event-driven fast path; returns the
    /// number of cycles fast-forwarded (to prove the path was exercised).
    fn run_fast(core: &mut Core, max_cycles: u64) -> u64 {
        let start = core.cycle();
        let mut skipped = 0;
        while !core.halted() && core.cycle() - start < max_cycles {
            match core.next_event_at() {
                Some(wake) => {
                    let target = wake.min(start + max_cycles);
                    skipped += target - core.cycle();
                    core.skip_to(target);
                }
                None => core.step(),
            }
        }
        skipped
    }

    #[test]
    fn skip_equivalence_on_memory_stalls() {
        let prog = chase_program(1_500);
        let (mut fast, tf, _) = build_core(&prog);
        let (mut slow, ts, _) = build_core(&prog);
        let skipped = run_fast(&mut fast, 3_000_000);
        run_slow(&mut slow, 3_000_000);
        assert!(fast.thread_halted(tf) && slow.thread_halted(ts));
        assert!(
            skipped > 10_000,
            "a memory-bound chase must fast-forward substantially, skipped {skipped}"
        );
        assert_eq!(core_fingerprint(&fast, 1), core_fingerprint(&slow, 1));
    }

    #[test]
    fn skip_equivalence_smt_with_early_thread_halt() {
        // Two SMT threads of very different lengths on one backend (the
        // trip count loads from thread-private memory, so one program
        // serves both): the fast path must stay exact across the short
        // thread's halt and keep fast-forwarding the survivor's stalls.
        let mut rng = r3dla_stats::Rng::new(11);
        let n = 4096usize;
        let mut perm: Vec<u64> = (0..n as u64).collect();
        rng.shuffle(&mut perm);
        let mut a = Asm::new();
        let arr = a.data().alloc_words(n);
        for (i, &p) in perm.iter().enumerate() {
            a.data().put_word(arr + (i as u64) * 8, arr + p * 8);
        }
        let limword = a.data().alloc_words(1);
        a.data().put_word(limword, 400);
        let (cur, cnt, lim) = (Reg::int(10), Reg::int(11), Reg::int(12));
        a.li(cur, arr as i64);
        a.li(cnt, 0);
        a.li(lim, limword as i64);
        a.ld(lim, lim, 0);
        a.label("chase");
        a.ld(cur, cur, 0);
        a.addi(cnt, cnt, 1);
        a.blt(cnt, lim, "chase");
        a.halt();
        let prog = Rc::new(a.finish().unwrap());
        let build_pair = || {
            let shared = Rc::new(RefCell::new(SharedLlc::new(&MemConfig::paper())));
            let mem = CoreMem::new(&MemConfig::paper(), shared);
            let mut core = Core::new(CoreConfig::paper(), Rc::clone(&prog), mem);
            for iters in [400u64, 40] {
                let vm = Rc::new(RefCell::new(VecMem::new()));
                vm.borrow_mut().load_image(prog.image());
                vm.borrow_mut().store(limword, iters);
                let dir = Box::new(PredictorDirection::new(Box::new(Tage::paper())));
                core.add_thread(
                    prog.entry(),
                    ArchState::new(prog.entry()).regs(),
                    dir,
                    Rc::new(RefCell::new(BaseMem(vm))),
                );
            }
            core
        };
        let mut fast = build_pair();
        let mut slow = build_pair();
        let skipped = run_fast(&mut fast, 4_000_000);
        run_slow(&mut slow, 4_000_000);
        assert!(fast.halted() && slow.halted(), "both SMT threads must halt");
        assert!(
            fast.committed(0) > fast.committed(1),
            "thread 1 must be the short one"
        );
        assert!(skipped > 0, "SMT chase must still fast-forward");
        assert_eq!(core_fingerprint(&fast, 2), core_fingerprint(&slow, 2));
    }

    /// A direction source whose supply is refilled externally — the
    /// core-level model of a BOQ-fed main thread.
    struct QueueDirection {
        supply: Rc<RefCell<std::collections::VecDeque<bool>>>,
    }

    impl FetchDirection for QueueDirection {
        fn name(&self) -> &str {
            "queue"
        }
        fn predict(&mut self, _pc: u64) -> Option<bool> {
            self.supply.borrow_mut().pop_front()
        }
        fn available(&self) -> bool {
            !self.supply.borrow().is_empty()
        }
        fn resolve(&mut self, _pc: u64, _taken: bool, _mispredicted: bool) {}
    }

    #[test]
    fn direction_starved_thread_is_quiescent_until_refill() {
        // A loop whose only control is a conditional branch, fed from an
        // external queue. Once the queue empties and the pipeline drains,
        // the core must report unbounded quiescence; refilling the queue
        // must make it runnable again — the hint-queue wakeup contract.
        let mut a = Asm::new();
        let (x, lim) = (Reg::int(10), Reg::int(11));
        a.li(x, 0);
        a.li(lim, 1_000_000);
        a.label("loop");
        a.addi(x, x, 1);
        a.blt(x, lim, "loop");
        a.halt();
        let prog = Rc::new(a.finish().unwrap());
        let build = || {
            let supply = Rc::new(RefCell::new(std::collections::VecDeque::new()));
            for _ in 0..32 {
                supply.borrow_mut().push_back(true);
            }
            let shared = Rc::new(RefCell::new(SharedLlc::new(&MemConfig::paper())));
            let mem = CoreMem::new(&MemConfig::paper(), shared);
            let mut core = Core::new(CoreConfig::paper(), Rc::clone(&prog), mem);
            let vm = Rc::new(RefCell::new(VecMem::new()));
            vm.borrow_mut().load_image(prog.image());
            let dir = Box::new(QueueDirection {
                supply: Rc::clone(&supply),
            });
            core.add_thread(
                prog.entry(),
                ArchState::new(prog.entry()).regs(),
                dir,
                Rc::new(RefCell::new(BaseMem(vm))),
            );
            // Drain the 32 supplied directions and the pipeline.
            for _ in 0..4_000 {
                core.step();
            }
            assert!(supply.borrow().is_empty(), "supply must be exhausted");
            (core, supply)
        };
        let (mut fast, fast_supply) = build();
        let (mut slow, slow_supply) = build();
        assert_eq!(
            fast.next_event_at(),
            Some(u64::MAX),
            "a drained, direction-starved core has no intrinsic wakeup"
        );
        // Skipping 100 starved cycles must equal stepping through them.
        fast.skip_to(fast.cycle() + 100);
        for _ in 0..100 {
            slow.step();
        }
        assert_eq!(core_fingerprint(&fast, 1), core_fingerprint(&slow, 1));
        // Refill: both cores must wake and make identical progress again.
        let committed_before = fast.committed(0);
        for supply in [&fast_supply, &slow_supply] {
            for _ in 0..64 {
                supply.borrow_mut().push_back(true);
            }
        }
        assert_eq!(
            fast.next_event_at(),
            None,
            "a refilled direction queue makes the thread runnable now"
        );
        for _ in 0..2_000 {
            fast.step();
            slow.step();
        }
        assert!(fast.committed(0) > committed_before);
        assert_eq!(core_fingerprint(&fast, 1), core_fingerprint(&slow, 1));
    }
}
