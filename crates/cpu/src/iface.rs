//! The interfaces through which a core is steered and observed: fetch
//! direction sources, fetch filters (skeleton masks), value-prediction
//! sources, commit sinks, and the per-thread functional memory view.

use std::cell::RefCell;
use std::rc::Rc;

use r3dla_bpred::DirectionPredictor;
use r3dla_isa::{DataMem, Inst, VecMem};

/// Supplies conditional-branch directions to the fetch unit.
///
/// A conventional core wraps a predictor ([`PredictorDirection`]); a DLA
/// main thread is fed from the Branch Outcome Queue instead, which may be
/// momentarily empty — in that case [`predict`](Self::predict) returns
/// `None` and fetch stalls (paper §III-A: "If the queue is empty, we stall
/// the fetch").
pub trait FetchDirection {
    /// Source name for reports.
    fn name(&self) -> &str;
    /// Predicts the branch at `pc`, or `None` to stall fetch this cycle.
    fn predict(&mut self, pc: u64) -> Option<bool>;
    /// Whether a direction is currently available, without consuming it.
    ///
    /// Must agree with [`predict`](Self::predict): `predict` returns
    /// `Some` iff this returns `true`. The fetch stage uses it to detect
    /// a direction-starved thread *before* touching any cache state, and
    /// the event-driven fast path uses it to prove the thread quiescent.
    fn available(&self) -> bool {
        true
    }
    /// Supplies a target for an indirect branch at `pc` beyond the BTB
    /// (the DLA footnote-queue branch-target hint path).
    fn indirect_target(&mut self, _pc: u64) -> Option<u64> {
        None
    }
    /// Reports the architectural outcome at branch resolution.
    fn resolve(&mut self, pc: u64, taken: bool, mispredicted: bool);
    /// The tag of the most recently served prediction, when the source
    /// numbers its predictions (the BOQ does; it aligns footnote-queue
    /// value-reuse entries with fetched branches). `None` lets the core
    /// assign thread-local tags.
    fn last_tag(&self) -> Option<u64> {
        None
    }
    /// Opaque speculative-state snapshot taken at each branch fetch.
    fn snapshot(&self) -> u64 {
        0
    }
    /// Restores a snapshot after a squash; `resolved` carries the true
    /// outcome of the branch that caused it (if it was conditional).
    fn restore(&mut self, _snapshot: u64, _resolved: Option<bool>) {}
    /// Functional warmup with one architectural branch outcome (sampled
    /// simulation replays the emulator's branch stream through this
    /// before a detailed window). Predictor-backed sources train on it;
    /// queue-fed sources (the BOQ main thread) ignore it.
    fn warm_outcome(&mut self, _pc: u64, _taken: bool) {}
}

/// [`FetchDirection`] backed by an ordinary direction predictor.
pub struct PredictorDirection {
    predictor: Box<dyn DirectionPredictor>,
}

impl PredictorDirection {
    /// Wraps a direction predictor.
    pub fn new(predictor: Box<dyn DirectionPredictor>) -> Self {
        Self { predictor }
    }
}

impl std::fmt::Debug for PredictorDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictorDirection")
            .field("predictor", &self.predictor.name())
            .finish()
    }
}

impl FetchDirection for PredictorDirection {
    fn name(&self) -> &str {
        self.predictor.name()
    }

    fn predict(&mut self, pc: u64) -> Option<bool> {
        Some(self.predictor.predict(pc))
    }

    fn resolve(&mut self, pc: u64, taken: bool, mispredicted: bool) {
        self.predictor.update(pc, taken, mispredicted);
    }

    fn snapshot(&self) -> u64 {
        self.predictor.history()
    }

    fn restore(&mut self, snapshot: u64, resolved: Option<bool>) {
        self.predictor.restore_history(snapshot, resolved);
    }

    fn warm_outcome(&mut self, pc: u64, taken: bool) {
        self.predictor.warm(pc, taken);
    }
}

/// Filters fetched instructions: look-ahead cores delete instructions that
/// are not on the skeleton "immediately upon fetch" (paper §III-A iii).
pub trait FetchFilter {
    /// Returns whether the instruction at `pc` is kept (on the skeleton).
    fn keep(&mut self, pc: u64) -> bool;

    /// Whether the load at `pc` is a *prefetch payload*: the skeleton
    /// includes it to generate its address and touch the memory system,
    /// but no skeleton instruction consumes its result, so the look-ahead
    /// thread must not stall on it (paper §III-A: "a subset of memory
    /// instructions is also included in the skeleton as prefetch
    /// payloads").
    fn prefetch_only(&mut self, _pc: u64) -> bool {
        false
    }
}

/// Forces the direction of selected conditional branches at execute —
/// how bias-converted skeleton branches behave in the look-ahead thread
/// (paper §III-E1: "conditional branches with a bias over a threshold can
/// be converted to unconditional branches in the skeleton"). The branch
/// still executes and reports an outcome (keeping the BOQ aligned), but
/// its direction ignores the (possibly stale) condition inputs.
pub trait BranchOverride {
    /// The forced direction for the branch at `pc`, if any.
    fn force(&self, pc: u64) -> Option<bool>;
}

/// Supplies value predictions to the rename stage (the DLA value-reuse
/// path, paper §III-D1) and learns from validation outcomes.
pub trait ValueSource {
    /// A prediction for the instruction at `pc`, which is `offset`
    /// instructions after the `branch_seq`-th fetched conditional branch
    /// (the FQ entry alignment scheme).
    fn predict(&mut self, pc: u64, branch_seq: u64, offset: u32) -> Option<u64>;
    /// Reports whether a consumed prediction validated correctly.
    fn on_outcome(&mut self, pc: u64, correct: bool);
}

/// Everything the rest of the system wants to know about one committed
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitRecord {
    /// Hardware thread that committed the instruction.
    pub thread: usize,
    /// Dynamic sequence number within the thread.
    pub seq: u64,
    /// The instruction.
    pub inst: Inst,
    /// Its PC.
    pub pc: u64,
    /// Commit cycle.
    pub cycle: u64,
    /// Architectural next PC.
    pub next_pc: u64,
    /// For conditional branches, the outcome.
    pub taken: Option<bool>,
    /// Result value written to the destination register, if any.
    pub value: Option<u64>,
    /// Effective address, for memory operations.
    pub mem_addr: Option<u64>,
    /// Whether a load missed in L1D.
    pub l1_miss: bool,
    /// Whether a load missed in L2.
    pub l2_miss: bool,
    /// Whether the access took a TLB walk.
    pub tlb_miss: bool,
    /// Observed dispatch-to-execute-complete latency in cycles (the
    /// paper's "slow instruction" metric for value-reuse targeting).
    pub dispatch_to_exec: u64,
}

/// Observes the committed instruction stream (the look-ahead thread's
/// BOQ/FQ generation taps this; so do profilers).
pub trait CommitSink {
    /// Called once per committed instruction, in program order.
    fn on_commit(&mut self, rec: &CommitRecord);
}

/// A thread's functional view of data memory.
///
/// The main thread reads/writes the shared architectural memory; the
/// look-ahead thread layers a speculative overlay on top (implemented in
/// `r3dla-core`).
pub trait ThreadMem {
    /// Functional load.
    fn load(&mut self, addr: u64) -> u64;
    /// Functional store, performed at commit.
    fn store(&mut self, addr: u64, val: u64);
}

/// The main thread's direct view of architectural memory.
#[derive(Debug, Clone)]
pub struct BaseMem(pub Rc<RefCell<VecMem>>);

impl ThreadMem for BaseMem {
    fn load(&mut self, addr: u64) -> u64 {
        self.0.borrow_mut().load(addr)
    }

    fn store(&mut self, addr: u64, val: u64) {
        self.0.borrow_mut().store(addr, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_bpred::Bimodal;

    #[test]
    fn predictor_direction_round_trip() {
        let mut d = PredictorDirection::new(Box::new(Bimodal::new(64)));
        for _ in 0..10 {
            let p = d.predict(0x40).unwrap();
            d.resolve(0x40, true, !p);
        }
        assert_eq!(d.predict(0x40), Some(true));
        assert_eq!(d.name(), "bimodal");
    }

    #[test]
    fn base_mem_reads_shared_state() {
        let shared = Rc::new(RefCell::new(VecMem::new()));
        let mut a = BaseMem(Rc::clone(&shared));
        let mut b = BaseMem(Rc::clone(&shared));
        a.store(0x100, 7);
        assert_eq!(b.load(0x100), 7);
    }
}
