//! Activity-based CPU and DRAM energy model — the McPAT + DRAMPower
//! substitute used for the paper's Table II, Fig 10 and the EDP claims.
//!
//! Per-event energies are constants in the 22 nm ballpark. Absolute joules
//! are not the point (the paper's energy results are all *normalized to
//! the baseline*); what matters is that the ratios respond to the same
//! activity structure: decode/execute/commit counts, cache and DRAM
//! traffic, and static power over time.
//!
//! # Examples
//!
//! ```
//! use r3dla_energy::{CoreEnergy, EnergyParams};
//! use r3dla_cpu::ActivityCounters;
//!
//! let mut a = ActivityCounters::default();
//! a.committed.add(1_000_000);
//! a.decoded.add(1_200_000);
//! a.executed.add(1_150_000);
//! a.cycles.add(500_000);
//! let e = CoreEnergy::from_counters(&a, &EnergyParams::node22());
//! assert!(e.dynamic_j > 0.0);
//! assert!(e.static_j > 0.0);
//! ```

use r3dla_cpu::ActivityCounters;
use r3dla_mem::{CacheStats, DramStats};

/// Per-event energy constants (joules) and static power (watts).
///
/// Loosely calibrated to a 22 nm out-of-order core at 0.8 V / 3 GHz
/// (paper Table I operating point).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    /// Energy per fetched instruction (I-cache + predecode share).
    pub fetch_j: f64,
    /// Energy per decoded/renamed instruction.
    pub decode_j: f64,
    /// Energy per issued instruction (scheduler + FU average).
    pub execute_j: f64,
    /// Energy per committed instruction (ROB retire + ARF update).
    pub commit_j: f64,
    /// Energy per register-file port access.
    pub rf_j: f64,
    /// Energy per issue-queue write or wakeup.
    pub iq_j: f64,
    /// Energy per branch-predictor lookup.
    pub bpred_j: f64,
    /// Energy per L1 cache access.
    pub l1_j: f64,
    /// Energy per L2 cache access.
    pub l2_j: f64,
    /// Energy per L3 cache access.
    pub l3_j: f64,
    /// Core static power in watts.
    pub core_static_w: f64,
    /// Clock frequency in Hz (converts cycles to seconds).
    pub freq_hz: f64,
    // --- DRAM ---
    /// Energy per DRAM row activation (ACT+PRE pair).
    pub dram_act_j: f64,
    /// Energy per DRAM read burst (64 B).
    pub dram_rd_j: f64,
    /// Energy per DRAM write burst (64 B).
    pub dram_wr_j: f64,
    /// DRAM background power in watts.
    pub dram_static_w: f64,
}

impl EnergyParams {
    /// 22 nm-class constants (the paper's technology node).
    pub fn node22() -> Self {
        Self {
            fetch_j: 25e-12,
            decode_j: 30e-12,
            execute_j: 45e-12,
            commit_j: 25e-12,
            rf_j: 6e-12,
            iq_j: 10e-12,
            bpred_j: 8e-12,
            l1_j: 20e-12,
            l2_j: 80e-12,
            l3_j: 250e-12,
            core_static_w: 0.45,
            freq_hz: 3.0e9,
            dram_act_j: 15e-9,
            dram_rd_j: 10e-9,
            dram_wr_j: 10e-9,
            dram_static_w: 0.7,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::node22()
    }
}

/// Energy accounting for one core over a measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreEnergy {
    /// Dynamic energy in joules.
    pub dynamic_j: f64,
    /// Static (leakage) energy in joules.
    pub static_j: f64,
    /// Window length in seconds.
    pub seconds: f64,
}

impl CoreEnergy {
    /// Computes core energy from activity counters.
    pub fn from_counters(a: &ActivityCounters, p: &EnergyParams) -> Self {
        let dynamic_j = a.fetched.get() as f64 * p.fetch_j
            + a.icache_lines.get() as f64 * p.l1_j
            + a.decoded.get() as f64 * p.decode_j
            + a.executed.get() as f64 * p.execute_j
            + a.committed.get() as f64 * p.commit_j
            + a.rf_reads.get() as f64 * p.rf_j
            + a.rf_writes.get() as f64 * p.rf_j
            + (a.iq_writes.get() + a.rob_writes.get()) as f64 * p.iq_j
            + a.bpred_lookups.get() as f64 * p.bpred_j
            + (a.loads.get() + a.stores.get()) as f64 * p.l1_j;
        let seconds = a.cycles.get() as f64 / p.freq_hz;
        Self {
            dynamic_j,
            static_j: p.core_static_w * seconds,
            seconds,
        }
    }

    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j
    }

    /// Average dynamic power in watts.
    pub fn dynamic_w(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.dynamic_j / self.seconds
        }
    }
}

/// Computes cache-access energy from cache statistics deltas.
pub fn cache_energy_j(l2: &CacheStats, l3: &CacheStats, p: &EnergyParams) -> f64 {
    l2.accesses.get() as f64 * p.l2_j + l3.accesses.get() as f64 * p.l3_j
}

/// DRAM energy over a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramEnergy {
    /// Dynamic (ACT/RD/WR) energy in joules.
    pub dynamic_j: f64,
    /// Background energy in joules.
    pub static_j: f64,
}

impl DramEnergy {
    /// Computes DRAM energy from device statistics over `seconds`.
    pub fn from_stats(d: &DramStats, seconds: f64, p: &EnergyParams) -> Self {
        let dynamic_j = d.activations.get() as f64 * p.dram_act_j
            + d.reads.get() as f64 * p.dram_rd_j
            + d.writes.get() as f64 * p.dram_wr_j;
        Self {
            dynamic_j,
            static_j: p.dram_static_w * seconds,
        }
    }

    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j
    }
}

/// Computes counter deltas between two [`ActivityCounters`] snapshots, so
/// windows can be measured on a running system.
pub fn counters_delta(before: &ActivityCounters, after: &ActivityCounters) -> ActivityCounters {
    let mut d = ActivityCounters::default();
    macro_rules! sub {
        ($($f:ident),* $(,)?) => {
            $(d.$f.add(after.$f.get() - before.$f.get());)*
        };
    }
    sub!(
        fetched,
        mask_deleted,
        icache_lines,
        decoded,
        executed,
        committed,
        squashed,
        iq_writes,
        rf_reads,
        rf_writes,
        rob_writes,
        loads,
        stores,
        bpred_lookups,
        branch_mispredicts,
        value_predictions,
        value_validations,
        value_validation_skips,
        value_mispredicts,
        fetch_bubble_insts,
        cycles,
    );
    d
}

/// Energy-delay product: total energy × window time.
pub fn edp(total_j: f64, seconds: f64) -> f64 {
    total_j * seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(decoded: u64, executed: u64, committed: u64, cycles: u64) -> ActivityCounters {
        let mut a = ActivityCounters::default();
        a.decoded.add(decoded);
        a.executed.add(executed);
        a.committed.add(committed);
        a.cycles.add(cycles);
        a
    }

    #[test]
    fn more_activity_means_more_dynamic_energy() {
        let p = EnergyParams::node22();
        let small = CoreEnergy::from_counters(&counters(100, 100, 100, 1000), &p);
        let large = CoreEnergy::from_counters(&counters(1000, 1000, 1000, 1000), &p);
        assert!(large.dynamic_j > small.dynamic_j);
        assert_eq!(large.static_j, small.static_j, "same cycles, same leakage");
    }

    #[test]
    fn static_energy_scales_with_time() {
        let p = EnergyParams::node22();
        let short = CoreEnergy::from_counters(&counters(0, 0, 0, 1000), &p);
        let long = CoreEnergy::from_counters(&counters(0, 0, 0, 4000), &p);
        assert!((long.static_j / short.static_j - 4.0).abs() < 1e-9);
    }

    #[test]
    fn a_lighter_thread_costs_less_energy() {
        // The Table II structure: LT decodes/executes ~35-50% of MT's
        // activity over the same cycles → lower dynamic energy & power.
        let p = EnergyParams::node22();
        let mt = CoreEnergy::from_counters(&counters(1000, 1100, 1000, 2000), &p);
        let lt = CoreEnergy::from_counters(&counters(400, 450, 350, 2000), &p);
        assert!(lt.dynamic_j < 0.6 * mt.dynamic_j);
        assert!(lt.dynamic_w() < mt.dynamic_w());
    }

    #[test]
    fn dram_energy_tracks_traffic() {
        let p = EnergyParams::node22();
        let mut d1 = DramStats::default();
        d1.reads.add(100);
        d1.activations.add(20);
        let mut d2 = DramStats::default();
        d2.reads.add(300);
        d2.activations.add(60);
        let e1 = DramEnergy::from_stats(&d1, 0.001, &p);
        let e2 = DramEnergy::from_stats(&d2, 0.001, &p);
        assert!(e2.dynamic_j > 2.5 * e1.dynamic_j);
        assert_eq!(e1.static_j, e2.static_j);
    }

    #[test]
    fn counters_delta_subtracts() {
        let a = counters(100, 110, 90, 500);
        let b = counters(300, 330, 280, 1500);
        let d = counters_delta(&a, &b);
        assert_eq!(d.decoded.get(), 200);
        assert_eq!(d.cycles.get(), 1000);
    }

    #[test]
    fn edp_is_energy_times_delay() {
        assert!((edp(2.0, 3.0) - 6.0).abs() < 1e-12);
    }
}
