//! Criterion bench regenerating FIG9a's comparison on one workload at
//! reduced scale: BL vs DLA vs R3-DLA.
use criterion::{criterion_group, criterion_main, Criterion};
use r3dla_bench::prepare_some;
use r3dla_core::DlaConfig;
use r3dla_cpu::CoreConfig;
use r3dla_workloads::Scale;

fn bench(c: &mut Criterion) {
    let prepared = prepare_some(&["libq_like"], Scale::Tiny);
    let p = &prepared[0];
    let mut g = c.benchmark_group("fig09_overall");
    g.sample_size(10);
    g.bench_function("baseline", |b| {
        b.iter(|| p.measure_single(CoreConfig::paper(), None, Some("bop"), 2_000, 10_000))
    });
    g.bench_function("dla", |b| {
        b.iter(|| p.measure_dla(DlaConfig::dla(), 2_000, 10_000).mt_ipc)
    });
    g.bench_function("r3dla", |b| {
        b.iter(|| p.measure_dla(DlaConfig::r3(), 2_000, 10_000).mt_ipc)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
