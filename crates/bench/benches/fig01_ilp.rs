//! Criterion bench regenerating FIG1's limit study (reduced scale).
use criterion::{criterion_group, criterion_main, Criterion};
use r3dla_core::{ilp_limit, LimitModel};
use r3dla_workloads::{by_name, Scale};

fn bench(c: &mut Criterion) {
    let wl = by_name("sjeng_like").unwrap().build(Scale::Tiny);
    let mut g = c.benchmark_group("fig01_ilp");
    g.sample_size(10);
    for (name, model) in [("ideal", LimitModel::Ideal), ("real", LimitModel::Real)] {
        g.bench_function(format!("window512_{name}"), |b| {
            b.iter(|| ilp_limit(&wl.program, 512, model, 30_000))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
