//! Criterion bench regenerating TABLE II / FIG10's energy accounting.
use criterion::{criterion_group, criterion_main, Criterion};
use r3dla_bench::prepare_some;
use r3dla_core::DlaConfig;
use r3dla_cpu::ActivityCounters;
use r3dla_energy::{CoreEnergy, EnergyParams};
use r3dla_workloads::Scale;

fn bench(c: &mut Criterion) {
    let prepared = prepare_some(&["bzip2_like"], Scale::Tiny);
    let p = &prepared[0];
    let mut g = c.benchmark_group("table2_energy");
    g.sample_size(10);
    g.bench_function("dla_window_with_energy", |b| {
        b.iter(|| {
            let mut sys = p.dla_system(DlaConfig::dla());
            sys.run_until_mt(10_000, 1_000_000);
            let params = EnergyParams::node22();
            let lt = CoreEnergy::from_counters(&sys.lt().counters, &params);
            let mt = CoreEnergy::from_counters(&sys.mt().counters, &params);
            lt.total_j() + mt.total_j()
        })
    });
    g.bench_function("energy_model_only", |b| {
        let mut a = ActivityCounters::default();
        a.decoded.add(1_000_000);
        a.executed.add(1_100_000);
        a.committed.add(1_000_000);
        a.cycles.add(700_000);
        let params = EnergyParams::node22();
        b.iter(|| CoreEnergy::from_counters(&a, &params).total_j())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
