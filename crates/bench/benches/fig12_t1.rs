//! Criterion bench regenerating FIG12 / TABLE III's T1-vs-stride
//! comparison (reduced).
use criterion::{criterion_group, criterion_main, Criterion};
use r3dla_bench::prepare_some;
use r3dla_core::DlaConfig;
use r3dla_workloads::Scale;

fn bench(c: &mut Criterion) {
    let prepared = prepare_some(&["libq_like"], Scale::Tiny);
    let p = &prepared[0];
    let mut g = c.benchmark_group("fig12_t1");
    g.sample_size(10);
    g.bench_function("dla_plus_stride", |b| {
        let mut cfg = DlaConfig::dla();
        cfg.mt_l1_prefetcher = Some("stride");
        b.iter(|| p.measure_dla(cfg.clone(), 2_000, 10_000).mt_ipc)
    });
    g.bench_function("dla_plus_t1", |b| {
        let mut cfg = DlaConfig::dla();
        cfg.t1 = true;
        b.iter(|| p.measure_dla(cfg.clone(), 2_000, 10_000).mt_ipc)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
