//! Criterion bench regenerating FIG11's SMT scenarios (reduced).
use criterion::{criterion_group, criterion_main, Criterion};
use r3dla_bench::{measure_smt, prepare_some};
use r3dla_cpu::CoreConfig;
use r3dla_workloads::Scale;

fn bench(c: &mut Criterion) {
    let prepared = prepare_some(&["md5_like"], Scale::Tiny);
    let p = &prepared[0];
    let mut g = c.benchmark_group("fig11_smt");
    g.sample_size(10);
    g.bench_function("half_core", |b| {
        b.iter(|| p.measure_single(CoreConfig::half_core(), None, Some("bop"), 2_000, 8_000))
    });
    g.bench_function("full_core", |b| {
        b.iter(|| p.measure_single(CoreConfig::wide_smt(), None, Some("bop"), 2_000, 8_000))
    });
    g.bench_function("smt_2copies", |b| {
        b.iter(|| measure_smt(p.built(), CoreConfig::wide_smt(), 2, 8_000))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
