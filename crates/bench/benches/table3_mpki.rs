//! Criterion bench regenerating TABLE III's MPKI accounting path.
use criterion::{criterion_group, criterion_main, Criterion};
use r3dla_bench::prepare_some;
use r3dla_core::{DlaConfig, SingleCoreSim};
use r3dla_cpu::CoreConfig;
use r3dla_mem::MemConfig;
use r3dla_workloads::Scale;

fn bench(c: &mut Criterion) {
    let prepared = prepare_some(&["mcf_like"], Scale::Tiny);
    let p = &prepared[0];
    let mut g = c.benchmark_group("table3_mpki");
    g.sample_size(10);
    g.bench_function("bl_stride_l1", |b| {
        b.iter(|| {
            let mut sim = SingleCoreSim::build(
                p.built(),
                CoreConfig::paper(),
                MemConfig::paper(),
                Some("stride"),
                Some("bop"),
            );
            sim.measure(2_000, 8_000).mt_ipc
        })
    });
    g.bench_function("dla_t1", |b| {
        let mut cfg = DlaConfig::dla();
        cfg.t1 = true;
        b.iter(|| p.measure_dla(cfg.clone(), 2_000, 8_000).mt_ipc)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
