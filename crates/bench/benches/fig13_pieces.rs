//! Criterion bench regenerating FIG13's per-technique pieces (reduced).
use criterion::{criterion_group, criterion_main, Criterion};
use r3dla_bench::prepare_some;
use r3dla_core::{DlaConfig, RecycleMode};
use r3dla_workloads::Scale;

fn bench(c: &mut Criterion) {
    let prepared = prepare_some(&["hmmer_like"], Scale::Tiny);
    let p = &prepared[0];
    let mut g = c.benchmark_group("fig13_pieces");
    g.sample_size(10);
    g.bench_function("fetch_buffer_32", |b| {
        let mut cfg = DlaConfig::dla();
        cfg.mt_core.fetch_buffer = 32;
        b.iter(|| p.measure_dla(cfg.clone(), 2_000, 10_000).mt_ipc)
    });
    g.bench_function("value_reuse", |b| {
        let mut cfg = DlaConfig::dla();
        cfg.value_reuse = true;
        b.iter(|| p.measure_dla(cfg.clone(), 2_000, 10_000).mt_ipc)
    });
    g.bench_function("recycle_dynamic", |b| {
        let mut cfg = DlaConfig::dla();
        cfg.recycle = RecycleMode::Dynamic;
        b.iter(|| p.measure_dla(cfg.clone(), 2_000, 10_000).mt_ipc)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
