//! Ablation benches for design choices called out in DESIGN.md: BOQ
//! depth, reboot cost, and value-reuse latency threshold.
//!
//! The reboot-cost sweep is live: `DlaConfig::reboot_cost` is threaded
//! through `DlaSystem::do_reboot` into the LT restart stall, so the
//! `reboot_cost_*` points below measure real behaviour differences (see
//! the `reboot_cost_is_honored` regression test in `r3dla-core`).
use criterion::{criterion_group, criterion_main, Criterion};
use r3dla_bench::prepare_some;
use r3dla_core::DlaConfig;
use r3dla_workloads::Scale;

fn bench(c: &mut Criterion) {
    let prepared = prepare_some(&["cg_like"], Scale::Tiny);
    let p = &prepared[0];
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    for depth in [64usize, 512] {
        g.bench_function(format!("boq_depth_{depth}"), |b| {
            let mut cfg = DlaConfig::dla();
            cfg.boq_capacity = depth;
            b.iter(|| p.measure_dla(cfg.clone(), 2_000, 10_000).mt_ipc)
        });
    }
    for cost in [64u64, 200] {
        g.bench_function(format!("reboot_cost_{cost}"), |b| {
            let mut cfg = DlaConfig::dla();
            cfg.reboot_cost = cost;
            b.iter(|| p.measure_dla(cfg.clone(), 2_000, 10_000).mt_ipc)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
