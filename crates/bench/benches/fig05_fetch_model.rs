//! Criterion bench for the FIG5 analytic fetch-buffer model.
use criterion::{criterion_group, criterion_main, Criterion};
use r3dla_analytic::{bubble_sweep, FetchBufferModel};

fn bench(c: &mut Criterion) {
    let mut supply = vec![0.0; 17];
    supply[0] = 0.35;
    supply[4] = 0.25;
    supply[16] = 0.40;
    let mut demand = vec![0.0; 5];
    demand[0] = 0.2;
    demand[4] = 0.8;
    let mut g = c.benchmark_group("fig05_fetch_model");
    g.bench_function("steady_state_cap32", |b| {
        let m = FetchBufferModel::new(supply.clone(), demand.clone(), 32).unwrap();
        b.iter(|| m.steady_state())
    });
    g.bench_function("bubble_sweep", |b| {
        b.iter(|| bubble_sweep(&supply, &demand, &[4, 8, 16, 32]).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
