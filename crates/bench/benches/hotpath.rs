//! Microbenchmarks pinning the simulator's hot paths: `VecMem`
//! functional memory, `Core::step` on a single core, a full `DlaSystem`
//! kernel — with and without event-driven cycle skipping, so the fast
//! path's speedup is a number, not a vibe — and the sampled-simulation
//! functional emulator, so fast-forward throughput regressions are
//! pinned the same way. The `obs` groups pin the telemetry layer's
//! cost model: per-probe prices armed and disarmed, and disabled
//! probes against the `Core::step` loop (must be in the noise).
//!
//! Run with `cargo bench -p r3dla-bench --bench hotpath`; passing
//! `-- --test` (as the CI bench-smoke job does for compile checks) exits
//! without timing.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use r3dla_bench::Prepared;
use r3dla_core::{DlaConfig, Kernel, SingleCoreSim};
use r3dla_cpu::CoreConfig;
use r3dla_isa::{DataMem, VecMem};
use r3dla_mem::MemConfig;
use r3dla_sample::{Emulator, ImageMem};
use r3dla_workloads::{by_name, Scale};

fn bench_vecmem(c: &mut Criterion) {
    let mut g = c.benchmark_group("vecmem");
    g.sample_size(20);
    g.bench_function("store_load_sequential_64k", |b| {
        b.iter(|| {
            let mut m = VecMem::new();
            let mut acc = 0u64;
            for i in 0..65_536u64 {
                m.store(0x2000_0000 + i * 8, i);
            }
            for i in 0..65_536u64 {
                acc = acc.wrapping_add(m.load(0x2000_0000 + i * 8));
            }
            acc
        })
    });
    g.bench_function("load_page_interleaved_64k", |b| {
        let mut m = VecMem::new();
        for i in 0..65_536u64 {
            m.store(0x2000_0000 + i * 8, i);
        }
        b.iter(|| {
            let mut acc = 0u64;
            // Alternate between two pages: worst case for the last-page
            // cache, pure page-table pressure.
            for i in 0..32_768u64 {
                acc = acc.wrapping_add(m.load(0x2000_0000 + (i & 0x1FF) * 8));
                acc = acc.wrapping_add(m.load(0x2004_0000 + (i & 0x1FF) * 8));
            }
            acc
        })
    });
    g.bench_function("load_unmapped_wrong_path", |b| {
        let mut m = VecMem::new();
        m.store(0x1000, 1);
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..65_536u64 {
                acc = acc.wrapping_add(m.load(0xDEAD_0000 + i * 4096));
            }
            acc
        })
    });
    g.finish();
}

fn bench_core_step(c: &mut Criterion) {
    let wl = by_name("libq_like").unwrap();
    let mut g = c.benchmark_group("core_step");
    g.sample_size(10);
    for (name, fast) in [("cycle_by_cycle_20k", false), ("event_driven_20k", true)] {
        g.bench_function(name, |b| {
            let built = Rc::new(RefCell::new(wl.build(Scale::Tiny)));
            b.iter(|| {
                let mut sim = SingleCoreSim::build(
                    &built.borrow(),
                    CoreConfig::paper(),
                    MemConfig::paper(),
                    None,
                    Some("bop"),
                );
                sim.set_fast_forward(fast);
                sim.run_until(20_000, 2_000_000);
                black_box(sim.core().committed(0))
            })
        });
    }
    g.finish();
}

fn bench_dla_system(c: &mut Criterion) {
    let prepared = Prepared::new(&by_name("libq_like").unwrap(), Scale::Tiny);
    let mut g = c.benchmark_group("dla_system");
    g.sample_size(10);
    for (name, fast) in [("cycle_by_cycle_libq", false), ("event_driven_libq", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let rep = prepared.measure_dla_ff(DlaConfig::dla(), 5_000, 20_000, fast);
                black_box(rep.mt_committed)
            })
        });
    }
    g.finish();
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.sample_size(20);
    // Raw scheduler churn: schedule + pop round trips through the
    // calendar wheel, near-future (bucket append) and far-future
    // (overflow list + rebase) alike.
    g.bench_function("schedule_pop_near_100k", |b| {
        b.iter(|| {
            let mut k = Kernel::new();
            let ids: Vec<_> = (0..4).map(|_| k.add_actor()).collect();
            let mut dispatched = 0u64;
            for round in 0..25_000u64 {
                for (i, &id) in ids.iter().enumerate() {
                    k.schedule(id, k.now() + 1 + (round + i as u64) % 7);
                }
                for _ in 0..ids.len() {
                    let (t, _) = k.pop().unwrap();
                    dispatched += t;
                }
            }
            black_box(dispatched)
        })
    });
    g.bench_function("schedule_pop_far_rebase_100k", |b| {
        b.iter(|| {
            let mut k = Kernel::new();
            let a = k.add_actor();
            let b2 = k.add_actor();
            let mut dispatched = 0u64;
            for round in 0..50_000u64 {
                // One near, one several wheel-horizons out: every few
                // rounds the wheel drains and rebases onto the far list.
                k.schedule(a, k.now() + 3);
                k.schedule(b2, k.now() + 2_000 + round % 11);
                let (t1, _) = k.pop().unwrap();
                let (t2, _) = k.pop().unwrap();
                dispatched += t1 + t2;
            }
            black_box(dispatched)
        })
    });
    g.finish();
    // End-to-end: a memory-bound DLA cell pumped by the event kernel vs
    // the legacy lockstep loop — the refactor's overhead as a number.
    let prepared = Prepared::new(&by_name("mcf_like").unwrap(), Scale::Tiny);
    let mut g = c.benchmark_group("kernel_cell");
    g.sample_size(10);
    for (name, event_kernel) in [("legacy_loop_mcf", false), ("event_kernel_mcf", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let rep =
                    prepared.measure_dla_mode(DlaConfig::dla(), 5_000, 20_000, true, event_kernel);
                black_box(rep.mt_committed)
            })
        });
    }
    g.finish();
}

/// Emulated instructions per host second for one dispatch mode: loops
/// the workload until `budget` instructions have retired, timed once.
fn ff_round(
    prog: &Arc<r3dla_isa::Program>,
    image: &Arc<ImageMem>,
    blocks: bool,
    budget: u64,
) -> f64 {
    let t0 = std::time::Instant::now();
    let mut executed = 0u64;
    while executed < budget {
        let mut e = Emulator::with_image(Arc::clone(prog), Arc::clone(image));
        e.set_block_cache(blocks);
        executed += e.run(budget - executed);
    }
    executed as f64 / t0.elapsed().as_secs_f64()
}

/// Best-of-`rounds` throughput for both dispatch modes, interleaved
/// (blocks, interp, blocks, interp, …) so a drifting host load hits
/// both modes alike instead of biasing whichever ran second.
fn ff_insts_per_sec(
    prog: &Arc<r3dla_isa::Program>,
    image: &Arc<ImageMem>,
    budget: u64,
    rounds: usize,
) -> (f64, f64) {
    let (mut on, mut off) = (0f64, 0f64);
    for _ in 0..rounds {
        on = on.max(ff_round(prog, image, true, budget));
        off = off.max(ff_round(prog, image, false, budget));
    }
    (on, off)
}

fn bench_emulator(c: &mut Criterion) {
    // Two steady streaming workloads (libq's sweep, rotate's row copy)
    // and a branchy call-heavy one (gobmk, whose jalr-terminated traces
    // bound the worst case): the shapes that bound functional
    // fast-forward speed.
    // Each runs twice — decoded-superblock dispatch and the
    // per-instruction interpreter — so the block cache's speedup is a
    // number in every bench report.
    let mut g = c.benchmark_group("emulator");
    g.sample_size(20);
    for name in ["libq_like", "rotate_like", "gobmk_like"] {
        let prog = Arc::new(by_name(name).unwrap().build(Scale::Tiny).program);
        let image = Arc::new(ImageMem::of(prog.image()));
        for (mode, blocks) in [("blocks", true), ("interp", false)] {
            // Loop the whole program if it is shorter than the budget:
            // the metric is emulated instructions per host second either
            // way.
            g.bench_function(format!("fast_forward_200k_{name}_{mode}"), |b| {
                b.iter(|| {
                    let mut executed = 0u64;
                    while executed < 200_000 {
                        let mut e = Emulator::with_image(Arc::clone(&prog), Arc::clone(&image));
                        e.set_block_cache(blocks);
                        executed += e.run(200_000 - executed);
                    }
                    black_box(executed)
                })
            });
        }
        // One explicit throughput line per workload (the vendored
        // criterion reports times, not rates): CI greps these into the
        // bench artifact to track fast-forward speed across commits.
        let (on, off) = ff_insts_per_sec(&prog, &image, 2_000_000, 5);
        println!(
            "fast_forward_throughput {name} blocks={on:.3e} insts/s \
             interp={off:.3e} insts/s speedup={:.2}x",
            on / off
        );
    }
    // Checkpoint capture + restore round trip mid-workload: the per-
    // interval planning cost.
    let prog = Arc::new(by_name("libq_like").unwrap().build(Scale::Tiny).program);
    let image = Arc::new(ImageMem::of(prog.image()));
    let mut em = Emulator::with_image(Arc::clone(&prog), Arc::clone(&image));
    em.run(100_000);
    g.bench_function("checkpoint_capture_restore", |b| {
        b.iter(|| {
            let ckpt = em.checkpoint();
            let resumed = Emulator::from_checkpoint(Arc::clone(&prog), Arc::clone(&image), &ckpt);
            black_box(resumed.icount())
        })
    });
    g.finish();
}

fn bench_obs(c: &mut Criterion) {
    // The telemetry layer's cost model, as numbers: a disabled probe
    // must be one relaxed load (nanoseconds over 100k calls), an
    // enabled span two clock reads plus a thread-local push.
    let mut g = c.benchmark_group("obs");
    g.sample_size(20);
    g.bench_function("span_disabled_100k", |b| {
        r3dla_obs::trace::set_recording(false);
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                let sp = r3dla_obs::span!("bench", "span {i}");
                acc += sp.is_none() as u64;
            }
            black_box(acc)
        })
    });
    g.bench_function("span_enabled_10k", |b| {
        r3dla_obs::trace::set_recording(true);
        b.iter(|| {
            for i in 0..10_000u64 {
                let _sp = r3dla_obs::span!("bench", "span {i}");
                black_box(i);
            }
            // Drop the recorded events so the pool stays bounded.
            r3dla_obs::trace::reset();
        });
        r3dla_obs::trace::set_recording(false);
        r3dla_obs::trace::reset();
    });
    g.bench_function("counter_disabled_100k", |b| {
        r3dla_obs::counters::set_enabled(false);
        b.iter(|| {
            for _ in 0..100_000u64 {
                r3dla_obs::counters::add("bench.obs.cost", 1);
            }
            black_box(r3dla_obs::counters::get("bench.obs.cost"))
        })
    });
    g.bench_function("counter_enabled_100k", |b| {
        r3dla_obs::counters::set_enabled(true);
        b.iter(|| {
            for _ in 0..100_000u64 {
                r3dla_obs::counters::add("bench.obs.cost", 1);
            }
            black_box(r3dla_obs::counters::get("bench.obs.cost"))
        });
        r3dla_obs::counters::set_enabled(false);
        r3dla_obs::counters::reset();
    });
    g.finish();

    // Disabled probes against the real hot loop: the same Core::step
    // budget as the `core_step` group, chunked, with one disarmed span
    // and counter per chunk — the two variants must be in the noise of
    // each other (probe sites are free when telemetry is off).
    let wl = by_name("libq_like").unwrap();
    let mut g = c.benchmark_group("obs_disabled_overhead");
    g.sample_size(10);
    for (name, probed) in [
        ("core_step_20k_plain", false),
        ("core_step_20k_disabled_probes", true),
    ] {
        g.bench_function(name, |b| {
            r3dla_obs::trace::set_recording(false);
            r3dla_obs::counters::set_enabled(false);
            let built = Rc::new(RefCell::new(wl.build(Scale::Tiny)));
            b.iter(|| {
                let mut sim = SingleCoreSim::build(
                    &built.borrow(),
                    CoreConfig::paper(),
                    MemConfig::paper(),
                    None,
                    Some("bop"),
                );
                sim.set_fast_forward(true);
                for chunk in 1..=20u64 {
                    if probed {
                        let _sp = r3dla_obs::span!("bench", "chunk {chunk}");
                        r3dla_obs::counters::add("bench.obs.chunks", 1);
                    }
                    sim.run_until(chunk * 1_000, 2_000_000);
                }
                black_box(sim.core().committed(0))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_vecmem,
    bench_core_step,
    bench_dla_system,
    bench_kernel,
    bench_emulator,
    bench_obs
);
criterion_main!(benches);
