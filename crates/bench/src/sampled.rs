//! Sampled-grid execution: the `r3dla-sample` systematic sampler fanned
//! over the experiment runner's worker pool.
//!
//! A sampled grid splits every workload into k checkpointed intervals
//! (one functional fast-forward pass per workload) and measures each
//! independent (checkpoint × configuration) cell as its own detailed
//! simulation through [`parallel_map`]. Per-interval IPC aggregates into
//! mean ± 95% CI rows; like the plain grid, the deterministic JSON is a
//! pure function of the spec and byte-identical at any `--threads`.

use r3dla_core::{SingleCoreSim, WindowReport};
use r3dla_mem::MemConfig;
use r3dla_sample::{
    ipc_estimate, plan_intervals, warm_and_measure, IntervalCheckpoint, SampleSpec,
};
use r3dla_stats::{mean_ci95, MeanCi};
use r3dla_workloads::Suite;

use std::sync::Arc;

use crate::runner::{parallel_map, scale_name, CellKind, ConfigSpec, GridSpec};
use crate::supervise::{push_status_fields, CellOutcome, CellStatus, Supervisor};
use crate::Prepared;

/// Measures one sampled cell: restore the interval checkpoint into the
/// configured system, warm it per the spec, run the detailed window.
pub fn run_sampled_cell(
    p: &Prepared,
    spec: &ConfigSpec,
    sample: &SampleSpec,
    iv: &IntervalCheckpoint,
    fast_forward: bool,
) -> WindowReport {
    match &spec.kind {
        CellKind::Dla(cfg) => {
            let mut sys = p.dla_system_from_checkpoint(cfg.clone(), &iv.ckpt);
            sys.set_fast_forward(fast_forward);
            warm_and_measure(&mut sys, sample, iv)
        }
        CellKind::Single { core, l1pf, l2pf } => {
            let mut sim = SingleCoreSim::restore_from_checkpoint(
                p.built(),
                core.clone(),
                MemConfig::paper(),
                *l1pf,
                *l2pf,
                &iv.ckpt,
            );
            sim.set_fast_forward(fast_forward);
            warm_and_measure(&mut sim, sample, iv)
        }
    }
}

/// One finished sampled cell: a workload × configuration with its
/// per-interval reports and aggregates.
#[derive(Debug, Clone)]
pub struct SampledCellResult {
    /// Workload name.
    pub workload: String,
    /// Workload suite.
    pub suite: Suite,
    /// Configuration label.
    pub config: String,
    /// Per-interval window reports, in interval order.
    pub reports: Vec<WindowReport>,
    /// Mean ± 95% CI of per-interval MT IPC.
    pub ipc: MeanCi,
    /// Mean ± 95% CI of per-interval speedup over the grid's `bl`
    /// column (paired by interval); absent for the `bl` column itself or
    /// when the grid has no `bl`.
    pub speedup: Option<MeanCi>,
    /// Host wall-clock summed over the cell's intervals (excluded from
    /// deterministic JSON).
    pub wall_ms: u64,
    /// Worst interval outcome across the cell ([`CellStatus::Ok`] when
    /// every interval measured).
    pub status: CellStatus,
    /// Supervisor attempts summed over the cell's intervals.
    pub attempts: u32,
    /// First interval failure's detail.
    pub error: Option<String>,
    /// Which intervals measured successfully (parallel to `reports`;
    /// failed slots hold a default-zero report).
    pub interval_ok: Vec<bool>,
}

impl SampledCellResult {
    /// Total MT instructions committed across the intervals.
    pub fn mt_committed(&self) -> u64 {
        self.reports.iter().map(|r| r.mt_committed).sum()
    }

    /// Whether every interval measured on its first attempt — the rows
    /// whose JSON is unchanged from before supervision existed.
    pub fn is_clean(&self) -> bool {
        self.status == CellStatus::Ok && self.attempts as usize <= self.reports.len()
    }

    /// The deterministic JSON fields of this cell's row.
    pub fn stat_fields(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "\"workload\": \"{}\", \"suite\": \"{}\", \"config\": \"{}\", \
             \"intervals\": {}, \"ipc_mean\": {:.6}, \"ipc_ci95\": {:.6}",
            self.workload,
            self.suite,
            self.config,
            self.reports.len(),
            self.ipc.mean,
            self.ipc.half,
        );
        if let Some(sp) = &self.speedup {
            let _ = write!(
                s,
                ", \"speedup_mean\": {:.6}, \"speedup_ci95\": {:.6}",
                sp.mean, sp.half
            );
        }
        let sums = |f: fn(&WindowReport) -> u64| -> u64 { self.reports.iter().map(f).sum() };
        let _ = write!(
            s,
            ", \"mt_committed\": {}, \"cycles\": {}, \"dram_traffic\": {}, \"reboots\": {}",
            sums(|r| r.mt_committed),
            sums(|r| r.cycles),
            sums(|r| r.dram_traffic),
            sums(|r| r.reboots),
        );
        let ipcs: Vec<String> = self
            .reports
            .iter()
            .map(|r| format!("{:.6}", r.mt_ipc))
            .collect();
        let _ = write!(s, ", \"ipc\": [{}]", ipcs.join(", "));
        if !self.is_clean() {
            push_status_fields(&mut s, self.status, self.attempts, self.error.as_deref());
        }
        s
    }
}

/// All results of a sampled grid run.
#[derive(Debug, Clone)]
pub struct SampledGridResult {
    /// Scale the grid ran at.
    pub scale: r3dla_workloads::Scale,
    /// The sampling request.
    pub spec: SampleSpec,
    /// Cells in deterministic grid order (workload-major).
    pub cells: Vec<SampledCellResult>,
    /// Checkpoints the planner captured (across all workloads — each is
    /// shared by every config column).
    pub planned_checkpoints: usize,
    /// Interval cells measured (checkpoints × configs).
    pub measured_intervals: usize,
    /// Wall-clock of workload preparation.
    pub prep_ms: u64,
    /// Wall-clock of fast-forward interval planning.
    pub plan_ms: u64,
    /// Wall-clock of the detailed measurement phase.
    pub measure_ms: u64,
}

impl SampledGridResult {
    /// Serializes as JSON (`r3dla-bench-sample-v1` schema). Deterministic
    /// unless `timing` adds wall-clock fields.
    pub fn to_json(&self, timing: bool) -> String {
        let mut out = String::with_capacity(256 + self.cells.len() * 300);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"r3dla-bench-sample-v1\",\n");
        out.push_str(&format!(
            "  \"scale\": \"{}\",\n",
            match self.scale {
                r3dla_workloads::Scale::Tiny => "tiny",
                r3dla_workloads::Scale::Train => "train",
                r3dla_workloads::Scale::Ref => "ref",
            }
        ));
        out.push_str(&format!("  \"k\": {},\n", self.spec.k));
        out.push_str(&format!("  \"detailed\": {},\n", self.spec.detailed));
        out.push_str(&format!("  \"warmup\": \"{}\",\n", self.spec.warmup));
        if timing {
            out.push_str(&format!("  \"prep_ms\": {},\n", self.prep_ms));
            out.push_str(&format!("  \"plan_ms\": {},\n", self.plan_ms));
            out.push_str(&format!("  \"measure_ms\": {},\n", self.measure_ms));
            out.push_str(&format!("  \"host_ms\": {},\n", self.host_ms()));
        }
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!("    {{{}", c.stat_fields()));
            if timing {
                out.push_str(&format!(", \"wall_ms\": {}", c.wall_ms));
            }
            out.push('}');
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Total host wall-clock across all phases.
    pub fn host_ms(&self) -> u64 {
        self.prep_ms + self.plan_ms + self.measure_ms
    }

    /// Cells with no intervals at all, or with any *successfully
    /// measured* interval that committed zero MT instructions — a sick
    /// simulation the CI gate fails on (one wedged interval would
    /// otherwise silently drag the cell's `ipc_mean` toward zero while
    /// the run exits clean). Failed intervals are the supervisor's
    /// business, not this gate's: see
    /// [`SampledGridResult::failed_cells`].
    pub fn empty_cells(&self) -> Vec<&SampledCellResult> {
        self.cells
            .iter()
            .filter(|c| {
                c.reports.is_empty()
                    || c.reports
                        .iter()
                        .zip(&c.interval_ok)
                        .any(|(r, &ok)| ok && r.mt_committed == 0)
            })
            .collect()
    }

    /// Cells with at least one interval the supervisor gave up on.
    pub fn failed_cells(&self) -> Vec<&SampledCellResult> {
        self.cells
            .iter()
            .filter(|c| c.status != CellStatus::Ok)
            .collect()
    }
}

/// Prepares the grid's workloads, plans k checkpoints per workload with
/// the functional emulator, measures every (checkpoint × configuration)
/// cell on the worker pool, and aggregates per-cell confidence
/// intervals. `spec.warm`/`spec.win` are ignored — `sample` sizes the
/// windows.
pub fn run_grid_sampled(spec: &GridSpec, sample: &SampleSpec, threads: usize) -> SampledGridResult {
    run_grid_sampled_supervised(spec, sample, threads, &Supervisor::from_env())
}

/// One `(workload, config, interval)` cell of a sampled grid, addressed
/// by indices into the owning [`SampledPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledCell {
    /// Index into the spec's workload list.
    pub workload: usize,
    /// Index into the spec's config list.
    pub config: usize,
    /// Interval index within the workload's sampling plan.
    pub interval: usize,
}

/// The pre-enumerated cell set of one sampled grid: the spec, its
/// prepared workloads, and their interval plans, exposing the primitive
/// the batch runner and the campaign service share — enumerate cells,
/// key them, evaluate them, and assemble the outcomes into a
/// [`SampledGridResult`]. Prepared workloads and interval plans are
/// `Arc`-shared so a long-running service pools them across campaigns.
pub struct SampledPlan {
    spec: GridSpec,
    sample: SampleSpec,
    prepared: Vec<Arc<Prepared>>,
    plans: Vec<Arc<Vec<IntervalCheckpoint>>>,
}

impl SampledPlan {
    /// Prepares every workload and plans its intervals on `threads`
    /// workers.
    pub fn build(spec: &GridSpec, sample: &SampleSpec, threads: usize) -> Self {
        let prepared: Vec<Arc<Prepared>> =
            parallel_map(&spec.workloads, threads, |w| Prepared::new(w, spec.scale))
                .into_iter()
                .map(Arc::new)
                .collect();
        let plans = parallel_map(&prepared, threads, |p| plan_intervals(&p.program, sample))
            .into_iter()
            .map(Arc::new)
            .collect();
        Self::from_parts(spec, sample, prepared, plans)
    }

    /// Builds the plan from already-prepared workloads and interval
    /// plans, one of each per spec workload in order.
    ///
    /// # Panics
    ///
    /// When `prepared`/`plans` do not line up 1:1 with `spec.workloads`.
    pub fn from_parts(
        spec: &GridSpec,
        sample: &SampleSpec,
        prepared: Vec<Arc<Prepared>>,
        plans: Vec<Arc<Vec<IntervalCheckpoint>>>,
    ) -> Self {
        assert_eq!(
            prepared.len(),
            spec.workloads.len(),
            "one prepared workload per spec workload"
        );
        assert_eq!(
            plans.len(),
            spec.workloads.len(),
            "one interval plan per spec workload"
        );
        SampledPlan {
            spec: spec.clone(),
            sample: *sample,
            prepared,
            plans,
        }
    }

    /// The grid spec this plan was built from.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Every cell in canonical order (workload-major, then config, then
    /// interval) — the order [`SampledPlan::assemble`] expects its
    /// outcomes in.
    pub fn cells(&self) -> Vec<SampledCell> {
        let mut cells = Vec::with_capacity(self.n_cells());
        for (wi, plan) in self.plans.iter().enumerate() {
            for ci in 0..self.spec.configs.len() {
                for ii in 0..plan.len() {
                    cells.push(SampledCell {
                        workload: wi,
                        config: ci,
                        interval: ii,
                    });
                }
            }
        }
        cells
    }

    /// Total cell count — a pure function of the spec (admission
    /// budgets rely on this).
    pub fn n_cells(&self) -> usize {
        self.plans.iter().map(|p| p.len()).sum::<usize>() * self.spec.configs.len()
    }

    /// The cell's stable supervision key — the identity fault injection
    /// and quarantine decisions hash, so it names the cell's inputs and
    /// nothing about scheduling.
    pub fn cell_key(&self, cell: SampledCell) -> String {
        format!(
            "sample|{}|{}|{}|{}|iv{}",
            scale_name(self.spec.scale),
            self.sample.label(),
            self.prepared[cell.workload].name,
            self.spec.configs[cell.config].label,
            cell.interval
        )
    }

    /// Measures one interval cell, returning the report and the cell's
    /// host wall-clock in milliseconds (the latter never reaches the
    /// deterministic JSON).
    pub fn evaluate(&self, cell: SampledCell) -> (WindowReport, u64) {
        let c0 = std::time::Instant::now();
        let rep = run_sampled_cell(
            &self.prepared[cell.workload],
            &self.spec.configs[cell.config],
            &self.sample,
            &self.plans[cell.workload][cell.interval],
            self.spec.fast_forward,
        );
        (rep, c0.elapsed().as_millis() as u64)
    }

    /// Assembles per-cell outcomes (in [`SampledPlan::cells`] order)
    /// into the final result, exactly as the batch runner does, so the
    /// deterministic JSON is byte-identical. Wall-clock fields are zero
    /// (they only appear in `--timing` output).
    ///
    /// # Panics
    ///
    /// When `outcomes` does not line up 1:1 with [`SampledPlan::cells`].
    pub fn assemble(&self, outcomes: &[CellOutcome<(WindowReport, u64)>]) -> SampledGridResult {
        assert_eq!(
            outcomes.len(),
            self.n_cells(),
            "one outcome per planned cell"
        );
        // Regroup interval results into per-(workload, config) cells.
        let mut grouped: Vec<SampledCellResult> =
            Vec::with_capacity(self.prepared.len() * self.spec.configs.len());
        let mut cursor = 0;
        for (wi, p) in self.prepared.iter().enumerate() {
            for cfg in &self.spec.configs {
                let n = self.plans[wi].len();
                let slice = &outcomes[cursor..cursor + n];
                cursor += n;
                let mut reports = Vec::with_capacity(n);
                let mut interval_ok = Vec::with_capacity(n);
                let mut wall_ms = 0u64;
                let mut status = CellStatus::Ok;
                let mut attempts = 0u32;
                let mut error = None;
                for o in slice {
                    match &o.value {
                        Some((rep, ms)) => {
                            reports.push(rep.clone());
                            interval_ok.push(true);
                            wall_ms += ms;
                        }
                        None => {
                            reports.push(WindowReport::default());
                            interval_ok.push(false);
                            if status == CellStatus::Ok {
                                status = o.status;
                            }
                            if error.is_none() {
                                error = o.error.clone();
                            }
                        }
                    }
                    attempts += o.attempts;
                }
                // Statistics aggregate over the intervals that measured;
                // zeroed failure slots would poison the mean.
                let ok_reports: Vec<WindowReport> = reports
                    .iter()
                    .zip(&interval_ok)
                    .filter(|(_, &ok)| ok)
                    .map(|(r, _)| r.clone())
                    .collect();
                grouped.push(SampledCellResult {
                    workload: p.name.clone(),
                    suite: p.suite,
                    config: cfg.label.clone(),
                    ipc: ipc_estimate(&ok_reports),
                    speedup: None,
                    wall_ms,
                    status,
                    attempts,
                    error,
                    interval_ok,
                    reports,
                });
            }
        }
        attach_speedups(&mut grouped, &self.spec.configs);
        SampledGridResult {
            scale: self.spec.scale,
            spec: self.sample,
            cells: grouped,
            planned_checkpoints: self.plans.iter().map(|p| p.len()).sum(),
            measured_intervals: self.n_cells(),
            prep_ms: 0,
            plan_ms: 0,
            measure_ms: 0,
        }
    }
}

/// [`run_grid_sampled`] under an explicit [`Supervisor`]: each interval
/// cell runs inside `catch_unwind` with retry/quarantine policy, and a
/// failed interval degrades to a zeroed slot (excluded from the cell's
/// IPC/speedup statistics) with the failure carried on the row.
pub fn run_grid_sampled_supervised(
    spec: &GridSpec,
    sample: &SampleSpec,
    threads: usize,
    sup: &Supervisor,
) -> SampledGridResult {
    let t0 = std::time::Instant::now();
    let prepared: Vec<Arc<Prepared>> =
        parallel_map(&spec.workloads, threads, |w| Prepared::new(w, spec.scale))
            .into_iter()
            .map(Arc::new)
            .collect();
    let prep_ms = t0.elapsed().as_millis() as u64;

    let t1 = std::time::Instant::now();
    let plans = parallel_map(&prepared, threads, |p| plan_intervals(&p.program, sample))
        .into_iter()
        .map(Arc::new)
        .collect();
    let plan = SampledPlan::from_parts(spec, sample, prepared, plans);
    let plan_ms = t1.elapsed().as_millis() as u64;

    let cells = plan.cells();
    let t2 = std::time::Instant::now();
    let measured = sup.map(
        &cells,
        threads,
        |&cell| plan.cell_key(cell),
        |&cell| Ok(plan.evaluate(cell)),
    );
    let mut result = plan.assemble(&measured);
    result.prep_ms = prep_ms;
    result.plan_ms = plan_ms;
    result.measure_ms = t2.elapsed().as_millis() as u64;
    result
}

/// Computes per-interval speedups over the grid's `bl` column (paired by
/// interval index) for every non-`bl` cell. Only intervals where both
/// the cell *and* its `bl` partner measured successfully pair up; a cell
/// with no such pairs keeps `speedup: None`.
fn attach_speedups(cells: &mut [SampledCellResult], configs: &[ConfigSpec]) {
    if !configs.iter().any(|c| c.label == "bl") {
        return;
    }
    let per_workload = configs.len();
    for chunk in cells.chunks_mut(per_workload) {
        let Some(bl_idx) = chunk.iter().position(|c| c.config == "bl") else {
            continue;
        };
        let bl: Vec<(f64, bool)> = chunk[bl_idx]
            .reports
            .iter()
            .zip(&chunk[bl_idx].interval_ok)
            .map(|(r, &ok)| (r.mt_ipc, ok))
            .collect();
        for cell in chunk.iter_mut() {
            if cell.config == "bl" || cell.reports.len() != bl.len() {
                continue;
            }
            let ratios: Vec<f64> = cell
                .reports
                .iter()
                .zip(&cell.interval_ok)
                .zip(&bl)
                .filter(|((_, &ok), &(_, bl_ok))| ok && bl_ok)
                .map(|((r, _), &(b, _))| r.mt_ipc / b.max(1e-9))
                .collect();
            if !ratios.is_empty() {
                cell.speedup = Some(mean_ci95(&ratios));
            }
        }
    }
}

/// Extracts a `"key": "value"` string field from one JSON row line.
fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Extracts a `"key": number` field from one JSON row line.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Validates a sampled run against a full-run reference grid JSON
/// (`r3dla-bench-grid-v1`): every sampled cell's IPC mean must contain
/// the reference cell's full-run IPC within its reported 95% CI, widened
/// by a relative `tolerance` budget for non-sampling bias (|mean − full|
/// ≤ ci95 + tolerance·full). The CI only covers sampling variance across
/// intervals; cold-start residue after warmup, window-boundary effects
/// and microarchitectural hysteresis (a continuous run's cache/predictor
/// state depends on its whole past, which no bounded warmup reproduces)
/// are systematic and need an explicit allowance — SMARTS budgets ~2–3%
/// for real workloads; the tiny synthetic kernels here are far more
/// phase-heavy relative to k·U, so CI passes a looser gate.
///
/// Returns human-readable failure lines (empty = pass). Cells missing
/// from the reference are themselves failures, as is an empty
/// intersection — the check must never pass vacuously.
pub fn check_against_reference(
    sampled: &SampledGridResult,
    reference_json: &str,
    tolerance: f64,
) -> Vec<String> {
    let mut reference = std::collections::HashMap::new();
    for line in reference_json.lines() {
        if let (Some(w), Some(c), Some(ipc)) = (
            json_str_field(line, "workload"),
            json_str_field(line, "config"),
            json_num_field(line, "mt_ipc"),
        ) {
            reference.insert((w.to_string(), c.to_string()), ipc);
        }
    }
    let mut failures = Vec::new();
    let mut checked = 0;
    for cell in &sampled.cells {
        let key = (cell.workload.clone(), cell.config.clone());
        match reference.get(&key) {
            Some(&full) => {
                checked += 1;
                let limit = cell.ipc.half + tolerance * full.abs();
                if (full - cell.ipc.mean).abs() > limit {
                    failures.push(format!(
                        "({}, {}): full-run IPC {:.4} outside sampled {} + {:.0}% bias budget",
                        cell.workload,
                        cell.config,
                        full,
                        cell.ipc,
                        tolerance * 100.0
                    ));
                }
            }
            None => failures.push(format!(
                "({}, {}): no reference cell in the full-run JSON",
                cell.workload, cell.config
            )),
        }
    }
    if checked == 0 {
        failures.push("no sampled cell matched the reference grid".to_string());
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_workloads::{by_name, Scale};

    fn sampled_tiny_grid() -> (GridSpec, SampleSpec) {
        let grid = GridSpec {
            scale: Scale::Tiny,
            workloads: ["libq_like", "md5_like"]
                .iter()
                .map(|n| by_name(n).unwrap())
                .collect(),
            configs: ["bl", "dla"]
                .iter()
                .map(|n| ConfigSpec::by_name(n).unwrap())
                .collect(),
            warm: 0,
            win: 0,
            fast_forward: true,
        };
        (grid, SampleSpec::parse("3:2000:functional:4000").unwrap())
    }

    #[test]
    fn sampled_grid_is_thread_count_invariant() {
        let (grid, sample) = sampled_tiny_grid();
        let serial = run_grid_sampled(&grid, &sample, 1);
        let parallel = run_grid_sampled(&grid, &sample, 4);
        assert_eq!(serial.cells.len(), 4);
        assert_eq!(serial.to_json(false), parallel.to_json(false));
        assert!(serial.empty_cells().is_empty());
        for c in &serial.cells {
            assert_eq!(c.reports.len(), 3, "every interval must report");
            assert!(c.ipc.mean > 0.0, "cell {} has zero IPC", c.workload);
        }
    }

    #[test]
    fn sampled_json_carries_ci_and_speedup_fields() {
        let (grid, sample) = sampled_tiny_grid();
        let res = run_grid_sampled(&grid, &sample, 2);
        let json = res.to_json(false);
        assert!(json.contains("\"schema\": \"r3dla-bench-sample-v1\""));
        assert!(json.contains("\"k\": 3"));
        assert!(json.contains("\"warmup\": \"functional:4000\""));
        assert!(json.contains("\"ipc_mean\""));
        assert!(json.contains("\"ipc_ci95\""));
        assert!(json.contains("\"speedup_mean\""), "dla rows pair with bl");
        assert!(!json.contains("wall_ms"), "default JSON is deterministic");
        let timed = res.to_json(true);
        assert!(timed.contains("\"plan_ms\"") && timed.contains("wall_ms"));
        // bl rows never carry a speedup against themselves.
        for line in json.lines().filter(|l| l.contains("\"config\": \"bl\"")) {
            assert!(!line.contains("speedup_mean"), "{line}");
        }
    }

    #[test]
    fn reference_check_parses_grid_rows() {
        let reference = concat!(
            "{\n  \"cells\": [\n",
            "    {\"workload\": \"a\", \"suite\": \"spec\", \"config\": \"bl\", ",
            "\"mt_ipc\": 1.500000, \"cycles\": 10}\n",
            "  ]\n}\n"
        );
        let cell = |mean: f64, half: f64| SampledCellResult {
            workload: "a".into(),
            suite: Suite::SpecInt,
            config: "bl".into(),
            reports: Vec::new(),
            ipc: MeanCi { mean, half, n: 4 },
            speedup: None,
            wall_ms: 0,
            status: CellStatus::Ok,
            attempts: 0,
            error: None,
            interval_ok: Vec::new(),
        };
        let mut res = SampledGridResult {
            scale: Scale::Tiny,
            spec: SampleSpec::parse("4:100:none").unwrap(),
            cells: vec![cell(1.45, 0.1)],
            planned_checkpoints: 4,
            measured_intervals: 4,
            prep_ms: 0,
            plan_ms: 0,
            measure_ms: 0,
        };
        assert!(check_against_reference(&res, reference, 0.0).is_empty());
        res.cells = vec![cell(1.2, 0.1)];
        let fails = check_against_reference(&res, reference, 0.0);
        assert_eq!(fails.len(), 1, "{fails:?}");
        // The bias budget widens the gate: 1.5 vs 1.2 ± 0.1 is inside
        // CI + 20% · 1.5.
        assert!(check_against_reference(&res, reference, 0.2).is_empty());
        // A cell absent from the reference fails rather than passing
        // silently.
        res.cells[0].workload = "zzz".into();
        assert!(!check_against_reference(&res, reference, 0.0).is_empty());
        // So does an empty reference.
        res.cells[0].workload = "a".into();
        assert!(!check_against_reference(&res, "{}", 0.0).is_empty());
    }

    #[test]
    fn chaos_sampled_grid_is_byte_identical_across_threads() {
        use crate::supervise::{FaultPlan, SuperviseConfig};
        let (grid, sample) = sampled_tiny_grid();
        let run = |threads: usize| {
            let sup = Supervisor::new(SuperviseConfig {
                backoff_ms: 0,
                plan: FaultPlan::parse("seed=3:panic=0.3:io=0.3").unwrap(),
                ..SuperviseConfig::default()
            });
            run_grid_sampled_supervised(&grid, &sample, threads, &sup)
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.to_json(false), b.to_json(false));
        assert!(a.to_json(false).contains("\"status\""));
        // Failed intervals don't trip the zero-commit gate; the IPC of
        // surviving intervals stays positive.
        assert!(a.empty_cells().is_empty());
        for c in &a.cells {
            if c.interval_ok.iter().any(|&ok| ok) {
                assert!(c.ipc.mean > 0.0, "cell {}|{}", c.workload, c.config);
            }
        }
    }

    #[test]
    fn sampled_grid_skip_on_off_equivalent() {
        let (mut grid, sample) = sampled_tiny_grid();
        grid.workloads.truncate(1);
        let fast = run_grid_sampled(&grid, &sample, 2);
        grid.fast_forward = false;
        let slow = run_grid_sampled(&grid, &sample, 2);
        assert_eq!(
            fast.to_json(false),
            slow.to_json(false),
            "cycle skipping must not change sampled statistics"
        );
    }
}
