//! Fig 11: SMT usage scenarios — FC (wide core), DLA and R3-DLA on two
//! half-cores, and SMT (two program copies on the wide core), all
//! normalized to a half-core (HC).

use r3dla_bench::{arg_u64, measure_smt, prepare_all, suite_summary, WARMUP, WINDOW};
use r3dla_core::DlaConfig;
use r3dla_cpu::CoreConfig;
use r3dla_workloads::Scale;

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let prepared = prepare_all(Scale::Ref);
    println!("# FIG11 — throughput normalized to a half-core\n");
    println!("| bench | FC | DLA | R3-DLA | SMT |");
    println!("|---|---|---|---|---|");
    let mut cols: Vec<Vec<(r3dla_workloads::Suite, f64)>> = vec![Vec::new(); 4];
    for p in &prepared {
        let hc = p.measure_single(CoreConfig::half_core(), None, Some("bop"), warm, win);
        let fc = p.measure_single(CoreConfig::wide_smt(), None, Some("bop"), warm, win);
        let mk_half = |mut cfg: DlaConfig| {
            cfg.mt_core = CoreConfig::half_core();
            let mut lt = CoreConfig::half_core();
            lt.fetch_masks = true;
            cfg.lt_core = lt;
            cfg
        };
        let dla = p.measure_dla(mk_half(DlaConfig::dla()), warm, win).mt_ipc;
        let mut r3_cfg = mk_half(DlaConfig::r3());
        r3_cfg.mt_core.fetch_buffer = 32;
        let r3 = p.measure_dla(r3_cfg, warm, win).mt_ipc;
        // The paper's R3-on-SMT allows an *empty skeleton*, handing the
        // whole core to the main thread when look-ahead does not pay; at
        // benchmark granularity that is max(R3-half, FC).
        let r3_smt = r3.max(fc);
        let smt = measure_smt(p.built(), CoreConfig::wide_smt(), 2, win);
        let vals = [fc, dla, r3_smt, smt];
        let mut cells = vec![p.name.clone()];
        for (k, v) in vals.iter().enumerate() {
            let norm = v / hc.max(1e-9);
            cells.push(format!("{norm:.3}"));
            cols[k].push((p.suite, norm));
        }
        println!("{}", r3dla_bench::row(&cells));
    }
    println!(
        "\n## Geometric means (paper: FC 1.23, DLA < FC on avg, R3-DLA 1.44, SMT for throughput)\n"
    );
    for (k, name) in ["FC", "DLA", "R3-DLA", "SMT"].iter().enumerate() {
        println!("- {name}: {:.3}", suite_summary(&cols[k]).last().unwrap().1);
    }
}
