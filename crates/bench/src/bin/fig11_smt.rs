//! Fig 11: SMT usage scenarios — FC (wide core), DLA and R3-DLA on two
//! half-cores, and SMT (two program copies on the wide core), all
//! normalized to a half-core (HC).

use r3dla_bench::{
    arg_threads, arg_u64, measure_smt, prepare_all_threads, ExperimentSpec, WARMUP, WINDOW,
};
use r3dla_core::DlaConfig;
use r3dla_cpu::CoreConfig;
use r3dla_workloads::Scale;

fn mk_half(mut cfg: DlaConfig) -> DlaConfig {
    cfg.mt_core = CoreConfig::half_core();
    let mut lt = CoreConfig::half_core();
    lt.fetch_masks = true;
    cfg.lt_core = lt;
    cfg
}

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let threads = arg_threads();
    let prepared = prepare_all_threads(Scale::Ref, threads);
    let spec = ExperimentSpec::new("FIG11", &["FC", "DLA", "R3-DLA", "SMT"], move |p| {
        let hc = p.measure_single(CoreConfig::half_core(), None, Some("bop"), warm, win);
        let fc = p.measure_single(CoreConfig::wide_smt(), None, Some("bop"), warm, win);
        let dla = p.measure_dla(mk_half(DlaConfig::dla()), warm, win).mt_ipc;
        let mut r3_cfg = mk_half(DlaConfig::r3());
        r3_cfg.mt_core.fetch_buffer = 32;
        let r3 = p.measure_dla(r3_cfg, warm, win).mt_ipc;
        // The paper's R3-on-SMT allows an *empty skeleton*, handing the
        // whole core to the main thread when look-ahead does not pay; at
        // benchmark granularity that is max(R3-half, FC).
        let r3_smt = r3.max(fc);
        let smt = measure_smt(p.built(), CoreConfig::wide_smt(), 2, win);
        [fc, dla, r3_smt, smt]
            .iter()
            .map(|v| v / hc.max(1e-9))
            .collect()
    });
    let res = spec.execute(&prepared, threads);
    println!("# FIG11 — throughput normalized to a half-core\n");
    res.print_markdown();
    println!(
        "\n## Geometric means (paper: FC 1.23, DLA < FC on avg, R3-DLA 1.44, SMT for throughput)\n"
    );
    res.print_geomeans();
}
