//! Fig 10: CPU and DRAM energy of DLA and R3-DLA normalized to baseline,
//! per suite (plus the EDP claims of §IV-B2).

use r3dla_bench::{arg_u64, prepare_all, suite_summary, WARMUP, WINDOW};
use r3dla_core::{DlaConfig, SingleCoreSim};
use r3dla_cpu::CoreConfig;
use r3dla_energy::{counters_delta, CoreEnergy, DramEnergy, EnergyParams};
use r3dla_mem::MemConfig;
use r3dla_workloads::Scale;

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let prepared = prepare_all(Scale::Ref);
    let params = EnergyParams::node22();
    let mut cpu = [Vec::new(), Vec::new()];
    let mut dram = [Vec::new(), Vec::new()];
    let mut edp = [Vec::new(), Vec::new()];
    for p in &prepared {
        let mut bl = SingleCoreSim::build(
            p.built(),
            CoreConfig::paper(),
            MemConfig::paper(),
            None,
            Some("bop"),
        );
        bl.run_until(warm, warm * 60 + 500_000);
        let b0 = bl.core().counters.clone();
        let bt0 = bl.dram_traffic();
        let shared = bl.core().mem().shared();
        let ba0 = shared.borrow().dram_stats().activations.get();
        bl.run_until(win, win * 60 + 500_000);
        let bld = counters_delta(&b0, &bl.core().counters);
        let bl_core_e = CoreEnergy::from_counters(&bld, &params);
        let mut bl_dram = r3dla_mem::DramStats::default();
        bl_dram.reads.add(bl.dram_traffic() - bt0);
        bl_dram
            .activations
            .add(shared.borrow().dram_stats().activations.get() - ba0);
        let bl_dram_e = DramEnergy::from_stats(&bl_dram, bl_core_e.seconds, &params);
        let bl_total = bl_core_e.total_j();
        for (i, cfg) in [DlaConfig::dla(), DlaConfig::r3()].into_iter().enumerate() {
            let mut sys = p.dla_system(cfg);
            sys.run_until_mt(warm, warm * 60 + 500_000);
            let s0 = sys.snapshot();
            sys.run_until_mt(win, win * 60 + 500_000);
            let s1 = sys.snapshot();
            let lt = counters_delta(&s0.lt_counters, &s1.lt_counters);
            let mt = counters_delta(&s0.mt_counters, &s1.mt_counters);
            let lt_e = CoreEnergy::from_counters(&lt, &params);
            let mt_e = CoreEnergy::from_counters(&mt, &params);
            let total = lt_e.total_j() + mt_e.total_j();
            cpu[i].push((p.suite, total / bl_total.max(1e-18)));
            let mut dstats = r3dla_mem::DramStats::default();
            dstats.reads.add(s1.dram.reads.get() - s0.dram.reads.get());
            dstats
                .writes
                .add(s1.dram.writes.get() - s0.dram.writes.get());
            dstats
                .activations
                .add(s1.dram.activations.get() - s0.dram.activations.get());
            let de = DramEnergy::from_stats(&dstats, mt_e.seconds, &params);
            dram[i].push((p.suite, de.total_j() / bl_dram_e.total_j().max(1e-18)));
            // EDP vs baseline: energy × time (time ∝ cycles at equal insts).
            let e_ratio = (total + de.total_j()) / (bl_total + bl_dram_e.total_j()).max(1e-18);
            let t_ratio = mt_e.seconds / bl_core_e.seconds.max(1e-12);
            edp[i].push((p.suite, e_ratio * t_ratio));
        }
    }
    println!("# FIG10 — normalized energy (geomean per suite)\n");
    println!("| group | DLA cpu | R3 cpu | DLA dram | R3 dram |");
    println!("|---|---|---|---|---|");
    let c0 = suite_summary(&cpu[0]);
    let c1 = suite_summary(&cpu[1]);
    let d0 = suite_summary(&dram[0]);
    let d1 = suite_summary(&dram[1]);
    for g in 0..c0.len() {
        println!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} |",
            c0[g].0, c0[g].1, c1[g].1, d0[g].1, d1[g].1
        );
    }
    println!("\n(paper: cpu 1.11x geomean for R3; dram 0.9x)\n");
    println!("## EDP vs baseline (geomean; paper: DLA +6%, R3 −19%)\n");
    println!(
        "- DLA EDP: {:.3}\n- R3-DLA EDP: {:.3}",
        suite_summary(&edp[0]).last().unwrap().1,
        suite_summary(&edp[1]).last().unwrap().1
    );
}
