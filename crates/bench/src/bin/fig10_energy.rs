//! Fig 10: CPU and DRAM energy of DLA and R3-DLA normalized to baseline,
//! per suite (plus the EDP claims of §IV-B2).

use r3dla_bench::{arg_threads, arg_u64, prepare_all_threads, ExperimentSpec, WARMUP, WINDOW};
use r3dla_core::{DlaConfig, SingleCoreSim};
use r3dla_cpu::CoreConfig;
use r3dla_energy::{counters_delta, CoreEnergy, DramEnergy, EnergyParams};
use r3dla_mem::MemConfig;
use r3dla_workloads::Scale;

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let threads = arg_threads();
    let prepared = prepare_all_threads(Scale::Ref, threads);
    let params = EnergyParams::node22();
    let spec = ExperimentSpec::new(
        "FIG10",
        &[
            "DLA cpu", "R3 cpu", "DLA dram", "R3 dram", "DLA edp", "R3 edp",
        ],
        move |p| {
            let mut bl = SingleCoreSim::build(
                p.built(),
                CoreConfig::paper(),
                MemConfig::paper(),
                None,
                Some("bop"),
            );
            bl.run_until(warm, warm * 60 + 500_000);
            let b0 = bl.core().counters.clone();
            let bt0 = bl.dram_traffic();
            let shared = bl.core().mem().shared();
            let ba0 = shared.borrow().dram_stats().activations.get();
            bl.run_until(win, win * 60 + 500_000);
            let bld = counters_delta(&b0, &bl.core().counters);
            let bl_core_e = CoreEnergy::from_counters(&bld, &params);
            let mut bl_dram = r3dla_mem::DramStats::default();
            bl_dram.reads.add(bl.dram_traffic() - bt0);
            bl_dram
                .activations
                .add(shared.borrow().dram_stats().activations.get() - ba0);
            let bl_dram_e = DramEnergy::from_stats(&bl_dram, bl_core_e.seconds, &params);
            let bl_total = bl_core_e.total_j();
            let mut cpu = [0.0f64; 2];
            let mut dram = [0.0f64; 2];
            let mut edp = [0.0f64; 2];
            for (i, cfg) in [DlaConfig::dla(), DlaConfig::r3()].into_iter().enumerate() {
                let mut sys = p.dla_system(cfg);
                sys.run_until_mt(warm, warm * 60 + 500_000);
                let s0 = sys.snapshot();
                sys.run_until_mt(win, win * 60 + 500_000);
                let s1 = sys.snapshot();
                let lt = counters_delta(&s0.lt_counters, &s1.lt_counters);
                let mt = counters_delta(&s0.mt_counters, &s1.mt_counters);
                let lt_e = CoreEnergy::from_counters(&lt, &params);
                let mt_e = CoreEnergy::from_counters(&mt, &params);
                let total = lt_e.total_j() + mt_e.total_j();
                cpu[i] = total / bl_total.max(1e-18);
                let mut dstats = r3dla_mem::DramStats::default();
                dstats.reads.add(s1.dram.reads.get() - s0.dram.reads.get());
                dstats
                    .writes
                    .add(s1.dram.writes.get() - s0.dram.writes.get());
                dstats
                    .activations
                    .add(s1.dram.activations.get() - s0.dram.activations.get());
                let de = DramEnergy::from_stats(&dstats, mt_e.seconds, &params);
                dram[i] = de.total_j() / bl_dram_e.total_j().max(1e-18);
                // EDP vs baseline: energy × time (time ∝ cycles at equal
                // insts).
                let e_ratio = (total + de.total_j()) / (bl_total + bl_dram_e.total_j()).max(1e-18);
                let t_ratio = mt_e.seconds / bl_core_e.seconds.max(1e-12);
                edp[i] = e_ratio * t_ratio;
            }
            vec![cpu[0], cpu[1], dram[0], dram[1], edp[0], edp[1]]
        },
    );
    let res = spec.execute(&prepared, threads);
    println!("# FIG10 — normalized energy (geomean per suite)\n");
    res.print_geomeans();
    println!("\n(paper: cpu 1.11x geomean for R3; dram 0.9x)\n");
    println!("## EDP vs baseline (geomean; paper: DLA +6%, R3 −19%)\n");
    println!(
        "- DLA EDP: {:.3}\n- R3-DLA EDP: {:.3}",
        res.geomean(4),
        res.geomean(5)
    );
}
