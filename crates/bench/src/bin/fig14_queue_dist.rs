//! Fig 14: theoretical vs simulated fetch-buffer queue-length
//! distribution for the DLA main thread.
//!
//! Following Appendix B-D, the supply and demand distributions are
//! measured with the constraint removed (a never-full buffer), then the
//! model predicts occupancy at capacity 32 and is compared against a
//! simulation actually run with a 32-entry buffer.

use r3dla_analytic::FetchBufferModel;
use r3dla_bench::{prepare_some, WARMUP};
use r3dla_core::DlaConfig;
use r3dla_workloads::Scale;

fn main() {
    // md5_like keeps the BOQ full (deep look-ahead), so MT fetch is not
    // source-starved — the regime the paper's analysis targets.
    let p = &prepare_some(&["md5_like"], Scale::Ref)[0];
    // Supply with an idealized backend (paper Appendix B-D): the fetch
    // unit delivers up to `fetch width` instructions per cycle, cut at
    // taken branches — derived from the committed control flow.
    let supply = {
        use r3dla_isa::{step, ArchState, VecMem};
        let mut st = ArchState::new(p.program.entry());
        let mut mem = VecMem::new();
        mem.load_image(p.program.image());
        let mut hist = r3dla_stats::Histogram::new();
        let mut chunk = 0u64;
        for _ in 0..200_000 {
            let out = match step(&p.program, &mut st, &mut mem) {
                Ok(o) => o,
                Err(_) => break,
            };
            chunk += 1;
            let taken =
                out.taken == Some(true) || (out.inst.is_branch() && !out.inst.is_cond_branch());
            if taken || chunk == 8 {
                hist.record(chunk);
                chunk = 0;
            }
            if out.halted {
                break;
            }
        }
        hist.to_pmf()
    };
    // Demand with an idealized fetch: renamed-per-cycle from an
    // unconstrained-buffer run.
    let mut cfg = DlaConfig::dla();
    cfg.mt_core.fetch_buffer = 4096;
    let mut sys = p.dla_system(cfg);
    sys.run_until_mt(WARMUP + 120_000, 40_000_000);
    let stats = sys.mt().thread_stats(0);
    let demand_raw = stats.renamed_per_cycle.to_pmf();
    let mut demand = vec![0.0; 5];
    for (k, pr) in demand_raw.iter().enumerate() {
        demand[k.min(4)] += pr;
    }
    // Run B: the real 32-entry buffer → simulated occupancy.
    let mut cfg = DlaConfig::dla();
    cfg.mt_core.fetch_buffer = 32;
    let mut sys = p.dla_system(cfg);
    sys.run_until_mt(WARMUP + 120_000, 40_000_000);
    let simulated = sys.mt().thread_stats(0).fetch_occupancy.to_pmf();
    let model = FetchBufferModel::new(supply, demand, 32).unwrap();
    let theoretical = model.steady_state();
    println!("# FIG14 — P(queue length): theoretical vs simulated (cap 32)\n");
    println!("| len | theoretical | simulated |");
    println!("|---|---|---|");
    for i in 0..=32usize {
        let t = theoretical.get(i).copied().unwrap_or(0.0);
        let s = simulated.get(i).copied().unwrap_or(0.0);
        println!("| {i} | {t:.4} | {s:.4} |");
    }
    let tv: f64 = (0..=32)
        .map(|i| {
            (theoretical.get(i).copied().unwrap_or(0.0) - simulated.get(i).copied().unwrap_or(0.0))
                .abs()
        })
        .sum::<f64>()
        / 2.0;
    println!("\ntotal-variation distance = {tv:.3} (0 = identical; paper: 'agrees rather well')");
}
