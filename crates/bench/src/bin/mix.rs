//! Multi-tenant mix runner: pairs of workloads co-scheduled on one
//! shared LLC/DRAM through the discrete-event [`Cluster`] kernel, one
//! grid row per tenant.
//!
//! ```text
//! mix [--scale tiny|train|ref] [--threads N] [--warm N] [--window N]
//!     [--config dla|r3|...] [--pairs a+b,c+d] [--out FILE] [--progress]
//! ```
//!
//! Telemetry (stderr/sidecar only, never the report): `--progress`
//! prints a live done/total line; `R3DLA_TRACE=path` records a Chrome
//! trace; `R3DLA_TELEMETRY=1` writes a `*.telemetry.json` sidecar next
//! to `--out` (see `docs/OBSERVABILITY.md`). The sidecar carries the
//! cluster kernel's dispatch counters (`kernel.dispatched`,
//! `kernel.stale_dropped`).
//!
//! Each pair assembles two DLA systems over the *same*
//! [`SharedLlc`] handle and pumps them through one kernel under one
//! global clock; the per-tenant window reports are captured the moment
//! each tenant finishes its window. The JSON
//! (`r3dla-bench-mix-v1`) is byte-identical across `--threads`
//! settings — CI runs it twice and `cmp`s. Exits non-zero when any
//! tenant commits zero instructions.

use std::cell::RefCell;
use std::rc::Rc;

use r3dla_bench::runner::{
    parallel_map, scale_by_name, scale_name, CellKind, CellResult, ConfigSpec,
};
use r3dla_bench::supervise::CellStatus;
use r3dla_bench::{arg_flag, arg_str, arg_threads, arg_u64, Prepared, Supervisor, WARMUP, WINDOW};
use r3dla_core::{Cluster, DlaConfig};
use r3dla_mem::SharedLlc;
use r3dla_workloads::{by_name, Scale, Workload};

const DEFAULT_PAIRS: &str = "libq_like+mcf_like,xalan_like+cg_like";

fn main() {
    let scale = match arg_str("--scale") {
        Some(s) => scale_by_name(&s).unwrap_or_else(|| {
            eprintln!("unknown scale '{s}' (expected tiny|train|ref)");
            std::process::exit(2);
        }),
        None => Scale::Ref,
    };
    let threads = arg_threads();
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let config_name = arg_str("--config").unwrap_or_else(|| "r3".to_string());
    let spec = ConfigSpec::by_name(&config_name).unwrap_or_else(|| {
        eprintln!(
            "unknown config '{config_name}' (known: {})",
            ConfigSpec::known_names().join(", ")
        );
        std::process::exit(2);
    });
    let cfg: DlaConfig = match &spec.kind {
        CellKind::Dla(cfg) => cfg.clone(),
        CellKind::Single { .. } => {
            eprintln!(
                "config '{config_name}' is single-core; mix needs a DLA config (dla, r3, ...)"
            );
            std::process::exit(2);
        }
    };

    let pairs_arg = arg_str("--pairs").unwrap_or_else(|| DEFAULT_PAIRS.to_string());
    let pairs: Vec<(Workload, Workload)> = pairs_arg
        .split(',')
        .map(|p| {
            let (a, b) = p.trim().split_once('+').unwrap_or_else(|| {
                eprintln!("bad pair '{p}' (expected a+b)");
                std::process::exit(2);
            });
            let lookup = |n: &str| {
                by_name(n.trim()).unwrap_or_else(|| {
                    eprintln!("unknown workload '{n}'");
                    std::process::exit(2);
                })
            };
            (lookup(a), lookup(b))
        })
        .collect();

    // Prepare each distinct workload once; pairs then share the analysis.
    let mut names: Vec<String> = pairs
        .iter()
        .flat_map(|(a, b)| [a.name.to_string(), b.name.to_string()])
        .collect();
    names.sort();
    names.dedup();
    eprintln!(
        "mix: {} pairs over {} workloads ({config_name}) on {threads} threads",
        pairs.len(),
        names.len()
    );
    let prepared = parallel_map(&names, threads, |n| {
        Prepared::new(&by_name(n).unwrap(), scale)
    });
    let find = |name: &str| &prepared[names.iter().position(|n| n.as_str() == name).unwrap()];

    // Each pair gets its own shared memory side and its own kernel; the
    // pairs themselves are independent, so they fan out across workers
    // without affecting the (deterministic) per-pair interleaving. The
    // supervisor contains a panicking/runaway pair to a pair of status
    // rows instead of killing the whole mix.
    let sup = Supervisor::from_env();
    let scale_label = scale_name(scale);
    let session = r3dla_obs::Session::from_env();
    if arg_flag("--progress") {
        r3dla_obs::progress::start("mix", pairs.len());
    }
    let t_measure = std::time::Instant::now();
    let outcomes = sup.map(
        &pairs,
        threads,
        |(a, b)| {
            format!(
                "mix|{scale_label}|{warm}|{win}|{config_name}|{}+{}",
                a.name, b.name
            )
        },
        |(a, b)| {
            let shared = Rc::new(RefCell::new(SharedLlc::new(&cfg.mem)));
            let mut cluster = Cluster::with_shared(shared.clone());
            for p in [find(a.name), find(b.name)] {
                cluster.push(p.dla_system_shared(cfg.clone(), shared.clone()));
            }
            let t0 = std::time::Instant::now();
            let reports = cluster.measure_each(warm, win);
            if r3dla_obs::counters::enabled() {
                let ks = cluster.kernel_stats();
                r3dla_obs::counters::add("kernel.dispatched", ks.dispatched);
                r3dla_obs::counters::add("kernel.stale_dropped", ks.stale_dropped);
            }
            Ok((reports, t0.elapsed().as_millis() as u64))
        },
    );
    let measure_ms = t_measure.elapsed().as_millis() as u64;
    let rows: Vec<Vec<CellResult>> = pairs
        .iter()
        .zip(outcomes)
        .map(|((a, b), o)| {
            let (reports, wall_ms) = o
                .value
                .unwrap_or_else(|| (vec![Default::default(), Default::default()], 0));
            [a, b]
                .iter()
                .zip(reports)
                .map(|(w, report)| CellResult {
                    workload: w.name.to_string(),
                    suite: w.suite,
                    config: config_name.clone(),
                    report,
                    wall_ms,
                    status: o.status,
                    attempts: o.attempts,
                    error: o.error.clone(),
                })
                .collect()
        })
        .collect();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"r3dla-bench-mix-v1\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", scale_name(scale)));
    out.push_str(&format!("  \"warm\": {warm},\n"));
    out.push_str(&format!("  \"window\": {win},\n"));
    out.push_str("  \"rows\": [\n");
    let total = rows.iter().map(|r| r.len()).sum::<usize>();
    let mut emitted = 0usize;
    let mut failed = false;
    for (pi, pair_rows) in rows.iter().enumerate() {
        let pair_label = format!("{}+{}", pairs[pi].0.name, pairs[pi].1.name);
        for (ti, cell) in pair_rows.iter().enumerate() {
            if cell.status != CellStatus::Ok {
                eprintln!(
                    "mix: tenant {ti} of ({pair_label}) failed: {} ({})",
                    cell.status.label(),
                    cell.error.as_deref().unwrap_or("")
                );
                // Expected casualties under an active fault plan; fatal
                // otherwise.
                failed |= !sup.plan().active();
            } else if cell.report.mt_committed == 0 {
                eprintln!("mix: FAIL tenant {ti} of ({pair_label}) committed zero instructions");
                failed = true;
            }
            emitted += 1;
            out.push_str(&format!(
                "    {{\"pair\": \"{pair_label}\", \"tenant\": {ti}, {}}}{}\n",
                cell.stat_fields(),
                if emitted < total { "," } else { "" }
            ));
        }
    }
    out.push_str("  ]\n}\n");

    let out_path = arg_str("--out");
    match &out_path {
        Some(path) => {
            std::fs::write(path, &out).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("mix: wrote {path}");
        }
        None => print!("{out}"),
    }
    let committed: u64 = rows
        .iter()
        .flatten()
        .map(|c| c.report.mt_committed + c.report.lt_committed)
        .sum();
    let mips = (measure_ms > 0).then(|| committed as f64 / (measure_ms as f64 * 1e3));
    if let Err(e) = session.finalize(out_path.as_deref().map(std::path::Path::new), mips) {
        eprintln!("mix: telemetry write failed: {e}");
    }
    if failed {
        std::process::exit(1);
    }
}
