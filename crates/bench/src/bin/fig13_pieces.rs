//! Fig 13: (a) fetch buffer over BL vs over DLA; (b) dynamic vs static
//! recycling; (c) synergy — each technique applied first vs last.

use r3dla_bench::{
    arg_threads, arg_u64, prepare_all_threads, ExperimentSpec, Prepared, WARMUP, WINDOW,
};
use r3dla_core::{DlaConfig, RecycleMode};
use r3dla_cpu::CoreConfig;
use r3dla_workloads::Scale;

fn fb(cfg: &mut DlaConfig) {
    cfg.mt_core.fetch_buffer = 32;
}

fn static_tuned_ipc(p: &Prepared, warm: u64, win: u64) -> f64 {
    // Off-line per-loop tuning (paper §III-E2): run every version over a
    // training window, attribute per-loop IPC, build the static map, then
    // measure the tuned system.
    let base = p.dla_system(DlaConfig::dla());
    let mut tuned = r3dla_core::build_static_tuned(&base, DlaConfig::dla(), (win / 2).max(20_000));
    tuned.measure(warm, win).mt_ipc
}

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let threads = arg_threads();
    let prepared = prepare_all_threads(Scale::Ref, threads);
    // One row extractor computes all three sub-figures so the shared DLA
    // baseline is measured once per workload.
    let spec = ExperimentSpec::new(
        "FIG13",
        &[
            "FB/BL",
            "FB/DLA",
            "RC dyn",
            "RC static",
            "AS/RC first",
            "VR first",
            "FB first",
            "AS/RC last",
            "VR last",
            "FB last",
        ],
        move |p| {
            // ---- (a) fetch buffer ------------------------------------
            let bl8 = p.measure_single(CoreConfig::paper(), None, Some("bop"), warm, win);
            let bl32 = {
                let mut c = CoreConfig::paper();
                c.fetch_buffer = 32;
                p.measure_single(c, None, Some("bop"), warm, win)
            };
            let dla = p.measure_dla(DlaConfig::dla(), warm, win).mt_ipc;
            let dla_fb = {
                let mut c = DlaConfig::dla();
                fb(&mut c);
                p.measure_dla(c, warm, win).mt_ipc
            };
            // ---- (b) recycle: dynamic vs static ----------------------
            let dynamic = {
                let mut c = DlaConfig::dla();
                c.recycle = RecycleMode::Dynamic;
                p.measure_dla(c, warm, win).mt_ipc
            };
            let static_ipc = static_tuned_ipc(p, warm, win);
            // ---- (c) synergy: first vs last --------------------------
            let r3 = p.measure_dla(DlaConfig::r3(), warm, win).mt_ipc;
            let mut firsts = Vec::new();
            let mut lasts = Vec::new();
            // Apply techniques: 0 = AS/RC (adaptive skeleton), 1 = VR,
            // 2 = FB.
            for k in 0..3 {
                let mut only = DlaConfig::dla();
                let mut without = DlaConfig::r3();
                match k {
                    0 => {
                        only.recycle = RecycleMode::Dynamic;
                        without.recycle = RecycleMode::Off;
                    }
                    1 => {
                        only.value_reuse = true;
                        without.value_reuse = false;
                    }
                    _ => {
                        fb(&mut only);
                        without.mt_core.fetch_buffer = 8;
                    }
                }
                let only_ipc = p.measure_dla(only, warm, win).mt_ipc;
                let without_ipc = p.measure_dla(without, warm, win).mt_ipc;
                firsts.push(only_ipc / dla.max(1e-9));
                lasts.push(r3 / without_ipc.max(1e-9));
            }
            let mut row = vec![
                bl32 / bl8.max(1e-9),
                dla_fb / dla.max(1e-9),
                dynamic / dla.max(1e-9),
                static_ipc / dla.max(1e-9),
            ];
            row.extend(firsts);
            row.extend(lasts);
            row
        },
    );
    let res = spec.execute(&prepared, threads);
    println!("# FIG13a — fetch-buffer speedup (paper: BL +4% avg, DLA +8%)\n");
    println!("- FB over BL:  {:.3}", res.geomean(0));
    println!("- FB over DLA: {:.3}", res.geomean(1));
    println!("\n# FIG13b — recycle tuning (paper: dynamic 1.08, static 1.10)\n");
    println!("- dynamic: {:.3}", res.geomean(2));
    println!("- static:  {:.3}", res.geomean(3));
    println!(
        "\n# FIG13c — synergy: technique applied first vs last (paper: 2-5% first, 6-8% last)\n"
    );
    println!("| technique | first | last |");
    println!("|---|---|---|");
    for (k, name) in ["AS/RC", "VR", "FB"].iter().enumerate() {
        println!(
            "| {name} | {:.3} | {:.3} |",
            res.geomean(4 + k),
            res.geomean(7 + k)
        );
    }
}
