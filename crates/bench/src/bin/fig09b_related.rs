//! Fig 9-b: comparison with related approaches — B-Fetch, SlipStream,
//! CRE, DLA and R3-DLA, normalized to BL.

use r3dla_baselines::{slipstream_system, BFetchSim, CreSim};
use r3dla_bench::{arg_u64, prepare_all, suite_summary, WARMUP, WINDOW};
use r3dla_core::DlaConfig;
use r3dla_cpu::CoreConfig;
use r3dla_workloads::Scale;

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let prepared = prepare_all(Scale::Ref);
    println!("# FIG9b — related approaches, speedup over BL\n");
    println!("| bench | B-Fetch | S-Stream | CRE | DLA | R3-DLA |");
    println!("|---|---|---|---|---|---|");
    let mut cols: Vec<Vec<(r3dla_workloads::Suite, f64)>> = vec![Vec::new(); 5];
    for p in &prepared {
        let bl = p.measure_single(CoreConfig::paper(), None, Some("bop"), warm, win);
        let bf = {
            let mut s = BFetchSim::build(p.built());
            s.measure(warm, win).0
        };
        let ss = {
            let mut sys = slipstream_system(p.built());
            sys.measure(warm, win).mt_ipc
        };
        let cre = {
            let mut sys = CreSim::build(p.built());
            sys.measure(warm, win).0
        };
        let dla = p.measure_dla(DlaConfig::dla(), warm, win).mt_ipc;
        let r3 = p.measure_dla(DlaConfig::r3(), warm, win).mt_ipc;
        let vals = [bf, ss, cre, dla, r3];
        let mut cells = vec![p.name.clone()];
        for (k, v) in vals.iter().enumerate() {
            let sp = v / bl.max(1e-9);
            cells.push(format!("{sp:.3}"));
            cols[k].push((p.suite, sp));
        }
        println!("{}", r3dla_bench::row(&cells));
    }
    println!("\n## Overall geometric means (paper: B-Fetch 1.05, S-Stream 1.08, CRE 1.09, DLA 1.12, R3-DLA 1.40)\n");
    let names = ["B-Fetch", "S-Stream", "CRE", "DLA", "R3-DLA"];
    for (k, name) in names.iter().enumerate() {
        let all = suite_summary(&cols[k]);
        println!("- {name}: {:.3}", all.last().unwrap().1);
    }
}
