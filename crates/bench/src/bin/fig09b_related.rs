//! Fig 9-b: comparison with related approaches — B-Fetch, SlipStream,
//! CRE, DLA and R3-DLA, normalized to BL.

use r3dla_baselines::{slipstream_system, BFetchSim, CreSim};
use r3dla_bench::{arg_threads, arg_u64, prepare_all_threads, ExperimentSpec, WARMUP, WINDOW};
use r3dla_core::DlaConfig;
use r3dla_cpu::CoreConfig;
use r3dla_workloads::Scale;

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let threads = arg_threads();
    let prepared = prepare_all_threads(Scale::Ref, threads);
    let spec = ExperimentSpec::new(
        "FIG9b",
        &["B-Fetch", "S-Stream", "CRE", "DLA", "R3-DLA"],
        move |p| {
            let bl = p.measure_single(CoreConfig::paper(), None, Some("bop"), warm, win);
            let bf = BFetchSim::build(p.built()).measure(warm, win).0;
            let ss = slipstream_system(p.built()).measure(warm, win).mt_ipc;
            let cre = CreSim::build(p.built()).measure(warm, win).0;
            let dla = p.measure_dla(DlaConfig::dla(), warm, win).mt_ipc;
            let r3 = p.measure_dla(DlaConfig::r3(), warm, win).mt_ipc;
            [bf, ss, cre, dla, r3]
                .iter()
                .map(|v| v / bl.max(1e-9))
                .collect()
        },
    );
    let res = spec.execute(&prepared, threads);
    println!("# FIG9b — related approaches, speedup over BL\n");
    res.print_markdown();
    println!("\n## Geometric means (paper: B-Fetch 1.05, S-Stream 1.08, CRE 1.09, DLA 1.12, R3-DLA 1.40)\n");
    res.print_geomeans();
}
