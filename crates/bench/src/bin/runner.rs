//! The parallel experiment runner CLI: measures a (workload ×
//! configuration) grid on a worker pool and writes machine-readable JSON.
//!
//! ```text
//! runner [--scale tiny|train|ref] [--threads N] [--warm N] [--window N]
//!        [--workloads a,b,c] [--configs bl,dla,r3,...] [--out FILE]
//!        [--timing] [--timing-out FILE] [--no-skip]
//! ```
//!
//! The default JSON is byte-identical across `--threads` settings and
//! across `--no-skip` (which disables the behavior-preserving
//! event-driven cycle skipping — CI diffs the two paths); `--timing`
//! adds wall-clock and simulated-MIPS fields, and `--timing-out FILE`
//! writes that timed variant alongside the deterministic one from the
//! same run. Exits non-zero when any cell commits zero instructions.

use r3dla_bench::runner::{run_grid, scale_by_name, ConfigSpec, GridSpec};
use r3dla_bench::{arg_flag, arg_str, arg_threads, arg_u64, WARMUP, WINDOW};
use r3dla_workloads::{by_name, suite, Scale};

fn main() {
    let scale = match arg_str("--scale") {
        Some(s) => scale_by_name(&s).unwrap_or_else(|| {
            eprintln!("unknown scale '{s}' (expected tiny|train|ref)");
            std::process::exit(2);
        }),
        None => Scale::Ref,
    };
    let threads = arg_threads();
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let workloads = match arg_str("--workloads") {
        Some(list) => list
            .split(',')
            .map(|n| {
                by_name(n.trim()).unwrap_or_else(|| {
                    eprintln!("unknown workload '{n}'");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => suite(),
    };
    let configs: Vec<ConfigSpec> = match arg_str("--configs") {
        Some(list) => list
            .split(',')
            .map(|n| {
                ConfigSpec::by_name(n.trim()).unwrap_or_else(|| {
                    eprintln!(
                        "unknown config '{n}' (known: {})",
                        ConfigSpec::known_names().join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect(),
        None => ["bl", "dla", "r3"]
            .iter()
            .map(|n| ConfigSpec::by_name(n).unwrap())
            .collect(),
    };

    let spec = GridSpec {
        scale,
        workloads,
        configs,
        warm,
        win,
        fast_forward: !arg_flag("--no-skip"),
    };
    eprintln!(
        "runner: {} workloads x {} configs on {} threads{}",
        spec.workloads.len(),
        spec.configs.len(),
        threads,
        if spec.fast_forward {
            ""
        } else {
            " (cycle skipping off)"
        }
    );
    let result = run_grid(&spec, threads);
    let json = result.to_json(arg_flag("--timing"));
    match arg_str("--out") {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("runner: wrote {path}");
        }
        None => print!("{json}"),
    }
    if let Some(path) = arg_str("--timing-out") {
        std::fs::write(&path, result.to_json(true)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("runner: wrote {path} (timing variant)");
    }
    eprintln!(
        "runner: prepared in {} ms, measured {} cells in {} ms ({:.2} simulated MIPS)",
        result.prep_ms,
        result.cells.len(),
        result.measure_ms,
        result.sim_mips()
    );
    let empty = result.empty_cells();
    if !empty.is_empty() {
        for c in &empty {
            eprintln!(
                "runner: FAIL cell ({}, {}) committed zero instructions",
                c.workload, c.config
            );
        }
        std::process::exit(1);
    }
}
