//! The parallel experiment runner CLI: measures a (workload ×
//! configuration) grid on a worker pool and writes machine-readable JSON.
//!
//! ```text
//! runner [--scale tiny|train|ref] [--threads N] [--warm N] [--window N]
//!        [--workloads a,b,c] [--configs bl,dla,r3,...] [--out FILE]
//!        [--timing] [--timing-out FILE] [--no-skip]
//!        [--filter W[/C]] [--list] [--progress]
//!        [--sample k:U:W] [--check-against FILE] [--check-tolerance T]
//! ```
//!
//! Telemetry (stderr/sidecar only, never the report): `--progress`
//! prints a live done/total line; `R3DLA_TRACE=path` records a Chrome
//! trace; `R3DLA_TELEMETRY=1` writes a `*.telemetry.json` sidecar next
//! to `--out` (see `docs/OBSERVABILITY.md`).
//!
//! The default JSON is byte-identical across `--threads` settings and
//! across `--no-skip` (which disables the behavior-preserving
//! event-driven cycle skipping — CI diffs the two paths); `--timing`
//! adds wall-clock and simulated-MIPS fields, and `--timing-out FILE`
//! writes that timed variant alongside the deterministic one from the
//! same run. Exits non-zero when any cell commits zero instructions.
//!
//! `--filter W[/C]` narrows the grid to workloads containing `W` and
//! configs containing `C` (rerun one cell without the whole suite);
//! `--list` prints the available names and exits.
//!
//! `--sample k:U:W` switches to checkpoint-based interval sampling: each
//! workload is split into `k` intervals of `U` detailed instructions
//! warmed per `W` (`none`, `functional[:N]`, `detailed[:N]`), and rows
//! carry `ipc_mean`/`ipc_ci95` (and `speedup_*` when `bl` is in the
//! grid). `--check-against FILE` then validates every sampled mean
//! against a full-run `r3dla-bench-grid-v1` reference: the full-run IPC
//! must fall inside each cell's reported 95% CI widened by the
//! `--check-tolerance` relative bias budget (default 0.25 — the CI only
//! covers sampling variance; see `check_against_reference`).

use r3dla_bench::runner::{run_grid, scale_by_name, ConfigSpec, GridSpec};
use r3dla_bench::sampled::{check_against_reference, run_grid_sampled};
use r3dla_bench::{arg_f64, arg_flag, arg_str, arg_threads, arg_u64, FaultPlan, WARMUP, WINDOW};
use r3dla_sample::SampleSpec;
use r3dla_workloads::{by_name, suite, Scale, Workload};

fn main() {
    if arg_flag("--list") {
        println!("workloads:");
        for w in suite() {
            println!("  {} ({})", w.name, w.suite);
        }
        println!("configs:");
        for c in ConfigSpec::known_names() {
            println!("  {c}");
        }
        return;
    }
    let scale = match arg_str("--scale") {
        Some(s) => scale_by_name(&s).unwrap_or_else(|| {
            eprintln!("unknown scale '{s}' (expected tiny|train|ref)");
            std::process::exit(2);
        }),
        None => Scale::Ref,
    };
    let threads = arg_threads();
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let mut workloads: Vec<Workload> = match arg_str("--workloads") {
        Some(list) => list
            .split(',')
            .map(|n| {
                by_name(n.trim()).unwrap_or_else(|| {
                    eprintln!("unknown workload '{n}'");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => suite(),
    };
    let mut configs: Vec<ConfigSpec> = match arg_str("--configs") {
        Some(list) => list
            .split(',')
            .map(|n| {
                ConfigSpec::by_name(n.trim()).unwrap_or_else(|| {
                    eprintln!(
                        "unknown config '{n}' (known: {})",
                        ConfigSpec::known_names().join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect(),
        None => ["bl", "dla", "r3"]
            .iter()
            .map(|n| ConfigSpec::by_name(n).unwrap())
            .collect(),
    };
    if let Some(filter) = arg_str("--filter") {
        let (wf, cf) = match filter.split_once('/') {
            Some((w, c)) => (w.to_string(), c.to_string()),
            None => (filter.clone(), String::new()),
        };
        workloads.retain(|w| w.name.contains(&wf));
        configs.retain(|c| c.label.contains(&cf));
        if workloads.is_empty() || configs.is_empty() {
            eprintln!("--filter '{filter}' matched no cells (try --list)");
            std::process::exit(2);
        }
    }
    let sample = arg_str("--sample").map(|s| {
        SampleSpec::parse(&s).unwrap_or_else(|| {
            eprintln!(
                "invalid --sample '{s}' (expected k:U:none|functional[:N]|detailed[:N], k >= 2)"
            );
            std::process::exit(2);
        })
    });

    let spec = GridSpec {
        scale,
        workloads,
        configs,
        warm,
        win,
        fast_forward: !arg_flag("--no-skip"),
    };
    eprintln!(
        "runner: {} workloads x {} configs on {} threads{}{}",
        spec.workloads.len(),
        spec.configs.len(),
        threads,
        match &sample {
            Some(s) => format!(" (sampled {})", s.label()),
            None => String::new(),
        },
        if spec.fast_forward {
            ""
        } else {
            " (cycle skipping off)"
        }
    );

    let write_out = |json: &str| match arg_str("--out") {
        Some(path) => {
            std::fs::write(&path, json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("runner: wrote {path}");
        }
        None => print!("{json}"),
    };
    let session = r3dla_obs::Session::from_env();
    let finalize = |mips: Option<f64>| {
        let out = arg_str("--out");
        if let Err(e) = session.finalize(out.as_deref().map(std::path::Path::new), mips) {
            eprintln!("runner: telemetry write failed: {e}");
        }
    };

    if let Some(sample) = sample {
        if arg_flag("--progress") {
            // Upper bound: short workloads may plan fewer than k intervals.
            let cells = spec.workloads.len() * spec.configs.len() * sample.k;
            r3dla_obs::progress::start("sampled", cells);
        }
        let result = run_grid_sampled(&spec, &sample, threads);
        write_out(&result.to_json(arg_flag("--timing")));
        finalize(None);
        if let Some(path) = arg_str("--timing-out") {
            std::fs::write(&path, result.to_json(true)).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("runner: wrote {path} (timing variant)");
        }
        eprintln!(
            "runner: prepared in {} ms, planned {} checkpoints in {} ms, \
             measured {} interval cells ({} rows) in {} ms",
            result.prep_ms,
            result.planned_checkpoints,
            result.plan_ms,
            result.measured_intervals,
            result.cells.len(),
            result.measure_ms,
        );
        let mut failed = false;
        if let Some(path) = arg_str("--check-against") {
            let reference = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            let tolerance = arg_f64("--check-tolerance", 0.25);
            let failures = check_against_reference(&result, &reference, tolerance);
            for f in &failures {
                eprintln!("runner: CHECK FAIL {f}");
            }
            if failures.is_empty() {
                eprintln!(
                    "runner: all {} sampled means contain their full-run reference IPC",
                    result.cells.len()
                );
            }
            failed |= !failures.is_empty();
        }
        for c in result.empty_cells() {
            eprintln!(
                "runner: FAIL cell ({}, {}) committed zero instructions",
                c.workload, c.config
            );
            failed = true;
        }
        for c in result.failed_cells() {
            eprintln!(
                "runner: cell ({}, {}) failed after {} attempt(s): {} ({})",
                c.workload,
                c.config,
                c.attempts,
                c.status.label(),
                c.error.as_deref().unwrap_or("")
            );
            // Status rows are the expected product of a chaos run; a
            // failure without an active fault plan is real.
            failed |= !FaultPlan::from_env().active();
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }

    if arg_flag("--progress") {
        r3dla_obs::progress::start("grid", spec.workloads.len() * spec.configs.len());
    }
    let result = run_grid(&spec, threads);
    write_out(&result.to_json(arg_flag("--timing")));
    if let Some(path) = arg_str("--timing-out") {
        std::fs::write(&path, result.to_json(true)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("runner: wrote {path} (timing variant)");
    }
    finalize(Some(result.sim_mips()));
    eprintln!(
        "runner: prepared in {} ms, measured {} cells in {} ms ({:.2} simulated MIPS)",
        result.prep_ms,
        result.cells.len(),
        result.measure_ms,
        result.sim_mips()
    );
    let mut failed = false;
    for c in result.empty_cells() {
        eprintln!(
            "runner: FAIL cell ({}, {}) committed zero instructions",
            c.workload, c.config
        );
        failed = true;
    }
    for c in result.failed_cells() {
        eprintln!(
            "runner: cell ({}, {}) failed after {} attempt(s): {} ({})",
            c.workload,
            c.config,
            c.attempts,
            c.status.label(),
            c.error.as_deref().unwrap_or("")
        );
        failed |= !FaultPlan::from_env().active();
    }
    if failed {
        std::process::exit(1);
    }
}
