//! Fig 9-a: overall speedups of BL(noPF)/BL/DLA(noPF)/DLA/R3(noPF)/R3,
//! normalized to BL (baseline with BOP at L2).

use r3dla_bench::{arg_threads, arg_u64, prepare_all_threads, ExperimentSpec, WARMUP, WINDOW};
use r3dla_core::DlaConfig;
use r3dla_cpu::CoreConfig;
use r3dla_workloads::Scale;

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let threads = arg_threads();
    let prepared = prepare_all_threads(Scale::Ref, threads);
    let spec = ExperimentSpec::new(
        "FIG9a",
        &["BL(noPF)", "BL", "DLA(noPF)", "DLA", "R3(noPF)", "R3-DLA"],
        move |p| {
            let bl = p.measure_single(CoreConfig::paper(), None, Some("bop"), warm, win);
            let bl_nopf = p.measure_single(CoreConfig::paper(), None, None, warm, win);
            let dla_nopf = p
                .measure_dla(DlaConfig::dla().without_prefetcher(), warm, win)
                .mt_ipc;
            let dla = p.measure_dla(DlaConfig::dla(), warm, win).mt_ipc;
            let r3_nopf = p
                .measure_dla(DlaConfig::r3().without_prefetcher(), warm, win)
                .mt_ipc;
            let r3 = p.measure_dla(DlaConfig::r3(), warm, win).mt_ipc;
            [bl_nopf, bl, dla_nopf, dla, r3_nopf, r3]
                .iter()
                .map(|v| v / bl.max(1e-9))
                .collect()
        },
    );
    let res = spec.execute(&prepared, threads);
    println!("# FIG9a — speedup over BL (aggressive OoO + BOP)\n");
    res.print_markdown();
    println!("\n## Suite geometric means (paper Fig 9-a: BL(noPF) 0.79, BL 1.00, DLA(noPF) 1.02, DLA 1.12, R3(noPF) 1.23, R3-DLA 1.40)\n");
    res.print_geomeans();
}
