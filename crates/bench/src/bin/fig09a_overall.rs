//! Fig 9-a: overall speedups of BL(noPF)/BL/DLA(noPF)/DLA/R3(noPF)/R3,
//! normalized to BL (baseline with BOP at L2).

use r3dla_bench::{arg_u64, prepare_all, row, suite_summary, WARMUP, WINDOW};
use r3dla_core::DlaConfig;
use r3dla_cpu::CoreConfig;
use r3dla_workloads::Scale;

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let prepared = prepare_all(Scale::Ref);
    println!("# FIG9a — speedup over BL (aggressive OoO + BOP)\n");
    println!("| bench | BL(noPF) | BL | DLA(noPF) | DLA | R3(noPF) | R3-DLA |");
    println!("|---|---|---|---|---|---|---|");
    let mut cols: Vec<Vec<(r3dla_workloads::Suite, f64)>> = vec![Vec::new(); 6];
    for p in &prepared {
        let bl = p.measure_single(CoreConfig::paper(), None, Some("bop"), warm, win);
        let bl_nopf = p.measure_single(CoreConfig::paper(), None, None, warm, win);
        let dla_nopf = p
            .measure_dla(DlaConfig::dla().without_prefetcher(), warm, win)
            .mt_ipc;
        let dla = p.measure_dla(DlaConfig::dla(), warm, win).mt_ipc;
        let r3_nopf = p
            .measure_dla(DlaConfig::r3().without_prefetcher(), warm, win)
            .mt_ipc;
        let r3 = p.measure_dla(DlaConfig::r3(), warm, win).mt_ipc;
        let vals = [bl_nopf, bl, dla_nopf, dla, r3_nopf, r3];
        let mut cells = vec![p.name.clone()];
        for (k, v) in vals.iter().enumerate() {
            let speedup = v / bl.max(1e-9);
            cells.push(format!("{speedup:.3}"));
            cols[k].push((p.suite, speedup));
        }
        println!("{}", row(&cells));
    }
    println!("\n## Suite geometric means (paper Fig 9-a values in parentheses)\n");
    println!("| group | BL(noPF) (0.79) | BL (1.00) | DLA(noPF) (1.02) | DLA (1.12) | R3(noPF) (1.23) | R3-DLA (1.40) |");
    println!("|---|---|---|---|---|---|---|");
    // Aggregate per suite.
    let summaries: Vec<Vec<(String, f64)>> = cols.iter().map(|c| suite_summary(c)).collect();
    let groups = summaries[0].len();
    for g in 0..groups {
        let mut cells = vec![summaries[0][g].0.clone()];
        for s in &summaries {
            cells.push(format!("{:.3}", s[g].1));
        }
        println!("{}", row(&cells));
    }
}
