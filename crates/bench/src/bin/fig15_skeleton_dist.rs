//! Fig 15: the distribution of skeleton versions chosen during on-line
//! recycling, per benchmark (committed-instruction weighted).

use r3dla_bench::{arg_u64, prepare_all, WARMUP, WINDOW};
use r3dla_core::DlaConfig;
use r3dla_workloads::Scale;

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", 2 * WINDOW);
    let prepared = prepare_all(Scale::Ref);
    println!("# FIG15 — skeleton-version usage under dynamic recycling\n");
    println!("| bench | default | lean | vr | t1back | biased | max |");
    println!("|---|---|---|---|---|---|---|");
    for p in &prepared {
        let mut sys = p.dla_system(DlaConfig::r3());
        sys.run_until_mt(warm + win, (warm + win) * 60 + 1_000_000);
        let active = sys.active_skeleton();
        let usage = active.borrow().usage.clone();
        let total: u64 = usage.iter().sum::<u64>().max(1);
        let mut cells = vec![p.name.clone()];
        for u in &usage {
            cells.push(format!("{:.2}", *u as f64 / total as f64));
        }
        println!("{}", r3dla_bench::row(&cells));
    }
    println!("\n(paper Fig 15: most windows mix several versions; no single version dominates everywhere)");
}
