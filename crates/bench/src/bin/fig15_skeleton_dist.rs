//! Fig 15: the distribution of skeleton versions chosen during on-line
//! recycling, per benchmark (committed-instruction weighted).

use r3dla_bench::{arg_threads, arg_u64, prepare_all_threads, ExperimentSpec, WARMUP, WINDOW};
use r3dla_core::DlaConfig;
use r3dla_workloads::Scale;

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", 2 * WINDOW);
    let threads = arg_threads();
    let prepared = prepare_all_threads(Scale::Ref, threads);
    let spec = ExperimentSpec::new(
        "FIG15",
        &["default", "lean", "vr", "t1back", "biased", "max"],
        move |p| {
            let mut sys = p.dla_system(DlaConfig::r3());
            sys.run_until_mt(warm + win, (warm + win) * 60 + 1_000_000);
            let active = sys.active_skeleton();
            let usage = active.borrow().usage.clone();
            let total: u64 = usage.iter().sum::<u64>().max(1);
            usage.iter().map(|&u| u as f64 / total as f64).collect()
        },
    );
    let res = spec.execute(&prepared, threads);
    println!("# FIG15 — skeleton-version usage under dynamic recycling\n");
    res.print_markdown();
    println!("\n(paper Fig 15: most windows mix several versions; no single version dominates everywhere)");
}
