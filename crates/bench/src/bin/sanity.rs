//! Quick end-to-end sanity check: BL vs DLA vs R3 IPC, reboot counts and
//! LT/MT commit ratio on a handful of kernels.

use r3dla_bench::{arg_threads, prepare_some_threads, ExperimentSpec};
use r3dla_core::DlaConfig;
use r3dla_cpu::CoreConfig;
use r3dla_workloads::Scale;

fn main() {
    let threads = arg_threads();
    let prepared = prepare_some_threads(
        &[
            "mcf_like",
            "libq_like",
            "sjeng_like",
            "bfs",
            "cg_like",
            "md5_like",
        ],
        Scale::Ref,
        threads,
    );
    let (warm, win) = (30_000, 80_000);
    let spec = ExperimentSpec::new(
        "SANITY",
        &["BL", "DLA", "R3", "DLA reboots", "R3 reboots", "lt/mt"],
        move |p| {
            let bl = p.measure_single(CoreConfig::paper(), None, Some("bop"), warm, win);
            let d = p.measure_dla(DlaConfig::dla(), warm, win);
            let r = p.measure_dla(DlaConfig::r3(), warm, win);
            vec![
                bl,
                d.mt_ipc,
                r.mt_ipc,
                d.reboots as f64,
                r.reboots as f64,
                d.lt_committed as f64 / d.mt_committed.max(1) as f64,
            ]
        },
    );
    let res = spec.execute(&prepared, threads);
    for r in &res.rows {
        let (bl, dla, r3) = (r.values[0], r.values[1], r.values[2]);
        println!(
            "{:12} BL {:.3}  DLA {:.3} ({:+.1}%)  R3 {:.3} ({:+.1}%)  reboots {}/{}  lt/mt {:.2}",
            r.workload,
            bl,
            dla,
            (dla / bl - 1.0) * 100.0,
            r3,
            (r3 / bl - 1.0) * 100.0,
            r.values[3] as u64,
            r.values[4] as u64,
            r.values[5],
        );
    }
}
