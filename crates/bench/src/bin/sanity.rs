use r3dla_core::{DlaConfig, DlaSystem, SingleCoreSim, SkeletonOptions};
use r3dla_cpu::CoreConfig;
use r3dla_mem::MemConfig;
use r3dla_workloads::{by_name, Scale};

fn main() {
    let warm = 30_000;
    let win = 80_000;
    for name in [
        "mcf_like",
        "libq_like",
        "sjeng_like",
        "bfs",
        "cg_like",
        "md5_like",
    ] {
        let wl = by_name(name).unwrap().build(Scale::Ref);
        let mut bl = SingleCoreSim::build(
            &wl,
            CoreConfig::paper(),
            MemConfig::paper(),
            None,
            Some("bop"),
        );
        let (bl_ipc, _, _) = bl.measure(warm, win);
        let mut dla = DlaSystem::build(&wl, DlaConfig::dla(), SkeletonOptions::default()).unwrap();
        let d = dla.measure(warm, win);
        let mut r3 = DlaSystem::build(&wl, DlaConfig::r3(), SkeletonOptions::default()).unwrap();
        let r = r3.measure(warm, win);
        println!(
            "{:12} BL {:.3}  DLA {:.3} ({:+.1}%)  R3 {:.3} ({:+.1}%)  reboots {}/{} depth {} lt/mt {:.2}",
            name, bl_ipc, d.mt_ipc, (d.mt_ipc / bl_ipc - 1.0) * 100.0,
            r.mt_ipc, (r.mt_ipc / bl_ipc - 1.0) * 100.0,
            d.reboots, r.reboots, dla.lookahead_depth(),
            d.lt_committed as f64 / d.mt_committed.max(1) as f64,
        );
    }
}
