//! Fig 1: implicit parallelism of integer applications under moving
//! windows of 128/512/2048 instructions, ideal vs realistic data and
//! instruction supply.

use r3dla_bench::arg_u64;
use r3dla_core::{ilp_limit, LimitModel};
use r3dla_workloads::{by_suite, Scale, Suite};

fn main() {
    let insts = arg_u64("--insts", 200_000);
    println!("# FIG1 — implicit parallelism (IPC), ideal vs real\n");
    println!("| bench | ideal:128 | ideal:512 | ideal:2048 | real:128 | real:512 | real:2048 |");
    println!("|---|---|---|---|---|---|---|");
    let mut ratios = Vec::new();
    for w in by_suite(Suite::SpecInt) {
        let b = w.build(Scale::Ref);
        let mut cells = vec![w.name.to_string()];
        let mut ideal512 = 0.0;
        let mut real512 = 0.0;
        for model in [LimitModel::Ideal, LimitModel::Real] {
            for win in [128usize, 512, 2048] {
                let r = ilp_limit(&b.program, win, model, insts);
                if win == 512 {
                    if model == LimitModel::Ideal {
                        ideal512 = r.ipc;
                    } else {
                        real512 = r.ipc;
                    }
                }
                cells.push(format!("{:.2}", r.ipc));
            }
        }
        ratios.push(ideal512 / real512.max(1e-9));
        println!("{}", r3dla_bench::row(&cells));
    }
    println!(
        "\ngeometric-mean ideal:512 / real:512 ratio = {:.2}x (paper: ~5x)",
        r3dla_stats::geomean(&ratios)
    );
}
