//! Fig 1: implicit parallelism of integer applications under moving
//! windows of 128/512/2048 instructions, ideal vs realistic data and
//! instruction supply.

use r3dla_bench::{arg_threads, arg_u64, parallel_map, row};
use r3dla_core::{ilp_limit, LimitModel};
use r3dla_workloads::{by_suite, Scale, Suite};

fn main() {
    let insts = arg_u64("--insts", 200_000);
    let threads = arg_threads();
    println!("# FIG1 — implicit parallelism (IPC), ideal vs real\n");
    println!("| bench | ideal:128 | ideal:512 | ideal:2048 | real:128 | real:512 | real:2048 |");
    println!("|---|---|---|---|---|---|---|");
    let workloads = by_suite(Suite::SpecInt);
    // Six limit studies per kernel, fanned out across the worker pool.
    let rows = parallel_map(&workloads, threads, |w| {
        let b = w.build(Scale::Ref);
        let mut vals = Vec::new();
        for model in [LimitModel::Ideal, LimitModel::Real] {
            for win in [128usize, 512, 2048] {
                vals.push(ilp_limit(&b.program, win, model, insts).ipc);
            }
        }
        (w.name.to_string(), vals)
    });
    let mut ratios = Vec::new();
    for (name, vals) in &rows {
        let mut cells = vec![name.clone()];
        cells.extend(vals.iter().map(|v| format!("{v:.2}")));
        // ideal:512 over real:512.
        ratios.push(vals[1] / vals[4].max(1e-9));
        println!("{}", row(&cells));
    }
    println!(
        "\ngeometric-mean ideal:512 / real:512 ratio = {:.2}x (paper: ~5x)",
        r3dla_stats::geomean(&ratios)
    );
}
