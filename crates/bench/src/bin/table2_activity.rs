//! Table II: per-thread activity (Decode/eXecute/Commit), dynamic energy,
//! dynamic power and static power for DLA and R3-DLA, normalized to the
//! baseline core running the same window.

use r3dla_bench::{arg_u64, prepare_all, WARMUP, WINDOW};
use r3dla_core::{DlaConfig, SingleCoreSim};
use r3dla_cpu::{ActivityCounters, CoreConfig};
use r3dla_energy::{counters_delta, CoreEnergy, EnergyParams};
use r3dla_mem::MemConfig;
use r3dla_workloads::Scale;

struct Acc {
    d: Vec<f64>,
    x: Vec<f64>,
    c: Vec<f64>,
    e: Vec<f64>,
    pdyn: Vec<f64>,
    ptot: Vec<f64>,
}

impl Acc {
    fn new() -> Self {
        Self {
            d: vec![],
            x: vec![],
            c: vec![],
            e: vec![],
            pdyn: vec![],
            ptot: vec![],
        }
    }
    fn push(&mut self, t: &ActivityCounters, bl: &ActivityCounters, p: &EnergyParams) {
        let te = CoreEnergy::from_counters(t, p);
        let be = CoreEnergy::from_counters(bl, p);
        self.d
            .push(t.decoded.get() as f64 / bl.decoded.get().max(1) as f64);
        self.x
            .push(t.executed.get() as f64 / bl.executed.get().max(1) as f64);
        self.c
            .push(t.committed.get() as f64 / bl.committed.get().max(1) as f64);
        self.e.push(te.dynamic_j / be.dynamic_j.max(1e-18));
        self.pdyn.push(te.dynamic_w() / be.dynamic_w().max(1e-18));
        self.ptot
            .push(te.total_j() / te.seconds.max(1e-12) / (be.total_j() / be.seconds.max(1e-12)));
    }
    fn row(&self, label: &str) -> String {
        let m = |v: &[f64]| format!("{:.0}%", 100.0 * r3dla_stats::mean(v));
        format!(
            "| {label} | {} | {} | {} | {} | {} | {} |",
            m(&self.d),
            m(&self.x),
            m(&self.c),
            m(&self.e),
            m(&self.pdyn),
            m(&self.ptot)
        )
    }
}

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let prepared = prepare_all(Scale::Ref);
    let params = EnergyParams::node22();
    let mut rows = [Acc::new(), Acc::new(), Acc::new(), Acc::new()];
    for p in &prepared {
        // Baseline counters over the same committed window.
        let mut bl = SingleCoreSim::build(
            p.built(),
            CoreConfig::paper(),
            MemConfig::paper(),
            None,
            Some("bop"),
        );
        bl.run_until(warm, warm * 60 + 500_000);
        let b0 = bl.core().counters.clone();
        bl.run_until(win, win * 60 + 500_000);
        let bld = counters_delta(&b0, &bl.core().counters);
        for (i, cfg) in [DlaConfig::dla(), DlaConfig::r3()].into_iter().enumerate() {
            let mut sys = p.dla_system(cfg);
            sys.run_until_mt(warm, warm * 60 + 500_000);
            let s0 = sys.snapshot();
            sys.run_until_mt(win, win * 60 + 500_000);
            let lt = counters_delta(&s0.lt_counters, &sys.lt().counters);
            let mt = counters_delta(&s0.mt_counters, &sys.mt().counters);
            rows[i * 2].push(&lt, &bld, &params);
            rows[i * 2 + 1].push(&mt, &bld, &params);
        }
    }
    println!("# TABLE II — activity / energy / power vs baseline (arithmetic means)\n");
    println!("| thread | D | X | C | dyn.energy | dyn.power | power |");
    println!("|---|---|---|---|---|---|---|");
    println!("{}", rows[0].row("DLA LT (paper 49/48/48/48/54/71%)"));
    println!("{}", rows[1].row("DLA MT (paper 77/86/100/88/96/97%)"));
    println!("{}", rows[2].row("R3 LT (paper 35/29/29/30/42/64%)"));
    println!("{}", rows[3].row("R3 MT (paper 77/82/100/80/110/103%)"));
}
