//! Table II: per-thread activity (Decode/eXecute/Commit), dynamic energy,
//! dynamic power and static power for DLA and R3-DLA, normalized to the
//! baseline core running the same window.

use r3dla_bench::{arg_threads, arg_u64, prepare_all_threads, ExperimentSpec, WARMUP, WINDOW};
use r3dla_core::{DlaConfig, SingleCoreSim};
use r3dla_cpu::{ActivityCounters, CoreConfig};
use r3dla_energy::{counters_delta, CoreEnergy, EnergyParams};
use r3dla_mem::MemConfig;
use r3dla_workloads::Scale;

/// D/X/C activity plus energy/power ratios of `t` vs baseline `bl`.
fn ratios(t: &ActivityCounters, bl: &ActivityCounters, p: &EnergyParams) -> [f64; 6] {
    let te = CoreEnergy::from_counters(t, p);
    let be = CoreEnergy::from_counters(bl, p);
    [
        t.decoded.get() as f64 / bl.decoded.get().max(1) as f64,
        t.executed.get() as f64 / bl.executed.get().max(1) as f64,
        t.committed.get() as f64 / bl.committed.get().max(1) as f64,
        te.dynamic_j / be.dynamic_j.max(1e-18),
        te.dynamic_w() / be.dynamic_w().max(1e-18),
        te.total_j() / te.seconds.max(1e-12) / (be.total_j() / be.seconds.max(1e-12)),
    ]
}

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let threads = arg_threads();
    let prepared = prepare_all_threads(Scale::Ref, threads);
    let params = EnergyParams::node22();
    // 4 threads-of-interest (DLA LT/MT, R3 LT/MT) × 6 metrics, row-major.
    let labels = [
        "DLA LT (paper 49/48/48/48/54/71%)",
        "DLA MT (paper 77/86/100/88/96/97%)",
        "R3 LT (paper 35/29/29/30/42/64%)",
        "R3 MT (paper 77/82/100/80/110/103%)",
    ];
    let columns: Vec<String> = (0..24).map(|k| format!("m{k}")).collect();
    let column_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let spec = ExperimentSpec::new("TABLE2", &column_refs, move |p| {
        // Baseline counters over the same committed window.
        let mut bl = SingleCoreSim::build(
            p.built(),
            CoreConfig::paper(),
            MemConfig::paper(),
            None,
            Some("bop"),
        );
        bl.run_until(warm, warm * 60 + 500_000);
        let b0 = bl.core().counters.clone();
        bl.run_until(win, win * 60 + 500_000);
        let bld = counters_delta(&b0, &bl.core().counters);
        let mut row = Vec::with_capacity(24);
        for cfg in [DlaConfig::dla(), DlaConfig::r3()] {
            let mut sys = p.dla_system(cfg);
            sys.run_until_mt(warm, warm * 60 + 500_000);
            let s0 = sys.snapshot();
            sys.run_until_mt(win, win * 60 + 500_000);
            let lt = counters_delta(&s0.lt_counters, &sys.lt().counters);
            let mt = counters_delta(&s0.mt_counters, &sys.mt().counters);
            row.extend(ratios(&lt, &bld, &params));
            row.extend(ratios(&mt, &bld, &params));
        }
        row
    });
    let res = spec.execute(&prepared, threads);
    println!("# TABLE II — activity / energy / power vs baseline (arithmetic means)\n");
    println!("| thread | D | X | C | dyn.energy | dyn.power | power |");
    println!("|---|---|---|---|---|---|---|");
    for (r, label) in labels.iter().enumerate() {
        let cells: Vec<String> = (0..6)
            .map(|m| {
                let vals: Vec<f64> = res.column(r * 6 + m).iter().map(|(_, v)| *v).collect();
                format!("{:.0}%", 100.0 * r3dla_stats::mean(&vals))
            })
            .collect();
        println!("| {label} | {} |", cells.join(" | "));
    }
}
