//! Fig 12: DLA+stride-prefetcher vs DLA+T1 — speedup over baseline DLA
//! and normalized memory traffic.

use r3dla_bench::{arg_threads, arg_u64, prepare_all_threads, ExperimentSpec, WARMUP, WINDOW};
use r3dla_core::DlaConfig;
use r3dla_workloads::Scale;

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let threads = arg_threads();
    let prepared = prepare_all_threads(Scale::Ref, threads);
    let spec = ExperimentSpec::new(
        "FIG12",
        &[
            "speedup DLA+stride",
            "speedup DLA+T1",
            "traffic DLA+stride",
            "traffic DLA+T1",
        ],
        move |p| {
            let base = p.measure_dla(DlaConfig::dla(), warm, win);
            let stride = {
                let mut c = DlaConfig::dla();
                c.mt_l1_prefetcher = Some("stride");
                p.measure_dla(c, warm, win)
            };
            let t1 = {
                let mut c = DlaConfig::dla();
                c.t1 = true;
                p.measure_dla(c, warm, win)
            };
            vec![
                stride.mt_ipc / base.mt_ipc.max(1e-9),
                t1.mt_ipc / base.mt_ipc.max(1e-9),
                stride.dram_traffic as f64 / base.dram_traffic.max(1) as f64,
                t1.dram_traffic as f64 / base.dram_traffic.max(1) as f64,
            ]
        },
    );
    let res = spec.execute(&prepared, threads);
    println!("# FIG12 — DLA+stride vs DLA+T1 (speedup over DLA; traffic normalized)\n");
    res.print_markdown();
    println!(
        "\n## Geomeans (paper: speedup stride 1.06 vs T1 1.13-1.14; T1 traffic below stride)\n"
    );
    res.print_geomeans();
}
