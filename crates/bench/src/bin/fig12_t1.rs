//! Fig 12: DLA+stride-prefetcher vs DLA+T1 — speedup over baseline DLA
//! and normalized memory traffic.

use r3dla_bench::{arg_u64, prepare_all, suite_summary, WARMUP, WINDOW};
use r3dla_core::DlaConfig;
use r3dla_workloads::Scale;

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let prepared = prepare_all(Scale::Ref);
    println!("# FIG12 — DLA+stride vs DLA+T1 (speedup over DLA; traffic normalized)\n");
    println!(
        "| bench | speedup DLA+stride | speedup DLA+T1 | traffic DLA+stride | traffic DLA+T1 |"
    );
    println!("|---|---|---|---|---|");
    let mut sp = [Vec::new(), Vec::new()];
    let mut tr = [Vec::new(), Vec::new()];
    for p in &prepared {
        let base = p.measure_dla(DlaConfig::dla(), warm, win);
        let stride = {
            let mut c = DlaConfig::dla();
            c.mt_l1_prefetcher = Some("stride");
            p.measure_dla(c, warm, win)
        };
        let t1 = {
            let mut c = DlaConfig::dla();
            c.t1 = true;
            p.measure_dla(c, warm, win)
        };
        let s0 = stride.mt_ipc / base.mt_ipc.max(1e-9);
        let s1 = t1.mt_ipc / base.mt_ipc.max(1e-9);
        let t0 = stride.dram_traffic as f64 / base.dram_traffic.max(1) as f64;
        let t1t = t1.dram_traffic as f64 / base.dram_traffic.max(1) as f64;
        println!("| {} | {s0:.3} | {s1:.3} | {t0:.3} | {t1t:.3} |", p.name);
        sp[0].push((p.suite, s0));
        sp[1].push((p.suite, s1));
        tr[0].push((p.suite, t0));
        tr[1].push((p.suite, t1t));
    }
    println!(
        "\n## Geomeans (paper: speedup stride 1.06 vs T1 1.13-1.14; T1 traffic below stride)\n"
    );
    println!(
        "- speedup DLA+stride: {:.3}",
        suite_summary(&sp[0]).last().unwrap().1
    );
    println!(
        "- speedup DLA+T1:     {:.3}",
        suite_summary(&sp[1]).last().unwrap().1
    );
    println!(
        "- traffic DLA+stride: {:.3}",
        suite_summary(&tr[0]).last().unwrap().1
    );
    println!(
        "- traffic DLA+T1:     {:.3}",
        suite_summary(&tr[1]).last().unwrap().1
    );
}
