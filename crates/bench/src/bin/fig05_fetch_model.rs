//! Fig 5: the probabilistic fetch-buffer model — queue-length
//! distributions under I-cache vs trace cache at capacities 8 and 32,
//! and the expected-fetch-bubble sweep over capacity.

use r3dla_analytic::{bubble_sweep, trace_cache_supply, FetchBufferModel};
use r3dla_bench::{prepare_some, WARMUP};
use r3dla_cpu::CoreConfig;
use r3dla_workloads::Scale;

fn main() {
    // The paper uses povray (its most branchy FP code); our analogue is
    // the branchy recursive gobmk_like kernel.
    let p = &prepare_some(&["gobmk_like"], Scale::Ref)[0];
    // Empirical supply (fetched/cycle) and demand (renamed/cycle) from a
    // baseline run with a large buffer.
    let mut cfg = CoreConfig::paper();
    cfg.fetch_buffer = 64;
    let mut sim = r3dla_core::SingleCoreSim::build(
        p.built(),
        cfg,
        r3dla_mem::MemConfig::paper(),
        None,
        Some("bop"),
    );
    sim.run_until(WARMUP + 120_000, 30_000_000);
    let stats = sim.core().thread_stats(0);
    let supply = stats.fetched_per_cycle.to_pmf();
    let demand_raw = stats.renamed_per_cycle.to_pmf();
    // Clamp demand to decode width.
    let mut demand = vec![0.0; 5];
    for (k, p) in demand_raw.iter().enumerate() {
        demand[k.min(4)] += p;
    }
    let tc = trace_cache_supply(&supply, 0.35);
    println!("# FIG5a — queue-length distributions P(len)\n");
    for (name, sup) in [("I-cache", supply.clone()), ("trace", tc.clone())] {
        for cap in [8usize, 32] {
            let m = FetchBufferModel::new(sup.clone(), demand.clone(), cap).unwrap();
            let q = m.steady_state();
            let head: Vec<String> = q.iter().take(13).map(|x| format!("{x:.3}")).collect();
            println!(
                "{name} cap={cap:2}: [{}]  P(empty)={:.3}",
                head.join(" "),
                q[0]
            );
        }
    }
    println!("\n# FIG5b — expected fetch bubbles vs capacity\n");
    println!("| capacity | I-cache E[FB] | trace-cache E[FB] |");
    println!("|---|---|---|");
    let caps = [4usize, 8, 12, 16, 20, 24, 28, 32];
    let ic = bubble_sweep(&supply, &demand, &caps).unwrap();
    let tcs = bubble_sweep(&tc, &demand, &caps).unwrap();
    for (a, b) in ic.iter().zip(&tcs) {
        println!("| {} | {:.3} | {:.3} |", a.0, a.1, b.1);
    }
}
