//! Quick per-technique ablation over a handful of kernels: each R3
//! ingredient applied alone on top of baseline DLA.

use r3dla_bench::{arg_threads, prepare_some_threads, ExperimentSpec};
use r3dla_core::{DlaConfig, RecycleMode};
use r3dla_workloads::Scale;

fn main() {
    let threads = arg_threads();
    let prepared = prepare_some_threads(
        &["cg_like", "libq_like", "hmmer_like", "pagerank"],
        Scale::Ref,
        threads,
    );
    let (warm, win) = (60_000, 250_000);
    let spec = ExperimentSpec::new(
        "ABLATE",
        &["DLA", "+T1 %", "+VR %", "+FB %", "+RC %", "R3 %"],
        move |p| {
            let run = |cfg: DlaConfig| p.measure_dla(cfg, warm, win).mt_ipc;
            let base = run(DlaConfig::dla());
            let pct = |ipc: f64| (ipc / base - 1.0) * 100.0;
            let t1 = {
                let mut c = DlaConfig::dla();
                c.t1 = true;
                run(c)
            };
            let vr = {
                let mut c = DlaConfig::dla();
                c.value_reuse = true;
                run(c)
            };
            let fb = {
                let mut c = DlaConfig::dla();
                c.mt_core.fetch_buffer = 32;
                run(c)
            };
            let rc = {
                let mut c = DlaConfig::dla();
                c.recycle = RecycleMode::Dynamic;
                run(c)
            };
            let r3 = run(DlaConfig::r3());
            vec![base, pct(t1), pct(vr), pct(fb), pct(rc), pct(r3)]
        },
    );
    let res = spec.execute(&prepared, threads);
    for r in &res.rows {
        println!(
            "{:12} DLA {:.3} | +T1 {:+.1}% +VR {:+.1}% +FB {:+.1}% +RC {:+.1}% | R3 {:+.1}%",
            r.workload,
            r.values[0],
            r.values[1],
            r.values[2],
            r.values[3],
            r.values[4],
            r.values[5]
        );
    }
}
