use r3dla_core::{DlaConfig, DlaSystem, RecycleMode, SkeletonOptions};
use r3dla_workloads::{by_name, Scale};

fn run(name: &str, cfg: DlaConfig) -> f64 {
    let wl = by_name(name).unwrap().build(Scale::Ref);
    let mut sys = DlaSystem::build(&wl, cfg, SkeletonOptions::default()).unwrap();
    sys.measure(60_000, 250_000).mt_ipc
}

fn main() {
    for name in ["cg_like", "libq_like", "hmmer_like", "pagerank"] {
        let base = run(name, DlaConfig::dla());
        let t1 = {
            let mut c = DlaConfig::dla();
            c.t1 = true;
            run(name, c)
        };
        let vr = {
            let mut c = DlaConfig::dla();
            c.value_reuse = true;
            run(name, c)
        };
        let fb = {
            let mut c = DlaConfig::dla();
            c.mt_core.fetch_buffer = 32;
            run(name, c)
        };
        let rc = {
            let mut c = DlaConfig::dla();
            c.recycle = RecycleMode::Dynamic;
            run(name, c)
        };
        let r3 = run(name, DlaConfig::r3());
        println!(
            "{:12} DLA {:.3} | +T1 {:+.1}% +VR {:+.1}% +FB {:+.1}% +RC {:+.1}% | R3 {:+.1}%",
            name,
            base,
            (t1 / base - 1.0) * 100.0,
            (vr / base - 1.0) * 100.0,
            (fb / base - 1.0) * 100.0,
            (rc / base - 1.0) * 100.0,
            (r3 / base - 1.0) * 100.0
        );
    }
}
