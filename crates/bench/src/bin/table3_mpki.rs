//! Table III: L1 MPKI split between strided and non-strided accesses for
//! BL, BL+stride(L1), DLA, and DLA+T1.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use r3dla_bench::{
    arg_threads, arg_u64, prepare_all_threads, ExperimentSpec, Prepared, WARMUP, WINDOW,
};
use r3dla_core::{DlaConfig, SingleCoreSim};
use r3dla_cpu::{CommitRecord, CommitSink, CoreConfig};
use r3dla_mem::MemConfig;
use r3dla_workloads::Scale;

#[derive(Default)]
struct SplitSink {
    strided_pcs: HashSet<u64>,
    strided_misses: u64,
    other_misses: u64,
    committed: u64,
    active: bool,
}

impl CommitSink for SplitSink {
    fn on_commit(&mut self, rec: &CommitRecord) {
        if !self.active {
            return;
        }
        self.committed += 1;
        if rec.inst.is_load() && rec.l1_miss {
            if self.strided_pcs.contains(&rec.pc) {
                self.strided_misses += 1;
            } else {
                self.other_misses += 1;
            }
        }
    }
}

fn strided_pcs(p: &Prepared) -> HashSet<u64> {
    (0..p.program.len())
        .filter(|&i| {
            p.program.insts()[i].is_load()
                && p.profile.stride_ratio(i) >= 0.9
                && p.profile.mem_instances[i] >= 64
        })
        .map(|i| p.program.index_to_pc(i))
        .collect()
}

fn mpki(sink: &Rc<RefCell<SplitSink>>) -> (f64, f64) {
    let s = sink.borrow();
    let k = s.committed.max(1) as f64 / 1000.0;
    (s.strided_misses as f64 / k, s.other_misses as f64 / k)
}

fn main() {
    let warm = arg_u64("--warm", WARMUP);
    let win = arg_u64("--window", WINDOW);
    let threads = arg_threads();
    let prepared = prepare_all_threads(Scale::Ref, threads);
    // 4 configs × (strided, other) MPKI, row-major.
    let spec = ExperimentSpec::new(
        "TABLE3",
        &[
            "bl_s", "bl_o", "str_s", "str_o", "dla_s", "dla_o", "t1_s", "t1_o",
        ],
        move |p| {
            let pcs = strided_pcs(p);
            let mut row = Vec::with_capacity(8);
            // BL and BL+stride.
            for l1pf in [None, Some("stride")] {
                let mut sim = SingleCoreSim::build(
                    p.built(),
                    CoreConfig::paper(),
                    MemConfig::paper(),
                    l1pf,
                    Some("bop"),
                );
                let sink = Rc::new(RefCell::new(SplitSink {
                    strided_pcs: pcs.clone(),
                    ..Default::default()
                }));
                sim.core_mut().set_commit_sink(0, sink.clone());
                sim.run_until(warm, warm * 60 + 500_000);
                sink.borrow_mut().active = true;
                sim.run_until(win, win * 60 + 500_000);
                let (s, o) = mpki(&sink);
                row.push(s);
                row.push(o);
            }
            // DLA and DLA+T1.
            for t1 in [false, true] {
                let mut cfg = DlaConfig::dla();
                cfg.t1 = t1;
                let mut sys = p.dla_system(cfg);
                let sink = Rc::new(RefCell::new(SplitSink {
                    strided_pcs: pcs.clone(),
                    ..Default::default()
                }));
                sys.set_mt_observer(sink.clone());
                sys.run_until_mt(warm, warm * 60 + 500_000);
                sink.borrow_mut().active = true;
                sys.run_until_mt(win, win * 60 + 500_000);
                let (s, o) = mpki(&sink);
                row.push(s);
                row.push(o);
            }
            row
        },
    );
    let res = spec.execute(&prepared, threads);
    println!("# TABLE III — L1 MPKI by access class (mean / median over benchmarks)\n");
    println!("| config | strided mean | strided median | other mean | other median |");
    println!("|---|---|---|---|---|");
    let names = ["BL", "BL+stride", "DLA", "DLA+T1"];
    let paper = [
        "(paper 12.4/10.0, 7.4/3.9)",
        "(paper 8.4/4.8, 6.9/3.5)",
        "(paper 5.9/4.0, 6.1/2.8)",
        "(paper 2.1/1.1, 4.8/3.2)",
    ];
    for (k, name) in names.iter().enumerate() {
        let strided: Vec<f64> = res.column(2 * k).iter().map(|(_, v)| *v).collect();
        let other: Vec<f64> = res.column(2 * k + 1).iter().map(|(_, v)| *v).collect();
        println!(
            "| {name} {} | {:.1} | {:.1} | {:.1} | {:.1} |",
            paper[k],
            r3dla_stats::mean(&strided),
            r3dla_stats::median(&strided),
            r3dla_stats::mean(&other),
            r3dla_stats::median(&other)
        );
    }
}
