//! Supervised campaign execution: the fault-containment layer every
//! campaign entry point (grid, sampled, mix, DSE) runs its cells
//! through.
//!
//! A [`Supervisor`] owns a worker pool shaped like
//! [`parallel_map`](crate::parallel_map) but with each cell wrapped in
//! `catch_unwind` and classified into a [`CellStatus`]
//! (`Ok | Panicked | TimedOut | IoError`). Transient failures (panics,
//! I/O errors) retry with bounded exponential backoff; a cell that keeps
//! failing is quarantined — its exact failure outcome is recorded and
//! replayed for any later attempt at the same key, so reports stay
//! byte-identical whether a poison cell re-runs or short-circuits.
//! Runaway cells are contained two ways: a watchdog thread trips each
//! cell's cancel token at a wall-clock deadline (`R3DLA_CELL_DEADLINE_MS`
//! — off by default because wall time is nondeterministic), and a
//! deterministic simulated-cycle budget (`R3DLA_CELL_CYCLE_BUDGET`)
//! threaded through every run loop via
//! [`r3dla_core::guard`]. Timed-out cells are *not* retried: a
//! configuration that overran its budget once will again.
//!
//! Proving the machinery works is a deterministic fault-injection
//! harness: [`FaultPlan`] (env `R3DLA_FAULT_PLAN`) fires panics, I/O
//! errors and delays at rates keyed by a seeded hash of the cell's
//! stable key and attempt number — never by thread identity or time —
//! so chaos runs reproduce bit-for-bit across `--threads` and across
//! runs, and CI can `cmp` two chaos reports.

use std::collections::HashMap;
use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use r3dla_core::guard;
use r3dla_isa::FxHasher;

/// How a supervised cell ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell produced a result.
    Ok,
    /// The cell (or an injected fault) panicked on every attempt.
    Panicked,
    /// The cell overran its watchdog deadline or cycle budget.
    TimedOut,
    /// The cell reported an I/O error on every attempt.
    IoError,
}

impl CellStatus {
    /// Stable lower-snake label used in report JSON.
    pub fn label(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Panicked => "panicked",
            CellStatus::TimedOut => "timed_out",
            CellStatus::IoError => "io_error",
        }
    }
}

/// The supervised result of one cell: the value if any attempt
/// succeeded, plus how hard the supervisor had to work for it.
#[derive(Debug, Clone)]
pub struct CellOutcome<R> {
    /// The cell's result; `None` when every attempt failed.
    pub value: Option<R>,
    /// Final classification.
    pub status: CellStatus,
    /// Attempts consumed (1 for a clean first-try success).
    pub attempts: u32,
    /// Human-readable failure detail (first failure's message).
    pub error: Option<String>,
}

impl<R> CellOutcome<R> {
    fn ok(value: R, attempts: u32) -> Self {
        CellOutcome {
            value: Some(value),
            status: CellStatus::Ok,
            attempts,
            error: None,
        }
    }
}

/// Which injection point a [`FaultPlan`] rate applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the cell closure.
    Panic,
    /// Synthetic I/O error before the cell runs.
    Io,
    /// Sleep `delay_ms` before the cell runs (stresses scheduling
    /// without changing results — reports must stay byte-identical).
    Delay,
    /// Cache-store write failure (exercises the store retry path).
    StoreIo,
    /// Cache-store crash after writing the temp file but before the
    /// rename (leaves the orphan a later open must sweep).
    StoreCrash,
}

impl FaultKind {
    fn label(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Io => "io",
            FaultKind::Delay => "delay",
            FaultKind::StoreIo => "store_io",
            FaultKind::StoreCrash => "store_crash",
        }
    }
}

/// Deterministic fault-injection plan. Each fault kind fires when a
/// seeded hash of `(seed, kind, attempt, cell key)` lands under its
/// rate, so two runs of the same campaign — at any thread count —
/// inject exactly the same faults at exactly the same cells.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// Probability a cell attempt panics.
    pub panic_rate: f64,
    /// Probability a cell attempt fails with a synthetic I/O error.
    pub io_rate: f64,
    /// Probability a cell attempt is delayed by `delay_ms` first.
    pub delay_rate: f64,
    /// Injected delay length in milliseconds.
    pub delay_ms: u64,
    /// Probability a cache store attempt fails cleanly.
    pub store_io_rate: f64,
    /// Probability a cache store "crashes" mid-write (temp file left).
    pub store_crash_rate: f64,
}

impl FaultPlan {
    /// Parses the `R3DLA_FAULT_PLAN` syntax: colon-separated `key=value`
    /// fields, e.g. `seed=7:panic=0.1:io=0.1:delay=0.1:delay_ms=2:`
    /// `store_io=0.1:store_crash=0.05`. Unknown keys are errors; every
    /// field is optional and defaults to zero.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for field in s.split(':').filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault plan field `{field}` is not key=value"))?;
            fn num<T: std::str::FromStr>(field: &str, value: &str) -> Result<T, String> {
                value
                    .parse()
                    .map_err(|_| format!("fault plan field `{field}` has a malformed value"))
            }
            match key {
                "seed" => plan.seed = num(field, value)?,
                "panic" => plan.panic_rate = num(field, value)?,
                "io" => plan.io_rate = num(field, value)?,
                "delay" => plan.delay_rate = num(field, value)?,
                "delay_ms" => plan.delay_ms = num(field, value)?,
                "store_io" => plan.store_io_rate = num(field, value)?,
                "store_crash" => plan.store_crash_rate = num(field, value)?,
                _ => return Err(format!("fault plan has unknown key `{key}`")),
            }
        }
        Ok(plan)
    }

    /// Reads `R3DLA_FAULT_PLAN`; unset or empty means no injection. A
    /// malformed plan is a fatal configuration error (exit 2) — silently
    /// running a chaos campaign without chaos would defeat the test.
    pub fn from_env() -> Self {
        match std::env::var("R3DLA_FAULT_PLAN") {
            Ok(s) if !s.is_empty() => match Self::parse(&s) {
                Ok(plan) => plan,
                Err(e) => {
                    r3dla_obs::diag!("R3DLA_FAULT_PLAN: {e}");
                    std::process::exit(2);
                }
            },
            _ => FaultPlan::default(),
        }
    }

    /// Whether any fault kind can fire.
    pub fn active(&self) -> bool {
        self.panic_rate > 0.0
            || self.io_rate > 0.0
            || self.delay_rate > 0.0
            || self.store_io_rate > 0.0
            || self.store_crash_rate > 0.0
    }

    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::Panic => self.panic_rate,
            FaultKind::Io => self.io_rate,
            FaultKind::Delay => self.delay_rate,
            FaultKind::StoreIo => self.store_io_rate,
            FaultKind::StoreCrash => self.store_crash_rate,
        }
    }

    /// Whether `kind` fires for `key` on attempt `attempt`. Pure
    /// function of the plan and its arguments: the decision hashes
    /// `seed|kind|attempt|key` (FxHasher — no per-process random state)
    /// into a uniform in `[0, 1)` and compares against the rate. Keying
    /// by attempt lets a retry of an injected failure succeed.
    pub fn fires(&self, kind: FaultKind, key: &str, attempt: u32) -> bool {
        let rate = self.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let mut h = FxHasher::default();
        h.write(format!("{}|{}|{}|{}", self.seed, kind.label(), attempt, key).as_bytes());
        let u = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }
}

/// Supervision policy: retries, backoff and runaway containment.
#[derive(Debug, Clone)]
pub struct SuperviseConfig {
    /// Attempts per cell before quarantine (≥ 1).
    pub max_attempts: u32,
    /// Base backoff between retries, doubling per attempt.
    pub backoff_ms: u64,
    /// Wall-clock watchdog deadline per attempt; `None` disables the
    /// watchdog (the default — wall time is nondeterministic, so timed
    /// out rows can differ between runs when this is on).
    pub deadline_ms: Option<u64>,
    /// Simulated-cycle budget per attempt; `None` means unlimited.
    pub cycle_budget: Option<u64>,
    /// Fault-injection plan (default: no injection).
    pub plan: FaultPlan,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            max_attempts: 3,
            backoff_ms: 10,
            deadline_ms: None,
            cycle_budget: None,
            plan: FaultPlan::default(),
        }
    }
}

impl SuperviseConfig {
    /// Default policy plus the environment knobs: `R3DLA_FAULT_PLAN`,
    /// `R3DLA_CELL_DEADLINE_MS`, `R3DLA_CELL_CYCLE_BUDGET`.
    pub fn from_env() -> Self {
        let parse_u64 = |name: &str| {
            std::env::var(name)
                .ok()
                .filter(|s| !s.is_empty())
                .and_then(|s| s.parse::<u64>().ok())
                .filter(|&v| v > 0)
        };
        SuperviseConfig {
            deadline_ms: parse_u64("R3DLA_CELL_DEADLINE_MS"),
            cycle_budget: parse_u64("R3DLA_CELL_CYCLE_BUDGET"),
            plan: FaultPlan::from_env(),
            ..SuperviseConfig::default()
        }
    }
}

/// A quarantined cell's recorded failure, replayed verbatim for any
/// later attempt at the same key so reports are byte-identical whether
/// a poison cell re-runs or short-circuits.
#[derive(Debug, Clone)]
struct Poisoned {
    status: CellStatus,
    attempts: u32,
    error: Option<String>,
}

/// The supervised worker pool. One supervisor spans a whole campaign
/// (all [`Supervisor::map`] calls share its quarantine), so a poison
/// cell rediscovered in a later stage short-circuits immediately.
pub struct Supervisor {
    cfg: SuperviseConfig,
    quarantine: Mutex<HashMap<String, Poisoned>>,
}

impl Supervisor {
    /// A supervisor with an explicit policy.
    pub fn new(cfg: SuperviseConfig) -> Self {
        Supervisor {
            cfg,
            quarantine: Mutex::new(HashMap::new()),
        }
    }

    /// A supervisor configured from the environment
    /// ([`SuperviseConfig::from_env`]).
    pub fn from_env() -> Self {
        Self::new(SuperviseConfig::from_env())
    }

    /// The active fault-injection plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.cfg.plan
    }

    /// Supervised fan-out: applies `f` to every item on up to `threads`
    /// workers and returns per-item [`CellOutcome`]s in input order.
    /// `key_of` names each cell — the stable identity fault injection
    /// and quarantine key on, so it must not depend on thread or time.
    /// `f` reports I/O-style failures as `Err(message)`; panics and
    /// guard interrupts are caught and classified.
    pub fn map<T, R, K, F>(
        &self,
        items: &[T],
        threads: usize,
        key_of: K,
        f: F,
    ) -> Vec<CellOutcome<R>>
    where
        T: Sync,
        R: Send,
        K: Fn(&T) -> String + Sync,
        F: Fn(&T) -> Result<R, String> + Sync,
    {
        let threads = threads.max(1).min(items.len().max(1));
        r3dla_obs::counters::add("supervisor.cells", items.len() as u64);
        let watchdog = Watchdog::new(self.cfg.deadline_ms.map(Duration::from_millis));
        if threads <= 1 {
            // Serial path. The watchdog still needs its patrol thread —
            // a deadline must fire even when there is only one worker.
            return std::thread::scope(|scope| {
                let patrol = watchdog.armed().then(|| scope.spawn(|| watchdog.patrol()));
                let out: Vec<CellOutcome<R>> = items
                    .iter()
                    .map(|it| self.run_cell_watched(&key_of(it), it, &f, &watchdog))
                    .collect();
                watchdog.shutdown();
                if let Some(p) = patrol {
                    let _ = p.join();
                }
                out
            });
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CellOutcome<R>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        let wseq = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(threads);
            for _ in 0..threads {
                workers.push(scope.spawn(|| {
                    if r3dla_obs::trace::enabled() {
                        let w = wseq.fetch_add(1, Ordering::Relaxed);
                        r3dla_obs::trace::name_thread(format!("worker-{w}"));
                    }
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        let outcome = self.run_cell_watched(&key_of(item), item, &f, &watchdog);
                        *slots[i].lock().unwrap() = Some(outcome);
                    }
                }));
            }
            let patrol = watchdog.armed().then(|| scope.spawn(|| watchdog.patrol()));
            for w in workers {
                let _ = w.join();
            }
            watchdog.shutdown();
            if let Some(p) = patrol {
                let _ = p.join();
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
            .collect()
    }

    /// Runs one cell through the full retry/quarantine policy.
    fn run_cell_watched<T, R>(
        &self,
        key: &str,
        item: &T,
        f: &(impl Fn(&T) -> Result<R, String> + Sync),
        watchdog: &Watchdog,
    ) -> CellOutcome<R> {
        if let Some(p) = self.quarantine.lock().unwrap().get(key) {
            if r3dla_obs::trace::enabled() {
                r3dla_obs::trace::instant("supervisor", format!("quarantine-replay {key}"));
            }
            note_outcome(p.status, true);
            return CellOutcome {
                value: None,
                status: p.status,
                attempts: p.attempts,
                error: p.error.clone(),
            };
        }
        let mut attempt = 0u32;
        let mut first_failure: Option<(CellStatus, String)> = None;
        loop {
            attempt += 1;
            match self.attempt(key, item, f, watchdog, attempt) {
                Ok(value) => {
                    note_outcome(CellStatus::Ok, false);
                    return CellOutcome::ok(value, attempt);
                }
                Err((status, error)) => {
                    let transient = matches!(status, CellStatus::Panicked | CellStatus::IoError);
                    first_failure.get_or_insert((status, error));
                    if transient && attempt < self.cfg.max_attempts {
                        r3dla_obs::counters::add("supervisor.retries", 1);
                        if r3dla_obs::trace::enabled() {
                            r3dla_obs::trace::instant(
                                "supervisor",
                                format!("retry {key} ({})", status.label()),
                            );
                        }
                        let shift = (attempt - 1).min(6);
                        std::thread::sleep(Duration::from_millis(self.cfg.backoff_ms << shift));
                        continue;
                    }
                    let (status, error) = first_failure.expect("failure recorded above");
                    r3dla_obs::diag!(
                        "supervise: quarantining cell `{key}` after {attempt} attempt(s): \
                         {} ({error})",
                        status.label()
                    );
                    r3dla_obs::counters::add("supervisor.quarantined", 1);
                    if r3dla_obs::trace::enabled() {
                        r3dla_obs::trace::instant(
                            "supervisor",
                            format!("quarantine {key} ({})", status.label()),
                        );
                    }
                    note_outcome(status, false);
                    self.quarantine.lock().unwrap().insert(
                        key.to_string(),
                        Poisoned {
                            status,
                            attempts: attempt,
                            error: Some(error.clone()),
                        },
                    );
                    return CellOutcome {
                        value: None,
                        status,
                        attempts: attempt,
                        error: Some(error),
                    };
                }
            }
        }
    }

    /// One attempt: injection points, watchdog registration, guard
    /// installation, `catch_unwind`, classification.
    #[allow(clippy::type_complexity)]
    fn attempt<T, R>(
        &self,
        key: &str,
        item: &T,
        f: &(impl Fn(&T) -> Result<R, String> + Sync),
        watchdog: &Watchdog,
        attempt: u32,
    ) -> Result<R, (CellStatus, String)> {
        let plan = &self.cfg.plan;
        if plan.fires(FaultKind::Delay, key, attempt) && plan.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(plan.delay_ms));
        }
        if plan.fires(FaultKind::Io, key, attempt) {
            return Err((
                CellStatus::IoError,
                format!("injected i/o fault (attempt {attempt})"),
            ));
        }
        let inject_panic = plan.fires(FaultKind::Panic, key, attempt);
        // Per-attempt cell span: the supervisor is the one place every
        // campaign's cells funnel through, so the trace gets a
        // per-worker, per-cell timeline without per-campaign plumbing.
        let _sp = if attempt > 1 {
            r3dla_obs::span!("cell", "{key}#a{attempt}")
        } else {
            r3dla_obs::span!("cell", "{key}")
        };
        let slot = watchdog.register();
        let token = slot.as_ref().map(|(_, t)| Arc::clone(t));
        let caught = {
            let _guard = r3dla_core::CellGuard::install(token, self.cfg.cycle_budget);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                if inject_panic {
                    panic!("injected panic fault (attempt {attempt})");
                }
                f(item)
            }));
            // Read the cause before the guard drops and resets it.
            let cause = guard::interrupt_cause();
            (caught, cause)
        };
        if let Some((idx, _)) = slot {
            watchdog.clear(idx);
        }
        let (caught, cause) = caught;
        match cause {
            Some(guard::Interrupt::Cancelled) => {
                return Err((
                    CellStatus::TimedOut,
                    "watchdog deadline exceeded".to_string(),
                ))
            }
            Some(guard::Interrupt::BudgetExhausted) => {
                return Err((CellStatus::TimedOut, "cycle budget exhausted".to_string()))
            }
            None => {}
        }
        match caught {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(msg)) => Err((CellStatus::IoError, msg)),
            Err(payload) => Err((CellStatus::Panicked, panic_message(payload.as_ref()))),
        }
    }
}

/// Records a finished cell in the telemetry layer: outcome tally
/// counters (tied to the cell, so aggregation is deterministic across
/// `--threads`) and one progress tick. Quarantine replays tally
/// separately so a short-circuited poison cell is distinguishable from
/// a fresh failure.
fn note_outcome(status: CellStatus, replay: bool) {
    if r3dla_obs::counters::enabled() {
        if replay {
            r3dla_obs::counters::add("supervisor.quarantine_replays", 1);
        }
        r3dla_obs::counters::add(
            match status {
                CellStatus::Ok => "supervisor.ok",
                CellStatus::Panicked => "supervisor.panicked",
                CellStatus::TimedOut => "supervisor.timed_out",
                CellStatus::IoError => "supervisor.io_error",
            },
            1,
        );
    }
    r3dla_obs::progress::tick(1);
}

/// Extracts the human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One registered attempt under watch: its deadline and the cancel
/// token the patrol trips once that deadline passes.
type WatchSlot = (Instant, Arc<AtomicBool>);

/// The wall-clock watchdog: workers register a deadline + cancel token
/// per attempt; a patrol thread trips tokens whose deadline passed. The
/// tripped cell's run loops notice via `r3dla_core::guard` and bail.
struct Watchdog {
    deadline: Option<Duration>,
    slots: Mutex<Vec<Option<WatchSlot>>>,
    done: AtomicBool,
}

impl Watchdog {
    fn new(deadline: Option<Duration>) -> Self {
        Watchdog {
            deadline,
            slots: Mutex::new(Vec::new()),
            done: AtomicBool::new(false),
        }
    }

    fn armed(&self) -> bool {
        self.deadline.is_some()
    }

    /// Registers the calling worker's current attempt; returns the slot
    /// index and the cancel token to install, or `None` when the
    /// watchdog is disarmed.
    fn register(&self) -> Option<(usize, Arc<AtomicBool>)> {
        let deadline = self.deadline?;
        let token = Arc::new(AtomicBool::new(false));
        let entry = (Instant::now() + deadline, Arc::clone(&token));
        let mut slots = self.slots.lock().unwrap();
        let idx = match slots.iter_mut().position(|s| s.is_none()) {
            Some(i) => {
                slots[i] = Some(entry);
                i
            }
            None => {
                slots.push(Some(entry));
                slots.len() - 1
            }
        };
        Some((idx, token))
    }

    fn clear(&self, idx: usize) {
        self.slots.lock().unwrap()[idx] = None;
    }

    fn shutdown(&self) {
        self.done.store(true, Ordering::Relaxed);
    }

    fn patrol(&self) {
        while !self.done.load(Ordering::Relaxed) {
            {
                let now = Instant::now();
                let slots = self.slots.lock().unwrap();
                for slot in slots.iter().flatten() {
                    if now >= slot.0 {
                        slot.1.store(true, Ordering::Relaxed);
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters) — report `error` fields carry
/// arbitrary panic messages.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Appends the supervision trio (`status`, `attempts`, `error`) to a
/// JSON row — called by every report writer, and only for rows that are
/// not clean, so a faults-off campaign's bytes are unchanged.
pub fn push_status_fields(
    out: &mut String,
    status: CellStatus,
    attempts: u32,
    error: Option<&str>,
) {
    out.push_str(&format!(
        ", \"status\": \"{}\", \"attempts\": {}",
        status.label(),
        attempts
    ));
    if let Some(e) = error {
        out.push_str(&format!(", \"error\": \"{}\"", json_escape(e)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_parses_and_round_trips_fields() {
        let p = FaultPlan::parse(
            "seed=7:panic=0.1:io=0.2:delay=0.3:delay_ms=2:store_io=0.4:store_crash=0.5",
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.panic_rate, 0.1);
        assert_eq!(p.io_rate, 0.2);
        assert_eq!(p.delay_rate, 0.3);
        assert_eq!(p.delay_ms, 2);
        assert_eq!(p.store_io_rate, 0.4);
        assert_eq!(p.store_crash_rate, 0.5);
        assert!(p.active());
        assert!(FaultPlan::parse("").unwrap() == FaultPlan::default());
        assert!(!FaultPlan::default().active());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic=x").is_err());
    }

    #[test]
    fn fault_decisions_are_deterministic_and_rate_shaped() {
        let p = FaultPlan::parse("seed=11:panic=0.1").unwrap();
        let mut fired = 0;
        for i in 0..10_000 {
            let key = format!("cell-{i}");
            let a = p.fires(FaultKind::Panic, &key, 1);
            let b = p.fires(FaultKind::Panic, &key, 1);
            assert_eq!(a, b, "same inputs must decide identically");
            fired += a as usize;
        }
        // ~10% of 10k with a wide tolerance — the hash is uniform.
        assert!((700..1300).contains(&fired), "fired {fired}/10000");
        // Different seeds decide differently somewhere.
        let q = FaultPlan::parse("seed=12:panic=0.1").unwrap();
        assert!((0..10_000).any(|i| {
            let key = format!("cell-{i}");
            p.fires(FaultKind::Panic, &key, 1) != q.fires(FaultKind::Panic, &key, 1)
        }));
        // Rate edges.
        let zero = FaultPlan::default();
        assert!(!zero.fires(FaultKind::Panic, "k", 1));
        let one = FaultPlan::parse("panic=1.0").unwrap();
        assert!(one.fires(FaultKind::Panic, "k", 1));
    }

    #[test]
    fn panics_are_contained_and_classified() {
        let sup = Supervisor::new(SuperviseConfig {
            max_attempts: 2,
            backoff_ms: 0,
            ..SuperviseConfig::default()
        });
        let items: Vec<u32> = (0..4).collect();
        let out = sup.map(
            &items,
            2,
            |i| format!("cell-{i}"),
            |&i| {
                if i == 2 {
                    panic!("boom {i}");
                }
                Ok(i * 10)
            },
        );
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].value, Some(0));
        assert_eq!(out[1].status, CellStatus::Ok);
        assert_eq!(out[2].status, CellStatus::Panicked);
        assert_eq!(out[2].attempts, 2);
        assert_eq!(out[2].value, None);
        assert!(
            out[2].error.as_deref().unwrap().contains("boom 2"),
            "error was {:?}",
            out[2].error
        );
        assert_eq!(out[3].value, Some(30));
    }

    #[test]
    fn transient_failures_retry_and_recover() {
        use std::sync::atomic::AtomicU32;
        let sup = Supervisor::new(SuperviseConfig {
            max_attempts: 3,
            backoff_ms: 0,
            ..SuperviseConfig::default()
        });
        let tries = AtomicU32::new(0);
        let out = sup.map(
            &[()],
            1,
            |_| "flaky".to_string(),
            |_| {
                if tries.fetch_add(1, Ordering::Relaxed) < 2 {
                    Err("transient".to_string())
                } else {
                    Ok(42)
                }
            },
        );
        assert_eq!(out[0].value, Some(42));
        assert_eq!(out[0].status, CellStatus::Ok);
        assert_eq!(out[0].attempts, 3);
        assert_eq!(out[0].error, None);
    }

    #[test]
    fn quarantine_replays_the_recorded_outcome() {
        let sup = Supervisor::new(SuperviseConfig {
            max_attempts: 2,
            backoff_ms: 0,
            ..SuperviseConfig::default()
        });
        let first = sup.map(
            &[1],
            1,
            |_| "poison".to_string(),
            |_: &i32| Err::<i32, _>("io down".to_string()),
        );
        let again = sup.map(&[1], 1, |_| "poison".to_string(), |_: &i32| Ok(5));
        assert_eq!(first[0].status, CellStatus::IoError);
        assert_eq!(again[0].status, CellStatus::IoError);
        assert_eq!(again[0].attempts, first[0].attempts);
        assert_eq!(again[0].error, first[0].error);
        assert_eq!(again[0].value, None, "quarantined cells never re-run");
    }

    #[test]
    fn cycle_budget_times_out_without_retry() {
        let sup = Supervisor::new(SuperviseConfig {
            max_attempts: 3,
            backoff_ms: 0,
            cycle_budget: Some(50_000),
            ..SuperviseConfig::default()
        });
        let out = sup.map(
            &[()],
            1,
            |_| "runaway".to_string(),
            |_| {
                while !r3dla_core::guard::tick(1_000) {}
                Ok(0u32)
            },
        );
        assert_eq!(out[0].status, CellStatus::TimedOut);
        assert_eq!(out[0].attempts, 1, "timeouts are not retried");
        assert!(out[0].error.as_deref().unwrap().contains("cycle budget"));
    }

    #[test]
    fn watchdog_deadline_times_out_a_stuck_cell() {
        let sup = Supervisor::new(SuperviseConfig {
            max_attempts: 3,
            backoff_ms: 0,
            deadline_ms: Some(20),
            ..SuperviseConfig::default()
        });
        let out = sup.map(
            &[()],
            2,
            |_| "stuck".to_string(),
            |_| {
                // Cooperative spin: poll the guard like a run loop would.
                while !r3dla_core::guard::tick(10_000) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(0u32)
            },
        );
        assert_eq!(out[0].status, CellStatus::TimedOut);
        assert!(out[0].error.as_deref().unwrap().contains("watchdog"));
    }

    #[test]
    fn chaos_outcomes_are_identical_across_thread_counts() {
        let cfg = || SuperviseConfig {
            max_attempts: 3,
            backoff_ms: 0,
            plan: FaultPlan::parse("seed=5:panic=0.3:io=0.3").unwrap(),
            ..SuperviseConfig::default()
        };
        let items: Vec<u32> = (0..32).collect();
        let run = |threads: usize| {
            Supervisor::new(cfg()).map(&items, threads, |i| format!("cell-{i}"), |&i| Ok(i * 3))
        };
        let a = run(1);
        let b = run(4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.value, y.value);
            assert_eq!(x.status, y.status);
            assert_eq!(x.attempts, y.attempts);
            assert_eq!(x.error, y.error);
        }
        // The plan actually injected something at these rates.
        assert!(a
            .iter()
            .any(|o| o.attempts > 1 || o.status != CellStatus::Ok));
    }

    #[test]
    fn json_escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny\t\u{1}"), "x\\ny\\t\\u0001");
    }
}
