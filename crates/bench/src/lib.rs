#![warn(missing_docs)]
//! Shared experiment harness: prepared workloads (profile + skeletons
//! computed once), measurement helpers with common warmup/window sizing,
//! the parallel experiment runner ([`runner`]), and table formatting for
//! the per-figure binaries.

pub mod runner;
pub mod sampled;
pub mod supervise;

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use r3dla_core::{
    generate_skeletons, profile, Dataflow, DlaConfig, DlaSystem, ProfileData, SingleCoreSim,
    SkeletonOptions, SkeletonSet, WindowReport,
};
use r3dla_cpu::{BaseMem, Core, CoreConfig, PredictorDirection};
use r3dla_isa::{ArchState, Program, VecMem};
use r3dla_mem::{CoreMem, MemConfig, SharedLlc};
use r3dla_workloads::{suite, BuiltWorkload, Scale, Suite, Workload};

pub use runner::{
    parallel_map, run_grid, run_grid_supervised, CellKind, CellResult, ConfigSpec,
    ExperimentResult, ExperimentSpec, GridCell, GridPlan, GridResult, GridSpec,
};
pub use sampled::{
    check_against_reference, run_grid_sampled, run_sampled_cell, SampledCell, SampledCellResult,
    SampledGridResult, SampledPlan,
};
pub use supervise::{
    json_escape, CellOutcome, CellStatus, FaultKind, FaultPlan, SuperviseConfig, Supervisor,
};

/// Default warmup instructions for measurement windows.
pub const WARMUP: u64 = 40_000;
/// Default measurement window in committed MT instructions.
pub const WINDOW: u64 = 150_000;

/// A workload with its offline analysis performed once, so each system
/// configuration can be assembled without re-profiling.
///
/// `Prepared` is `Send + Sync`: the runner prepares workloads on a worker
/// pool and shares them by reference across measurement threads. The
/// non-thread-safe simulation state (`Rc`/`RefCell` inside [`DlaSystem`])
/// is only created per-cell, inside one thread, by [`Prepared::dla_system`].
pub struct Prepared {
    /// Kernel name.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// The program.
    pub program: Arc<Program>,
    /// Reaching-definitions analysis (kept so alternative skeleton
    /// options can be regenerated without re-deriving it — the DSE
    /// search sweeps [`SkeletonOptions`] thresholds).
    pub dataflow: Dataflow,
    /// Training profile.
    pub profile: ProfileData,
    /// Skeletons with T1 offload applied.
    pub skeletons_t1: SkeletonSet,
    /// Skeletons without T1 offload (baseline DLA).
    pub skeletons_plain: SkeletonSet,
    built: BuiltWorkload,
}

// Every field is plain data: preparation results may cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Prepared>();
};

impl Prepared {
    /// Profiles and generates skeletons for one workload.
    pub fn new(w: &Workload, scale: Scale) -> Self {
        let _sp = r3dla_obs::span!("prepare", "{}", w.name);
        let built = w.build(scale);
        let program = Arc::new(built.program.clone());
        let df = Dataflow::analyze(&program);
        // Profiling assembles a (thread-confined) timing core, which
        // shares the program by `Rc`.
        let prof = profile(
            &Rc::new(built.program.clone()),
            DlaConfig::dla().profile_insts,
        );
        let opt = SkeletonOptions::default();
        let skeletons_t1 = generate_skeletons(&program, &df, &prof, &opt, true);
        let skeletons_plain = generate_skeletons(&program, &df, &prof, &opt, false);
        Self {
            name: w.name.to_string(),
            suite: w.suite,
            program,
            dataflow: df,
            profile: prof,
            skeletons_t1,
            skeletons_plain,
            built,
        }
    }

    /// Generates a skeleton set under non-default options, reusing the
    /// stored dataflow analysis and training profile. With default
    /// options this returns a clone of the precomputed set.
    pub fn skeletons_for(&self, opt: &SkeletonOptions, t1: bool) -> SkeletonSet {
        if *opt == SkeletonOptions::default() {
            return if t1 {
                self.skeletons_t1.clone()
            } else {
                self.skeletons_plain.clone()
            };
        }
        generate_skeletons(&self.program, &self.dataflow, &self.profile, opt, t1)
    }

    /// The built workload (for single-core and baseline systems).
    pub fn built(&self) -> &BuiltWorkload {
        &self.built
    }

    /// Assembles a DLA system with the pre-computed analysis.
    pub fn dla_system(&self, cfg: DlaConfig) -> DlaSystem {
        let set = if cfg.t1 {
            &self.skeletons_t1
        } else {
            &self.skeletons_plain
        };
        DlaSystem::assemble(
            Rc::new((*self.program).clone()),
            cfg,
            set.clone(),
            self.profile.clone(),
        )
    }

    /// Assembles a DLA system over an externally owned shared LLC/DRAM —
    /// the multi-tenant path: assemble several systems over the same
    /// handle and host them in one [`r3dla_core::Cluster`].
    pub fn dla_system_shared(
        &self,
        cfg: DlaConfig,
        shared: Rc<std::cell::RefCell<SharedLlc>>,
    ) -> DlaSystem {
        let set = if cfg.t1 {
            &self.skeletons_t1
        } else {
            &self.skeletons_plain
        };
        DlaSystem::assemble_shared(
            Rc::new((*self.program).clone()),
            cfg,
            set.clone(),
            self.profile.clone(),
            shared,
        )
    }

    /// Assembles a DLA system resumed from an architectural checkpoint
    /// (sampled-simulation cells).
    pub fn dla_system_from_checkpoint(
        &self,
        cfg: DlaConfig,
        ckpt: &r3dla_isa::ArchCheckpoint,
    ) -> DlaSystem {
        let set = if cfg.t1 {
            &self.skeletons_t1
        } else {
            &self.skeletons_plain
        };
        DlaSystem::restore_from_checkpoint(
            Rc::new((*self.program).clone()),
            cfg,
            set.clone(),
            self.profile.clone(),
            ckpt,
        )
    }

    /// Like [`dla_system_from_checkpoint`](Self::dla_system_from_checkpoint)
    /// but with an explicit skeleton set — the DSE evaluator's entry
    /// point, where the set comes from swept [`SkeletonOptions`] rather
    /// than the two precomputed defaults.
    pub fn dla_system_from_checkpoint_with(
        &self,
        cfg: DlaConfig,
        set: SkeletonSet,
        ckpt: &r3dla_isa::ArchCheckpoint,
    ) -> DlaSystem {
        DlaSystem::restore_from_checkpoint(
            Rc::new((*self.program).clone()),
            cfg,
            set,
            self.profile.clone(),
            ckpt,
        )
    }

    /// Measures a DLA configuration; returns the window report.
    pub fn measure_dla(&self, cfg: DlaConfig, warm: u64, win: u64) -> WindowReport {
        self.measure_dla_ff(cfg, warm, win, true)
    }

    /// [`measure_dla`](Self::measure_dla) with event-driven cycle
    /// skipping explicitly enabled or disabled — the reports are
    /// identical either way (only wall-clock differs); the knob exists
    /// for equivalence checks.
    pub fn measure_dla_ff(
        &self,
        cfg: DlaConfig,
        warm: u64,
        win: u64,
        fast_forward: bool,
    ) -> WindowReport {
        self.measure_dla_mode(
            cfg,
            warm,
            win,
            fast_forward,
            r3dla_core::event_kernel_default(),
        )
    }

    /// [`measure_dla_ff`](Self::measure_dla_ff) with the run loop also
    /// pinned: `event_kernel` selects the event-driven kernel loop or the
    /// legacy lockstep loop. All four combinations report identically;
    /// the knobs exist for the equivalence suite and CI smoke, pinned per
    /// instance because `R3DLA_EVENT_KERNEL` is racy under parallel
    /// tests.
    pub fn measure_dla_mode(
        &self,
        cfg: DlaConfig,
        warm: u64,
        win: u64,
        fast_forward: bool,
        event_kernel: bool,
    ) -> WindowReport {
        let mut sys = self.dla_system(cfg);
        sys.set_fast_forward(fast_forward);
        sys.set_event_kernel(event_kernel);
        sys.measure(warm, win)
    }

    /// Measures a single-core configuration; returns IPC.
    pub fn measure_single(
        &self,
        core: CoreConfig,
        l1pf: Option<&str>,
        l2pf: Option<&str>,
        warm: u64,
        win: u64,
    ) -> f64 {
        self.measure_single_report(core, l1pf, l2pf, warm, win)
            .mt_ipc
    }

    /// Measures a single-core configuration with the full windowed
    /// counter set (LT fields zero) — the grid runner's `bl*` cells.
    pub fn measure_single_report(
        &self,
        core: CoreConfig,
        l1pf: Option<&str>,
        l2pf: Option<&str>,
        warm: u64,
        win: u64,
    ) -> WindowReport {
        self.measure_single_report_ff(core, l1pf, l2pf, warm, win, true)
    }

    /// [`measure_single_report`](Self::measure_single_report) with
    /// event-driven cycle skipping explicitly enabled or disabled.
    pub fn measure_single_report_ff(
        &self,
        core: CoreConfig,
        l1pf: Option<&str>,
        l2pf: Option<&str>,
        warm: u64,
        win: u64,
        fast_forward: bool,
    ) -> WindowReport {
        self.measure_single_report_mode(
            core,
            l1pf,
            l2pf,
            warm,
            win,
            fast_forward,
            r3dla_core::event_kernel_default(),
        )
    }

    /// [`measure_single_report_ff`](Self::measure_single_report_ff) with
    /// the run loop also pinned (see
    /// [`measure_dla_mode`](Self::measure_dla_mode)).
    #[allow(clippy::too_many_arguments)]
    pub fn measure_single_report_mode(
        &self,
        core: CoreConfig,
        l1pf: Option<&str>,
        l2pf: Option<&str>,
        warm: u64,
        win: u64,
        fast_forward: bool,
        event_kernel: bool,
    ) -> WindowReport {
        let mut sim = SingleCoreSim::build(&self.built, core, MemConfig::paper(), l1pf, l2pf);
        sim.set_fast_forward(fast_forward);
        sim.set_event_kernel(event_kernel);
        sim.measure(warm, win)
    }
}

/// Prepares every workload of the standard suite at the given scale.
/// This is the expensive step (training profile per kernel); binaries
/// call it once and reuse. Fans out across [`default_threads`] workers.
pub fn prepare_all(scale: Scale) -> Vec<Prepared> {
    prepare_all_threads(scale, default_threads())
}

/// Prepares the full suite on an explicit number of worker threads.
pub fn prepare_all_threads(scale: Scale, threads: usize) -> Vec<Prepared> {
    let ws = suite();
    parallel_map(&ws, threads, |w| Prepared::new(w, scale))
}

/// Prepares a named subset across [`default_threads`] workers.
pub fn prepare_some(names: &[&str], scale: Scale) -> Vec<Prepared> {
    prepare_some_threads(names, scale, default_threads())
}

/// Prepares a named subset on an explicit number of worker threads.
pub fn prepare_some_threads(names: &[&str], scale: Scale, threads: usize) -> Vec<Prepared> {
    let ws: Vec<Workload> = suite()
        .into_iter()
        .filter(|w| names.contains(&w.name))
        .collect();
    parallel_map(&ws, threads, |w| Prepared::new(w, scale))
}

/// Worker-thread default: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs an SMT throughput measurement: `copies` identical threads on the
/// given core; returns aggregate committed instructions per cycle.
pub fn measure_smt(built: &BuiltWorkload, core_cfg: CoreConfig, copies: usize, win: u64) -> f64 {
    let program = Rc::new(built.program.clone());
    let shared = Rc::new(RefCell::new(SharedLlc::new(&MemConfig::paper())));
    let mut mem = CoreMem::new(&MemConfig::paper(), shared);
    if let Some(pf) = r3dla_prefetch::by_name("bop") {
        mem.set_l2_prefetcher(pf);
    }
    let mut core = Core::new(core_cfg, Rc::clone(&program), mem);
    for _ in 0..copies {
        let vm = Rc::new(RefCell::new(VecMem::new()));
        vm.borrow_mut().load_image(program.image());
        let dir = Box::new(PredictorDirection::new(
            Box::new(r3dla_bpred::Tage::paper()),
        ));
        core.add_thread(
            program.entry(),
            ArchState::new(program.entry()).regs(),
            dir,
            Rc::new(RefCell::new(BaseMem(vm))),
        );
    }
    // Warm then measure.
    let warm_target = WARMUP * copies as u64;
    while (0..copies).map(|t| core.committed(t)).sum::<u64>() < warm_target
        && !core.halted()
        && core.cycle() < warm_target * 60
    {
        core.step();
    }
    let c0: u64 = (0..copies).map(|t| core.committed(t)).sum();
    let y0 = core.cycle();
    let target = c0 + win * copies as u64;
    while (0..copies).map(|t| core.committed(t)).sum::<u64>() < target
        && !core.halted()
        && core.cycle() - y0 < win * 120
    {
        core.step();
    }
    let insts: u64 = (0..copies).map(|t| core.committed(t)).sum::<u64>() - c0;
    let cycles = core.cycle() - y0;
    if cycles == 0 {
        0.0
    } else {
        insts as f64 / cycles as f64
    }
}

/// Formats a markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Geometric-mean summary per suite plus overall, from
/// `(suite, value)` pairs — the paper's standard aggregation.
pub fn suite_summary(pairs: &[(Suite, f64)]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for s in [Suite::SpecInt, Suite::Crono, Suite::Star, Suite::Npb] {
        let vals: Vec<f64> = pairs
            .iter()
            .filter(|(ps, _)| *ps == s)
            .map(|(_, v)| *v)
            .collect();
        if !vals.is_empty() {
            out.push((s.to_string(), r3dla_stats::geomean(&vals)));
        }
    }
    let all: Vec<f64> = pairs.iter().map(|(_, v)| *v).collect();
    out.push(("all".to_string(), r3dla_stats::geomean(&all)));
    out
}

/// Parses `--window N` / `--warm N` style overrides from argv. A flag
/// that is present but unparsable aborts instead of silently running
/// with the default.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    match arg_str(name) {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("invalid value '{s}' for {name} (expected an integer)");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// Parses a `--tolerance 0.25` style float override from argv; aborts on
/// an unparsable value like [`arg_u64`].
pub fn arg_f64(name: &str, default: f64) -> f64 {
    match arg_str(name) {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("invalid value '{s}' for {name} (expected a number)");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// Parses a `--threads N` style usize override from argv; aborts on an
/// unparsable value like [`arg_u64`].
pub fn arg_usize(name: &str, default: usize) -> usize {
    match arg_str(name) {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("invalid value '{s}' for {name} (expected an integer)");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// Returns the string argument following `name` in argv, if present.
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1) {
                return Some(v.clone());
            }
        }
    }
    None
}

/// Whether a bare `--flag` is present in argv.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The `--threads` override, defaulting to the machine's parallelism —
/// the knob every figure binary exposes.
pub fn arg_threads() -> usize {
    arg_usize("--threads", default_threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_and_measure_one() {
        let p = prepare_some(&["md5_like"], Scale::Tiny);
        assert_eq!(p.len(), 1);
        let ipc = p[0].measure_single(CoreConfig::paper(), None, Some("bop"), 2_000, 8_000);
        assert!(ipc > 0.0);
        let rep = p[0].measure_dla(DlaConfig::dla(), 2_000, 8_000);
        assert!(rep.mt_ipc > 0.0);
    }

    #[test]
    fn suite_summary_aggregates() {
        let pairs = vec![
            (Suite::SpecInt, 2.0),
            (Suite::SpecInt, 8.0),
            (Suite::Crono, 1.0),
        ];
        let s = suite_summary(&pairs);
        let spec = s.iter().find(|(n, _)| n == "spec").unwrap().1;
        assert!((spec - 4.0).abs() < 1e-9);
        assert_eq!(s.last().unwrap().0, "all");
    }
}
