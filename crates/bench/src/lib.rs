//! Shared experiment harness: prepared workloads (profile + skeletons
//! computed once), measurement helpers with common warmup/window sizing,
//! and table formatting for the per-figure binaries.

use std::cell::RefCell;
use std::rc::Rc;

use r3dla_core::{
    generate_skeletons, profile, Dataflow, DlaConfig, DlaSystem, ProfileData, SingleCoreSim,
    SkeletonOptions, SkeletonSet, WindowReport,
};
use r3dla_cpu::{BaseMem, Core, CoreConfig, PredictorDirection};
use r3dla_isa::{ArchState, Program, VecMem};
use r3dla_mem::{CoreMem, MemConfig, SharedLlc};
use r3dla_workloads::{suite, BuiltWorkload, Scale, Suite, Workload};

/// Default warmup instructions for measurement windows.
pub const WARMUP: u64 = 40_000;
/// Default measurement window in committed MT instructions.
pub const WINDOW: u64 = 150_000;

/// A workload with its offline analysis performed once, so each system
/// configuration can be assembled without re-profiling.
pub struct Prepared {
    /// Kernel name.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// The program.
    pub program: Rc<Program>,
    /// Training profile.
    pub profile: ProfileData,
    /// Skeletons with T1 offload applied.
    pub skeletons_t1: SkeletonSet,
    /// Skeletons without T1 offload (baseline DLA).
    pub skeletons_plain: SkeletonSet,
    built: BuiltWorkload,
}

impl Prepared {
    /// Profiles and generates skeletons for one workload.
    pub fn new(w: &Workload, scale: Scale) -> Self {
        let built = w.build(scale);
        let program = Rc::new(built.program.clone());
        let df = Dataflow::analyze(&program);
        let prof = profile(&program, DlaConfig::dla().profile_insts);
        let opt = SkeletonOptions::default();
        let skeletons_t1 = generate_skeletons(&program, &df, &prof, &opt, true);
        let skeletons_plain = generate_skeletons(&program, &df, &prof, &opt, false);
        Self {
            name: w.name.to_string(),
            suite: w.suite,
            program,
            profile: prof,
            skeletons_t1,
            skeletons_plain,
            built,
        }
    }

    /// The built workload (for single-core and baseline systems).
    pub fn built(&self) -> &BuiltWorkload {
        &self.built
    }

    /// Assembles a DLA system with the pre-computed analysis.
    pub fn dla_system(&self, cfg: DlaConfig) -> DlaSystem {
        let set = if cfg.t1 {
            &self.skeletons_t1
        } else {
            &self.skeletons_plain
        };
        DlaSystem::assemble(
            Rc::clone(&self.program),
            cfg,
            set.clone(),
            self.profile.clone(),
        )
    }

    /// Measures a DLA configuration; returns the window report.
    pub fn measure_dla(&self, cfg: DlaConfig, warm: u64, win: u64) -> WindowReport {
        let mut sys = self.dla_system(cfg);
        sys.measure(warm, win)
    }

    /// Measures a single-core configuration; returns IPC.
    pub fn measure_single(
        &self,
        core: CoreConfig,
        l1pf: Option<&str>,
        l2pf: Option<&str>,
        warm: u64,
        win: u64,
    ) -> f64 {
        let mut sim = SingleCoreSim::build(&self.built, core, MemConfig::paper(), l1pf, l2pf);
        sim.measure(warm, win).0
    }
}

/// Prepares every workload of the standard suite at the given scale.
/// This is the expensive step (training profile per kernel); binaries
/// call it once and reuse.
pub fn prepare_all(scale: Scale) -> Vec<Prepared> {
    suite().iter().map(|w| Prepared::new(w, scale)).collect()
}

/// Prepares a named subset.
pub fn prepare_some(names: &[&str], scale: Scale) -> Vec<Prepared> {
    suite()
        .iter()
        .filter(|w| names.contains(&w.name))
        .map(|w| Prepared::new(w, scale))
        .collect()
}

/// Runs an SMT throughput measurement: `copies` identical threads on the
/// given core; returns aggregate committed instructions per cycle.
pub fn measure_smt(built: &BuiltWorkload, core_cfg: CoreConfig, copies: usize, win: u64) -> f64 {
    let program = Rc::new(built.program.clone());
    let shared = Rc::new(RefCell::new(SharedLlc::new(&MemConfig::paper())));
    let mut mem = CoreMem::new(&MemConfig::paper(), shared);
    if let Some(pf) = r3dla_prefetch::by_name("bop") {
        mem.set_l2_prefetcher(pf);
    }
    let mut core = Core::new(core_cfg, Rc::clone(&program), mem);
    for _ in 0..copies {
        let vm = Rc::new(RefCell::new(VecMem::new()));
        vm.borrow_mut().load_image(program.image());
        let dir = Box::new(PredictorDirection::new(
            Box::new(r3dla_bpred::Tage::paper()),
        ));
        core.add_thread(
            program.entry(),
            ArchState::new(program.entry()).regs(),
            dir,
            Rc::new(RefCell::new(BaseMem(vm))),
        );
    }
    // Warm then measure.
    let warm_target = WARMUP * copies as u64;
    while (0..copies).map(|t| core.committed(t)).sum::<u64>() < warm_target
        && !core.halted()
        && core.cycle() < warm_target * 60
    {
        core.step();
    }
    let c0: u64 = (0..copies).map(|t| core.committed(t)).sum();
    let y0 = core.cycle();
    let target = c0 + win * copies as u64;
    while (0..copies).map(|t| core.committed(t)).sum::<u64>() < target
        && !core.halted()
        && core.cycle() - y0 < win * 120
    {
        core.step();
    }
    let insts: u64 = (0..copies).map(|t| core.committed(t)).sum::<u64>() - c0;
    let cycles = core.cycle() - y0;
    if cycles == 0 {
        0.0
    } else {
        insts as f64 / cycles as f64
    }
}

/// Formats a markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Geometric-mean summary per suite plus overall, from
/// `(suite, value)` pairs — the paper's standard aggregation.
pub fn suite_summary(pairs: &[(Suite, f64)]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for s in [Suite::SpecInt, Suite::Crono, Suite::Star, Suite::Npb] {
        let vals: Vec<f64> = pairs
            .iter()
            .filter(|(ps, _)| *ps == s)
            .map(|(_, v)| *v)
            .collect();
        if !vals.is_empty() {
            out.push((s.to_string(), r3dla_stats::geomean(&vals)));
        }
    }
    let all: Vec<f64> = pairs.iter().map(|(_, v)| *v).collect();
    out.push(("all".to_string(), r3dla_stats::geomean(&all)));
    out
}

/// Parses `--window N` / `--warm N` style overrides from argv.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_and_measure_one() {
        let p = prepare_some(&["md5_like"], Scale::Tiny);
        assert_eq!(p.len(), 1);
        let ipc = p[0].measure_single(CoreConfig::paper(), None, Some("bop"), 2_000, 8_000);
        assert!(ipc > 0.0);
        let rep = p[0].measure_dla(DlaConfig::dla(), 2_000, 8_000);
        assert!(rep.mt_ipc > 0.0);
    }

    #[test]
    fn suite_summary_aggregates() {
        let pairs = vec![
            (Suite::SpecInt, 2.0),
            (Suite::SpecInt, 8.0),
            (Suite::Crono, 1.0),
        ];
        let s = suite_summary(&pairs);
        let spec = s.iter().find(|(n, _)| n == "spec").unwrap().1;
        assert!((spec - 4.0).abs() < 1e-9);
        assert_eq!(s.last().unwrap().0, "all");
    }
}
