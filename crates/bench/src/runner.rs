//! The parallel experiment runner: fans a (workload × configuration)
//! grid out across scoped worker threads.
//!
//! Every cell constructs its own thread-confined
//! [`DlaSystem`](r3dla_core::DlaSystem) (or
//! [`SingleCoreSim`](r3dla_core::SingleCoreSim)) from a shared,
//! immutable [`Prepared`] workload, so
//! the simulator's `Rc`/`RefCell` internals never cross a thread
//! boundary — only `Send + Sync` specs go in and plain-data reports come
//! out. Results keep deterministic (grid) order no matter which worker
//! ran them, so `--threads 1` and `--threads N` produce byte-identical
//! JSON.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use r3dla_core::{DlaConfig, WindowReport};
use r3dla_cpu::CoreConfig;
use r3dla_workloads::{suite, Scale, Suite, Workload};

use crate::supervise::{push_status_fields, CellOutcome, CellStatus, Supervisor};
use crate::{Prepared, WARMUP, WINDOW};

/// Maps `f` over `items` on `threads` scoped workers pulling cell indices
/// from a shared queue. Results are returned in input order regardless of
/// which worker computed them; with `threads <= 1` the map runs inline on
/// the calling thread.
///
/// A panicking item does not bring the whole scope down with a
/// misleading secondary panic: the first real payload (and the index of
/// the item that raised it) is captured, the work queue is poisoned so
/// idle workers stop picking up cells, and the payload is re-raised on
/// the calling thread once in-flight cells finish. Campaigns that need
/// to *survive* the panic instead run through
/// [`Supervisor::map`](crate::supervise::Supervisor::map).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    type Panic = (usize, Box<dyn std::any::Any + Send>);
    let panicked: Mutex<Option<Panic>> = Mutex::new(None);
    let wseq = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                if r3dla_obs::trace::enabled() {
                    let w = wseq.fetch_add(1, Ordering::Relaxed);
                    r3dla_obs::trace::name_thread(format!("map-worker-{w}"));
                }
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&items[i]))) {
                        Ok(r) => *slots[i].lock().unwrap() = Some(r),
                        Err(payload) => {
                            let mut first = panicked.lock().unwrap();
                            if first.is_none() {
                                *first = Some((i, payload));
                            }
                            next.store(items.len(), Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }
    });
    if let Some((i, payload)) = panicked.into_inner().unwrap() {
        r3dla_obs::diag!("parallel_map: worker panicked on item {i}");
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// What one grid cell simulates.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // a handful of specs per grid
pub enum CellKind {
    /// A two-core DLA/R3 system.
    Dla(DlaConfig),
    /// A conventional single core with optional L1/L2 prefetchers.
    Single {
        /// Core parameters.
        core: CoreConfig,
        /// L1 prefetcher name (per `r3dla_prefetch::by_name`).
        l1pf: Option<&'static str>,
        /// L2 prefetcher name.
        l2pf: Option<&'static str>,
    },
}

/// A named configuration column of the grid.
#[derive(Debug, Clone)]
pub struct ConfigSpec {
    /// Stable label used in output and `--configs` selection.
    pub label: String,
    /// What to simulate.
    pub kind: CellKind,
}

impl ConfigSpec {
    /// A DLA-system column.
    pub fn dla(label: &str, cfg: DlaConfig) -> Self {
        Self {
            label: label.to_string(),
            kind: CellKind::Dla(cfg),
        }
    }

    /// A single-core column.
    pub fn single(label: &str, core: CoreConfig, l1pf: Option<&'static str>) -> Self {
        Self {
            label: label.to_string(),
            kind: CellKind::Single {
                core,
                l1pf,
                l2pf: Some("bop"),
            },
        }
    }

    /// Names accepted by [`ConfigSpec::by_name`] / the runner's
    /// `--configs` flag.
    pub fn known_names() -> &'static [&'static str] {
        &[
            "bl",
            "bl_nopf",
            "dla",
            "dla_nopf",
            "dla_t1",
            "dla_vr",
            "dla_fb",
            "dla_rc",
            "dla_stride",
            "r3",
            "r3_nopf",
        ]
    }

    /// Resolves a standard configuration by name.
    pub fn by_name(name: &str) -> Option<Self> {
        let spec = match name {
            "bl" => Self::single("bl", CoreConfig::paper(), None),
            "bl_nopf" => Self {
                label: "bl_nopf".to_string(),
                kind: CellKind::Single {
                    core: CoreConfig::paper(),
                    l1pf: None,
                    l2pf: None,
                },
            },
            "dla" => Self::dla("dla", DlaConfig::dla()),
            "dla_nopf" => Self::dla("dla_nopf", DlaConfig::dla().without_prefetcher()),
            "dla_t1" => {
                let mut c = DlaConfig::dla();
                c.t1 = true;
                Self::dla("dla_t1", c)
            }
            "dla_vr" => {
                let mut c = DlaConfig::dla();
                c.value_reuse = true;
                Self::dla("dla_vr", c)
            }
            "dla_fb" => {
                let mut c = DlaConfig::dla();
                c.mt_core.fetch_buffer = 32;
                Self::dla("dla_fb", c)
            }
            "dla_rc" => {
                let mut c = DlaConfig::dla();
                c.recycle = r3dla_core::RecycleMode::Dynamic;
                Self::dla("dla_rc", c)
            }
            "dla_stride" => {
                let mut c = DlaConfig::dla();
                c.mt_l1_prefetcher = Some("stride");
                Self::dla("dla_stride", c)
            }
            "r3" => Self::dla("r3", DlaConfig::r3()),
            "r3_nopf" => Self::dla("r3_nopf", DlaConfig::r3().without_prefetcher()),
            _ => return None,
        };
        Some(spec)
    }
}

/// A (workload × configuration) grid to run.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Input scale.
    pub scale: Scale,
    /// Grid rows.
    pub workloads: Vec<Workload>,
    /// Grid columns.
    pub configs: Vec<ConfigSpec>,
    /// Warmup committed instructions per cell.
    pub warm: u64,
    /// Measured committed instructions per cell.
    pub win: u64,
    /// Event-driven cycle skipping (on by default; the reports are
    /// byte-identical either way — the off position exists for
    /// equivalence checks and the runner's `--no-skip` flag).
    pub fast_forward: bool,
}

impl GridSpec {
    /// The standard grid: the whole suite under `bl` / `dla` / `r3` with
    /// the default window sizing.
    pub fn standard(scale: Scale) -> Self {
        Self {
            scale,
            workloads: suite(),
            configs: ["bl", "dla", "r3"]
                .iter()
                .map(|n| ConfigSpec::by_name(n).unwrap())
                .collect(),
            warm: WARMUP,
            win: WINDOW,
            fast_forward: true,
        }
    }
}

/// One finished grid cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Workload name.
    pub workload: String,
    /// Workload suite.
    pub suite: Suite,
    /// Configuration label.
    pub config: String,
    /// The measured window.
    pub report: WindowReport,
    /// Wall-clock the cell took (excluded from deterministic JSON).
    pub wall_ms: u64,
    /// Supervised outcome ([`CellStatus::Ok`] for an unsupervised run).
    pub status: CellStatus,
    /// Attempts the supervisor spent on the cell (1 when unsupervised).
    pub attempts: u32,
    /// Failure detail for non-`Ok` cells.
    pub error: Option<String>,
}

impl CellResult {
    /// Whether this row needs no supervision fields in its JSON: a
    /// first-try success. Clean rows serialize exactly as they did
    /// before supervision existed, keeping faults-off bytes unchanged.
    pub fn is_clean(&self) -> bool {
        self.status == CellStatus::Ok && self.attempts <= 1
    }

    /// The deterministic JSON fields of this cell's row — everything
    /// except the timing-only additions. Shared by
    /// [`GridResult::to_json`] and the skip-equivalence suite so the
    /// compared format cannot drift from the real schema.
    pub fn stat_fields(&self) -> String {
        let r = &self.report;
        let mut out = format!(
            "\"workload\": \"{}\", \"suite\": \"{}\", \"config\": \"{}\", \
             \"mt_ipc\": {:.6}, \"cycles\": {}, \"mt_committed\": {}, \
             \"lt_committed\": {}, \"dram_traffic\": {}, \"mt_l1d_misses\": {}, \
             \"mt_l1d_accesses\": {}, \"reboots\": {}",
            self.workload,
            self.suite,
            self.config,
            r.mt_ipc,
            r.cycles,
            r.mt_committed,
            r.lt_committed,
            r.dram_traffic,
            r.mt_l1d_misses,
            r.mt_l1d_accesses,
            r.reboots,
        );
        if !self.is_clean() {
            push_status_fields(&mut out, self.status, self.attempts, self.error.as_deref());
        }
        out
    }

    /// Simulated throughput in MIPS: committed instructions (MT + LT,
    /// measured window only, so warmup makes this a mild underestimate)
    /// per host second of the whole cell.
    pub fn sim_mips(&self) -> f64 {
        if self.wall_ms == 0 {
            return 0.0;
        }
        (self.report.mt_committed + self.report.lt_committed) as f64
            / (self.wall_ms as f64 * 1000.0)
    }
}

/// All results of a grid run.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// Scale the grid ran at.
    pub scale: Scale,
    /// Warmup instructions per cell.
    pub warm: u64,
    /// Window instructions per cell.
    pub win: u64,
    /// Cells in deterministic grid order (workload-major).
    pub cells: Vec<CellResult>,
    /// Wall-clock of the preparation phase.
    pub prep_ms: u64,
    /// Wall-clock of the measurement phase.
    pub measure_ms: u64,
}

/// The canonical lowercase name of a scale, as emitted in JSON headers.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Train => "train",
        Scale::Ref => "ref",
    }
}

/// Parses a scale name accepted by the runner CLI.
pub fn scale_by_name(name: &str) -> Option<Scale> {
    match name {
        "tiny" => Some(Scale::Tiny),
        "train" => Some(Scale::Train),
        "ref" => Some(Scale::Ref),
        _ => None,
    }
}

/// Runs one cell of a grid against a prepared workload. `fast_forward`
/// selects the event-driven fast path (results are identical either way).
pub fn run_cell(
    p: &Prepared,
    spec: &ConfigSpec,
    warm: u64,
    win: u64,
    fast_forward: bool,
) -> WindowReport {
    run_cell_mode(
        p,
        spec,
        warm,
        win,
        fast_forward,
        r3dla_core::event_kernel_default(),
    )
}

/// [`run_cell`] with the run loop also pinned: `event_kernel` selects
/// the event-driven kernel loop or the legacy lockstep loop
/// (byte-identical results — the equivalence suite asserts it per cell).
pub fn run_cell_mode(
    p: &Prepared,
    spec: &ConfigSpec,
    warm: u64,
    win: u64,
    fast_forward: bool,
    event_kernel: bool,
) -> WindowReport {
    match &spec.kind {
        CellKind::Dla(cfg) => {
            p.measure_dla_mode(cfg.clone(), warm, win, fast_forward, event_kernel)
        }
        CellKind::Single { core, l1pf, l2pf } => p.measure_single_report_mode(
            core.clone(),
            *l1pf,
            *l2pf,
            warm,
            win,
            fast_forward,
            event_kernel,
        ),
    }
}

/// Prepares the grid's workloads and measures every cell under a
/// supervisor configured from the environment (`R3DLA_FAULT_PLAN`,
/// `R3DLA_CELL_DEADLINE_MS`, `R3DLA_CELL_CYCLE_BUDGET`), both phases on
/// the same `threads`-wide worker pool.
pub fn run_grid(spec: &GridSpec, threads: usize) -> GridResult {
    run_grid_supervised(spec, threads, &Supervisor::from_env())
}

/// The stable identity of a grid cell — the key fault injection and
/// quarantine decisions hash, so it must name the cell's inputs and
/// nothing about scheduling.
pub fn grid_cell_key(spec: &GridSpec, workload: &str, config: &str) -> String {
    format!(
        "grid|{}|{}|{}|{}|{}",
        scale_name(spec.scale),
        spec.warm,
        spec.win,
        workload,
        config
    )
}

/// One `(workload, config)` cell of a grid, addressed by indices into
/// the owning [`GridPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCell {
    /// Index into the spec's workload list.
    pub workload: usize,
    /// Index into the spec's config list.
    pub config: usize,
}

/// The pre-enumerated cell set of one grid: the spec plus its prepared
/// workloads, exposing the primitive the batch runner and the campaign
/// service share — enumerate cells, key them, evaluate them, and
/// assemble the outcomes into a [`GridResult`]. Prepared workloads are
/// `Arc`-shared so a long-running service pools them across campaigns.
pub struct GridPlan {
    spec: GridSpec,
    prepared: Vec<Arc<Prepared>>,
}

impl GridPlan {
    /// Prepares every workload of the spec on `threads` workers.
    pub fn build(spec: &GridSpec, threads: usize) -> Self {
        let prepared = parallel_map(&spec.workloads, threads, |w| Prepared::new(w, spec.scale))
            .into_iter()
            .map(Arc::new)
            .collect();
        Self::from_prepared(spec, prepared)
    }

    /// Builds the plan from already-prepared workloads, one per spec
    /// workload in order.
    ///
    /// # Panics
    ///
    /// When `prepared` does not line up 1:1 with `spec.workloads`.
    pub fn from_prepared(spec: &GridSpec, prepared: Vec<Arc<Prepared>>) -> Self {
        assert_eq!(
            prepared.len(),
            spec.workloads.len(),
            "one prepared workload per spec workload"
        );
        GridPlan {
            spec: spec.clone(),
            prepared,
        }
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Every cell in canonical (workload-major) order — the order
    /// [`GridPlan::assemble`] expects its outcomes in.
    pub fn cells(&self) -> Vec<GridCell> {
        (0..self.prepared.len())
            .flat_map(|wi| {
                (0..self.spec.configs.len()).map(move |ci| GridCell {
                    workload: wi,
                    config: ci,
                })
            })
            .collect()
    }

    /// Total cell count — a pure function of the spec (admission
    /// budgets rely on this).
    pub fn n_cells(&self) -> usize {
        self.prepared.len() * self.spec.configs.len()
    }

    /// The cell's stable supervision key (see [`grid_cell_key`]).
    pub fn cell_key(&self, cell: GridCell) -> String {
        grid_cell_key(
            &self.spec,
            &self.prepared[cell.workload].name,
            &self.spec.configs[cell.config].label,
        )
    }

    /// Measures one cell, returning the report and the cell's host
    /// wall-clock in milliseconds (the latter never reaches the
    /// deterministic JSON).
    pub fn evaluate(&self, cell: GridCell) -> (WindowReport, u64) {
        let c0 = Instant::now();
        let report = run_cell(
            &self.prepared[cell.workload],
            &self.spec.configs[cell.config],
            self.spec.warm,
            self.spec.win,
            self.spec.fast_forward,
        );
        (report, c0.elapsed().as_millis() as u64)
    }

    /// Assembles per-cell outcomes (in [`GridPlan::cells`] order) into
    /// the final result, exactly as the batch runner does, so the
    /// deterministic JSON is byte-identical. Wall-clock fields are zero
    /// (they only appear in `--timing` output).
    ///
    /// # Panics
    ///
    /// When `outcomes` does not line up 1:1 with [`GridPlan::cells`].
    pub fn assemble(&self, outcomes: &[CellOutcome<(WindowReport, u64)>]) -> GridResult {
        assert_eq!(
            outcomes.len(),
            self.n_cells(),
            "one outcome per planned cell"
        );
        let results = self
            .cells()
            .iter()
            .zip(outcomes)
            .map(|(&cell, o)| {
                let (report, wall_ms) = o.value.clone().unwrap_or_default();
                CellResult {
                    workload: self.prepared[cell.workload].name.clone(),
                    suite: self.prepared[cell.workload].suite,
                    config: self.spec.configs[cell.config].label.clone(),
                    report,
                    wall_ms,
                    status: o.status,
                    attempts: o.attempts,
                    error: o.error.clone(),
                }
            })
            .collect();
        GridResult {
            scale: self.spec.scale,
            warm: self.spec.warm,
            win: self.spec.win,
            cells: results,
            prep_ms: 0,
            measure_ms: 0,
        }
    }
}

/// [`run_grid`] under an explicit [`Supervisor`]: each cell runs inside
/// `catch_unwind` with retry/quarantine policy; a failed cell degrades
/// to a status row (default-zero report) instead of killing the grid.
pub fn run_grid_supervised(spec: &GridSpec, threads: usize, sup: &Supervisor) -> GridResult {
    let t0 = Instant::now();
    let plan = GridPlan::build(spec, threads);
    let prep_ms = t0.elapsed().as_millis() as u64;

    let cells = plan.cells();
    let t1 = Instant::now();
    let outcomes = sup.map(
        &cells,
        threads,
        |&cell| plan.cell_key(cell),
        |&cell| Ok(plan.evaluate(cell)),
    );
    let mut result = plan.assemble(&outcomes);
    result.prep_ms = prep_ms;
    result.measure_ms = t1.elapsed().as_millis() as u64;
    result
}

impl GridResult {
    /// Serializes the results as JSON (`BENCH_*.json` schema). The output
    /// is a pure function of the grid spec — wall-clock and throughput
    /// fields (`host_ms`, `sim_mips`, per-cell `wall_ms`) are emitted
    /// only when `timing` is set, so the default serialization is
    /// byte-identical across `--threads` settings and across the
    /// cycle-skipping on/off paths.
    pub fn to_json(&self, timing: bool) -> String {
        let mut out = String::with_capacity(256 + self.cells.len() * 220);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"r3dla-bench-grid-v1\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", scale_name(self.scale)));
        out.push_str(&format!("  \"warm\": {},\n", self.warm));
        out.push_str(&format!("  \"window\": {},\n", self.win));
        if timing {
            out.push_str(&format!("  \"prep_ms\": {},\n", self.prep_ms));
            out.push_str(&format!("  \"measure_ms\": {},\n", self.measure_ms));
            out.push_str(&format!("  \"host_ms\": {},\n", self.host_ms()));
            out.push_str(&format!("  \"sim_mips\": {:.3},\n", self.sim_mips()));
        }
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!("    {{{}", c.stat_fields()));
            if timing {
                out.push_str(&format!(
                    ", \"wall_ms\": {}, \"sim_mips\": {:.3}",
                    c.wall_ms,
                    c.sim_mips()
                ));
            }
            out.push('}');
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Total host wall-clock: preparation plus measurement.
    pub fn host_ms(&self) -> u64 {
        self.prep_ms + self.measure_ms
    }

    /// Aggregate simulated throughput in MIPS over the measurement
    /// phase: all cells' committed instructions (MT + LT, measured
    /// windows only) per host second of grid measurement. With a worker
    /// pool this exceeds any single cell's rate — it is the grid's
    /// effective simulation speed.
    pub fn sim_mips(&self) -> f64 {
        if self.measure_ms == 0 {
            return 0.0;
        }
        let insts: u64 = self
            .cells
            .iter()
            .map(|c| c.report.mt_committed + c.report.lt_committed)
            .sum();
        insts as f64 / (self.measure_ms as f64 * 1000.0)
    }

    /// Cells that ran to completion yet committed zero MT instructions —
    /// a sick simulation the CI gate fails on. Failed cells are excluded
    /// (their reports are zeroed by construction; see
    /// [`GridResult::failed_cells`]).
    pub fn empty_cells(&self) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|c| c.status == CellStatus::Ok && c.report.mt_committed == 0)
            .collect()
    }

    /// Cells the supervisor gave up on (status rows in the JSON).
    pub fn failed_cells(&self) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|c| c.status != CellStatus::Ok)
            .collect()
    }
}

/// Per-workload row output of one [`ExperimentSpec`] metric extraction.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Workload name.
    pub workload: String,
    /// Workload suite.
    pub suite: Suite,
    /// One value per spec column.
    pub values: Vec<f64>,
}

/// A figure/table experiment: named metric columns extracted per
/// workload. The shared descriptor the per-figure binaries build instead
/// of hand-rolled prepare/measure/print loops; rows fan out across the
/// runner's worker pool.
pub struct ExperimentSpec {
    /// Experiment name (heading).
    pub name: String,
    /// Column labels (match `run`'s output ordering).
    pub columns: Vec<String>,
    /// Extracts all column values for one prepared workload.
    #[allow(clippy::type_complexity)]
    pub run: Box<dyn Fn(&Prepared) -> Vec<f64> + Send + Sync>,
}

impl ExperimentSpec {
    /// Builds a spec from a name, column labels and a row extractor.
    pub fn new<F>(name: &str, columns: &[&str], run: F) -> Self
    where
        F: Fn(&Prepared) -> Vec<f64> + Send + Sync + 'static,
    {
        Self {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            run: Box::new(run),
        }
    }

    /// Runs the extractor over every prepared workload on `threads`
    /// workers; rows come back in workload order.
    pub fn execute(&self, prepared: &[Prepared], threads: usize) -> ExperimentResult {
        let rows = parallel_map(prepared, threads, |p| {
            let values = (self.run)(p);
            debug_assert_eq!(values.len(), self.columns.len());
            ExperimentRow {
                workload: p.name.clone(),
                suite: p.suite,
                values,
            }
        });
        ExperimentResult {
            name: self.name.clone(),
            columns: self.columns.clone(),
            rows,
        }
    }
}

/// Executed experiment: per-workload rows plus aggregation helpers.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment name.
    pub name: String,
    /// Column labels.
    pub columns: Vec<String>,
    /// Per-workload rows in workload order.
    pub rows: Vec<ExperimentRow>,
}

impl ExperimentResult {
    /// The `(suite, value)` pairs of column `k` (for
    /// [`crate::suite_summary`]).
    pub fn column(&self, k: usize) -> Vec<(Suite, f64)> {
        self.rows.iter().map(|r| (r.suite, r.values[k])).collect()
    }

    /// Overall geometric mean of column `k`.
    pub fn geomean(&self, k: usize) -> f64 {
        let vals: Vec<f64> = self.rows.iter().map(|r| r.values[k]).collect();
        r3dla_stats::geomean(&vals)
    }

    /// Prints the per-workload markdown table.
    pub fn print_markdown(&self) {
        println!("| bench | {} |", self.columns.join(" | "));
        println!("|---{}|", "|---".repeat(self.columns.len()));
        for r in &self.rows {
            let cells: Vec<String> = r.values.iter().map(|v| format!("{v:.3}")).collect();
            println!("| {} | {} |", r.workload, cells.join(" | "));
        }
    }

    /// Prints the per-suite + overall geometric-mean summary table.
    pub fn print_geomeans(&self) {
        println!("| group | {} |", self.columns.join(" | "));
        println!("|---{}|", "|---".repeat(self.columns.len()));
        let summaries: Vec<Vec<(String, f64)>> = (0..self.columns.len())
            .map(|k| crate::suite_summary(&self.column(k)))
            .collect();
        for g in 0..summaries[0].len() {
            let cells: Vec<String> = summaries.iter().map(|s| format!("{:.3}", s[g].1)).collect();
            println!("| {} | {} |", summaries[0][g].0, cells.join(" | "));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_workloads::by_name;

    #[test]
    fn parallel_map_keeps_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let serial = parallel_map(&items, 1, |&x| x * 3 + 1);
        let parallel = parallel_map(&items, 8, |&x| x * 3 + 1);
        assert_eq!(serial, parallel);
        assert_eq!(serial[41], 124);
    }

    #[test]
    fn parallel_map_uses_worker_pool() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        parallel_map(&items, 4, |&x| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
            x
        });
        assert!(
            seen.lock().unwrap().len() > 1,
            "work must fan out across more than one worker thread"
        );
    }

    #[test]
    fn parallel_map_handles_empty_and_oversubscription() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        let two = vec![7u32, 9];
        assert_eq!(parallel_map(&two, 64, |&x| x + 1), vec![8, 10]);
    }

    #[test]
    fn parallel_map_propagates_the_real_panic_payload() {
        let items: Vec<u32> = (0..32).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(&items, 4, |&x| {
                if x == 13 {
                    panic!("cell exploded: {x}");
                }
                x
            })
        }))
        .expect_err("the worker panic must propagate to the caller");
        let msg = crate::supervise::panic_message(caught.as_ref());
        assert!(
            msg.contains("cell exploded: 13"),
            "expected the original payload, got `{msg}`"
        );
    }

    fn tiny_grid() -> GridSpec {
        GridSpec {
            scale: Scale::Tiny,
            workloads: ["libq_like", "md5_like"]
                .iter()
                .map(|n| by_name(n).unwrap())
                .collect(),
            configs: ["bl", "dla"]
                .iter()
                .map(|n| ConfigSpec::by_name(n).unwrap())
                .collect(),
            warm: 1_000,
            win: 4_000,
            fast_forward: true,
        }
    }

    #[test]
    fn parallel_and_serial_grids_are_byte_identical() {
        let spec = tiny_grid();
        let serial = run_grid(&spec, 1);
        let parallel = run_grid(&spec, 4);
        assert_eq!(serial.cells.len(), 4);
        assert_eq!(serial.to_json(false), parallel.to_json(false));
        for c in &serial.cells {
            assert!(c.report.mt_committed > 0, "empty cell {c:?}");
        }
        assert!(serial.empty_cells().is_empty());
    }

    #[test]
    fn grid_json_shape() {
        let spec = tiny_grid();
        let res = run_grid(&spec, 2);
        let json = res.to_json(false);
        assert!(json.contains("\"schema\": \"r3dla-bench-grid-v1\""));
        assert!(json.contains("\"scale\": \"tiny\""));
        assert!(json.contains("\"workload\": \"libq_like\""));
        assert!(json.contains("\"config\": \"dla\""));
        assert!(!json.contains("wall_ms"), "default JSON is deterministic");
        assert!(!json.contains("sim_mips"), "throughput is timing-only");
        let timed = res.to_json(true);
        assert!(timed.contains("wall_ms"));
        assert!(timed.contains("\"sim_mips\""));
        assert!(timed.contains("\"host_ms\""));
    }

    #[test]
    fn grid_skip_on_and_off_are_byte_identical() {
        let mut spec = tiny_grid();
        let fast = run_grid(&spec, 2);
        spec.fast_forward = false;
        let slow = run_grid(&spec, 2);
        assert_eq!(
            fast.to_json(false),
            slow.to_json(false),
            "cycle skipping must not change any reported statistic"
        );
    }

    #[test]
    fn experiment_spec_rows_follow_workload_order() {
        let prepared = crate::prepare_some_threads(&["libq_like", "md5_like"], Scale::Tiny, 2);
        let spec = ExperimentSpec::new("t", &["len"], |p| vec![p.name.len() as f64]);
        let res = spec.execute(&prepared, 4);
        assert_eq!(res.rows.len(), 2);
        assert_eq!(res.rows[0].workload, prepared[0].name);
        assert_eq!(res.rows[1].workload, prepared[1].name);
        assert_eq!(res.rows[0].values[0], prepared[0].name.len() as f64);
        assert!(res.geomean(0) > 0.0);
    }

    #[test]
    fn chaos_grid_is_byte_identical_across_threads_and_runs() {
        use crate::supervise::{FaultPlan, SuperviseConfig};
        let spec = tiny_grid();
        let run = |threads: usize| {
            let sup = Supervisor::new(SuperviseConfig {
                backoff_ms: 0,
                plan: FaultPlan::parse("seed=11:panic=0.4:io=0.4").unwrap(),
                ..SuperviseConfig::default()
            });
            run_grid_supervised(&spec, threads, &sup)
        };
        let a = run(1);
        let b = run(4);
        let c = run(4);
        assert_eq!(a.to_json(false), b.to_json(false));
        assert_eq!(b.to_json(false), c.to_json(false));
        // At these rates something failed or retried, and the report
        // carries it as a status row rather than dying.
        assert!(a.to_json(false).contains("\"status\""));
        assert!(a.empty_cells().is_empty(), "failed cells are not 'empty'");
    }

    #[test]
    fn unsupervised_and_clean_supervised_grids_match() {
        let spec = tiny_grid();
        let plain = run_grid(&spec, 2);
        let sup = run_grid_supervised(&spec, 2, &Supervisor::new(Default::default()));
        assert_eq!(plain.to_json(false), sup.to_json(false));
        assert!(
            !sup.to_json(false).contains("\"status\""),
            "clean rows must not grow status fields"
        );
        assert!(sup.failed_cells().is_empty());
    }

    #[test]
    fn config_registry_resolves_all_known_names() {
        for name in ConfigSpec::known_names() {
            let spec = ConfigSpec::by_name(name).expect(name);
            assert_eq!(&spec.label, name);
        }
        assert!(ConfigSpec::by_name("bogus").is_none());
    }
}
