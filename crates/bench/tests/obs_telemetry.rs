//! End-to-end guarantees of the telemetry layer (`r3dla-obs`):
//!
//! * the sidecar's deterministic counter section is byte-identical
//!   across `--threads` settings;
//! * report bytes are untouched by arming tracing and counters;
//! * a traced campaign produces a Chrome-trace JSON file with per-cell
//!   spans and named worker threads.
//!
//! Obs state (counter registry, span pool) is process-global and every
//! integration-test *file* is its own process, so all obs tests live in
//! this one file and serialize on a local gate.

use std::sync::{Mutex, MutexGuard};

use r3dla_bench::runner::{run_grid, ConfigSpec, GridSpec};
use r3dla_bench::sampled::run_grid_sampled;
use r3dla_sample::SampleSpec;
use r3dla_workloads::{by_name, Scale};

static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Disarms and clears all global obs state.
fn obs_reset() {
    r3dla_obs::trace::set_recording(false);
    r3dla_obs::counters::set_enabled(false);
    r3dla_obs::trace::reset();
    r3dla_obs::counters::reset();
}

fn tiny_grid() -> GridSpec {
    GridSpec {
        scale: Scale::Tiny,
        workloads: ["libq_like", "md5_like"]
            .iter()
            .map(|n| by_name(n).unwrap())
            .collect(),
        configs: ["bl", "dla"]
            .iter()
            .map(|n| ConfigSpec::by_name(n).unwrap())
            .collect(),
        warm: 1_000,
        win: 2_000,
        fast_forward: true,
    }
}

#[test]
fn grid_deterministic_sidecar_section_is_thread_count_invariant() {
    let _g = gate();
    obs_reset();
    r3dla_obs::counters::set_enabled(true);
    run_grid(&tiny_grid(), 1);
    let one = r3dla_obs::sidecar::render_deterministic();
    r3dla_obs::counters::reset();
    run_grid(&tiny_grid(), 2);
    let two = r3dla_obs::sidecar::render_deterministic();
    obs_reset();
    assert!(one.contains("supervisor.cells"), "section was:\n{one}");
    assert_eq!(
        one, two,
        "deterministic section must not depend on --threads"
    );
}

#[test]
fn sampled_counters_cover_block_cache_and_stay_thread_count_invariant() {
    let _g = gate();
    obs_reset();
    let sample = SampleSpec::parse("3:2000:functional").unwrap();
    r3dla_obs::counters::set_enabled(true);
    run_grid_sampled(&tiny_grid(), &sample, 1);
    let one = r3dla_obs::sidecar::render_deterministic();
    r3dla_obs::counters::reset();
    run_grid_sampled(&tiny_grid(), &sample, 2);
    let two = r3dla_obs::sidecar::render_deterministic();
    obs_reset();
    assert!(
        one.contains("block_cache.map_probes"),
        "section was:\n{one}"
    );
    assert!(one.contains("supervisor.ok"), "section was:\n{one}");
    assert_eq!(
        one, two,
        "deterministic section must not depend on --threads"
    );
}

#[test]
fn report_bytes_are_identical_with_telemetry_on_and_off() {
    let _g = gate();
    obs_reset();
    let off = run_grid(&tiny_grid(), 2).to_json(false);
    r3dla_obs::trace::set_recording(true);
    r3dla_obs::counters::set_enabled(true);
    let on = run_grid(&tiny_grid(), 2).to_json(false);
    obs_reset();
    assert_eq!(off, on, "tracing must never perturb report bytes");
}

#[test]
fn traced_grid_run_emits_cell_spans_and_worker_names() {
    let _g = gate();
    obs_reset();
    r3dla_obs::trace::set_recording(true);
    run_grid(&tiny_grid(), 2);
    let dir = std::env::temp_dir().join(format!("r3dla-obs-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    r3dla_obs::trace::write_chrome_trace(&path).unwrap();
    let body = std::fs::read_to_string(&path).unwrap();
    obs_reset();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        body.starts_with("[\n") && body.trim_end().ends_with(']'),
        "trace must be one JSON array"
    );
    assert!(
        body.contains("\"cat\":\"prepare\""),
        "missing prepare spans"
    );
    assert!(body.contains("\"cat\":\"cell\""), "missing cell spans");
    assert!(
        body.contains("\"thread_name\"") && body.contains("worker-0"),
        "missing worker thread names"
    );
}
