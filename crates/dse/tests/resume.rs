//! Resumability and cache-key integration tests: a search interrupted
//! (or repeated) against a half-filled cache must reproduce the fresh
//! run's report byte-for-byte, and every input that can change a
//! measurement must move the cache key.

use r3dla_bench::FaultPlan;
use r3dla_dse::{run_dse, to_json, CacheKey, DseSpec, ResultCache, SearchSpace, Strategy};
use r3dla_sample::SampleSpec;
use r3dla_workloads::{by_name, Scale};

fn tiny_spec() -> DseSpec {
    DseSpec {
        scale: Scale::Tiny,
        workloads: vec![by_name("libq_like").unwrap()],
        space: SearchSpace::quick(),
        strategy: Strategy::Random { seed: 7, budget: 4 },
        sample: SampleSpec::parse("2:800:none").unwrap(),
        fast_forward: true,
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("r3dla-dse-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn interrupted_search_resumes_byte_identically() {
    let spec = tiny_spec();

    // Fresh run, empty cache.
    let dir_a = temp_dir("fresh");
    let cache_a = ResultCache::at(&dir_a).unwrap();
    let fresh = to_json(&run_dse(&spec, &cache_a, 2));

    // "Interrupt": keep only half of the fresh run's cache entries (a
    // killed search leaves an arbitrary subset — atomic writes mean
    // whole entries), then resume.
    let dir_b = temp_dir("resume");
    std::fs::create_dir_all(&dir_b).unwrap();
    let mut entries: Vec<_> = std::fs::read_dir(&dir_a)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert!(entries.len() >= 4, "search must have cached several cells");
    for p in entries.iter().step_by(2) {
        std::fs::copy(p, dir_b.join(p.file_name().unwrap())).unwrap();
    }
    let cache_b = ResultCache::at(&dir_b).unwrap();
    let resumed = to_json(&run_dse(&spec, &cache_b, 2));
    assert_eq!(fresh, resumed, "resumed report must equal the fresh one");
    let stats = cache_b.stats();
    assert!(
        stats.hits > 0,
        "resume must actually use the surviving entries"
    );
    assert!(stats.misses > 0, "resume must re-simulate the lost entries");

    // A second complete run is pure cache replay, still byte-identical.
    let cache_c = ResultCache::at(&dir_a).unwrap();
    let replay = to_json(&run_dse(&spec, &cache_c, 1));
    assert_eq!(fresh, replay);
    assert_eq!(cache_c.stats().misses, 0, "replay must not re-simulate");

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Satellite of the fault-tolerance PR: a search whose cache stores keep
/// crashing (kill-mid-store orphans included) must still produce the
/// reference report, and a later faults-off open must sweep the wreckage
/// and resume byte-identically from whatever entries survived.
#[test]
fn store_crashes_never_corrupt_the_report_and_resume_heals() {
    let spec = tiny_spec();

    // Reference: clean run, cache disabled entirely.
    let reference = to_json(&run_dse(&spec, &ResultCache::disabled(), 2));

    // Chaos run: high injected rates of both store-crash (temp file
    // written, process "dies" before the rename) and transient store
    // i/o errors.
    let dir = temp_dir("chaos");
    let plan = FaultPlan::parse("seed=3:store_io=0.4:store_crash=0.4").unwrap();
    let cache = ResultCache::at_with_plan(&dir, plan).unwrap();
    let chaotic = to_json(&run_dse(&spec, &cache, 2));
    assert_eq!(
        reference, chaotic,
        "store faults must never reach the report"
    );
    let health = cache.health();
    assert!(health.store_errors > 0, "the plan must actually fire");
    let orphans = || {
        std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .count()
    };
    assert!(orphans() > 0, "injected crashes must leave temp files");
    drop(cache);

    // Drop in an extra orphan from a "foreign" pid; a faults-off
    // re-open sweeps everything.
    std::fs::write(dir.join("00000000deadbeef.tmp999"), "junk").unwrap();
    let healed = ResultCache::at_with_plan(&dir, FaultPlan::default()).unwrap();
    assert!(healed.health().swept_orphans > 0, "open must sweep orphans");
    assert_eq!(orphans(), 0);

    // Resume against the survivors: some hits, some re-simulations,
    // byte-identical report.
    let resumed = to_json(&run_dse(&spec, &healed, 2));
    assert_eq!(reference, resumed, "healed resume must match the reference");
    let stats = healed.stats();
    assert!(
        stats.hits > 0,
        "resume must reuse entries that survived the chaos"
    );
    assert!(
        stats.misses > 0,
        "resume must re-simulate the crashed stores"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn best_found_config_never_loses_to_the_r3_incumbent() {
    let spec = tiny_spec();
    let result = run_dse(&spec, &ResultCache::disabled(), 2);
    for w in &result.workloads {
        let r3 = w.r3().expect("quick space contains the r3 point");
        assert!(
            w.best().ipc.mean >= r3.ipc.mean,
            "{}: best {} < r3 {}",
            w.workload,
            w.best().ipc.mean,
            r3.ipc.mean
        );
        assert!(w.empty_trials().is_empty(), "{}: sick cell", w.workload);
    }
}

#[test]
fn cache_keys_move_with_every_input() {
    let space = SearchSpace::quick();
    let sample = SampleSpec::parse("2:800:none").unwrap();
    let key_for = |trial_key: &str, sample: &SampleSpec, fp: u64| {
        CacheKey::cell("libq_like", fp, "tiny", &sample.label(), 0, trial_key)
    };
    let (cfg, opt) = space.materialize(&space.point(0));
    let base_trial = format!("{};skeleton={}", cfg.canonical_key(), opt.canonical_key());
    let base = key_for(&base_trial, &sample, 1);

    // Any knob change moves the trial key and therefore the cache key.
    for flat in 1..space.size() {
        let (c, o) = space.materialize(&space.point(flat));
        let k = key_for(
            &format!("{};skeleton={}", c.canonical_key(), o.canonical_key()),
            &sample,
            1,
        );
        assert_ne!(base.hash, k.hash, "knob point {flat} collided");
    }
    // A different sample spec moves it.
    let other_sample = SampleSpec::parse("3:800:none").unwrap();
    assert_ne!(base.hash, key_for(&base_trial, &other_sample, 1).hash);
    // A different workload image (fingerprint) moves it.
    assert_ne!(base.hash, key_for(&base_trial, &sample, 2).hash);
}

#[test]
fn workload_fingerprint_tracks_code_and_image() {
    use r3dla_dse::program_fingerprint;
    use r3dla_isa::Program;
    let built = by_name("md5_like").unwrap().build(Scale::Tiny);
    let p = built.program;
    let base = program_fingerprint(&p);
    assert_eq!(
        base,
        program_fingerprint(&p.clone()),
        "stable across clones"
    );

    // Perturb one image word: the fingerprint must move.
    let mut image = p.image().to_vec();
    assert!(!image.is_empty(), "workload must have a data image");
    image[0].1 ^= 1;
    let entry_index = p.pc_to_index(p.entry()).unwrap();
    let patched = Program::from_parts(p.name(), p.insts().to_vec(), entry_index, image);
    assert_ne!(base, program_fingerprint(&patched));

    // Dropping an instruction must move it too.
    let shorter = Program::from_parts(
        p.name(),
        p.insts()[..p.insts().len() - 1].to_vec(),
        entry_index,
        p.image().to_vec(),
    );
    assert_ne!(base, program_fingerprint(&shorter));
}
