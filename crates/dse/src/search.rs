//! The search driver: candidate selection per strategy, cached cell
//! evaluation on the shared worker pool, and per-workload aggregation.
//!
//! Every strategy reduces to the same primitive — measure one
//! `(workload, configuration, interval)` cell with the sampled simulator
//! — fanned over [`parallel_map`]. Cells are pure functions of their
//! cache key, so the driver consults the [`ResultCache`] before
//! simulating and the whole search is resumable and byte-reproducible.

use std::sync::Arc;
use std::time::Instant;

use r3dla_bench::{parallel_map, CellOutcome, CellStatus, Prepared, Supervisor};
use r3dla_core::{
    DlaConfig, MeasureTarget, SingleCoreSim, SkeletonOptions, SkeletonSet, WindowReport,
};
use r3dla_cpu::CoreConfig;
use r3dla_energy::{counters_delta, CoreEnergy, DramEnergy, EnergyParams};
use r3dla_mem::{DramStats, MemConfig};
use r3dla_sample::{apply_warmup, plan_intervals, IntervalCheckpoint, SampleSpec, WarmTarget};
use r3dla_stats::{mean_ci95, MeanCi, Rng};
use r3dla_workloads::{Scale, Suite, Workload};

use crate::cache::{program_fingerprint, CacheKey, IntervalResult, ResultCache};
use crate::space::{SearchSpace, TrialPoint};

/// How the search walks the space, under a trial budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Enumerate points in flat-index order until the budget is spent.
    Exhaustive {
        /// Maximum number of configurations to evaluate.
        budget: usize,
    },
    /// Sample distinct points with a seeded deterministic PRNG.
    Random {
        /// PRNG seed (same seed → same candidate set).
        seed: u64,
        /// Maximum number of configurations to evaluate.
        budget: usize,
    },
    /// Successive halving: sample like [`Strategy::Random`], evaluate
    /// everything on a few intervals, keep the better half, double the
    /// fidelity, repeat — reinvesting eliminated trials' budget into
    /// measurement fidelity for the survivors.
    Halving {
        /// PRNG seed for the initial candidate draw.
        seed: u64,
        /// Initial number of candidate configurations.
        budget: usize,
    },
}

impl Strategy {
    /// Parses a strategy name (`exhaustive`, `random`, `halving`) with
    /// its seed/budget parameters.
    pub fn parse(name: &str, seed: u64, budget: usize) -> Option<Self> {
        match name {
            "exhaustive" => Some(Strategy::Exhaustive { budget }),
            "random" => Some(Strategy::Random { seed, budget }),
            "halving" => Some(Strategy::Halving { seed, budget }),
            _ => None,
        }
    }

    /// Canonical label, embedded in the report so two reports are
    /// comparable at a glance.
    pub fn label(&self) -> String {
        match self {
            Strategy::Exhaustive { budget } => format!("exhaustive:budget={budget}"),
            Strategy::Random { seed, budget } => format!("random:seed={seed}:budget={budget}"),
            Strategy::Halving { seed, budget } => format!("halving:seed={seed}:budget={budget}"),
        }
    }
}

/// A full search request.
#[derive(Debug, Clone)]
pub struct DseSpec {
    /// Input scale.
    pub scale: Scale,
    /// Workloads to search (each gets its own best configuration).
    pub workloads: Vec<Workload>,
    /// The knob space.
    pub space: SearchSpace,
    /// The walk strategy and budget.
    pub strategy: Strategy,
    /// The sampled-simulation evaluator spec (`k:U:W`).
    pub sample: SampleSpec,
    /// Event-driven cycle skipping (results identical either way).
    pub fast_forward: bool,
}

/// One candidate configuration instantiated for a specific workload
/// (the skeleton set is workload-specific).
struct Trial {
    /// Stable id: 16 hex digits of the trial key's FxHash.
    id: String,
    /// Human-readable knob listing (or `bl`).
    label: String,
    /// Canonical configuration serialization (cache-key half).
    trial_key: String,
    /// Which incumbent this point is, if any (`"dla"`, `"r3"`).
    incumbent: Option<&'static str>,
    kind: TrialKind,
}

#[allow(clippy::large_enum_variant)] // a handful of trials per search
enum TrialKind {
    /// The single-core `bl` reference the paper normalizes against.
    Baseline,
    /// A DLA-system point of the space.
    Point {
        cfg: DlaConfig,
        skel: Arc<SkeletonSet>,
    },
}

/// Everything per-workload the evaluator needs, shared read-only across
/// workers. `Arc`s let a long-running service pool prepared workloads
/// and interval plans across campaigns instead of rebuilding them per
/// request.
struct WorkloadCtx {
    prepared: Arc<Prepared>,
    plan: Arc<Vec<IntervalCheckpoint>>,
    fingerprint: u64,
}

/// Aggregated result of one trial on one workload.
#[derive(Debug, Clone)]
pub struct TrialSummary {
    /// Stable trial id (16 hex digits of the configuration key hash).
    pub id: String,
    /// Human-readable knob listing.
    pub label: String,
    /// Which incumbent this point is, if any (`"dla"`, `"r3"`).
    pub incumbent: Option<&'static str>,
    /// Intervals the trial was measured on.
    pub intervals: usize,
    /// Mean ± CI95 of per-interval MT IPC.
    pub ipc: MeanCi,
    /// Modeled energy per committed MT instruction, in nanojoules.
    pub epi_nj: f64,
    /// Paired per-interval speedup over `bl` (full-coverage trials
    /// only), over intervals where both sides measured cleanly.
    pub speedup: Option<MeanCi>,
    /// Whether any clean interval committed zero MT instructions (sick
    /// cell).
    pub any_empty: bool,
    /// First non-[`CellStatus::Ok`] interval status (or `Ok`).
    pub status: CellStatus,
    /// Supervisor attempts summed over the trial's interval cells
    /// (equals `intervals` for an all-clean trial).
    pub attempts: u32,
    /// First failed interval's error detail.
    pub error: Option<String>,
}

impl TrialSummary {
    /// Whether every interval of this trial measured cleanly on the
    /// first attempt — clean rows omit the status fields so a faults-off
    /// report is byte-identical to one from an unsupervised build.
    pub fn is_clean(&self) -> bool {
        self.status == CellStatus::Ok && self.attempts as usize <= self.intervals
    }
}

/// One workload's search outcome.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// Workload name.
    pub workload: String,
    /// Workload suite.
    pub suite: Suite,
    /// The single-core `bl` reference row.
    pub bl: TrialSummary,
    /// Fully measured trials, best IPC first (ties broken by id).
    pub trials: Vec<TrialSummary>,
    /// Trials eliminated by successive halving before full coverage.
    pub eliminated: Vec<TrialSummary>,
    /// Interval simulations the search scheduled for this workload
    /// (a pure function of the spec — cache hits count too).
    pub interval_sims: usize,
}

impl WorkloadOutcome {
    /// The best fully measured trial (always exists: incumbents are
    /// always evaluated in full).
    pub fn best(&self) -> &TrialSummary {
        &self.trials[0]
    }

    /// The `r3` incumbent's row, when the space contains the point.
    pub fn r3(&self) -> Option<&TrialSummary> {
        self.trials.iter().find(|t| t.incumbent == Some("r3"))
    }

    /// Rows with a sick (zero-commit) interval, bl included.
    pub fn empty_trials(&self) -> Vec<&TrialSummary> {
        std::iter::once(&self.bl)
            .chain(self.trials.iter())
            .chain(self.eliminated.iter())
            .filter(|t| t.any_empty)
            .collect()
    }

    /// Rows with a failed (panicked / timed-out / I/O-error) interval,
    /// bl included.
    pub fn failed_trials(&self) -> Vec<&TrialSummary> {
        std::iter::once(&self.bl)
            .chain(self.trials.iter())
            .chain(self.eliminated.iter())
            .filter(|t| t.status != CellStatus::Ok)
            .collect()
    }
}

/// The whole search result, ready for [`crate::report`].
#[derive(Debug, Clone)]
pub struct DseResult {
    /// Scale the search ran at.
    pub scale: Scale,
    /// The evaluator sample spec.
    pub sample: SampleSpec,
    /// Canonical strategy label.
    pub strategy: String,
    /// Total points in the searched space.
    pub space_points: u64,
    /// Per-workload outcomes, in workload order.
    pub workloads: Vec<WorkloadOutcome>,
    /// Wall-clock of preparation (profiling + skeletons), stderr only.
    pub prep_ms: u64,
    /// Wall-clock of interval planning, stderr only.
    pub plan_ms: u64,
    /// Wall-clock of the (cached) measurement phase, stderr only.
    pub measure_ms: u64,
}

/// The scale name used in cache keys and reports.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Train => "train",
        Scale::Ref => "ref",
    }
}

/// Selects the candidate points for a strategy: the `dla`/`r3`
/// incumbents (when the space contains them) followed by
/// strategy-chosen points, deduplicated, `budget` in total (but never
/// fewer than the incumbents).
pub fn candidates(space: &SearchSpace, strategy: &Strategy) -> Vec<TrialPoint> {
    let budget = match strategy {
        Strategy::Exhaustive { budget }
        | Strategy::Random { seed: _, budget }
        | Strategy::Halving { seed: _, budget } => *budget,
    };
    let size = space.size();
    let mut chosen: Vec<TrialPoint> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for inc in [space.dla_point(), space.r3_point()].into_iter().flatten() {
        if seen.insert(space.flat(&inc)) {
            chosen.push(inc);
        }
    }
    let want = (budget as u64).min(size) as usize;
    let mut push = |chosen: &mut Vec<TrialPoint>, flat: u64| {
        if chosen.len() < want && seen.insert(flat) {
            chosen.push(space.point(flat));
        }
    };
    match strategy {
        Strategy::Exhaustive { .. } => {
            for flat in 0..size {
                push(&mut chosen, flat);
            }
        }
        Strategy::Random { seed, .. } | Strategy::Halving { seed, .. } => {
            let mut rng = Rng::new(*seed);
            let mut attempts = 0u64;
            while chosen.len() < want && attempts < 64 * size.max(64) {
                attempts += 1;
                push(&mut chosen, rng.range_u64(0, size));
            }
            // A tiny space can defeat rejection sampling; top up
            // deterministically.
            for flat in 0..size {
                push(&mut chosen, flat);
            }
        }
    }
    chosen
}

/// Measures one warmed window and models its energy — the sampled
/// evaluator's inner loop, shared by the DLA and single-core paths. The
/// report is identical to [`r3dla_sample::warm_and_measure`]'s; the
/// energy combines both cores' activity deltas and the DRAM traffic over
/// the same window.
fn measure_with_energy<S: WarmTarget + MeasureTarget>(
    sys: &mut S,
    sample: &SampleSpec,
    iv: &IntervalCheckpoint,
) -> IntervalResult {
    let settle = apply_warmup(sys, sample, iv);
    sys.run_insts(settle, settle * 60 + 500_000);
    let before = sys.counters_snapshot();
    sys.run_insts(sample.detailed, sample.detailed * 60 + 500_000);
    let report: WindowReport = sys.window_report(&before);
    let after = sys.counters_snapshot();
    let params = EnergyParams::node22();
    let mt = counters_delta(&before.mt_counters, &after.mt_counters);
    let lt = counters_delta(&before.lt_counters, &after.lt_counters);
    let mt_e = CoreEnergy::from_counters(&mt, &params);
    let lt_e = CoreEnergy::from_counters(&lt, &params);
    let mut dram = DramStats::default();
    dram.reads
        .add(after.dram.reads.get() - before.dram.reads.get());
    dram.writes
        .add(after.dram.writes.get() - before.dram.writes.get());
    dram.activations
        .add(after.dram.activations.get() - before.dram.activations.get());
    let dram_e = DramEnergy::from_stats(&dram, mt_e.seconds, &params);
    IntervalResult {
        report,
        energy_j: mt_e.total_j() + lt_e.total_j() + dram_e.total_j(),
    }
}

/// One supervised interval-cell evaluation: the measured (or default,
/// when every attempt failed) result plus the supervisor's verdict.
#[derive(Debug, Clone)]
struct CellEval {
    result: IntervalResult,
    status: CellStatus,
    attempts: u32,
    error: Option<String>,
}

impl CellEval {
    fn from_outcome(o: &CellOutcome<IntervalResult>) -> Self {
        CellEval {
            result: o.value.clone().unwrap_or_default(),
            status: o.status,
            attempts: o.attempts,
            error: o.error.clone(),
        }
    }
}

/// The content address of one `(workload, trial, interval)` cell.
fn cell_cache_key(ctx: &WorkloadCtx, trial: &Trial, spec: &DseSpec, iv_index: usize) -> CacheKey {
    CacheKey::cell(
        &ctx.prepared.name,
        ctx.fingerprint,
        scale_name(spec.scale),
        &spec.sample.label(),
        iv_index,
        &trial.trial_key,
    )
}

/// Evaluates one cell, consulting the cache first. Returns the result
/// plus whether it was served from the cache (telemetry only — the
/// result bytes are identical either way). A cache-store failure is not
/// the cell's failure — the result in hand is valid, the entry just
/// will not persist — so it surfaces only through the cache's health
/// counters, never in the (cache-state-independent) report.
fn evaluate_cell(
    ctx: &WorkloadCtx,
    trial: &Trial,
    spec: &DseSpec,
    iv_index: usize,
    cache: &ResultCache,
) -> (IntervalResult, bool) {
    let key = cell_cache_key(ctx, trial, spec, iv_index);
    let hit = {
        let _sp = r3dla_obs::span!("cache", "load {:016x}", key.hash);
        cache.load(&key)
    };
    if r3dla_obs::progress::active() {
        let stats = cache.stats();
        r3dla_obs::progress::set_extra(format!("cache {}/{} hit", stats.hits, stats.lookups()));
    }
    if let Some(hit) = hit {
        return (hit, true);
    }
    let iv = &ctx.plan[iv_index];
    let result = match &trial.kind {
        TrialKind::Baseline => {
            let mut sim = SingleCoreSim::restore_from_checkpoint(
                ctx.prepared.built(),
                CoreConfig::paper(),
                MemConfig::paper(),
                None,
                Some("bop"),
                &iv.ckpt,
            );
            sim.set_fast_forward(spec.fast_forward);
            measure_with_energy(&mut sim, &spec.sample, iv)
        }
        TrialKind::Point { cfg, skel } => {
            let mut sys = ctx.prepared.dla_system_from_checkpoint_with(
                cfg.clone(),
                (**skel).clone(),
                &iv.ckpt,
            );
            sys.set_fast_forward(spec.fast_forward);
            measure_with_energy(&mut sys, &spec.sample, iv)
        }
    };
    {
        let _sp = r3dla_obs::span!("cache", "store {:016x}", key.hash);
        let _ = cache.store(&key, &result);
    }
    (result, false)
}

/// The canonical serialization of the `bl` baseline cell (single core,
/// no L1 prefetcher, BOP at L2) — the baseline half of a cache key.
fn baseline_key() -> String {
    format!(
        "single;core={:?};mem={:?};l1pf=none;l2pf=bop",
        CoreConfig::paper(),
        MemConfig::paper()
    )
}

/// One `(workload, trial, interval)` measurement of a search, addressed
/// by indices into the owning [`DsePlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DseCell {
    /// Index into the spec's workload list.
    pub workload: usize,
    /// Trial index (0 is the `bl` baseline).
    pub trial: usize,
    /// Interval index within the workload's sampling plan.
    pub interval: usize,
}

/// The pre-enumerated cell set of one search: prepared workloads,
/// interval plans, and per-workload trial lists, exposing the primitive
/// every driver shares — enumerate cells, key them, evaluate them
/// through the cache, and assemble the outcomes into a [`DseResult`].
///
/// The batch driver ([`run_dse_supervised`]) and the campaign service
/// (`r3dla-serve`) both run on this type, so a served report is
/// byte-identical to a batch one by construction: same keys, same
/// evaluator, same assembly. For the flat strategies
/// ([`Strategy::Exhaustive`] / [`Strategy::Random`]) the full cell set
/// is known up front; [`Strategy::Halving`] chooses cells adaptively
/// between rungs and therefore cannot be pre-enumerated ([`DsePlan::cells`]
/// returns its full-fidelity superset — the service rejects halving
/// campaigns for exactly this reason).
pub struct DsePlan {
    spec: DseSpec,
    ctxs: Vec<WorkloadCtx>,
    trials: Vec<Vec<Trial>>,
}

impl DsePlan {
    /// Prepares every workload and interval plan, then builds the trial
    /// lists. The all-in-one path for batch runs; services with pooled
    /// workloads use [`DsePlan::from_parts`].
    pub fn build(spec: &DseSpec, threads: usize) -> Self {
        let prepared = parallel_map(&spec.workloads, threads, |w| Prepared::new(w, spec.scale));
        let plans = parallel_map(&prepared, threads, |p| {
            plan_intervals(&p.program, &spec.sample)
        });
        let parts = prepared
            .into_iter()
            .zip(plans)
            .map(|(p, plan)| (Arc::new(p), Arc::new(plan)))
            .collect();
        Self::from_parts(spec, parts, threads)
    }

    /// Builds the plan from already-prepared workloads and interval
    /// plans, one `(prepared, intervals)` pair per spec workload in
    /// order. Skeleton sets are (re)generated here — they are
    /// candidate-set-specific — but the expensive profiling and
    /// checkpointing behind `parts` is shared.
    ///
    /// # Panics
    ///
    /// When `parts` does not line up 1:1 with `spec.workloads`.
    pub fn from_parts(
        spec: &DseSpec,
        parts: Vec<(Arc<Prepared>, Arc<Vec<IntervalCheckpoint>>)>,
        threads: usize,
    ) -> Self {
        assert_eq!(
            parts.len(),
            spec.workloads.len(),
            "one (prepared, plan) pair per workload"
        );
        let ctxs: Vec<WorkloadCtx> = parts
            .into_iter()
            .map(|(p, plan)| WorkloadCtx {
                fingerprint: program_fingerprint(&p.program),
                plan,
                prepared: p,
            })
            .collect();

        let points = candidates(&spec.space, &spec.strategy);
        let dla_flat = spec.space.dla_point().map(|p| spec.space.flat(&p));
        let r3_flat = spec.space.r3_point().map(|p| spec.space.flat(&p));

        // Distinct skeleton-option requirements across the candidate
        // set, generated once per workload up front (in parallel), so
        // trial evaluation never regenerates skeletons.
        let mut skel_reqs: Vec<(SkeletonOptions, bool)> = Vec::new();
        for p in &points {
            let (cfg, opt) = spec.space.materialize(p);
            if !skel_reqs.iter().any(|(o, t)| *o == opt && *t == cfg.t1) {
                skel_reqs.push((opt, cfg.t1));
            }
        }
        let skel_cells: Vec<(usize, usize)> = (0..ctxs.len())
            .flat_map(|wi| (0..skel_reqs.len()).map(move |si| (wi, si)))
            .collect();
        let skels: Vec<Arc<SkeletonSet>> = parallel_map(&skel_cells, threads, |&(wi, si)| {
            let (opt, t1) = &skel_reqs[si];
            Arc::new(ctxs[wi].prepared.skeletons_for(opt, *t1))
        });
        let skel_for = |wi: usize, opt: &SkeletonOptions, t1: bool| -> Arc<SkeletonSet> {
            let si = skel_reqs
                .iter()
                .position(|(o, t)| o == opt && *t == t1)
                .expect("skeleton set pre-generated");
            Arc::clone(&skels[wi * skel_reqs.len() + si])
        };

        // Per-workload trial lists: index 0 is the bl baseline, the rest
        // are the candidate points in selection order.
        let trials: Vec<Vec<Trial>> = (0..ctxs.len())
            .map(|wi| {
                let mut list = vec![Trial {
                    id: format!("{:016x}", crate::cache::fxhash_str(&baseline_key())),
                    label: "bl".to_string(),
                    trial_key: baseline_key(),
                    incumbent: None,
                    kind: TrialKind::Baseline,
                }];
                for p in &points {
                    let (cfg, opt) = spec.space.materialize(p);
                    let trial_key =
                        format!("{};skeleton={}", cfg.canonical_key(), opt.canonical_key());
                    let flat = spec.space.flat(p);
                    list.push(Trial {
                        id: format!("{:016x}", crate::cache::fxhash_str(&trial_key)),
                        label: spec.space.label(p),
                        trial_key,
                        incumbent: if Some(flat) == r3_flat {
                            Some("r3")
                        } else if Some(flat) == dla_flat {
                            Some("dla")
                        } else {
                            None
                        },
                        kind: TrialKind::Point {
                            skel: skel_for(wi, &opt, cfg.t1),
                            cfg,
                        },
                    });
                }
                list
            })
            .collect();

        DsePlan {
            spec: spec.clone(),
            ctxs,
            trials,
        }
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> &DseSpec {
        &self.spec
    }

    /// Every cell of the (flat-strategy) search in canonical order:
    /// workload-major, then trial, then interval — the order
    /// [`DsePlan::assemble`] expects its outcomes in.
    pub fn cells(&self) -> Vec<DseCell> {
        let mut cells = Vec::with_capacity(self.n_cells());
        for (wi, ctx) in self.ctxs.iter().enumerate() {
            for ti in 0..self.trials[wi].len() {
                for ii in 0..ctx.plan.len() {
                    cells.push(DseCell {
                        workload: wi,
                        trial: ti,
                        interval: ii,
                    });
                }
            }
        }
        cells
    }

    /// Total cell count — a pure function of the spec (admission
    /// budgets rely on this).
    pub fn n_cells(&self) -> usize {
        self.ctxs
            .iter()
            .enumerate()
            .map(|(wi, ctx)| self.trials[wi].len() * ctx.plan.len())
            .sum()
    }

    /// The content address of a cell — also the supervision key fault
    /// injection and quarantine decisions hash.
    pub fn cell_key(&self, cell: DseCell) -> CacheKey {
        cell_cache_key(
            &self.ctxs[cell.workload],
            &self.trials[cell.workload][cell.trial],
            &self.spec,
            cell.interval,
        )
    }

    /// Evaluates one cell through the cache (load, else simulate and
    /// store). The flag reports whether the cache answered — telemetry
    /// only; the result bytes are identical either way.
    pub fn evaluate(&self, cell: DseCell, cache: &ResultCache) -> (IntervalResult, bool) {
        evaluate_cell(
            &self.ctxs[cell.workload],
            &self.trials[cell.workload][cell.trial],
            &self.spec,
            cell.interval,
            cache,
        )
    }

    /// Assembles per-cell outcomes (in [`DsePlan::cells`] order) into
    /// the final result, exactly as the flat batch driver does — same
    /// statistics, same row ordering, so the report serialization is
    /// byte-identical. The wall-clock fields are zero (they never reach
    /// the report JSON).
    ///
    /// # Panics
    ///
    /// When `outcomes` does not line up 1:1 with [`DsePlan::cells`].
    pub fn assemble(&self, outcomes: &[CellOutcome<IntervalResult>]) -> DseResult {
        assert_eq!(
            outcomes.len(),
            self.n_cells(),
            "one outcome per planned cell"
        );
        let mut by_cell: std::collections::HashMap<(usize, usize), Vec<CellEval>> =
            std::collections::HashMap::new();
        for (cell, o) in self.cells().iter().zip(outcomes) {
            by_cell
                .entry((cell.workload, cell.trial))
                .or_default()
                .push(CellEval::from_outcome(o));
        }
        let workloads = self
            .ctxs
            .iter()
            .enumerate()
            .map(|(wi, ctx)| {
                let results_of = |ti: usize| by_cell[&(wi, ti)].clone();
                let bl_results = results_of(0);
                let bl_ipcs: Vec<(f64, bool)> = bl_results
                    .iter()
                    .map(|e| (e.result.report.mt_ipc, e.status == CellStatus::Ok))
                    .collect();
                let bl = summarize(&self.trials[wi][0], &bl_results, None);
                let mut rows: Vec<TrialSummary> = (1..self.trials[wi].len())
                    .map(|ti| summarize(&self.trials[wi][ti], &results_of(ti), Some(&bl_ipcs)))
                    .collect();
                sort_trials(&mut rows);
                WorkloadOutcome {
                    workload: ctx.prepared.name.clone(),
                    suite: ctx.prepared.suite,
                    bl,
                    eliminated: Vec::new(),
                    interval_sims: self.trials[wi].len() * ctx.plan.len(),
                    trials: rows,
                }
            })
            .collect();
        DseResult {
            scale: self.spec.scale,
            sample: self.spec.sample,
            strategy: self.spec.strategy.label(),
            space_points: self.spec.space.size(),
            workloads,
            prep_ms: 0,
            plan_ms: 0,
            measure_ms: 0,
        }
    }
}

/// Aggregates a trial's interval evaluations. Statistics cover only the
/// cleanly measured intervals; failed ones surface through the status
/// fields instead of poisoning the means with zeros. `bl` pairs each
/// interval's baseline IPC with whether the baseline cell itself was
/// clean — a speedup ratio needs both sides.
fn summarize(trial: &Trial, evals: &[CellEval], bl: Option<&[(f64, bool)]>) -> TrialSummary {
    let ok: Vec<&IntervalResult> = evals
        .iter()
        .filter(|e| e.status == CellStatus::Ok)
        .map(|e| &e.result)
        .collect();
    let ipcs: Vec<f64> = ok.iter().map(|r| r.report.mt_ipc).collect();
    let committed: u64 = ok.iter().map(|r| r.report.mt_committed).sum();
    let energy: f64 = ok.iter().map(|r| r.energy_j).sum();
    let speedup = bl.filter(|b| b.len() == evals.len()).map(|b| {
        let ratios: Vec<f64> = evals
            .iter()
            .zip(b.iter())
            .filter(|(e, (_, bl_ok))| e.status == CellStatus::Ok && *bl_ok)
            .map(|(e, (y, _))| e.result.report.mt_ipc / y.max(1e-9))
            .collect();
        mean_ci95(&ratios)
    });
    TrialSummary {
        id: trial.id.clone(),
        label: trial.label.clone(),
        incumbent: trial.incumbent,
        intervals: evals.len(),
        ipc: mean_ci95(&ipcs),
        epi_nj: if committed == 0 {
            0.0
        } else {
            energy / committed as f64 * 1e9
        },
        speedup,
        any_empty: ok.iter().any(|r| r.report.mt_committed == 0),
        status: evals
            .iter()
            .map(|e| e.status)
            .find(|&s| s != CellStatus::Ok)
            .unwrap_or(CellStatus::Ok),
        attempts: evals.iter().map(|e| e.attempts).sum(),
        error: evals.iter().find_map(|e| e.error.clone()),
    }
}

/// Runs the whole search under the environment-configured supervisor
/// (`R3DLA_FAULT_PLAN`, `R3DLA_CELL_DEADLINE_MS`,
/// `R3DLA_CELL_CYCLE_BUDGET`); see [`run_dse_supervised`].
pub fn run_dse(spec: &DseSpec, cache: &ResultCache, threads: usize) -> DseResult {
    run_dse_supervised(spec, cache, threads, &Supervisor::from_env())
}

/// Runs the whole search: prepare + plan once per workload, then walk
/// the space per the strategy with every cell measurement deduplicated
/// through the cache and supervised — a panicking, runaway, or
/// fault-injected interval cell becomes status fields on its trial row
/// instead of killing the search. Byte-reproducible: the returned
/// result (minus the stderr-only wall-clock fields) is a pure function
/// of `spec` and the supervisor's fault plan.
pub fn run_dse_supervised(
    spec: &DseSpec,
    cache: &ResultCache,
    threads: usize,
    sup: &Supervisor,
) -> DseResult {
    let t0 = Instant::now();
    let prepared = parallel_map(&spec.workloads, threads, |w| Prepared::new(w, spec.scale));
    let prep_ms = t0.elapsed().as_millis() as u64;

    let t1 = Instant::now();
    let plans = parallel_map(&prepared, threads, |p| {
        plan_intervals(&p.program, &spec.sample)
    });
    let parts = prepared
        .into_iter()
        .zip(plans)
        .map(|(p, plan)| (Arc::new(p), Arc::new(plan)))
        .collect();
    let plan = DsePlan::from_parts(spec, parts, threads);
    let plan_ms = t1.elapsed().as_millis() as u64;

    let t2 = Instant::now();
    let mut result = match spec.strategy {
        Strategy::Halving { .. } => {
            let workloads = run_halving(spec, cache, threads, sup, &plan.ctxs, &plan.trials);
            DseResult {
                scale: spec.scale,
                sample: spec.sample,
                strategy: spec.strategy.label(),
                space_points: spec.space.size(),
                workloads,
                prep_ms: 0,
                plan_ms: 0,
                measure_ms: 0,
            }
        }
        _ => run_flat(&plan, cache, threads, sup),
    };
    result.prep_ms = prep_ms;
    result.plan_ms = plan_ms;
    result.measure_ms = t2.elapsed().as_millis() as u64;
    result
}

/// Exhaustive/random execution: every (workload, trial, interval) cell
/// is independent; one `parallel_map` covers the whole search, then
/// [`DsePlan::assemble`] folds the outcomes into the report rows.
fn run_flat(plan: &DsePlan, cache: &ResultCache, threads: usize, sup: &Supervisor) -> DseResult {
    let cells = plan.cells();
    let measured = sup.map(
        &cells,
        threads,
        |&cell| plan.cell_key(cell).descr,
        |&cell| Ok(plan.evaluate(cell, cache).0),
    );
    plan.assemble(&measured)
}

/// Successive-halving execution. Rung fidelities double from two
/// intervals up to the plan length; each rung keeps the better half of
/// the still-alive candidates (incumbents and `bl` bypass elimination —
/// they are reference rows, not contestants). Interval results carry
/// over between rungs, so a surviving trial is never re-measured.
fn run_halving(
    spec: &DseSpec,
    cache: &ResultCache,
    threads: usize,
    sup: &Supervisor,
    ctxs: &[WorkloadCtx],
    trials: &[Vec<Trial>],
) -> Vec<WorkloadOutcome> {
    let k_max = ctxs.iter().map(|c| c.plan.len()).max().unwrap_or(0);
    // alive[wi] = trial indices still in the race; protected trials
    // (bl + incumbents) always stay.
    let mut alive: Vec<Vec<usize>> = trials
        .iter()
        .map(|list| (0..list.len()).collect())
        .collect();
    let mut eliminated_at: Vec<Vec<(usize, usize)>> = vec![Vec::new(); trials.len()];
    let mut measured: std::collections::HashMap<(usize, usize, usize), CellEval> =
        std::collections::HashMap::new();
    let mut interval_sims = vec![0usize; ctxs.len()];

    let mut m = 2usize.min(k_max.max(1));
    loop {
        // Schedule the not-yet-measured intervals of every alive trial.
        let mut cells: Vec<(usize, usize, usize)> = Vec::new();
        for (wi, ctx) in ctxs.iter().enumerate() {
            let m_eff = m.min(ctx.plan.len());
            for &ti in &alive[wi] {
                for ii in 0..m_eff {
                    if !measured.contains_key(&(wi, ti, ii)) {
                        cells.push((wi, ti, ii));
                    }
                }
            }
        }
        let fresh = sup.map(
            &cells,
            threads,
            |&(wi, ti, ii)| cell_cache_key(&ctxs[wi], &trials[wi][ti], spec, ii).descr,
            |&(wi, ti, ii)| Ok(evaluate_cell(&ctxs[wi], &trials[wi][ti], spec, ii, cache).0),
        );
        for (&(wi, ti, ii), o) in cells.iter().zip(fresh) {
            interval_sims[wi] += 1;
            measured.insert((wi, ti, ii), CellEval::from_outcome(&o));
        }
        if m >= k_max {
            break;
        }
        // Eliminate the worse half of the contestants per workload.
        for (wi, ctx) in ctxs.iter().enumerate() {
            let m_eff = m.min(ctx.plan.len());
            // Rung means cover only clean intervals — a fault-injected
            // zero must not decide an elimination.
            let means: std::collections::HashMap<usize, f64> = alive[wi]
                .iter()
                .map(|&ti| {
                    let ipcs: Vec<f64> = (0..m_eff)
                        .map(|ii| &measured[&(wi, ti, ii)])
                        .filter(|e| e.status == CellStatus::Ok)
                        .map(|e| e.result.report.mt_ipc)
                        .collect();
                    (ti, mean_ci95(&ipcs).mean)
                })
                .collect();
            let (protected, mut contest): (Vec<usize>, Vec<usize>) = alive[wi]
                .iter()
                .copied()
                .partition(|&ti| ti == 0 || trials[wi][ti].incumbent.is_some());
            // Deterministic order: better mean first, trial id breaks
            // ties.
            contest.sort_by(|&a, &b| {
                means[&b]
                    .partial_cmp(&means[&a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| trials[wi][a].id.cmp(&trials[wi][b].id))
            });
            let keep = contest.len().div_ceil(2);
            for &ti in &contest[keep..] {
                eliminated_at[wi].push((ti, m.min(ctx.plan.len())));
            }
            contest.truncate(keep);
            let mut next = protected;
            next.extend(contest);
            next.sort_unstable();
            alive[wi] = next;
        }
        m = (m * 2).min(k_max);
    }

    ctxs.iter()
        .enumerate()
        .map(|(wi, ctx)| {
            let collect = |ti: usize, n: usize| -> Vec<CellEval> {
                (0..n).map(|ii| measured[&(wi, ti, ii)].clone()).collect()
            };
            let k_eff = ctx.plan.len();
            let bl_results = collect(0, k_eff);
            let bl_ipcs: Vec<(f64, bool)> = bl_results
                .iter()
                .map(|e| (e.result.report.mt_ipc, e.status == CellStatus::Ok))
                .collect();
            let bl = summarize(&trials[wi][0], &bl_results, None);
            let mut rows: Vec<TrialSummary> = alive[wi]
                .iter()
                .filter(|&&ti| ti != 0)
                .map(|&ti| summarize(&trials[wi][ti], &collect(ti, k_eff), Some(&bl_ipcs)))
                .collect();
            sort_trials(&mut rows);
            let mut eliminated: Vec<TrialSummary> = eliminated_at[wi]
                .iter()
                .map(|&(ti, n)| summarize(&trials[wi][ti], &collect(ti, n), None))
                .collect();
            sort_trials(&mut eliminated);
            WorkloadOutcome {
                workload: ctx.prepared.name.clone(),
                suite: ctx.prepared.suite,
                bl,
                trials: rows,
                eliminated,
                interval_sims: interval_sims[wi],
            }
        })
        .collect()
}

/// Best IPC first; ties broken by trial id so the order (and therefore
/// the report) is deterministic even for identical means.
fn sort_trials(rows: &mut [TrialSummary]) {
    rows.sort_by(|a, b| {
        b.ipc
            .mean
            .partial_cmp(&a.ipc.mean)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
}
