//! The `r3dla-dse` CLI: budget-aware design-space exploration with a
//! resumable on-disk result cache.
//!
//! ```text
//! r3dla-dse [--scale tiny|train|ref] [--threads N]
//!           [--workloads a,b,c] [--sample k:U:W]
//!           [--space quick|full] [--strategy exhaustive|random|halving]
//!           [--budget N] [--seed S]
//!           [--cache DIR] [--no-cache] [--out FILE] [--no-skip]
//!           [--progress] [--list]
//! ```
//!
//! Telemetry (stderr/sidecar only, never the report): `--progress`
//! prints a live done/total line with the cache hit rate;
//! `R3DLA_TRACE=path` records a Chrome trace; `R3DLA_TELEMETRY=1`
//! writes a `*.telemetry.json` sidecar next to `--out` (see
//! `docs/OBSERVABILITY.md`).
//!
//! Writes the deterministic `r3dla-dse-v1` report JSON to `--out` (or
//! stdout) and a human summary to stderr. Every measured cell lands in
//! the cache directory (default `DSE_CACHE/`), so a killed search
//! resumes where it stopped and a finished search re-runs for free —
//! both reproduce the fresh report byte-for-byte. Exits non-zero when
//! any measured interval commits zero instructions (the runner's sick-
//! simulation gate).

use r3dla_bench::runner::scale_by_name;
use r3dla_bench::{arg_flag, arg_str, arg_threads, arg_u64, arg_usize, FaultPlan};
use r3dla_dse::{candidates, run_dse, DseSpec, ResultCache, SearchSpace, Strategy};
use r3dla_sample::SampleSpec;
use r3dla_workloads::{by_name, suite, Scale, Workload};

fn main() {
    if arg_flag("--list") {
        println!("workloads:");
        for w in suite() {
            println!("  {} ({})", w.name, w.suite);
        }
        println!("spaces:");
        println!("  quick (16 points: t1 x value_reuse x recycle x fetch_buffer)");
        println!(
            "  full  ({} points: every searched knob)",
            SearchSpace::full().size()
        );
        println!("strategies:");
        println!("  exhaustive | random | halving  (with --budget N, --seed S)");
        return;
    }
    let scale = match arg_str("--scale") {
        Some(s) => scale_by_name(&s).unwrap_or_else(|| {
            eprintln!("unknown scale '{s}' (expected tiny|train|ref)");
            std::process::exit(2);
        }),
        None => Scale::Tiny,
    };
    let threads = arg_threads();
    let workloads: Vec<Workload> = match arg_str("--workloads") {
        Some(list) => list
            .split(',')
            .map(|n| {
                by_name(n.trim()).unwrap_or_else(|| {
                    eprintln!("unknown workload '{n}' (try --list)");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => suite(),
    };
    let space_name = arg_str("--space").unwrap_or_else(|| "full".to_string());
    let space = SearchSpace::by_name(&space_name).unwrap_or_else(|| {
        eprintln!("unknown space '{space_name}' (expected quick|full)");
        std::process::exit(2);
    });
    let strategy_name = arg_str("--strategy").unwrap_or_else(|| "random".to_string());
    let budget = arg_usize("--budget", 12);
    let seed = arg_u64("--seed", 1);
    let strategy = Strategy::parse(&strategy_name, seed, budget).unwrap_or_else(|| {
        eprintln!("unknown strategy '{strategy_name}' (expected exhaustive|random|halving)");
        std::process::exit(2);
    });
    let sample_str = arg_str("--sample").unwrap_or_else(|| "3:3000:functional".to_string());
    let sample = SampleSpec::parse(&sample_str).unwrap_or_else(|| {
        eprintln!(
            "invalid --sample '{sample_str}' (expected k:U:none|functional[:N]|detailed[:N], \
             k >= 2)"
        );
        std::process::exit(2);
    });
    let cache = if arg_flag("--no-cache") {
        ResultCache::disabled()
    } else {
        let dir = arg_str("--cache").unwrap_or_else(|| "DSE_CACHE".to_string());
        ResultCache::at(&dir).unwrap_or_else(|e| {
            eprintln!("cannot open cache directory {dir}: {e}");
            std::process::exit(2);
        })
    };

    let spec = DseSpec {
        scale,
        workloads,
        space,
        strategy,
        sample,
        fast_forward: !arg_flag("--no-skip"),
    };
    let n_candidates = candidates(&spec.space, &spec.strategy).len();
    eprintln!(
        "r3dla-dse: {} workloads x {} candidates (of {} points) on {} threads, sample {}",
        spec.workloads.len(),
        n_candidates,
        spec.space.size(),
        threads,
        spec.sample.label()
    );

    let session = r3dla_obs::Session::from_env();
    if arg_flag("--progress") {
        // Planned cell count: every candidate plus the bl baseline, k
        // intervals each. Halving may finish early (eliminations skip
        // cells), so this is an upper bound for the meter.
        let cells = spec.workloads.len() * (n_candidates + 1) * spec.sample.k;
        r3dla_obs::progress::start("dse", cells);
    }
    let result = run_dse(&spec, &cache, threads);
    let json = r3dla_dse::to_json(&result);
    let out = arg_str("--out");
    match &out {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("r3dla-dse: wrote {path}");
        }
        None => print!("{json}"),
    }
    if let Err(e) = session.finalize(out.as_deref().map(std::path::Path::new), None) {
        eprintln!("r3dla-dse: telemetry write failed: {e}");
    }
    let stats = cache.stats();
    eprintln!(
        "r3dla-dse: prepared {} ms, planned {} ms, measured {} ms \
         ({} cache hits, {} misses)",
        result.prep_ms, result.plan_ms, result.measure_ms, stats.hits, stats.misses
    );
    let health = cache.health();
    if health != r3dla_dse::CacheHealth::default() {
        eprintln!(
            "r3dla-dse: cache health: {} corrupt entr(ies) quarantined, \
             {} store error(s), {} orphan(s) swept on open",
            health.corrupt, health.store_errors, health.swept_orphans
        );
    }
    eprint!("{}", r3dla_dse::summary_markdown(&result));

    let mut failed = false;
    for w in &result.workloads {
        for t in w.empty_trials() {
            eprintln!(
                "r3dla-dse: FAIL ({}, {}) has an interval with zero committed instructions",
                w.workload, t.label
            );
            failed = true;
        }
        for t in w.failed_trials() {
            eprintln!(
                "r3dla-dse: trial ({}, {}) has a failed interval after {} attempt(s): {} ({})",
                w.workload,
                t.label,
                t.attempts,
                t.status.label(),
                t.error.as_deref().unwrap_or("")
            );
            // Failed trials are the expected product of a chaos run;
            // without an active fault plan they are real failures.
            failed |= !FaultPlan::from_env().active();
        }
    }
    if failed {
        std::process::exit(1);
    }
}
