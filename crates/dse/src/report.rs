//! Report generation: the deterministic `r3dla-dse-v1` JSON and the
//! human summary.
//!
//! Like the bench grids, the JSON is a pure function of the search spec
//! (plus the simulator, which is bit-reproducible): no wall-clock, no
//! cache-hit counts, floats printed with fixed precision from
//! bit-identical doubles. A search resumed from a half-filled cache
//! therefore reproduces a fresh run's report byte-for-byte — CI runs the
//! search twice and `cmp`s the files.

use std::fmt::Write as _;

use r3dla_bench::supervise::push_status_fields;
use r3dla_stats::MeanCi;

use crate::search::{DseResult, TrialSummary, WorkloadOutcome};

/// Indices (into a sorted-by-IPC trial list) of the IPC-vs-energy Pareto
/// frontier: trials no other trial beats on both mean IPC (higher is
/// better) and energy per instruction (lower is better). Dominance is
/// checked pairwise (trial counts are budget-sized), so IPC ties — which
/// really happen when a swept knob is inert, e.g. `vr_capacity` with
/// value reuse off — resolve correctly instead of leaking a dominated
/// point into the frontier.
pub fn pareto_indices(trials: &[TrialSummary]) -> Vec<usize> {
    let dominated = |i: usize| {
        trials.iter().enumerate().any(|(j, other)| {
            let t = &trials[i];
            j != i
                && ((other.ipc.mean > t.ipc.mean && other.epi_nj <= t.epi_nj)
                    || (other.ipc.mean >= t.ipc.mean && other.epi_nj < t.epi_nj))
        })
    };
    (0..trials.len()).filter(|&i| !dominated(i)).collect()
}

fn ci_fields(name: &str, ci: &MeanCi) -> String {
    format!(
        "\"{name}_mean\": {:.6}, \"{name}_ci95\": {:.6}",
        ci.mean, ci.half
    )
}

fn trial_fields(t: &TrialSummary) -> String {
    let mut s = format!(
        "\"id\": \"{}\", \"label\": \"{}\", \"intervals\": {}, {}",
        t.id,
        t.label,
        t.intervals,
        ci_fields("ipc", &t.ipc),
    );
    if let Some(sp) = &t.speedup {
        let _ = write!(s, ", {}", ci_fields("speedup", sp));
    }
    let _ = write!(s, ", \"epi_nj\": {:.6}", t.epi_nj);
    if let Some(inc) = t.incumbent {
        let _ = write!(s, ", \"incumbent\": \"{inc}\"");
    }
    // Clean rows omit the supervision fields, keeping faults-off
    // reports byte-identical to pre-supervision ones.
    if !t.is_clean() {
        push_status_fields(&mut s, t.status, t.attempts, t.error.as_deref());
    }
    s
}

fn workload_json(w: &WorkloadOutcome) -> String {
    let mut s = String::with_capacity(1024);
    let _ = writeln!(
        s,
        "    {{\"workload\": \"{}\", \"suite\": \"{}\", \"trials\": {}, \
         \"eliminated\": {}, \"interval_sims\": {},",
        w.workload,
        w.suite,
        w.trials.len(),
        w.eliminated.len(),
        w.interval_sims
    );
    let _ = writeln!(s, "     \"bl\": {{{}}},", trial_fields(&w.bl));
    let _ = writeln!(s, "     \"best\": {{{}}},", trial_fields(w.best()));
    if let Some(r3) = w.r3() {
        let _ = writeln!(s, "     \"r3\": {{{}}},", trial_fields(r3));
    }
    let pareto = pareto_indices(&w.trials);
    s.push_str("     \"pareto\": [");
    for (j, &i) in pareto.iter().enumerate() {
        let t = &w.trials[i];
        let _ = write!(
            s,
            "{}{{\"id\": \"{}\", \"ipc_mean\": {:.6}, \"epi_nj\": {:.6}}}",
            if j > 0 { ", " } else { "" },
            t.id,
            t.ipc.mean,
            t.epi_nj
        );
    }
    s.push_str("],\n");
    s.push_str("     \"ranked\": [\n");
    for (j, t) in w.trials.iter().enumerate() {
        let _ = writeln!(
            s,
            "       {{{}}}{}",
            trial_fields(t),
            if j + 1 < w.trials.len() { "," } else { "" }
        );
    }
    s.push_str("     ]}");
    s
}

/// Serializes the search result as deterministic `r3dla-dse-v1` JSON.
pub fn to_json(r: &DseResult) -> String {
    let mut out = String::with_capacity(512 + r.workloads.len() * 2048);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"r3dla-dse-v1\",\n");
    let _ = writeln!(
        out,
        "  \"scale\": \"{}\",",
        crate::search::scale_name(r.scale)
    );
    let _ = writeln!(out, "  \"sample\": \"{}\",", r.sample.label());
    let _ = writeln!(out, "  \"strategy\": \"{}\",", r.strategy);
    let _ = writeln!(out, "  \"space_points\": {},", r.space_points);
    out.push_str("  \"workloads\": [\n");
    for (i, w) in r.workloads.iter().enumerate() {
        out.push_str(&workload_json(w));
        if i + 1 < r.workloads.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human summary table (one row per workload) printed to
/// stderr by the CLI.
pub fn summary_markdown(r: &DseResult) -> String {
    let mut s = String::new();
    s.push_str("| workload | best config | best ipc | speedup vs bl | r3 ipc | pareto |\n");
    s.push_str("|---|---|---|---|---|---|\n");
    for w in &r.workloads {
        let best = w.best();
        let speedup = best
            .speedup
            .as_ref()
            .map(|sp| format!("{:.3} ± {:.3}", sp.mean, sp.half))
            .unwrap_or_else(|| "-".to_string());
        let r3 = w
            .r3()
            .map(|t| format!("{:.3}", t.ipc.mean))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            s,
            "| {} | {} | {:.3} ± {:.3} | {} | {} | {} pts |",
            w.workload,
            best.label,
            best.ipc.mean,
            best.ipc.half,
            speedup,
            r3,
            pareto_indices(&w.trials).len()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: &str, ipc: f64, epi: f64) -> TrialSummary {
        TrialSummary {
            id: id.to_string(),
            label: format!("trial-{id}"),
            incumbent: None,
            intervals: 3,
            ipc: MeanCi {
                mean: ipc,
                half: 0.1,
                n: 3,
            },
            epi_nj: epi,
            speedup: None,
            any_empty: false,
            status: r3dla_bench::CellStatus::Ok,
            attempts: 3,
            error: None,
        }
    }

    #[test]
    fn pareto_keeps_only_undominated_trials() {
        // Sorted by IPC desc already. (1.2, 5.0) dominates (1.1, 6.0);
        // (0.9, 2.0) survives on energy.
        let trials = vec![t("a", 1.2, 5.0), t("b", 1.1, 6.0), t("c", 0.9, 2.0)];
        assert_eq!(pareto_indices(&trials), vec![0, 2]);
        // A single trial is trivially on the frontier.
        assert_eq!(pareto_indices(&trials[..1]), vec![0]);
        assert!(pareto_indices(&[]).is_empty());
    }

    #[test]
    fn trial_fields_include_optionals_only_when_present() {
        let mut a = t("a", 1.0, 3.0);
        let s = trial_fields(&a);
        assert!(s.contains("\"ipc_mean\": 1.000000"));
        assert!(!s.contains("speedup"));
        assert!(!s.contains("incumbent"));
        a.speedup = Some(MeanCi {
            mean: 1.5,
            half: 0.2,
            n: 3,
        });
        a.incumbent = Some("r3");
        let s = trial_fields(&a);
        assert!(s.contains("\"speedup_mean\": 1.500000"));
        assert!(s.contains("\"incumbent\": \"r3\""));
        assert!(!s.contains("\"status\""), "clean rows omit status fields");
    }

    #[test]
    fn trial_fields_carry_status_only_for_unclean_rows() {
        let mut a = t("a", 1.0, 3.0);
        a.status = r3dla_bench::CellStatus::Panicked;
        a.attempts = 9;
        a.error = Some("boom \"quoted\"".to_string());
        let s = trial_fields(&a);
        assert!(s.contains("\"status\": \"panicked\""));
        assert!(s.contains("\"attempts\": 9"));
        assert!(s.contains("\"error\": \"boom \\\"quoted\\\"\""));
        // A retried-but-recovered trial also surfaces its attempts.
        let mut b = t("b", 1.0, 3.0);
        b.attempts = 5;
        assert!(trial_fields(&b).contains("\"status\": \"ok\", \"attempts\": 5"));
    }
}
