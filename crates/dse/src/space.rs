//! The declarative search space: which knobs exist, which values each
//! knob may take, and how a chosen point materializes into a runnable
//! `(DlaConfig, SkeletonOptions)` pair.
//!
//! A space is a small cartesian product. Points are addressed by a flat
//! mixed-radix index (knob order is fixed), which gives every strategy —
//! exhaustive sweep, seeded random sampling, successive halving — the
//! same cheap, deterministic enumeration primitive, and lets candidate
//! sets be deduplicated as plain `u64` sets.

use r3dla_core::{DlaConfig, RecycleMode, SkeletonOptions};

/// Number of knobs in a [`SearchSpace`].
pub const KNOBS: usize = 11;

/// A declarative `DlaConfig × SkeletonOptions` search space: one list of
/// candidate values per knob. Every list must be non-empty; index 0 of
/// each list is the knob's default.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// T1 strided-prefetch offload (*reduce*) on/off.
    pub t1: Vec<bool>,
    /// T1 table entries.
    pub t1_entries: Vec<usize>,
    /// Value reuse (*reuse*) on/off.
    pub value_reuse: Vec<bool>,
    /// Pending value-reuse entries retained MT-side.
    pub vr_capacity: Vec<usize>,
    /// Skeleton recycling (*recycle*): `false` = off, `true` = the
    /// dynamic per-loop controller.
    pub recycle_dynamic: Vec<bool>,
    /// Branch-outcome-queue capacity (bounds look-ahead depth).
    pub boq_capacity: Vec<usize>,
    /// Footnote-queue capacity.
    pub fq_capacity: Vec<usize>,
    /// MT-side L2 prefetcher (`None` disables it).
    pub mt_l2_prefetcher: Vec<Option<&'static str>>,
    /// MT fetch-buffer capacity (the paper's FB optimization).
    pub fetch_buffer: Vec<usize>,
    /// Skeleton seed threshold: L1 miss rate above which a memory
    /// instruction seeds the backward slice.
    pub l1_seed_rate: Vec<f64>,
    /// Skeleton bias threshold: branch bias above which LT treats a
    /// conditional branch as unconditional.
    pub bias_threshold: Vec<f64>,
}

/// One chosen point: a value index per knob, in [`SearchSpace`] knob
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrialPoint(pub [usize; KNOBS]);

impl SearchSpace {
    /// The full default space (3072 points): every `DlaConfig` knob the
    /// paper ablates plus two skeleton-construction thresholds.
    pub fn full() -> Self {
        Self {
            t1: vec![false, true],
            t1_entries: vec![16, 8],
            value_reuse: vec![false, true],
            vr_capacity: vec![32, 16],
            recycle_dynamic: vec![false, true],
            boq_capacity: vec![512, 256],
            fq_capacity: vec![128, 64],
            mt_l2_prefetcher: vec![Some("bop"), Some("stride"), None],
            fetch_buffer: vec![8, 32],
            l1_seed_rate: vec![0.01, 0.05],
            bias_threshold: vec![0.995, 0.9],
        }
    }

    /// A 16-point smoke space sweeping only the three R3 optimizations
    /// and the fetch buffer (everything else fixed at the paper default,
    /// so no skeleton regeneration is needed). CI's `dse-smoke` job and
    /// the integration tests use this.
    pub fn quick() -> Self {
        Self {
            t1: vec![false, true],
            t1_entries: vec![16],
            value_reuse: vec![false, true],
            vr_capacity: vec![32],
            recycle_dynamic: vec![false, true],
            boq_capacity: vec![512],
            fq_capacity: vec![128],
            mt_l2_prefetcher: vec![Some("bop")],
            fetch_buffer: vec![8, 32],
            l1_seed_rate: vec![0.01],
            bias_threshold: vec![0.995],
        }
    }

    /// Resolves a space preset by CLI name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "full" => Some(Self::full()),
            "quick" => Some(Self::quick()),
            _ => None,
        }
    }

    /// Per-knob cardinalities, in knob order.
    pub fn dims(&self) -> [usize; KNOBS] {
        [
            self.t1.len(),
            self.t1_entries.len(),
            self.value_reuse.len(),
            self.vr_capacity.len(),
            self.recycle_dynamic.len(),
            self.boq_capacity.len(),
            self.fq_capacity.len(),
            self.mt_l2_prefetcher.len(),
            self.fetch_buffer.len(),
            self.l1_seed_rate.len(),
            self.bias_threshold.len(),
        ]
    }

    /// Total number of points (the product of the knob cardinalities).
    pub fn size(&self) -> u64 {
        self.dims().iter().map(|&d| d as u64).product()
    }

    /// Decodes a flat mixed-radix index into a point. Panics if `flat`
    /// is out of range.
    pub fn point(&self, flat: u64) -> TrialPoint {
        assert!(flat < self.size(), "flat index {flat} out of space");
        let dims = self.dims();
        let mut rest = flat;
        let mut idx = [0usize; KNOBS];
        for k in (0..KNOBS).rev() {
            idx[k] = (rest % dims[k] as u64) as usize;
            rest /= dims[k] as u64;
        }
        TrialPoint(idx)
    }

    /// Encodes a point back to its flat index.
    pub fn flat(&self, p: &TrialPoint) -> u64 {
        let mut flat = 0u64;
        for (&dim, &i) in self.dims().iter().zip(&p.0) {
            debug_assert!(i < dim);
            flat = flat * dim as u64 + i as u64;
        }
        flat
    }

    /// Materializes a point into the simulator configuration it denotes.
    /// Knobs build on [`DlaConfig::dla`] / [`SkeletonOptions::default`],
    /// so the all-zeros point of [`full`](Self::full) is exactly the
    /// baseline DLA.
    pub fn materialize(&self, p: &TrialPoint) -> (DlaConfig, SkeletonOptions) {
        let i = &p.0;
        let mut cfg = DlaConfig::dla();
        cfg.t1 = self.t1[i[0]];
        cfg.t1_entries = self.t1_entries[i[1]];
        cfg.value_reuse = self.value_reuse[i[2]];
        cfg.vr_capacity = self.vr_capacity[i[3]];
        cfg.recycle = if self.recycle_dynamic[i[4]] {
            RecycleMode::Dynamic
        } else {
            RecycleMode::Off
        };
        cfg.boq_capacity = self.boq_capacity[i[5]];
        cfg.fq_capacity = self.fq_capacity[i[6]];
        cfg.mt_l2_prefetcher = self.mt_l2_prefetcher[i[7]];
        cfg.mt_core.fetch_buffer = self.fetch_buffer[i[8]];
        let opt = SkeletonOptions {
            l1_seed_rate: self.l1_seed_rate[i[9]],
            bias_threshold: self.bias_threshold[i[10]],
            ..SkeletonOptions::default()
        };
        (cfg, opt)
    }

    /// A short human-readable knob listing for reports,
    /// e.g. `t1=on,vr=on,rc=dyn,fb=32`.
    pub fn label(&self, p: &TrialPoint) -> String {
        let i = &p.0;
        let onoff = |b: bool| if b { "on" } else { "off" };
        format!(
            "t1={},t1e={},vr={},vrc={},rc={},boq={},fq={},pf={},fb={},seed={:?},bias={:?}",
            onoff(self.t1[i[0]]),
            self.t1_entries[i[1]],
            onoff(self.value_reuse[i[2]]),
            self.vr_capacity[i[3]],
            if self.recycle_dynamic[i[4]] {
                "dyn"
            } else {
                "off"
            },
            self.boq_capacity[i[5]],
            self.fq_capacity[i[6]],
            self.mt_l2_prefetcher[i[7]].unwrap_or("none"),
            self.fetch_buffer[i[8]],
            self.l1_seed_rate[i[9]],
            self.bias_threshold[i[10]],
        )
    }

    /// The point denoting [`DlaConfig::dla`] with default skeleton
    /// options, if the space contains it (presets do: index 0 of every
    /// knob is the default).
    pub fn dla_point(&self) -> Option<TrialPoint> {
        self.point_of(&DlaConfig::dla(), &SkeletonOptions::default())
    }

    /// The point denoting [`DlaConfig::r3`] with default skeleton
    /// options, if the space contains it. The search always evaluates
    /// this incumbent, so a budgeted run's best-found config can never
    /// lose to the paper's shipped configuration.
    pub fn r3_point(&self) -> Option<TrialPoint> {
        self.point_of(&DlaConfig::r3(), &SkeletonOptions::default())
    }

    /// Finds the point denoting `(cfg, opt)`, if every relevant knob
    /// value is present in the space.
    pub fn point_of(&self, cfg: &DlaConfig, opt: &SkeletonOptions) -> Option<TrialPoint> {
        let pos = |ok: &mut bool, found: Option<usize>| -> usize {
            match found {
                Some(i) => i,
                None => {
                    *ok = false;
                    0
                }
            }
        };
        let mut ok = true;
        let recycle_dyn = match cfg.recycle {
            RecycleMode::Off => false,
            RecycleMode::Dynamic => true,
            RecycleMode::Static(_) => return None,
        };
        let idx = [
            pos(&mut ok, self.t1.iter().position(|&v| v == cfg.t1)),
            pos(
                &mut ok,
                self.t1_entries.iter().position(|&v| v == cfg.t1_entries),
            ),
            pos(
                &mut ok,
                self.value_reuse.iter().position(|&v| v == cfg.value_reuse),
            ),
            pos(
                &mut ok,
                self.vr_capacity.iter().position(|&v| v == cfg.vr_capacity),
            ),
            pos(
                &mut ok,
                self.recycle_dynamic.iter().position(|&v| v == recycle_dyn),
            ),
            pos(
                &mut ok,
                self.boq_capacity
                    .iter()
                    .position(|&v| v == cfg.boq_capacity),
            ),
            pos(
                &mut ok,
                self.fq_capacity.iter().position(|&v| v == cfg.fq_capacity),
            ),
            pos(
                &mut ok,
                self.mt_l2_prefetcher
                    .iter()
                    .position(|&v| v == cfg.mt_l2_prefetcher),
            ),
            pos(
                &mut ok,
                self.fetch_buffer
                    .iter()
                    .position(|&v| v == cfg.mt_core.fetch_buffer),
            ),
            pos(
                &mut ok,
                self.l1_seed_rate
                    .iter()
                    .position(|&v| v == opt.l1_seed_rate),
            ),
            pos(
                &mut ok,
                self.bias_threshold
                    .iter()
                    .position(|&v| v == opt.bias_threshold),
            ),
        ];
        let p = TrialPoint(idx);
        // The remaining materialized fields must also match (a space
        // cannot represent, say, a custom reboot cost).
        if !ok {
            return None;
        }
        let (mcfg, mopt) = self.materialize(&p);
        (mcfg.canonical_key() == cfg.canonical_key() && mopt == *opt).then_some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_round_trips() {
        let space = SearchSpace::full();
        let n = space.size();
        assert!(n > 1_000, "full space must be a real product ({n})");
        for flat in [0, 1, 17, n / 2, n - 1] {
            let p = space.point(flat);
            assert_eq!(space.flat(&p), flat);
        }
    }

    #[test]
    fn zero_point_is_baseline_dla() {
        let space = SearchSpace::full();
        let (cfg, opt) = space.materialize(&space.point(0));
        assert_eq!(cfg.canonical_key(), DlaConfig::dla().canonical_key());
        assert_eq!(opt, SkeletonOptions::default());
    }

    #[test]
    fn presets_contain_the_incumbents() {
        for space in [SearchSpace::full(), SearchSpace::quick()] {
            let dla = space.dla_point().expect("dla point");
            let r3 = space.r3_point().expect("r3 point");
            assert_ne!(dla, r3);
            let (cfg, _) = space.materialize(&r3);
            assert_eq!(cfg.canonical_key(), DlaConfig::r3().canonical_key());
        }
        assert_eq!(SearchSpace::quick().size(), 16);
    }

    #[test]
    fn labels_and_keys_distinguish_points() {
        let space = SearchSpace::quick();
        let mut labels = std::collections::HashSet::new();
        let mut keys = std::collections::HashSet::new();
        for flat in 0..space.size() {
            let p = space.point(flat);
            assert!(labels.insert(space.label(&p)));
            let (cfg, opt) = space.materialize(&p);
            assert!(keys.insert(format!("{};{}", cfg.canonical_key(), opt.canonical_key())));
        }
    }

    #[test]
    fn by_name_resolves_presets() {
        assert!(SearchSpace::by_name("full").is_some());
        assert!(SearchSpace::by_name("quick").is_some());
        assert!(SearchSpace::by_name("huge").is_none());
    }
}
