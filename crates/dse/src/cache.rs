//! The content-addressed, on-disk result cache behind resumable
//! searches.
//!
//! Every measured cell — one (workload, configuration, sample spec,
//! interval) — is stored in its own file named by the 64-bit FxHash of
//! the cell's full canonical description. The description itself is kept
//! inside the file and verified on load, so a (vanishingly unlikely)
//! hash collision degrades to a cache miss instead of silently serving
//! the wrong result.
//!
//! Two properties matter more than speed here:
//!
//! * **resumability** — files are written atomically (temp file +
//!   rename), so a search killed mid-run leaves only whole entries and
//!   the next run picks up exactly where it stopped;
//! * **bit-exactness** — counters are stored as decimal `u64`s and every
//!   float as its IEEE-754 bit pattern, so a result that round-trips
//!   through the cache is *identical* to the freshly computed one and a
//!   resumed search reproduces a fresh report byte-for-byte.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use r3dla_bench::supervise::{FaultKind, FaultPlan};
use r3dla_core::WindowReport;
use r3dla_isa::FxHasher;

/// Schema tag stored in (and expected from) every cache entry.
pub const CACHE_SCHEMA: &str = "r3dla-dse-cache-v1";

/// A cell's content address: the canonical description and its hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// The full canonical description of the cell.
    pub descr: String,
    /// 64-bit FxHash of `descr` — the entry's file name.
    pub hash: u64,
}

impl CacheKey {
    /// Builds the key for one measured cell. `trial_key` is the
    /// configuration's canonical serialization
    /// ([`DlaConfig::canonical_key`](r3dla_core::DlaConfig::canonical_key)
    /// plus skeleton options, or the single-core baseline descriptor);
    /// `workload_fp` is [`program_fingerprint`] of the workload binary.
    pub fn cell(
        workload: &str,
        workload_fp: u64,
        scale: &str,
        sample_label: &str,
        interval: usize,
        trial_key: &str,
    ) -> Self {
        let descr = format!(
            "{CACHE_SCHEMA}|workload={workload}|fp={workload_fp:016x}|scale={scale}\
             |sample={sample_label}|interval={interval}|{trial_key}"
        );
        let hash = fxhash_str(&descr);
        Self { descr, hash }
    }

    /// The entry's file name (16 hex digits + extension).
    pub fn file_name(&self) -> String {
        format!("{:016x}.dsecache", self.hash)
    }
}

/// Hashes a string with the simulator's vendored FxHasher (stable across
/// runs and platforms — no randomized state).
pub fn fxhash_str(s: &str) -> u64 {
    use std::hash::Hasher as _;
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// A stable fingerprint of a workload binary: entry PC, static
/// instruction listing and the initial data image. Any change to the
/// program — code or image — moves the fingerprint and therefore every
/// cache key derived from it.
pub fn program_fingerprint(program: &r3dla_isa::Program) -> u64 {
    use std::hash::Hasher as _;
    let mut h = FxHasher::default();
    h.write_u64(program.entry());
    h.write_u64(program.len() as u64);
    h.write(program.disassemble().as_bytes());
    for &(addr, word) in program.image() {
        h.write_u64(addr);
        h.write_u64(word);
    }
    h.finish()
}

/// One measured cell: the detailed window report plus the window's
/// modeled energy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntervalResult {
    /// The detailed window report.
    pub report: WindowReport,
    /// Total modeled energy over the measured window (both cores plus
    /// DRAM), in joules.
    pub energy_j: f64,
}

impl IntervalResult {
    /// Serializes the result (plus its key description) into the cache
    /// entry format: a line-oriented text record, floats as bit
    /// patterns.
    pub fn serialize(&self, key: &CacheKey) -> String {
        let r = &self.report;
        format!(
            "{CACHE_SCHEMA}\nkey {}\ncycles {}\nmt_committed {}\nlt_committed {}\n\
             dram_traffic {}\nmt_l1d_misses {}\nmt_l1d_accesses {}\nreboots {}\n\
             mt_ipc_bits {:016x}\nenergy_j_bits {:016x}\n",
            key.descr,
            r.cycles,
            r.mt_committed,
            r.lt_committed,
            r.dram_traffic,
            r.mt_l1d_misses,
            r.mt_l1d_accesses,
            r.reboots,
            r.mt_ipc.to_bits(),
            self.energy_j.to_bits(),
        )
    }

    /// Parses a cache entry, verifying both the schema line and that the
    /// stored key description matches `key` exactly (hash-collision and
    /// truncated-write guard). Returns `None` on any mismatch.
    pub fn deserialize(text: &str, key: &CacheKey) -> Option<Self> {
        let mut lines = text.lines();
        if lines.next()? != CACHE_SCHEMA {
            return None;
        }
        if lines.next()?.strip_prefix("key ")? != key.descr {
            return None;
        }
        let mut field =
            |name: &str| -> Option<&str> { lines.next()?.strip_prefix(name).map(str::trim_start) };
        let cycles: u64 = field("cycles")?.parse().ok()?;
        let mt_committed: u64 = field("mt_committed")?.parse().ok()?;
        let lt_committed: u64 = field("lt_committed")?.parse().ok()?;
        let dram_traffic: u64 = field("dram_traffic")?.parse().ok()?;
        let mt_l1d_misses: u64 = field("mt_l1d_misses")?.parse().ok()?;
        let mt_l1d_accesses: u64 = field("mt_l1d_accesses")?.parse().ok()?;
        let reboots: u64 = field("reboots")?.parse().ok()?;
        let mt_ipc = f64::from_bits(u64::from_str_radix(field("mt_ipc_bits")?, 16).ok()?);
        let energy_j = f64::from_bits(u64::from_str_radix(field("energy_j_bits")?, 16).ok()?);
        Some(Self {
            report: WindowReport {
                cycles,
                mt_committed,
                lt_committed,
                mt_ipc,
                dram_traffic,
                mt_l1d_misses,
                mt_l1d_accesses,
                reboots,
            },
            energy_j,
        })
    }
}

/// Self-healing counters of a [`ResultCache`] — stderr diagnostics
/// only; like hits/misses they depend on disk state and must never
/// reach the deterministic report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheHealth {
    /// Readable-but-unparseable entries quarantined to `*.corrupt`.
    pub corrupt: usize,
    /// Store attempts that failed even after the retry.
    pub store_errors: usize,
    /// Orphaned `*.tmp*` files swept when the cache was opened.
    pub swept_orphans: usize,
}

/// Hit/miss tally of a [`ResultCache`] — stderr diagnostics only; like
/// [`CacheHealth`] these depend on disk state and must never reach the
/// deterministic report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from disk.
    pub hits: usize,
    /// Lookups that fell through to simulation (corrupt entries count
    /// here too — they are quarantined and re-simulated).
    pub misses: usize,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> usize {
        self.hits + self.misses
    }
}

/// The on-disk cache: a directory of [`CacheKey`]-named entries, shared
/// read/write by every worker thread of a search.
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    corrupt: AtomicUsize,
    store_errors: AtomicUsize,
    swept: usize,
    plan: FaultPlan,
}

impl ResultCache {
    fn new(dir: Option<PathBuf>, swept: usize, plan: FaultPlan) -> Self {
        Self {
            dir,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            corrupt: AtomicUsize::new(0),
            store_errors: AtomicUsize::new(0),
            swept,
            plan,
        }
    }

    /// A disabled cache: every lookup misses and stores are dropped
    /// (`--no-cache`).
    pub fn disabled() -> Self {
        Self::new(None, 0, FaultPlan::default())
    }

    /// Opens (creating if needed) the cache directory, sweeping any
    /// orphaned temp files a crashed process left behind. The fault plan
    /// comes from `R3DLA_FAULT_PLAN`.
    pub fn at(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::at_with_plan(dir, FaultPlan::from_env())
    }

    /// [`ResultCache::at`] with an explicit fault-injection plan (tests
    /// drive store faults deterministically through this).
    pub fn at_with_plan(dir: impl Into<PathBuf>, plan: FaultPlan) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let swept = sweep_orphans(&dir);
        if swept > 0 {
            r3dla_obs::diag!("r3dla-dse: swept {swept} orphaned cache temp file(s)");
            r3dla_obs::counters::add("dse.cache.swept_orphans", swept as u64);
        }
        Ok(Self::new(Some(dir), swept, plan))
    }

    /// Whether the cache persists to disk.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Looks up a cell. A missing entry is a plain miss; a
    /// readable-but-unparseable one (corrupt, truncated, or a true hash
    /// collision) is also a miss, but the sick file is quarantined to
    /// `<name>.corrupt` and counted — left in place it would shadow
    /// every future store of the same key and re-miss forever.
    pub fn load(&self, key: &CacheKey) -> Option<IntervalResult> {
        let dir = self.dir.as_ref()?;
        let path = dir.join(key.file_name());
        let loaded = match std::fs::read_to_string(&path) {
            Ok(text) => match IntervalResult::deserialize(&text, key) {
                Some(r) => Some(r),
                None => {
                    self.quarantine_corrupt(&path);
                    None
                }
            },
            Err(_) => None,
        };
        match loaded {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                r3dla_obs::counters::add("dse.cache.hits", 1);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                r3dla_obs::counters::add("dse.cache.misses", 1);
                None
            }
        }
    }

    fn quarantine_corrupt(&self, path: &Path) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        r3dla_obs::counters::add("dse.cache.corrupt", 1);
        let mut quarantined = path.as_os_str().to_os_string();
        quarantined.push(".corrupt");
        if std::fs::rename(path, &quarantined).is_err() {
            // Removal still unblocks the key for a fresh store.
            let _ = std::fs::remove_file(path);
        }
        r3dla_obs::diag!(
            "r3dla-dse: quarantined corrupt cache entry {}",
            path.display()
        );
    }

    /// Stores a cell atomically (unique temp file, then rename). A
    /// failed write is retried once — transient I/O errors (ENOSPC
    /// races, a concurrent open's orphan sweep) should not cost the
    /// entry — and surfaced as an `Err` plus a health counter rather
    /// than swallowed: a campaign that cannot persist results must say
    /// so before a resume silently re-simulates everything.
    pub fn store(&self, key: &CacheKey, result: &IntervalResult) -> std::io::Result<()> {
        let Some(dir) = self.dir.as_ref() else {
            return Ok(());
        };
        let tmp = dir.join(format!("{:016x}.tmp{}", key.hash, std::process::id()));
        // Injected crash: the temp file is written but the process
        // "dies" before the rename — exactly the orphan a real kill
        // mid-store leaves for the next open to sweep.
        if self.plan.fires(FaultKind::StoreCrash, &key.descr, 1) {
            let _ = std::fs::write(&tmp, result.serialize(key).as_bytes());
            self.store_errors.fetch_add(1, Ordering::Relaxed);
            r3dla_obs::counters::add("dse.cache.store_errors", 1);
            return Err(std::io::Error::other("injected store crash"));
        }
        let mut last_err = None;
        for attempt in 1..=2u32 {
            let write = || -> std::io::Result<()> {
                if self.plan.fires(FaultKind::StoreIo, &key.descr, attempt) {
                    return Err(std::io::Error::other(format!(
                        "injected store i/o fault (attempt {attempt})"
                    )));
                }
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(result.serialize(key).as_bytes())?;
                f.sync_all()?;
                std::fs::rename(&tmp, dir.join(key.file_name()))
            };
            match write() {
                Ok(()) => return Ok(()),
                Err(e) => {
                    let _ = std::fs::remove_file(&tmp);
                    last_err = Some(e);
                }
            }
        }
        let e = last_err.expect("loop always records an error before exiting");
        self.store_errors.fetch_add(1, Ordering::Relaxed);
        r3dla_obs::counters::add("dse.cache.store_errors", 1);
        r3dla_obs::diag!(
            "r3dla-dse: cache write failed for {} after retry: {e}",
            key.file_name()
        );
        Err(e)
    }

    /// Hits/misses counted so far — stderr diagnostics only; these
    /// depend on cache state and must never reach the deterministic
    /// report.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Self-healing counters accumulated so far (stderr diagnostics
    /// only, like [`ResultCache::stats`]).
    pub fn health(&self) -> CacheHealth {
        CacheHealth {
            corrupt: self.corrupt.load(Ordering::Relaxed),
            store_errors: self.store_errors.load(Ordering::Relaxed),
            swept_orphans: self.swept,
        }
    }
}

/// Removes every `*.tmp*` file in `dir` — write leftovers of crashed
/// processes (this one included: in-process "crash" injection leaves
/// same-pid orphans). Sweeping a temp file a *live* writer is about to
/// rename is safe: the writer's rename fails with `NotFound` and its
/// retry rewrites the entry. Returns the number removed.
fn sweep_orphans(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        if name.to_string_lossy().contains(".tmp") && std::fs::remove_file(entry.path()).is_ok() {
            swept += 1;
        }
    }
    swept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> IntervalResult {
        IntervalResult {
            report: WindowReport {
                cycles: 12_345,
                mt_committed: 5_000,
                lt_committed: 3_210,
                mt_ipc: 5_000.0 / 12_345.0,
                dram_traffic: 42,
                mt_l1d_misses: 7,
                mt_l1d_accesses: 900,
                reboots: 1,
            },
            energy_j: 1.234e-6,
        }
    }

    #[test]
    fn entry_round_trips_bit_exactly() {
        let key = CacheKey::cell("md5_like", 0xabcd, "tiny", "3:2000:none", 2, "cfg=x");
        let r = sample_result();
        let text = r.serialize(&key);
        let back = IntervalResult::deserialize(&text, &key).expect("round trip");
        assert_eq!(back, r);
        assert_eq!(back.report.mt_ipc.to_bits(), r.report.mt_ipc.to_bits());
        assert_eq!(back.energy_j.to_bits(), r.energy_j.to_bits());
    }

    #[test]
    fn mismatched_key_reads_as_miss() {
        let key = CacheKey::cell("md5_like", 1, "tiny", "3:2000:none", 0, "cfg=x");
        let other = CacheKey::cell("md5_like", 1, "tiny", "3:2000:none", 1, "cfg=x");
        let text = sample_result().serialize(&key);
        assert!(IntervalResult::deserialize(&text, &other).is_none());
        assert!(IntervalResult::deserialize("garbage", &key).is_none());
        assert!(IntervalResult::deserialize(&text[..text.len() / 2], &key).is_none());
    }

    #[test]
    fn key_components_all_move_the_hash() {
        let base = CacheKey::cell("w", 1, "tiny", "3:2000:none", 0, "cfg=x");
        let variants = [
            CacheKey::cell("w2", 1, "tiny", "3:2000:none", 0, "cfg=x"),
            CacheKey::cell("w", 2, "tiny", "3:2000:none", 0, "cfg=x"),
            CacheKey::cell("w", 1, "train", "3:2000:none", 0, "cfg=x"),
            CacheKey::cell("w", 1, "tiny", "4:2000:none", 0, "cfg=x"),
            CacheKey::cell("w", 1, "tiny", "3:2000:none", 1, "cfg=x"),
            CacheKey::cell("w", 1, "tiny", "3:2000:none", 0, "cfg=y"),
        ];
        let mut hashes = std::collections::HashSet::new();
        hashes.insert(base.hash);
        for v in &variants {
            assert!(hashes.insert(v.hash), "collision for {}", v.descr);
        }
    }

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("r3dla-dse-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_cache_stores_and_loads() {
        let dir = test_dir("basic");
        let cache = ResultCache::at_with_plan(&dir, FaultPlan::default()).unwrap();
        let key = CacheKey::cell("w", 1, "tiny", "3:2000:none", 0, "cfg=x");
        assert!(cache.load(&key).is_none());
        let r = sample_result();
        cache.store(&key, &r).unwrap();
        assert_eq!(cache.load(&key), Some(r));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.health(), CacheHealth::default());
        // A disabled cache ignores everything.
        let off = ResultCache::disabled();
        off.store(&key, &sample_result()).unwrap();
        assert!(off.load(&key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_then_heals() {
        let dir = test_dir("corrupt");
        let cache = ResultCache::at_with_plan(&dir, FaultPlan::default()).unwrap();
        let key = CacheKey::cell("w", 1, "tiny", "3:2000:none", 0, "cfg=x");
        cache.store(&key, &sample_result()).unwrap();
        std::fs::write(dir.join(key.file_name()), "not a cache entry\n").unwrap();
        assert!(cache.load(&key).is_none());
        assert_eq!(cache.health().corrupt, 1);
        let mut quarantined = dir.join(key.file_name()).into_os_string();
        quarantined.push(".corrupt");
        assert!(PathBuf::from(quarantined).exists());
        // The key is unblocked: a fresh store round-trips again.
        cache.store(&key, &sample_result()).unwrap();
        assert_eq!(cache.load(&key), Some(sample_result()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_orphaned_temp_files() {
        let dir = test_dir("sweep");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("00000000deadbeef.tmp4242"), "half-written").unwrap();
        std::fs::write(dir.join("keepme.corrupt"), "quarantined evidence").unwrap();
        let cache = ResultCache::at_with_plan(&dir, FaultPlan::default()).unwrap();
        assert_eq!(cache.health().swept_orphans, 1);
        assert!(!dir.join("00000000deadbeef.tmp4242").exists());
        // Quarantine files are evidence, not garbage: never swept.
        assert!(dir.join("keepme.corrupt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_store_crash_leaves_an_orphan_the_next_open_sweeps() {
        let dir = test_dir("crash");
        let plan = FaultPlan::parse("seed=1:store_crash=1.0").unwrap();
        let cache = ResultCache::at_with_plan(&dir, plan).unwrap();
        let key = CacheKey::cell("w", 1, "tiny", "3:2000:none", 0, "cfg=x");
        assert!(cache.store(&key, &sample_result()).is_err());
        assert_eq!(cache.health().store_errors, 1);
        assert!(cache.load(&key).is_none());
        let orphans = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .count();
        assert_eq!(orphans, 1);
        drop(cache);
        let healed = ResultCache::at_with_plan(&dir, FaultPlan::default()).unwrap();
        assert_eq!(healed.health().swept_orphans, 1);
        healed.store(&key, &sample_result()).unwrap();
        assert_eq!(healed.load(&key), Some(sample_result()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_store_io_fault_is_absorbed_by_the_retry() {
        let key = CacheKey::cell("w", 1, "tiny", "3:2000:none", 0, "cfg=x");
        // Find a seed whose 50% i/o fault hits attempt 1 but not the
        // retry: the store must then succeed with no caller-visible
        // error, leaving only the health counter untouched.
        let plan = (0..10_000u64)
            .map(|s| FaultPlan::parse(&format!("seed={s}:store_io=0.5")).unwrap())
            .find(|p| {
                p.fires(FaultKind::StoreIo, &key.descr, 1)
                    && !p.fires(FaultKind::StoreIo, &key.descr, 2)
            })
            .expect("some seed separates the two attempts");
        let dir = test_dir("retry");
        let cache = ResultCache::at_with_plan(&dir, plan).unwrap();
        cache.store(&key, &sample_result()).unwrap();
        assert_eq!(cache.load(&key), Some(sample_result()));
        assert_eq!(cache.health().store_errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
