//! The content-addressed, on-disk result cache behind resumable
//! searches.
//!
//! Every measured cell — one (workload, configuration, sample spec,
//! interval) — is stored in its own file named by the 64-bit FxHash of
//! the cell's full canonical description. The description itself is kept
//! inside the file and verified on load, so a (vanishingly unlikely)
//! hash collision degrades to a cache miss instead of silently serving
//! the wrong result.
//!
//! Two properties matter more than speed here:
//!
//! * **resumability** — files are written atomically (temp file +
//!   rename), so a search killed mid-run leaves only whole entries and
//!   the next run picks up exactly where it stopped;
//! * **bit-exactness** — counters are stored as decimal `u64`s and every
//!   float as its IEEE-754 bit pattern, so a result that round-trips
//!   through the cache is *identical* to the freshly computed one and a
//!   resumed search reproduces a fresh report byte-for-byte.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use r3dla_core::WindowReport;
use r3dla_isa::FxHasher;

/// Schema tag stored in (and expected from) every cache entry.
pub const CACHE_SCHEMA: &str = "r3dla-dse-cache-v1";

/// A cell's content address: the canonical description and its hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// The full canonical description of the cell.
    pub descr: String,
    /// 64-bit FxHash of `descr` — the entry's file name.
    pub hash: u64,
}

impl CacheKey {
    /// Builds the key for one measured cell. `trial_key` is the
    /// configuration's canonical serialization
    /// ([`DlaConfig::canonical_key`](r3dla_core::DlaConfig::canonical_key)
    /// plus skeleton options, or the single-core baseline descriptor);
    /// `workload_fp` is [`program_fingerprint`] of the workload binary.
    pub fn cell(
        workload: &str,
        workload_fp: u64,
        scale: &str,
        sample_label: &str,
        interval: usize,
        trial_key: &str,
    ) -> Self {
        let descr = format!(
            "{CACHE_SCHEMA}|workload={workload}|fp={workload_fp:016x}|scale={scale}\
             |sample={sample_label}|interval={interval}|{trial_key}"
        );
        let hash = fxhash_str(&descr);
        Self { descr, hash }
    }

    /// The entry's file name (16 hex digits + extension).
    pub fn file_name(&self) -> String {
        format!("{:016x}.dsecache", self.hash)
    }
}

/// Hashes a string with the simulator's vendored FxHasher (stable across
/// runs and platforms — no randomized state).
pub fn fxhash_str(s: &str) -> u64 {
    use std::hash::Hasher as _;
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// A stable fingerprint of a workload binary: entry PC, static
/// instruction listing and the initial data image. Any change to the
/// program — code or image — moves the fingerprint and therefore every
/// cache key derived from it.
pub fn program_fingerprint(program: &r3dla_isa::Program) -> u64 {
    use std::hash::Hasher as _;
    let mut h = FxHasher::default();
    h.write_u64(program.entry());
    h.write_u64(program.len() as u64);
    h.write(program.disassemble().as_bytes());
    for &(addr, word) in program.image() {
        h.write_u64(addr);
        h.write_u64(word);
    }
    h.finish()
}

/// One measured cell: the detailed window report plus the window's
/// modeled energy.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalResult {
    /// The detailed window report.
    pub report: WindowReport,
    /// Total modeled energy over the measured window (both cores plus
    /// DRAM), in joules.
    pub energy_j: f64,
}

impl IntervalResult {
    /// Serializes the result (plus its key description) into the cache
    /// entry format: a line-oriented text record, floats as bit
    /// patterns.
    pub fn serialize(&self, key: &CacheKey) -> String {
        let r = &self.report;
        format!(
            "{CACHE_SCHEMA}\nkey {}\ncycles {}\nmt_committed {}\nlt_committed {}\n\
             dram_traffic {}\nmt_l1d_misses {}\nmt_l1d_accesses {}\nreboots {}\n\
             mt_ipc_bits {:016x}\nenergy_j_bits {:016x}\n",
            key.descr,
            r.cycles,
            r.mt_committed,
            r.lt_committed,
            r.dram_traffic,
            r.mt_l1d_misses,
            r.mt_l1d_accesses,
            r.reboots,
            r.mt_ipc.to_bits(),
            self.energy_j.to_bits(),
        )
    }

    /// Parses a cache entry, verifying both the schema line and that the
    /// stored key description matches `key` exactly (hash-collision and
    /// truncated-write guard). Returns `None` on any mismatch.
    pub fn deserialize(text: &str, key: &CacheKey) -> Option<Self> {
        let mut lines = text.lines();
        if lines.next()? != CACHE_SCHEMA {
            return None;
        }
        if lines.next()?.strip_prefix("key ")? != key.descr {
            return None;
        }
        let mut field =
            |name: &str| -> Option<&str> { lines.next()?.strip_prefix(name).map(str::trim_start) };
        let cycles: u64 = field("cycles")?.parse().ok()?;
        let mt_committed: u64 = field("mt_committed")?.parse().ok()?;
        let lt_committed: u64 = field("lt_committed")?.parse().ok()?;
        let dram_traffic: u64 = field("dram_traffic")?.parse().ok()?;
        let mt_l1d_misses: u64 = field("mt_l1d_misses")?.parse().ok()?;
        let mt_l1d_accesses: u64 = field("mt_l1d_accesses")?.parse().ok()?;
        let reboots: u64 = field("reboots")?.parse().ok()?;
        let mt_ipc = f64::from_bits(u64::from_str_radix(field("mt_ipc_bits")?, 16).ok()?);
        let energy_j = f64::from_bits(u64::from_str_radix(field("energy_j_bits")?, 16).ok()?);
        Some(Self {
            report: WindowReport {
                cycles,
                mt_committed,
                lt_committed,
                mt_ipc,
                dram_traffic,
                mt_l1d_misses,
                mt_l1d_accesses,
                reboots,
            },
            energy_j,
        })
    }
}

/// The on-disk cache: a directory of [`CacheKey`]-named entries, shared
/// read/write by every worker thread of a search.
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ResultCache {
    /// A disabled cache: every lookup misses and stores are dropped
    /// (`--no-cache`).
    pub fn disabled() -> Self {
        Self {
            dir: None,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Opens (creating if needed) the cache directory.
    pub fn at(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir: Some(dir),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        })
    }

    /// Whether the cache persists to disk.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Looks up a cell. A corrupt, truncated or mismatched entry reads
    /// as a miss.
    pub fn load(&self, key: &CacheKey) -> Option<IntervalResult> {
        let dir = self.dir.as_ref()?;
        let loaded = std::fs::read_to_string(dir.join(key.file_name()))
            .ok()
            .and_then(|text| IntervalResult::deserialize(&text, key));
        match loaded {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a cell atomically (unique temp file, then rename), so an
    /// interrupted search never leaves a half-written entry behind.
    pub fn store(&self, key: &CacheKey, result: &IntervalResult) {
        let Some(dir) = self.dir.as_ref() else {
            return;
        };
        let tmp = dir.join(format!("{:016x}.tmp{}", key.hash, std::process::id()));
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(result.serialize(key).as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, dir.join(key.file_name()))
        };
        if let Err(e) = write() {
            let _ = std::fs::remove_file(&tmp);
            eprintln!("r3dla-dse: cache write failed for {}: {e}", key.file_name());
        }
    }

    /// `(hits, misses)` counted so far — stderr diagnostics only; these
    /// depend on cache state and must never reach the deterministic
    /// report.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> IntervalResult {
        IntervalResult {
            report: WindowReport {
                cycles: 12_345,
                mt_committed: 5_000,
                lt_committed: 3_210,
                mt_ipc: 5_000.0 / 12_345.0,
                dram_traffic: 42,
                mt_l1d_misses: 7,
                mt_l1d_accesses: 900,
                reboots: 1,
            },
            energy_j: 1.234e-6,
        }
    }

    #[test]
    fn entry_round_trips_bit_exactly() {
        let key = CacheKey::cell("md5_like", 0xabcd, "tiny", "3:2000:none", 2, "cfg=x");
        let r = sample_result();
        let text = r.serialize(&key);
        let back = IntervalResult::deserialize(&text, &key).expect("round trip");
        assert_eq!(back, r);
        assert_eq!(back.report.mt_ipc.to_bits(), r.report.mt_ipc.to_bits());
        assert_eq!(back.energy_j.to_bits(), r.energy_j.to_bits());
    }

    #[test]
    fn mismatched_key_reads_as_miss() {
        let key = CacheKey::cell("md5_like", 1, "tiny", "3:2000:none", 0, "cfg=x");
        let other = CacheKey::cell("md5_like", 1, "tiny", "3:2000:none", 1, "cfg=x");
        let text = sample_result().serialize(&key);
        assert!(IntervalResult::deserialize(&text, &other).is_none());
        assert!(IntervalResult::deserialize("garbage", &key).is_none());
        assert!(IntervalResult::deserialize(&text[..text.len() / 2], &key).is_none());
    }

    #[test]
    fn key_components_all_move_the_hash() {
        let base = CacheKey::cell("w", 1, "tiny", "3:2000:none", 0, "cfg=x");
        let variants = [
            CacheKey::cell("w2", 1, "tiny", "3:2000:none", 0, "cfg=x"),
            CacheKey::cell("w", 2, "tiny", "3:2000:none", 0, "cfg=x"),
            CacheKey::cell("w", 1, "train", "3:2000:none", 0, "cfg=x"),
            CacheKey::cell("w", 1, "tiny", "4:2000:none", 0, "cfg=x"),
            CacheKey::cell("w", 1, "tiny", "3:2000:none", 1, "cfg=x"),
            CacheKey::cell("w", 1, "tiny", "3:2000:none", 0, "cfg=y"),
        ];
        let mut hashes = std::collections::HashSet::new();
        hashes.insert(base.hash);
        for v in &variants {
            assert!(hashes.insert(v.hash), "collision for {}", v.descr);
        }
    }

    #[test]
    fn disk_cache_stores_and_loads() {
        let dir = std::env::temp_dir().join(format!("r3dla-dse-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::at(&dir).unwrap();
        let key = CacheKey::cell("w", 1, "tiny", "3:2000:none", 0, "cfg=x");
        assert!(cache.load(&key).is_none());
        let r = sample_result();
        cache.store(&key, &r);
        assert_eq!(cache.load(&key), Some(r));
        assert_eq!(cache.stats(), (1, 1));
        // A disabled cache ignores everything.
        let off = ResultCache::disabled();
        off.store(&key, &sample_result());
        assert!(off.load(&key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
