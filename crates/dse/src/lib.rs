#![warn(missing_docs)]
//! Budget-aware design-space exploration for the R3-DLA simulator.
//!
//! The paper's *recycle* machinery and its §V ablations are, at heart, a
//! design-space search: the right skeleton/feature mix differs per
//! workload. This crate automates that search over the
//! `DlaConfig × SkeletonOptions` space using the sampled simulator
//! (`r3dla-sample`) as a cheap evaluator and the bench runner's worker
//! pool for parallelism. The pieces:
//!
//! * [`SearchSpace`] — the declarative knob space (T1, value reuse,
//!   recycling, queue capacities, prefetchers, fetch buffer, skeleton
//!   thresholds), addressed by flat mixed-radix indices;
//! * [`Strategy`] — exhaustive, seeded-random, or successive-halving
//!   walks under a trial budget, always including the `dla`/`r3`
//!   incumbents so a budgeted search never regresses below the paper's
//!   shipped configuration;
//! * [`ResultCache`] — a content-addressed, on-disk cache of measured
//!   cells keyed by `hash(workload, config, skeleton options, sample
//!   spec, interval)`; interrupted or repeated searches resume
//!   incrementally, and a resumed run's report is byte-identical to a
//!   fresh one (floats round-trip as bit patterns);
//! * [`run_dse`] / [`report`] — the driver and the deterministic
//!   `r3dla-dse-v1` JSON with per-workload best configs, paired
//!   speedup-vs-`bl` confidence intervals, and an IPC-vs-energy Pareto
//!   frontier from the `r3dla-energy` model.
//!
//! The `r3dla-dse` binary wraps all of this in a CLI; see the README's
//! "Design-space exploration" section.
//!
//! # Examples
//!
//! A tiny cached search (the `quick` 16-point space):
//!
//! ```no_run
//! use r3dla_dse::{run_dse, DseSpec, ResultCache, SearchSpace, Strategy};
//! use r3dla_sample::SampleSpec;
//! use r3dla_workloads::{by_name, Scale};
//!
//! let spec = DseSpec {
//!     scale: Scale::Tiny,
//!     workloads: vec![by_name("libq_like").unwrap()],
//!     space: SearchSpace::quick(),
//!     strategy: Strategy::Random { seed: 1, budget: 6 },
//!     sample: SampleSpec::parse("3:2000:functional").unwrap(),
//!     fast_forward: true,
//! };
//! let cache = ResultCache::at("DSE_CACHE").unwrap();
//! let result = run_dse(&spec, &cache, 4);
//! println!("{}", r3dla_dse::report::to_json(&result));
//! ```

pub mod cache;
pub mod report;
pub mod search;
pub mod space;

pub use cache::{
    fxhash_str, program_fingerprint, CacheHealth, CacheKey, CacheStats, IntervalResult,
    ResultCache, CACHE_SCHEMA,
};
pub use report::{pareto_indices, summary_markdown, to_json};
pub use search::{
    candidates, run_dse, run_dse_supervised, scale_name, DseCell, DsePlan, DseResult, DseSpec,
    Strategy, TrialSummary, WorkloadOutcome,
};
pub use space::{SearchSpace, TrialPoint, KNOBS};
