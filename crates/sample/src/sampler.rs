//! Systematic interval sampling (SMARTS/SimPoint-style): split a
//! workload into k evenly spaced intervals, checkpoint each interval
//! start with one functional pass, then measure every (checkpoint ×
//! configuration) cell in detail and aggregate per-interval IPC into a
//! mean ± 95% confidence interval.
//!
//! Planning is a pure function of `(program, spec)` and every cell is a
//! pure function of `(checkpoint, config)`, so a sampled grid fans out
//! across worker threads (the bench runner's `parallel_map`) with
//! byte-identical results at any thread count.

use std::sync::Arc;

use r3dla_core::{measure_window, MeasureTarget, WindowReport};
use r3dla_isa::{ArchCheckpoint, Program};
use r3dla_stats::{mean_ci95, MeanCi};

use crate::emulator::{Emulator, ImageMem};
use crate::warmup::{apply_cache_touches, record_touches, Touch, WarmTarget, WarmupMode};

/// Fast-forward cap: a workload that has not halted after this many
/// functional instructions is treated as this long (interval planning
/// samples the first `FF_CAP` instructions).
pub const FF_CAP: u64 = 200_000_000;

/// A sampling request: `k` intervals of `detailed` measured instructions
/// each, warmed per `warmup`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Number of intervals (≥ 2 so the confidence interval is defined).
    pub k: usize,
    /// Detailed instructions measured per interval.
    pub detailed: u64,
    /// Warmup mode applied to each restored interval.
    pub warmup: WarmupMode,
}

impl SampleSpec {
    /// Parses the runner's `k:U:W` syntax, e.g. `4:5000:functional` or
    /// `8:10000:detailed:20000`. Returns `None` for malformed specs,
    /// `k < 2` or `U == 0`.
    pub fn parse(s: &str) -> Option<Self> {
        let (k, rest) = s.split_once(':')?;
        let (u, warm) = rest.split_once(':')?;
        let k: usize = k.parse().ok()?;
        let detailed: u64 = u.parse().ok()?;
        if k < 2 || detailed == 0 {
            return None;
        }
        Some(Self {
            k,
            detailed,
            warmup: WarmupMode::parse(warm, detailed)?,
        })
    }

    /// The canonical `k:U:W` label (parse round-trips through it).
    pub fn label(&self) -> String {
        format!("{}:{}:{}", self.k, self.detailed, self.warmup)
    }
}

/// One planned interval: its checkpoint plus the recorded pre-interval
/// touch stream for functional warmup. Plain data — fanned out read-only
/// across measurement workers.
#[derive(Debug, Clone)]
pub struct IntervalCheckpoint {
    /// Interval index within the plan.
    pub index: usize,
    /// Architectural state at the interval start.
    pub ckpt: ArchCheckpoint,
    /// Touches of the `warmup` instructions preceding the interval
    /// (empty unless the spec asked for functional warmup).
    pub warm: Vec<Touch>,
}

// Plans cross the runner's worker threads by reference.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<IntervalCheckpoint>();
    assert_send_sync::<SampleSpec>();
};

/// Plans `spec.k` systematic intervals over `program`: one functional
/// pass measures the workload length, a second captures a checkpoint at
/// each interval start (recording the preceding warmup touch stream on
/// the way).
///
/// Returns fewer than `k` intervals when the program is too short for
/// the plan: measurement windows are `detailed` instructions long, and
/// any planned start whose window would overlap its predecessor's
/// (including starts clamped into collision near the halt, and strides
/// shorter than the window when `detailed > total/k`) is skipped rather
/// than measured twice — overlapping windows are not independent draws
/// and would understate the confidence interval. The returned plan
/// length is therefore the **effective k** that [`ipc_estimate`] sees
/// (reported per cell as the `intervals` field of the sampled JSON).
pub fn plan_intervals(program: &Arc<Program>, spec: &SampleSpec) -> Vec<IntervalCheckpoint> {
    let _sp = r3dla_obs::span!("plan", "plan {}", spec.label());
    let image = Arc::new(ImageMem::of(program.image()));
    // Pass 1: workload length.
    let mut probe = Emulator::with_image(Arc::clone(program), Arc::clone(&image));
    run_guarded(&mut probe, FF_CAP);
    let total = probe.icount();
    // Interval starts: one per stride, centred so the measured window
    // sits mid-stride (falling back to the stride start when U ≥ stride).
    let k = spec.k as u64;
    let stride = (total / k).max(1);
    let offset = stride.saturating_sub(spec.detailed) / 2;
    let warm_len = spec.warmup.functional_insts();
    // Pass 2: capture.
    let mut em = Emulator::with_image(Arc::clone(program), image);
    let mut out = Vec::with_capacity(spec.k);
    let mut prev_start = None;
    for i in 0..k {
        // Clamp so the measured window fits before the halt. Skip any
        // start whose window [start, start+U) would overlap the
        // previous interval's: clamped starts collide near the halt,
        // and when U > stride every successor window overlaps — either
        // way the overlap region would be measured twice and fed to
        // the CI as independent samples it is not.
        let start = (i * stride + offset).min(total.saturating_sub(spec.detailed));
        if prev_start.is_some_and(|p| start < p + spec.detailed) {
            continue;
        }
        prev_start = Some(start);
        let warm_begin = start.saturating_sub(warm_len).max(em.icount());
        let ff = warm_begin - em.icount();
        run_guarded(&mut em, ff);
        if r3dla_core::guard::interrupted() {
            break;
        }
        let mut warm = Vec::new();
        if start > em.icount() {
            em.run_observed(start - em.icount(), |o| record_touches(o, &mut warm));
            // Warmup streams are bounded (≤ the spec's functional-warmup
            // length), so the observed stretch charges in one lump.
            r3dla_core::guard::tick(start.saturating_sub(warm_begin));
        }
        if em.halted() || em.icount() < start || r3dla_core::guard::interrupted() {
            break;
        }
        out.push(IntervalCheckpoint {
            index: out.len(),
            ckpt: em.checkpoint(),
            warm,
        });
    }
    // Telemetry: block-cache decode traffic of both functional passes.
    // Counts are a pure function of the program, so the aggregate is
    // deterministic across worker-thread counts.
    if r3dla_obs::counters::enabled() {
        for stats in [probe.block_cache_stats(), em.block_cache_stats()] {
            r3dla_obs::counters::add("block_cache.map_probes", stats.map_probes);
            r3dla_obs::counters::add("block_cache.decodes", stats.decodes);
        }
    }
    out
}

/// Functional-emulation chunk between cell-guard polls. Fast-forward
/// charges one guard cycle per emulated instruction, so a supervised
/// cell's cycle budget bounds planning the same way it bounds the
/// detailed loops (see `r3dla_core::guard`).
const GUARD_CHUNK: u64 = 1 << 20;

/// Runs `n` functional instructions in guard-polled chunks; stops early
/// on halt or when the installed cell guard interrupts.
fn run_guarded(em: &mut Emulator, n: u64) {
    let mut left = n;
    while left > 0 && !em.halted() {
        let chunk = left.min(GUARD_CHUNK);
        let ran = em.run(chunk);
        left -= chunk;
        if r3dla_core::guard::tick(ran.max(1)) {
            break;
        }
    }
}

/// Detailed settle window for functional warmup: after the cache/TLB
/// touch replay, this many instructions run in detail (capped at the
/// measured window) before measurement opens, so the branch predictor
/// and pipeline reach a realistic operating point (see
/// [`apply_cache_touches`] for why predictors are not touch-warmed).
pub const FUNCTIONAL_SETTLE: u64 = 2_000;

/// Applies the spec's warmup to a freshly restored system and returns
/// the detailed settle-instruction count the measurement window must be
/// preceded by (the `warm` argument of [`measure_window`]). Split out of
/// [`warm_and_measure`] so callers that need their own window
/// bookkeeping (the DSE evaluator snapshots activity counters for the
/// energy model) warm through the identical path.
pub fn apply_warmup<S: WarmTarget + MeasureTarget>(
    sys: &mut S,
    spec: &SampleSpec,
    iv: &IntervalCheckpoint,
) -> u64 {
    let _sp = r3dla_obs::span!("warm", "warm iv{}", iv.index);
    match spec.warmup {
        WarmupMode::None => 0,
        WarmupMode::Functional(_) => {
            apply_cache_touches(sys, &iv.warm);
            FUNCTIONAL_SETTLE.min(spec.detailed)
        }
        WarmupMode::Detailed(cycles) => {
            sys.run_insts(u64::MAX, cycles);
            0
        }
    }
}

/// Warms a restored system per the spec, then measures the interval's
/// detailed window — the single per-cell measurement path for both the
/// DLA and single-core systems.
pub fn warm_and_measure<S: WarmTarget + MeasureTarget>(
    sys: &mut S,
    spec: &SampleSpec,
    iv: &IntervalCheckpoint,
) -> WindowReport {
    let settle = apply_warmup(sys, spec, iv);
    let _sp = r3dla_obs::span!("measure", "measure iv{}", iv.index);
    measure_window(sys, settle, spec.detailed)
}

/// Aggregates per-interval reports into the sampled estimate: mean ± 95%
/// CI of per-interval IPC (Student-t, small-k aware).
pub fn ipc_estimate(reports: &[WindowReport]) -> MeanCi {
    let ipcs: Vec<f64> = reports.iter().map(|r| r.mt_ipc).collect();
    mean_ci95(&ipcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_workloads::{by_name, Scale};

    fn tiny_program(name: &str) -> Arc<Program> {
        Arc::new(by_name(name).unwrap().build(Scale::Tiny).program)
    }

    #[test]
    fn spec_parse_round_trips() {
        let s = SampleSpec::parse("4:5000:functional").unwrap();
        assert_eq!(s.k, 4);
        assert_eq!(s.detailed, 5_000);
        assert_eq!(s.warmup, WarmupMode::Functional(20_000));
        assert_eq!(SampleSpec::parse(&s.label()), Some(s));
        assert!(SampleSpec::parse("1:5000:none").is_none(), "k >= 2");
        assert!(SampleSpec::parse("4:0:none").is_none());
        assert!(SampleSpec::parse("4:5000").is_none());
        assert!(SampleSpec::parse("4:5000:warmish").is_none());
    }

    #[test]
    fn plan_is_deterministic_and_ordered() {
        let prog = tiny_program("md5_like");
        let spec = SampleSpec::parse("4:2000:functional:4000").unwrap();
        let a = plan_intervals(&prog, &spec);
        let b = plan_intervals(&prog, &spec);
        assert_eq!(a.len(), 4, "tiny workloads fit 4 intervals");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.ckpt, y.ckpt);
            assert_eq!(x.warm, y.warm);
        }
        // Starts strictly increase and carry monotonically growing deltas.
        for w in a.windows(2) {
            assert!(w[0].ckpt.icount() < w[1].ckpt.icount());
            assert!(w[0].ckpt.dirty_pages() <= w[1].ckpt.dirty_pages());
        }
    }

    #[test]
    fn functional_mode_records_warm_stream() {
        let prog = tiny_program("libq_like");
        let spec = SampleSpec::parse("2:1000:functional:2000").unwrap();
        let plan = plan_intervals(&prog, &spec);
        assert_eq!(plan.len(), 2);
        // Interval 1 sits mid-run, so its full warm window exists.
        let touches = &plan[1].warm;
        let insts = touches
            .iter()
            .filter(|t| matches!(t, Touch::Inst(_)))
            .count();
        assert_eq!(insts, 2_000, "warm stream covers the requested window");
        assert!(touches.iter().any(|t| matches!(t, Touch::Data(_))));
        assert!(touches.iter().any(|t| matches!(t, Touch::Branch { .. })));
    }

    #[test]
    fn too_short_programs_yield_deduplicated_intervals() {
        // ~3k dynamic instructions against a 4×5000 plan: every start
        // clamps to 0, which must produce ONE interval, not four copies
        // of the same region masquerading as independent samples.
        use r3dla_isa::{Asm, Reg};
        let mut a = Asm::new();
        let (i, n) = (Reg::int(10), Reg::int(11));
        a.li(i, 0);
        a.li(n, 1_000);
        a.label("loop");
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let prog = Arc::new(a.finish().unwrap());
        let spec = SampleSpec::parse("4:5000:none").unwrap();
        let plan = plan_intervals(&prog, &spec);
        assert_eq!(plan.len(), 1, "collided starts must deduplicate");
        assert_eq!(plan[0].index, 0);
        assert_eq!(plan[0].ckpt.icount(), 0);
    }

    /// Counting loop of a chosen dynamic length (2 + 2·iters + 1).
    fn counting_program(iters: i64) -> Arc<Program> {
        use r3dla_isa::{Asm, Reg};
        let mut a = Asm::new();
        let (i, n) = (Reg::int(10), Reg::int(11));
        a.li(i, 0);
        a.li(n, iters);
        a.label("loop");
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        Arc::new(a.finish().unwrap())
    }

    #[test]
    fn overlapping_windows_are_skipped_when_detailed_exceeds_stride() {
        // ~20k dynamic instructions, 4 intervals of 8_000: stride 5_000
        // is shorter than the window, so consecutive windows overlap.
        // Only non-overlapping windows may survive — overlapping windows
        // are not independent draws for the CI.
        let prog = counting_program(10_000); // 20_003 dynamic insts
        let spec = SampleSpec::parse("4:8000:none").unwrap();
        let plan = plan_intervals(&prog, &spec);
        assert!(
            plan.len() < spec.k,
            "overlapping windows must reduce the effective k"
        );
        // Surviving windows are pairwise disjoint.
        for w in plan.windows(2) {
            assert!(
                w[1].ckpt.icount() >= w[0].ckpt.icount() + spec.detailed,
                "windows [{}, +{}) and [{}, +{}) overlap",
                w[0].ckpt.icount(),
                spec.detailed,
                w[1].ckpt.icount(),
                spec.detailed
            );
        }
        // Concretely: starts 0, 5000, 10000, 12003 keep 0 and 10000.
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].ckpt.icount(), 0);
        assert_eq!(plan[1].ckpt.icount(), 10_000);
        assert_eq!(plan[1].index, 1, "indices stay dense after skips");
    }

    #[test]
    fn non_overlapping_plans_are_unaffected_by_the_overlap_rule() {
        // Same program, windows that fit the stride: all 4 survive.
        let prog = counting_program(10_000);
        let spec = SampleSpec::parse("4:4000:none").unwrap();
        let plan = plan_intervals(&prog, &spec);
        assert_eq!(plan.len(), 4);
        for w in plan.windows(2) {
            assert!(w[1].ckpt.icount() >= w[0].ckpt.icount() + spec.detailed);
        }
    }

    #[test]
    fn none_mode_records_nothing() {
        let prog = tiny_program("md5_like");
        let spec = SampleSpec::parse("2:1000:none").unwrap();
        let plan = plan_intervals(&prog, &spec);
        assert!(plan.iter().all(|iv| iv.warm.is_empty()));
    }
}
