//! The functional emulator: executes programs architecturally
//! (registers + memory, no pipeline) at tens of MIPS, for
//! fast-forwarding to sampling intervals and capturing
//! [`ArchCheckpoint`]s.
//!
//! Memory is copy-on-write against a shared, immutable page image of the
//! program's initial data ([`ImageMem`]): only written pages are
//! materialized, so a checkpoint is exactly the dirty-page delta and k
//! checkpoints over one workload never cost k full memories.

use std::sync::Arc;

use r3dla_isa::{
    step, ArchCheckpoint, ArchState, DataMem, ExecError, FxHashMap, Page, Program, StepOut,
    PAGE_WORDS,
};

/// Sentinel for "last-page cache empty" (real page indices are
/// `addr >> 12`, which never reaches `u64::MAX`).
const NO_PAGE: u64 = u64::MAX;

/// An immutable page-granular snapshot of a program's initial data
/// image, shared (`Arc`) across every emulator and restore of the same
/// workload.
#[derive(Debug)]
pub struct ImageMem {
    pages: FxHashMap<u64, Box<Page>>,
}

impl ImageMem {
    /// Builds the page image from `(address, word)` initializers (the
    /// [`Program::image`] format).
    pub fn of(image: &[(u64, u64)]) -> Self {
        let mut pages: FxHashMap<u64, Box<Page>> = FxHashMap::default();
        for &(addr, val) in image {
            let a = addr & !7;
            let page = a >> 12;
            let word = ((a & 0xFFF) >> 3) as usize;
            pages
                .entry(page)
                .or_insert_with(|| Box::new([0; PAGE_WORDS]))[word] = val;
        }
        Self { pages }
    }

    /// The pristine contents of `page`, if the image touches it.
    #[inline]
    fn page(&self, page: u64) -> Option<&Page> {
        self.pages.get(&page).map(|b| &**b)
    }

    /// Number of pages the image occupies.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// Copy-on-write memory: reads fall through to the shared [`ImageMem`],
/// writes materialize private copies of the touched pages. The dirty set
/// *is* the checkpoint delta.
///
/// Mirrors `VecMem`'s slot-arena + last-page-cache layout so the
/// emulator's hot loop stays allocation-free on spatially local streams.
#[derive(Debug, Clone)]
pub struct DeltaMem {
    base: Arc<ImageMem>,
    dirty: FxHashMap<u64, u32>,
    storage: Vec<Box<Page>>,
    last_page: u64,
    last_slot: u32,
}

impl DeltaMem {
    /// An empty delta over `base`.
    pub fn new(base: Arc<ImageMem>) -> Self {
        Self {
            base,
            dirty: FxHashMap::default(),
            storage: Vec::new(),
            last_page: NO_PAGE,
            last_slot: 0,
        }
    }

    /// A delta pre-populated from a checkpoint's dirty pages.
    pub fn from_checkpoint(base: Arc<ImageMem>, ckpt: &ArchCheckpoint) -> Self {
        let mut m = Self::new(base);
        for (page, data) in ckpt.pages() {
            let slot = m.storage.len() as u32;
            m.storage.push(data.clone());
            m.dirty.insert(*page, slot);
        }
        m
    }

    /// Number of pages written since construction.
    pub fn dirty_pages(&self) -> usize {
        self.storage.len()
    }

    /// Clones the dirty-page delta (sorted by [`ArchCheckpoint::new`]).
    pub fn capture(&self) -> Vec<(u64, Box<Page>)> {
        self.dirty
            .iter()
            .map(|(&page, &slot)| (page, self.storage[slot as usize].clone()))
            .collect()
    }

    #[cold]
    fn materialize(&mut self, page: u64) -> u32 {
        let slot = u32::try_from(self.storage.len()).expect("page arena overflow");
        let contents = match self.base.page(page) {
            Some(p) => Box::new(*p),
            None => Box::new([0u64; PAGE_WORDS]),
        };
        self.storage.push(contents);
        self.dirty.insert(page, slot);
        slot
    }
}

impl DataMem for DeltaMem {
    #[inline]
    fn load(&mut self, addr: u64) -> u64 {
        let a = addr & !7;
        let page = a >> 12;
        let word = ((a & 0xFFF) >> 3) as usize;
        if page == self.last_page {
            return self.storage[self.last_slot as usize][word];
        }
        if let Some(&slot) = self.dirty.get(&page) {
            self.last_page = page;
            self.last_slot = slot;
            return self.storage[slot as usize][word];
        }
        match self.base.page(page) {
            Some(p) => p[word],
            None => 0,
        }
    }

    #[inline]
    fn store(&mut self, addr: u64, val: u64) {
        let a = addr & !7;
        let page = a >> 12;
        let word = ((a & 0xFFF) >> 3) as usize;
        if page == self.last_page {
            self.storage[self.last_slot as usize][word] = val;
            return;
        }
        let slot = match self.dirty.get(&page) {
            Some(&slot) => slot,
            None => self.materialize(page),
        };
        self.last_page = page;
        self.last_slot = slot;
        self.storage[slot as usize][word] = val;
    }
}

/// The architectural fast-forward engine: program + register state +
/// copy-on-write memory + retired-instruction count.
#[derive(Debug)]
pub struct Emulator {
    program: Arc<Program>,
    state: ArchState,
    mem: DeltaMem,
    icount: u64,
    halted: bool,
}

impl Emulator {
    /// An emulator at the program entry (builds a private [`ImageMem`];
    /// use [`with_image`](Self::with_image) to share one across runs).
    pub fn new(program: Arc<Program>) -> Self {
        let image = Arc::new(ImageMem::of(program.image()));
        Self::with_image(program, image)
    }

    /// An emulator at the program entry over a shared page image.
    pub fn with_image(program: Arc<Program>, image: Arc<ImageMem>) -> Self {
        let state = ArchState::new(program.entry());
        Self {
            program,
            state,
            mem: DeltaMem::new(image),
            icount: 0,
            halted: false,
        }
    }

    /// An emulator resumed from a checkpoint (registers, PC, instruction
    /// count and memory delta all restored).
    pub fn from_checkpoint(
        program: Arc<Program>,
        image: Arc<ImageMem>,
        ckpt: &ArchCheckpoint,
    ) -> Self {
        let mut state = ArchState::new(ckpt.pc());
        state.set_regs(ckpt.regs());
        state.pc = ckpt.pc();
        Self {
            program,
            state,
            mem: DeltaMem::from_checkpoint(image, ckpt),
            icount: ckpt.icount(),
            halted: false,
        }
    }

    /// Instructions retired so far.
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Whether the program has halted (or left the code segment).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The current architectural state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The copy-on-write memory (dirty-page introspection, tests).
    pub fn mem(&self) -> &DeltaMem {
        &self.mem
    }

    /// Functional load from the emulator's current memory.
    pub fn peek(&mut self, addr: u64) -> u64 {
        self.mem.load(addr)
    }

    /// Captures the architectural state as a restartable checkpoint.
    pub fn checkpoint(&self) -> ArchCheckpoint {
        ArchCheckpoint::new(
            self.state.regs(),
            self.state.pc,
            self.icount,
            self.mem.capture(),
        )
    }

    #[inline]
    fn step_once(&mut self) -> Option<StepOut> {
        match step(&self.program, &mut self.state, &mut self.mem) {
            Ok(out) => {
                self.icount += 1;
                if out.halted {
                    self.halted = true;
                }
                Some(out)
            }
            Err(ExecError::PcOutOfRange(_)) | Err(ExecError::StepLimit(_)) => {
                self.halted = true;
                None
            }
        }
    }

    /// Executes up to `n` instructions (stops early at halt); returns the
    /// number executed. This is the silent fast-forward hot loop.
    pub fn run(&mut self, n: u64) -> u64 {
        let start = self.icount;
        while self.icount - start < n && !self.halted {
            if self.step_once().is_none() {
                break;
            }
        }
        self.icount - start
    }

    /// Like [`run`](Self::run), but invokes `obs` with every step's
    /// observable effects — the warmup touch-stream source.
    pub fn run_observed(&mut self, n: u64, mut obs: impl FnMut(&StepOut)) -> u64 {
        let start = self.icount;
        while self.icount - start < n && !self.halted {
            match self.step_once() {
                Some(out) => obs(&out),
                None => break,
            }
        }
        self.icount - start
    }

    /// Runs to halt (or `cap` instructions); returns the final retired
    /// count — the workload-length probe interval planning uses.
    pub fn run_to_halt(&mut self, cap: u64) -> u64 {
        while !self.halted && self.icount < cap {
            if self.step_once().is_none() {
                break;
            }
        }
        self.icount
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_isa::{Asm, Reg, VecMem};

    /// A loop writing arr[i] = 2i and summing it, then halting.
    fn summing_program() -> Arc<Program> {
        let mut a = Asm::new();
        let arr = a.data().words(&[7; 64]);
        let (i, n, base, v) = (Reg::int(10), Reg::int(11), Reg::int(12), Reg::int(13));
        a.li(i, 0);
        a.li(n, 64);
        a.li(base, arr as i64);
        a.label("loop");
        a.slli(v, i, 1);
        a.slli(Reg::int(14), i, 3);
        a.add(Reg::int(14), Reg::int(14), base);
        a.st(v, Reg::int(14), 0);
        a.ld(Reg::int(15), Reg::int(14), 0);
        a.add(Reg::int(16), Reg::int(16), Reg::int(15));
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        Arc::new(a.finish().unwrap())
    }

    #[test]
    fn emulator_matches_reference_interpreter() {
        let prog = summing_program();
        let mut e = Emulator::new(Arc::clone(&prog));
        let total = e.run_to_halt(1_000_000);
        assert!(e.halted());
        // Reference: the isa crate's own interpreter over a full VecMem.
        let mut st = ArchState::new(prog.entry());
        let mut vm = VecMem::new();
        vm.load_image(prog.image());
        let steps = r3dla_isa::run(&prog, &mut st, &mut vm, 1_000_000).unwrap();
        assert_eq!(total, steps);
        assert_eq!(e.state().regs(), st.regs());
        assert_eq!(e.state().regs()[16], 64 * 63);
    }

    #[test]
    fn delta_mem_copy_on_write_against_image() {
        let image = Arc::new(ImageMem::of(&[(0x2000_0000, 11), (0x2000_0008, 22)]));
        let mut m = DeltaMem::new(Arc::clone(&image));
        assert_eq!(m.load(0x2000_0000), 11, "read-through to the image");
        assert_eq!(m.dirty_pages(), 0, "reads must not materialize pages");
        m.store(0x2000_0000, 99);
        assert_eq!(m.dirty_pages(), 1);
        assert_eq!(m.load(0x2000_0000), 99);
        assert_eq!(
            m.load(0x2000_0008),
            22,
            "other words of a materialized page keep image contents"
        );
        // A second delta over the same image is unaffected.
        let mut m2 = DeltaMem::new(image);
        assert_eq!(m2.load(0x2000_0000), 11);
    }

    #[test]
    fn unmapped_reads_are_zero_and_free() {
        let mut m = DeltaMem::new(Arc::new(ImageMem::of(&[])));
        assert_eq!(m.load(0xDEAD_0000), 0);
        assert_eq!(m.dirty_pages(), 0);
        m.store(0x5000, 1);
        assert_eq!(m.load(0x5000), 1);
        // Unmapped read between hits must not poison the last-page cache.
        assert_eq!(m.load(0x9999_0000), 0);
        assert_eq!(m.load(0x5000), 1);
    }

    #[test]
    fn checkpoint_round_trip_resumes_identically() {
        let prog = summing_program();
        // Uninterrupted reference.
        let mut whole = Emulator::new(Arc::clone(&prog));
        whole.run(150);
        // Capture at 60, restore, run the remaining 90.
        let image = Arc::new(ImageMem::of(prog.image()));
        let mut first = Emulator::with_image(Arc::clone(&prog), Arc::clone(&image));
        first.run(60);
        let ckpt = first.checkpoint();
        assert_eq!(ckpt.icount(), 60);
        assert!(ckpt.dirty_pages() >= 1, "the store loop dirties the array");
        let mut resumed = Emulator::from_checkpoint(Arc::clone(&prog), image, &ckpt);
        resumed.run(90);
        assert_eq!(resumed.icount(), whole.icount());
        assert_eq!(resumed.state().regs(), whole.state().regs());
        assert_eq!(resumed.state().pc, whole.state().pc);
        // Memory agrees word-for-word over the touched region.
        for w in 0..64u64 {
            let addr = 0x2000_0000 + w * 8;
            assert_eq!(resumed.peek(addr), whole.peek(addr), "word {w}");
        }
        // And the re-captured checkpoint is byte-identical to a
        // checkpoint of the uninterrupted run at the same icount.
        let mut again = Emulator::new(Arc::clone(&prog));
        again.run(150);
        assert_eq!(resumed.checkpoint(), again.checkpoint());
    }

    #[test]
    fn observed_run_reports_touch_stream() {
        let prog = summing_program();
        let mut e = Emulator::new(prog);
        let mut loads = 0;
        let mut stores = 0;
        let mut branches = 0;
        e.run_observed(10_000, |out| {
            if let Some((kind, _, _)) = out.mem {
                match kind {
                    r3dla_isa::MemKind::Load => loads += 1,
                    r3dla_isa::MemKind::Store => stores += 1,
                }
            }
            if out.taken.is_some() {
                branches += 1;
            }
        });
        assert_eq!(loads, 64);
        assert_eq!(stores, 64);
        assert_eq!(branches, 64);
    }

    #[test]
    fn pc_out_of_range_halts_instead_of_panicking() {
        let mut a = Asm::new();
        a.nop(); // runs off the end of the code segment
        let prog = Arc::new(a.finish().unwrap());
        let mut e = Emulator::new(prog);
        e.run(100);
        assert!(e.halted());
        assert_eq!(e.icount(), 1);
    }
}
