//! The functional emulator: executes programs architecturally
//! (registers + memory, no pipeline), for fast-forwarding to sampling
//! intervals and capturing [`ArchCheckpoint`]s.
//!
//! Fast-forward runs on a **decoded-superblock cache**
//! ([`r3dla_isa::BlockCache`]): predicted instruction paths — direct
//! jumps followed, backward branches assumed taken so loops unroll —
//! are decoded once into flat uop traces and then dispatched whole, so
//! the silent hot loop pays no per-instruction fetch, PC range check or
//! `StepOut` materialization, and a predicted branch costs one compare.
//! Branches that go against their prediction side-exit the trace with
//! the correct PC; observed runs and trace terminators replay through
//! [`r3dla_isa::exec_inst`] — the interpreter's own per-instruction
//! function — so trace-cached execution is bit-identical to single
//! stepping (set the `R3DLA_BLOCK_CACHE=0` environment variable or call
//! [`Emulator::set_block_cache`] to force the per-instruction
//! interpreter and verify exactly that).
//!
//! Memory is copy-on-write against a shared, immutable page image of the
//! program's initial data ([`ImageMem`]): only written pages are
//! materialized, so a checkpoint is exactly the dirty-page delta and k
//! checkpoints over one workload never cost k full memories.

use std::sync::Arc;

use r3dla_isa::{
    exec_inst, step, ArchCheckpoint, ArchState, BlockCache, DataMem, ExecError, FxHashMap, Page,
    Program, StepOut, Terminator, PAGE_WORDS,
};

/// Sentinel for "last-page cache empty" (real page indices are
/// `addr >> 12`, which never reaches `u64::MAX`).
const NO_PAGE: u64 = u64::MAX;

/// An immutable page-granular snapshot of a program's initial data
/// image, shared (`Arc`) across every emulator and restore of the same
/// workload.
///
/// Pages are individually `Arc`'d so a [`DeltaMem`] can hold a cursor
/// straight into the page it last read from (see [`DataMem::load`] on
/// `DeltaMem`) without a hash lookup per access.
#[derive(Debug)]
pub struct ImageMem {
    pages: FxHashMap<u64, Arc<Page>>,
    /// A shared all-zero page: the read target for unmapped addresses.
    zero: Arc<Page>,
}

impl ImageMem {
    /// Builds the page image from `(address, word)` initializers (the
    /// [`Program::image`] format).
    pub fn of(image: &[(u64, u64)]) -> Self {
        let mut pages: FxHashMap<u64, Arc<Page>> = FxHashMap::default();
        for &(addr, val) in image {
            let a = addr & !7;
            let page = a >> 12;
            let word = ((a & 0xFFF) >> 3) as usize;
            let p = pages
                .entry(page)
                .or_insert_with(|| Arc::new([0; PAGE_WORDS]));
            Arc::get_mut(p).expect("image pages are unshared while building")[word] = val;
        }
        Self {
            pages,
            zero: Arc::new([0; PAGE_WORDS]),
        }
    }

    /// The pristine contents of `page`, if the image touches it.
    #[inline]
    fn page(&self, page: u64) -> Option<&Arc<Page>> {
        self.pages.get(&page)
    }

    /// Number of pages the image occupies.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// Copy-on-write memory: reads fall through to the shared [`ImageMem`],
/// writes materialize private copies of the touched pages. The dirty set
/// *is* the checkpoint delta.
///
/// Mirrors `VecMem`'s slot-arena + last-page-cache layout so the
/// emulator's hot loop stays allocation-free on spatially local streams.
/// A second cursor (`clean_page`/`clean`) covers the last *clean* page
/// read through to the image, so read-heavy scans over never-written
/// data are also one hash lookup per page change, not per access.
#[derive(Debug, Clone)]
pub struct DeltaMem {
    base: Arc<ImageMem>,
    dirty: FxHashMap<u64, u32>,
    /// Dirty pages stored inline (not boxed): one indirection per
    /// access on the hot cursor path. Slots are append-only, so indices
    /// stay stable across reallocation.
    storage: Vec<Page>,
    last_page: u64,
    last_slot: u32,
    clean_page: u64,
    clean: Arc<Page>,
}

impl DeltaMem {
    /// An empty delta over `base`.
    pub fn new(base: Arc<ImageMem>) -> Self {
        let zero = Arc::clone(&base.zero);
        Self {
            base,
            dirty: FxHashMap::default(),
            storage: Vec::new(),
            last_page: NO_PAGE,
            last_slot: 0,
            clean_page: NO_PAGE,
            clean: zero,
        }
    }

    /// A delta pre-populated from a checkpoint's dirty pages.
    pub fn from_checkpoint(base: Arc<ImageMem>, ckpt: &ArchCheckpoint) -> Self {
        let mut m = Self::new(base);
        for (page, data) in ckpt.pages() {
            let slot = m.storage.len() as u32;
            m.storage.push(**data);
            m.dirty.insert(*page, slot);
        }
        m
    }

    /// Number of pages written since construction.
    pub fn dirty_pages(&self) -> usize {
        self.storage.len()
    }

    /// Clones the dirty-page delta (sorted by [`ArchCheckpoint::new`]).
    pub fn capture(&self) -> Vec<(u64, Box<Page>)> {
        self.dirty
            .iter()
            .map(|(&page, &slot)| (page, Box::new(self.storage[slot as usize])))
            .collect()
    }

    #[cold]
    fn materialize(&mut self, page: u64) -> u32 {
        let slot = u32::try_from(self.storage.len()).expect("page arena overflow");
        let contents = match self.base.page(page) {
            Some(p) => **p,
            None => [0u64; PAGE_WORDS],
        };
        self.storage.push(contents);
        self.dirty.insert(page, slot);
        // The page is dirty now; the clean cursor must not shadow it.
        if self.clean_page == page {
            self.clean_page = NO_PAGE;
        }
        slot
    }

    /// Both cursors missed: consult the dirty map, then the image
    /// (parking the clean cursor on whatever page answers — the shared
    /// zero page for unmapped addresses).
    fn load_miss(&mut self, page: u64, word: usize) -> u64 {
        if let Some(&slot) = self.dirty.get(&page) {
            self.last_page = page;
            self.last_slot = slot;
            return self.storage[slot as usize][word];
        }
        self.clean_page = page;
        self.clean = match self.base.page(page) {
            Some(p) => Arc::clone(p),
            None => Arc::clone(&self.base.zero),
        };
        self.clean[word]
    }
}

impl DataMem for DeltaMem {
    #[inline]
    fn load(&mut self, addr: u64) -> u64 {
        let a = addr & !7;
        let page = a >> 12;
        let word = ((a & 0xFFF) >> 3) as usize;
        if page == self.last_page {
            return self.storage[self.last_slot as usize][word];
        }
        if page == self.clean_page {
            return self.clean[word];
        }
        self.load_miss(page, word)
    }

    #[inline]
    fn store(&mut self, addr: u64, val: u64) {
        let a = addr & !7;
        let page = a >> 12;
        let word = ((a & 0xFFF) >> 3) as usize;
        if page == self.last_page {
            self.storage[self.last_slot as usize][word] = val;
            return;
        }
        let slot = match self.dirty.get(&page) {
            Some(&slot) => slot,
            None => self.materialize(page),
        };
        self.last_page = page;
        self.last_slot = slot;
        self.storage[slot as usize][word] = val;
    }
}

/// Whether the decoded-superblock dispatcher is enabled by default.
/// `R3DLA_BLOCK_CACHE=0` forces the per-instruction interpreter — the CI
/// byte-identity comparison runs the sampled grid both ways and `cmp`s
/// the JSON.
fn block_cache_default() -> bool {
    std::env::var_os("R3DLA_BLOCK_CACHE").is_none_or(|v| v != "0")
}

/// The architectural fast-forward engine: program + register state +
/// copy-on-write memory + retired-instruction count, dispatched through
/// a demand-decoded superblock cache.
#[derive(Debug)]
pub struct Emulator {
    program: Arc<Program>,
    state: ArchState,
    mem: DeltaMem,
    icount: u64,
    halted: bool,
    blocks: BlockCache,
    use_blocks: bool,
}

impl Emulator {
    /// An emulator at the program entry (builds a private [`ImageMem`];
    /// use [`with_image`](Self::with_image) to share one across runs).
    pub fn new(program: Arc<Program>) -> Self {
        let image = Arc::new(ImageMem::of(program.image()));
        Self::with_image(program, image)
    }

    /// An emulator at the program entry over a shared page image.
    pub fn with_image(program: Arc<Program>, image: Arc<ImageMem>) -> Self {
        let state = ArchState::new(program.entry());
        Self {
            program,
            state,
            mem: DeltaMem::new(image),
            icount: 0,
            halted: false,
            blocks: BlockCache::new(),
            use_blocks: block_cache_default(),
        }
    }

    /// An emulator resumed from a checkpoint (registers, PC, instruction
    /// count, halt state and memory delta all restored — a checkpoint
    /// captured at or after the halt stays halted).
    pub fn from_checkpoint(
        program: Arc<Program>,
        image: Arc<ImageMem>,
        ckpt: &ArchCheckpoint,
    ) -> Self {
        let mut state = ArchState::new(ckpt.pc());
        state.set_regs(ckpt.regs());
        state.pc = ckpt.pc();
        Self {
            program,
            state,
            mem: DeltaMem::from_checkpoint(image, ckpt),
            icount: ckpt.icount(),
            halted: ckpt.halted(),
            blocks: BlockCache::new(),
            use_blocks: block_cache_default(),
        }
    }

    /// Enables or disables the decoded-superblock dispatcher (on by
    /// default unless `R3DLA_BLOCK_CACHE=0`). Both paths are bit-exact;
    /// off exists for equivalence checks and throughput comparison.
    pub fn set_block_cache(&mut self, on: bool) {
        self.use_blocks = on;
    }

    /// Whether the decoded-superblock dispatcher is active.
    pub fn block_cache_enabled(&self) -> bool {
        self.use_blocks
    }

    /// Number of superblocks decoded so far (0 until the first
    /// block-dispatched run).
    pub fn decoded_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Demand-decode accounting of the block cache (telemetry-only).
    pub fn block_cache_stats(&self) -> r3dla_isa::BlockCacheStats {
        self.blocks.stats()
    }

    /// Instructions retired so far.
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Whether the program has halted (or left the code segment).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The current architectural state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The copy-on-write memory (dirty-page introspection, tests).
    pub fn mem(&self) -> &DeltaMem {
        &self.mem
    }

    /// Functional load from the emulator's current memory.
    pub fn peek(&mut self, addr: u64) -> u64 {
        self.mem.load(addr)
    }

    /// Captures the architectural state as a restartable checkpoint.
    pub fn checkpoint(&self) -> ArchCheckpoint {
        ArchCheckpoint::new(
            self.state.regs(),
            self.state.pc,
            self.icount,
            self.halted,
            self.mem.capture(),
        )
    }

    #[inline]
    fn step_once(&mut self) -> Option<StepOut> {
        match step(&self.program, &mut self.state, &mut self.mem) {
            Ok(out) => {
                self.icount += 1;
                if out.halted {
                    self.halted = true;
                }
                Some(out)
            }
            Err(ExecError::PcOutOfRange(_)) | Err(ExecError::StepLimit(_)) => {
                self.halted = true;
                None
            }
        }
    }

    /// Executes up to `n` instructions (stops early at halt); returns the
    /// number executed. This is the silent fast-forward hot loop —
    /// [`BlockCache::run`], which dispatches whole decoded traces,
    /// side-exits mispredicted branches with the correct PC, learns
    /// persistent branch directions from repeated exits, and retires
    /// terminators through [`exec_inst`].
    pub fn run(&mut self, n: u64) -> u64 {
        if !self.use_blocks {
            return self.run_interpreted(n);
        }
        if self.halted {
            return 0;
        }
        let (done, halted) = self
            .blocks
            .run(&self.program, &mut self.state, &mut self.mem, n);
        self.icount += done;
        if halted {
            self.halted = true;
        }
        done
    }

    /// The per-instruction fallback for [`run`](Self::run) (block cache
    /// disabled).
    fn run_interpreted(&mut self, n: u64) -> u64 {
        let start = self.icount;
        while self.icount - start < n && !self.halted {
            if self.step_once().is_none() {
                break;
            }
        }
        self.icount - start
    }

    /// Like [`run`](Self::run), but invokes `obs` with every step's
    /// observable effects — the warmup touch-stream source. Traces are
    /// used only to skip the per-step fetch/range check: every body
    /// instruction and terminator replays through [`exec_inst`], so the
    /// observed stream is bit-identical to the interpreter's. A branch
    /// that leaves the trace mid-replay just re-dispatches at the true
    /// successor.
    pub fn run_observed(&mut self, n: u64, mut obs: impl FnMut(&StepOut)) -> u64 {
        if !self.use_blocks {
            return self.run_observed_interpreted(n, obs);
        }
        let start = self.icount;
        let mut remaining = n;
        'dispatch: while remaining > 0 && !self.halted {
            let block = self.blocks.get_or_decode(&self.program, self.state.pc);
            let take = (block.len() as u64).min(remaining) as usize;
            // exec_inst advances the PC, so the replay walks the trace
            // exactly like single stepping.
            for i in 0..take {
                let out = exec_inst(block.insts()[i], &mut self.state, &mut self.mem);
                self.icount += 1;
                remaining -= 1;
                obs(&out);
                if self.state.pc != block.pc_at(i + 1) {
                    continue 'dispatch; // trace exit
                }
            }
            if take < block.len() || remaining == 0 {
                break;
            }
            match block.term() {
                Terminator::Inst { inst, .. } => {
                    let out = exec_inst(inst, &mut self.state, &mut self.mem);
                    self.icount += 1;
                    remaining -= 1;
                    if out.halted {
                        self.halted = true;
                    }
                    obs(&out);
                }
                Terminator::Fall { .. } => {}
                Terminator::OutOfRange { .. } => self.halted = true,
            }
        }
        self.icount - start
    }

    /// The per-instruction fallback for [`run_observed`](Self::run_observed).
    fn run_observed_interpreted(&mut self, n: u64, mut obs: impl FnMut(&StepOut)) -> u64 {
        let start = self.icount;
        while self.icount - start < n && !self.halted {
            match self.step_once() {
                Some(out) => obs(&out),
                None => break,
            }
        }
        self.icount - start
    }

    /// Runs to halt or for `cap` **additional** instructions, whichever
    /// comes first; returns the final total retired count — the
    /// workload-length probe interval planning uses.
    ///
    /// The cap is relative to the current [`icount`](Self::icount): an
    /// emulator resumed from a mid-run checkpoint gets the full `cap`
    /// budget, exactly like a fresh emulator. (It was an absolute icount
    /// bound before, which silently ran *zero* instructions on any
    /// emulator restored past the cap.)
    pub fn run_to_halt(&mut self, cap: u64) -> u64 {
        self.run(cap);
        self.icount
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_isa::{Asm, Reg, VecMem};

    /// A loop writing arr[i] = 2i and summing it, then halting.
    fn summing_program() -> Arc<Program> {
        let mut a = Asm::new();
        let arr = a.data().words(&[7; 64]);
        let (i, n, base, v) = (Reg::int(10), Reg::int(11), Reg::int(12), Reg::int(13));
        a.li(i, 0);
        a.li(n, 64);
        a.li(base, arr as i64);
        a.label("loop");
        a.slli(v, i, 1);
        a.slli(Reg::int(14), i, 3);
        a.add(Reg::int(14), Reg::int(14), base);
        a.st(v, Reg::int(14), 0);
        a.ld(Reg::int(15), Reg::int(14), 0);
        a.add(Reg::int(16), Reg::int(16), Reg::int(15));
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        Arc::new(a.finish().unwrap())
    }

    #[test]
    fn emulator_matches_reference_interpreter() {
        let prog = summing_program();
        let mut e = Emulator::new(Arc::clone(&prog));
        let total = e.run_to_halt(1_000_000);
        assert!(e.halted());
        // Reference: the isa crate's own interpreter over a full VecMem.
        let mut st = ArchState::new(prog.entry());
        let mut vm = VecMem::new();
        vm.load_image(prog.image());
        let steps = r3dla_isa::run(&prog, &mut st, &mut vm, 1_000_000).unwrap();
        assert_eq!(total, steps);
        assert_eq!(e.state().regs(), st.regs());
        assert_eq!(e.state().regs()[16], 64 * 63);
    }

    #[test]
    fn delta_mem_copy_on_write_against_image() {
        let image = Arc::new(ImageMem::of(&[(0x2000_0000, 11), (0x2000_0008, 22)]));
        let mut m = DeltaMem::new(Arc::clone(&image));
        assert_eq!(m.load(0x2000_0000), 11, "read-through to the image");
        assert_eq!(m.dirty_pages(), 0, "reads must not materialize pages");
        m.store(0x2000_0000, 99);
        assert_eq!(m.dirty_pages(), 1);
        assert_eq!(m.load(0x2000_0000), 99);
        assert_eq!(
            m.load(0x2000_0008),
            22,
            "other words of a materialized page keep image contents"
        );
        // A second delta over the same image is unaffected.
        let mut m2 = DeltaMem::new(image);
        assert_eq!(m2.load(0x2000_0000), 11);
    }

    #[test]
    fn unmapped_reads_are_zero_and_free() {
        let mut m = DeltaMem::new(Arc::new(ImageMem::of(&[])));
        assert_eq!(m.load(0xDEAD_0000), 0);
        assert_eq!(m.dirty_pages(), 0);
        m.store(0x5000, 1);
        assert_eq!(m.load(0x5000), 1);
        // Unmapped read between hits must not poison the last-page cache.
        assert_eq!(m.load(0x9999_0000), 0);
        assert_eq!(m.load(0x5000), 1);
    }

    #[test]
    fn checkpoint_round_trip_resumes_identically() {
        let prog = summing_program();
        // Uninterrupted reference.
        let mut whole = Emulator::new(Arc::clone(&prog));
        whole.run(150);
        // Capture at 60, restore, run the remaining 90.
        let image = Arc::new(ImageMem::of(prog.image()));
        let mut first = Emulator::with_image(Arc::clone(&prog), Arc::clone(&image));
        first.run(60);
        let ckpt = first.checkpoint();
        assert_eq!(ckpt.icount(), 60);
        assert!(ckpt.dirty_pages() >= 1, "the store loop dirties the array");
        let mut resumed = Emulator::from_checkpoint(Arc::clone(&prog), image, &ckpt);
        resumed.run(90);
        assert_eq!(resumed.icount(), whole.icount());
        assert_eq!(resumed.state().regs(), whole.state().regs());
        assert_eq!(resumed.state().pc, whole.state().pc);
        // Memory agrees word-for-word over the touched region.
        for w in 0..64u64 {
            let addr = 0x2000_0000 + w * 8;
            assert_eq!(resumed.peek(addr), whole.peek(addr), "word {w}");
        }
        // And the re-captured checkpoint is byte-identical to a
        // checkpoint of the uninterrupted run at the same icount.
        let mut again = Emulator::new(Arc::clone(&prog));
        again.run(150);
        assert_eq!(resumed.checkpoint(), again.checkpoint());
    }

    #[test]
    fn observed_run_reports_touch_stream() {
        let prog = summing_program();
        let mut e = Emulator::new(prog);
        let mut loads = 0;
        let mut stores = 0;
        let mut branches = 0;
        e.run_observed(10_000, |out| {
            if let Some((kind, _, _)) = out.mem {
                match kind {
                    r3dla_isa::MemKind::Load => loads += 1,
                    r3dla_isa::MemKind::Store => stores += 1,
                }
            }
            if out.taken.is_some() {
                branches += 1;
            }
        });
        assert_eq!(loads, 64);
        assert_eq!(stores, 64);
        assert_eq!(branches, 64);
    }

    #[test]
    fn pc_out_of_range_halts_instead_of_panicking() {
        let mut a = Asm::new();
        a.nop(); // runs off the end of the code segment
        let prog = Arc::new(a.finish().unwrap());
        for blocks in [true, false] {
            let mut e = Emulator::new(Arc::clone(&prog));
            e.set_block_cache(blocks);
            e.run(100);
            assert!(e.halted(), "blocks={blocks}");
            assert_eq!(e.icount(), 1, "blocks={blocks}");
            // The out-of-range "halt" is not a retired instruction; the
            // PC stays parked on the bad address, like the interpreter.
            assert_eq!(e.state().pc, prog.entry() + 4, "blocks={blocks}");
            assert!(e.checkpoint().halted(), "blocks={blocks}");
        }
    }

    /// Every stop point — mid-block, exactly on a terminator, across
    /// resumes — must leave block-dispatched state identical to the
    /// per-instruction interpreter's.
    #[test]
    fn block_dispatch_matches_interpreter_at_every_stop_point() {
        let prog = summing_program();
        // One instruction at a time in both modes: worst case for
        // mid-block stops (every boundary lands inside a superblock).
        for chunk in [1u64, 3, 7, 64, 1_000_000] {
            let mut with_blocks = Emulator::new(Arc::clone(&prog));
            with_blocks.set_block_cache(true);
            let mut interp = Emulator::new(Arc::clone(&prog));
            interp.set_block_cache(false);
            loop {
                let a = with_blocks.run(chunk);
                let b = interp.run(chunk);
                assert_eq!(a, b, "chunk {chunk}: executed counts diverge");
                assert_eq!(with_blocks.icount(), interp.icount(), "chunk {chunk}");
                assert_eq!(
                    with_blocks.state().pc,
                    interp.state().pc,
                    "chunk {chunk} at icount {}",
                    interp.icount()
                );
                assert_eq!(
                    with_blocks.state().regs(),
                    interp.state().regs(),
                    "chunk {chunk} at icount {}",
                    interp.icount()
                );
                assert_eq!(with_blocks.halted(), interp.halted(), "chunk {chunk}");
                if a == 0 {
                    break;
                }
            }
            assert_eq!(
                with_blocks.checkpoint(),
                interp.checkpoint(),
                "chunk {chunk}: final checkpoints (memory deltas) diverge"
            );
            assert!(with_blocks.decoded_blocks() > 0, "blocks were dispatched");
            assert_eq!(interp.decoded_blocks(), 0, "interpreter decodes nothing");
        }
    }

    /// A single-uop trace: the budget expiring exactly on a branch parks
    /// the PC on it, and the next dispatch decodes a trace whose body is
    /// just that (forward, predicted-not-taken) branch before the halt.
    #[test]
    fn single_instruction_block_at_branch_target() {
        use r3dla_isa::{block::decode_block, Terminator, Uop};
        let mut a = Asm::new();
        let (i, n) = (Reg::int(10), Reg::int(11));
        a.li(i, 0);
        a.li(n, 5);
        a.label("top"); // target is a forward branch: a 1-uop trace
        a.blt(i, n, "body");
        a.halt();
        a.label("body");
        a.addi(i, i, 1);
        a.j("top");
        let prog = Arc::new(a.finish().unwrap());
        // The trace at "top" is the branch itself, predicted not-taken,
        // falling onto the halt terminator.
        let top_pc = prog.entry() + 2 * 4;
        let b = decode_block(&prog, top_pc);
        assert_eq!(b.len(), 1);
        assert!(matches!(b.uops()[0], Uop::BrLt { assume: false, .. }));
        assert!(matches!(
            b.term(),
            Terminator::Inst { inst, .. } if inst.op == r3dla_isa::Op::Halt
        ));
        // Stop exactly on the branch (after li, li), then resume.
        let mut e = Emulator::new(Arc::clone(&prog));
        assert_eq!(e.run(2), 2);
        assert_eq!(e.state().pc, top_pc, "parked on the terminator");
        let mut interp = Emulator::new(Arc::clone(&prog));
        interp.set_block_cache(false);
        interp.run(2);
        assert_eq!(e.state().regs(), interp.state().regs());
        // Resume both to halt; 5 loop iterations then fall out.
        e.run(1_000);
        interp.run(1_000);
        assert!(e.halted() && interp.halted());
        assert_eq!(e.checkpoint(), interp.checkpoint());
        assert_eq!(e.state().reg(i), 5);
    }

    /// `run_observed` with `n` landing inside a superblock must emit
    /// exactly the interpreter's per-step stream and stop at the same
    /// mid-block instruction.
    #[test]
    fn observed_stream_is_bit_identical_across_dispatch_modes() {
        let prog = summing_program();
        for n in [5u64, 17, 100, 1_000_000] {
            let mut blocks_stream = Vec::new();
            let mut e = Emulator::new(Arc::clone(&prog));
            e.set_block_cache(true);
            let ran_blocks = e.run_observed(n, |o| blocks_stream.push(*o));
            let mut interp_stream = Vec::new();
            let mut i = Emulator::new(Arc::clone(&prog));
            i.set_block_cache(false);
            let ran_interp = i.run_observed(n, |o| interp_stream.push(*o));
            assert_eq!(ran_blocks, ran_interp, "n={n}");
            assert_eq!(blocks_stream, interp_stream, "n={n}: StepOut streams");
            assert_eq!(e.state().pc, i.state().pc, "n={n}");
            assert_eq!(e.checkpoint(), i.checkpoint(), "n={n}");
        }
    }

    /// Regression: `run_to_halt(cap)` treats `cap` as a *relative*
    /// budget. An emulator resumed from a checkpoint with `icount >= cap`
    /// used to silently run zero instructions.
    #[test]
    fn run_to_halt_cap_is_relative_after_checkpoint_resume() {
        let prog = summing_program();
        let image = Arc::new(ImageMem::of(prog.image()));
        let mut e = Emulator::with_image(Arc::clone(&prog), Arc::clone(&image));
        e.run(100);
        let ckpt = e.checkpoint();
        assert_eq!(ckpt.icount(), 100);
        let mut resumed = Emulator::from_checkpoint(Arc::clone(&prog), image, &ckpt);
        // Resumed icount (100) exceeds the cap (50): the cap must budget
        // 50 MORE instructions, not compare against the absolute icount.
        let total = resumed.run_to_halt(50);
        assert_eq!(total, 150, "cap is a relative budget");
        assert!(!resumed.halted());
        // And a generous relative cap still runs to the real halt.
        let final_count = resumed.run_to_halt(1_000_000);
        assert!(resumed.halted());
        let mut whole = Emulator::new(Arc::clone(&prog));
        assert_eq!(whole.run_to_halt(1_000_000), final_count);
    }

    /// Regression: a checkpoint captured at (or after) the halt must
    /// resume halted instead of re-running as a live emulator.
    #[test]
    fn halted_checkpoint_resumes_halted() {
        let prog = summing_program();
        let image = Arc::new(ImageMem::of(prog.image()));
        let mut e = Emulator::with_image(Arc::clone(&prog), Arc::clone(&image));
        let total = e.run_to_halt(1_000_000);
        assert!(e.halted());
        let ckpt = e.checkpoint();
        assert!(ckpt.halted(), "capture carries the halt state");
        let mut resumed = Emulator::from_checkpoint(Arc::clone(&prog), image, &ckpt);
        assert!(resumed.halted(), "restore carries the halt state");
        assert_eq!(resumed.run(1_000), 0, "a halted emulator runs nothing");
        assert_eq!(resumed.run_to_halt(1_000), total);
        assert_eq!(
            resumed.checkpoint(),
            ckpt,
            "the round trip is the identity on a halted checkpoint"
        );
    }
}
