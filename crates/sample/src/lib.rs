#![warn(missing_docs)]
//! Checkpoint + sampled-simulation subsystem for the R3-DLA simulator.
//!
//! The detailed two-core model runs at well under a MIPS, so measuring
//! anything but startup transients needs the standard simulator escape
//! hatch: **functional fast-forward** to interesting regions,
//! **checkpoint** them, **warm** the microarchitecture, and measure many
//! short detailed windows whose spread yields a **confidence interval**
//! (SMARTS-style systematic sampling).
//!
//! The pieces:
//!
//! * [`Emulator`] — architectural execution (registers + copy-on-write
//!   memory over a shared [`ImageMem`]). Fast-forward runs dispatch
//!   through a decoded-superblock cache (basic blocks pre-decoded into
//!   flat uop arrays, re-exported from `r3dla-isa` as
//!   [`BlockCache`]/[`DecodedBlock`]), which skips per-instruction fetch
//!   and decode; results are bit-identical to single-stepping, and the
//!   `R3DLA_BLOCK_CACHE=0` environment variable (or
//!   [`Emulator::set_block_cache`]) falls back to the per-instruction
//!   interpreter for cross-checking;
//! * [`ArchCheckpoint`] (re-exported from `r3dla-isa`) — the resumable
//!   snapshot; restore with `DlaSystem::restore_from_checkpoint` /
//!   `SingleCoreSim::restore_from_checkpoint`;
//! * [`WarmupMode`] / [`WarmTarget`] — cold-start bias control:
//!   functional cache/predictor touch-warming from the emulator's
//!   instruction stream, or detailed pre-window cycles;
//! * [`SampleSpec`] / [`plan_intervals`] / [`warm_and_measure`] — the
//!   systematic sampler; `r3dla-bench` fans the (checkpoint × config)
//!   cells over its worker pool and reports mean ± 95% CI per cell.
//!
//! # Examples
//!
//! Fast-forward, checkpoint, restore and resume — bit-exactly:
//!
//! ```
//! use std::sync::Arc;
//! use r3dla_sample::{Emulator, ImageMem};
//! use r3dla_workloads::{by_name, Scale};
//!
//! let prog = Arc::new(by_name("md5_like").unwrap().build(Scale::Tiny).program);
//! let image = Arc::new(ImageMem::of(prog.image()));
//! let mut em = Emulator::with_image(Arc::clone(&prog), Arc::clone(&image));
//! em.run(10_000);
//! let ckpt = em.checkpoint();
//! em.run(5_000);
//! let mut resumed = Emulator::from_checkpoint(prog, image, &ckpt);
//! resumed.run(5_000);
//! assert_eq!(resumed.state().regs(), em.state().regs());
//! ```

mod emulator;
mod sampler;
mod warmup;

pub use emulator::{DeltaMem, Emulator, ImageMem};
pub use r3dla_isa::{ArchCheckpoint, BlockCache, DecodedBlock};
pub use sampler::{
    apply_warmup, ipc_estimate, plan_intervals, warm_and_measure, IntervalCheckpoint, SampleSpec,
    FF_CAP, FUNCTIONAL_SETTLE,
};
pub use warmup::{
    apply_cache_touches, apply_touches, record_touches, Touch, WarmTarget, WarmupMode,
};
