//! Microarchitectural warmup for sampled simulation.
//!
//! A restored checkpoint has exact architectural state but cold caches,
//! TLBs and branch predictors; measuring immediately would charge the
//! interval for misses the real machine would not see. [`WarmupMode`]
//! selects how that bias is paid down:
//!
//! * `None` — measure cold (fastest, biased low);
//! * `Functional(n)` — replay the last `n` instructions of the
//!   emulator's load/store/fetch stream before the interval as cache/TLB
//!   tag-array touches (no timing or statistics effects), then settle
//!   the predictor and pipeline with a short detailed pre-window (see
//!   [`apply_cache_touches`] for why predictors are not touch-warmed);
//! * `Detailed(n)` — run the detailed model for `n` cycles inside the
//!   interval before opening the measurement window (most faithful,
//!   costs detailed-simulation time).

use r3dla_core::{DlaSystem, SingleCoreSim};
use r3dla_isa::{MemKind, StepOut};

/// How a restored interval is warmed before measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmupMode {
    /// No warmup: measure on a cold microarchitecture.
    None,
    /// Functional touch-warming over the last `n` pre-interval
    /// instructions of the emulator stream.
    Functional(u64),
    /// `n` cycles of detailed execution before the window opens.
    Detailed(u64),
}

impl WarmupMode {
    /// Parses a warmup spec: `none`, `functional[:N]` or `detailed[:N]`.
    /// `detailed_insts` (the interval's measured length U) sizes the
    /// defaults: `functional` warms over 4·U instructions, `detailed`
    /// runs 4·U cycles.
    pub fn parse(s: &str, detailed_insts: u64) -> Option<Self> {
        let (kind, arg) = match s.split_once(':') {
            Some((k, a)) => (k, Some(a)),
            None => (s, None),
        };
        let n = |default: u64| -> Option<u64> {
            match arg {
                Some(a) => a.parse().ok(),
                None => Some(default),
            }
        };
        match kind {
            "none" => arg.is_none().then_some(WarmupMode::None),
            "functional" => Some(WarmupMode::Functional(n(4 * detailed_insts)?)),
            "detailed" => Some(WarmupMode::Detailed(n(4 * detailed_insts)?)),
            _ => None,
        }
    }

    /// Instructions of pre-interval emulator stream the planner must
    /// record for this mode.
    pub fn functional_insts(&self) -> u64 {
        match self {
            WarmupMode::Functional(n) => *n,
            _ => 0,
        }
    }
}

impl std::fmt::Display for WarmupMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarmupMode::None => write!(f, "none"),
            WarmupMode::Functional(n) => write!(f, "functional:{n}"),
            WarmupMode::Detailed(n) => write!(f, "detailed:{n}"),
        }
    }
}

/// One microarchitecturally relevant event of the functional stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch {
    /// An instruction fetch at this PC.
    Inst(u64),
    /// A data access (load or store) at this address.
    Data(u64),
    /// A conditional branch outcome.
    Branch {
        /// Branch PC.
        pc: u64,
        /// Architectural direction.
        taken: bool,
    },
}

/// Appends the touches of one emulator step to `sink` (every step
/// contributes its fetch; loads/stores and conditional branches add
/// their events).
pub fn record_touches(out: &StepOut, sink: &mut Vec<Touch>) {
    sink.push(Touch::Inst(out.pc));
    if let Some((kind, addr, _)) = out.mem {
        debug_assert!(matches!(kind, MemKind::Load | MemKind::Store));
        sink.push(Touch::Data(addr));
    }
    if let Some(taken) = out.taken {
        sink.push(Touch::Branch { pc: out.pc, taken });
    }
}

/// Anything that accepts functional warm touches. Implemented here for
/// both timing systems so the sampler warms them uniformly.
pub trait WarmTarget {
    /// Warm touch of the data path at `addr`.
    fn warm_data(&mut self, addr: u64);
    /// Warm touch of the instruction path at `pc`.
    fn warm_inst(&mut self, pc: u64);
    /// Predictor training with one architectural branch outcome.
    fn warm_branch(&mut self, pc: u64, taken: bool);
}

impl WarmTarget for DlaSystem {
    fn warm_data(&mut self, addr: u64) {
        DlaSystem::warm_data(self, addr);
    }

    fn warm_inst(&mut self, pc: u64) {
        DlaSystem::warm_inst(self, pc);
    }

    fn warm_branch(&mut self, pc: u64, taken: bool) {
        DlaSystem::warm_branch(self, pc, taken);
    }
}

impl WarmTarget for SingleCoreSim {
    fn warm_data(&mut self, addr: u64) {
        SingleCoreSim::warm_data(self, addr);
    }

    fn warm_inst(&mut self, pc: u64) {
        SingleCoreSim::warm_inst(self, pc);
    }

    fn warm_branch(&mut self, pc: u64, taken: bool) {
        SingleCoreSim::warm_branch(self, pc, taken);
    }
}

/// Replays a recorded touch stream into a warm target, in program order.
pub fn apply_touches<T: WarmTarget + ?Sized>(target: &mut T, touches: &[Touch]) {
    for t in touches {
        match *t {
            Touch::Inst(pc) => target.warm_inst(pc),
            Touch::Data(addr) => target.warm_data(addr),
            Touch::Branch { pc, taken } => target.warm_branch(pc, taken),
        }
    }
}

/// Replays only the cache/TLB touches of a stream (instruction and data
/// paths), leaving the branch predictor cold.
///
/// This is what the sampler's functional mode uses: training a
/// long-history TAGE on the *architecturally clean* outcome stream lets
/// it memorize data-dependent branch sequences no pipelined predictor
/// ever learns (clean history → tag hits → near-zero mispredicts → IPC
/// 2–3× above a continuous run's). Predictor and pipeline state are
/// settled with a short detailed pre-window instead; the
/// [`warm_branch`](WarmTarget::warm_branch) hook remains for
/// experiments that want the architectural-training behavior.
pub fn apply_cache_touches<T: WarmTarget + ?Sized>(target: &mut T, touches: &[Touch]) {
    for t in touches {
        match *t {
            Touch::Inst(pc) => target.warm_inst(pc),
            Touch::Data(addr) => target.warm_data(addr),
            Touch::Branch { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_forms() {
        assert_eq!(WarmupMode::parse("none", 5_000), Some(WarmupMode::None));
        assert_eq!(
            WarmupMode::parse("functional", 5_000),
            Some(WarmupMode::Functional(20_000))
        );
        assert_eq!(
            WarmupMode::parse("functional:123", 5_000),
            Some(WarmupMode::Functional(123))
        );
        assert_eq!(
            WarmupMode::parse("detailed:9", 5_000),
            Some(WarmupMode::Detailed(9))
        );
        assert_eq!(
            WarmupMode::parse("detailed", 1_000),
            Some(WarmupMode::Detailed(4_000))
        );
        assert_eq!(WarmupMode::parse("bogus", 5_000), None);
        assert_eq!(WarmupMode::parse("functional:x", 5_000), None);
        assert_eq!(WarmupMode::parse("none:4", 5_000), None);
    }

    #[test]
    fn display_round_trips_through_parse() {
        for mode in [
            WarmupMode::None,
            WarmupMode::Functional(777),
            WarmupMode::Detailed(42),
        ] {
            let s = mode.to_string();
            assert_eq!(WarmupMode::parse(&s, 5_000), Some(mode), "{s}");
        }
    }

    #[test]
    fn touch_recording_covers_fetch_data_branch() {
        use r3dla_isa::{Inst, Op, Reg};
        let mut sink = Vec::new();
        let out = StepOut {
            inst: Inst {
                op: Op::Beq,
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
                imm: 0x40,
            },
            pc: 0x100,
            next_pc: 0x40,
            wrote: None,
            mem: Some((MemKind::Load, 0x2000_0000, 5)),
            taken: Some(true),
            halted: false,
        };
        record_touches(&out, &mut sink);
        assert_eq!(
            sink,
            vec![
                Touch::Inst(0x100),
                Touch::Data(0x2000_0000),
                Touch::Branch {
                    pc: 0x100,
                    taken: true
                },
            ]
        );
    }
}
