//! The `*.telemetry.json` sidecar renderer.
//!
//! The sidecar carries everything the deterministic report may not:
//! aggregated counters, per-phase wall-time histograms and host
//! throughput. It is split into two top-level sections with a hard
//! contract:
//!
//! * `"deterministic"` — the sorted counter snapshot. For the same
//!   inputs this section is **byte-identical across `--threads`**
//!   (every counter increment is tied to a work item, see
//!   [`crate::counters`]). Tooling may diff it.
//! * `"nondeterministic"` — wall-clock data (phase histograms, host
//!   wall time, aggregate simulated MIPS). Varies run to run by
//!   design; never diff it.
//!
//! The schema is specified in `docs/BENCH_FORMAT.md` ("Telemetry
//! sidecar"). Like every artifact in this workspace the JSON is built
//! by hand, keys in a fixed order, so output bytes are a function of
//! the data alone.

use std::path::{Path, PathBuf};

/// Schema tag written into the sidecar.
pub const SCHEMA: &str = "r3dla-telemetry-v1";

/// Derives the sidecar path from a report `--out` path:
/// `results.json` → `results.telemetry.json` (a non-`.json` extension
/// is preserved and the suffix appended).
pub fn sidecar_path(out: &Path) -> PathBuf {
    let stem = out
        .to_string_lossy()
        .strip_suffix(".json")
        .map(str::to_string)
        .unwrap_or_else(|| out.to_string_lossy().into_owned());
    PathBuf::from(format!("{stem}.telemetry.json"))
}

/// Renders the `"deterministic"` section (the sorted counter
/// snapshot) as a standalone JSON object. Exposed separately so tests
/// can assert byte-identity across `--threads` on exactly the bytes
/// the sidecar embeds.
pub fn render_deterministic() -> String {
    let snap = crate::counters::snapshot();
    let mut out = String::from("{\n    \"counters\": {");
    let mut first = true;
    for (name, value) in &snap {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n      \"{name}\": {value}"));
    }
    if !first {
        out.push_str("\n    ");
    }
    out.push_str("}\n  }");
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Renders the full sidecar document. `wall_ms` is the host wall time
/// of the campaign; `mips` the aggregate simulated MIPS when known.
pub fn render(wall_ms: f64, mips: Option<f64>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"deterministic\": {},\n",
        render_deterministic()
    ));
    out.push_str("  \"nondeterministic\": {\n");
    out.push_str(&format!("    \"host_wall_ms\": {},\n", fmt_f64(wall_ms)));
    out.push_str(&format!(
        "    \"aggregate_mips\": {},\n",
        mips.map_or("null".to_string(), fmt_f64)
    ));
    out.push_str("    \"phases\": [");
    let phases = crate::trace::phase_stats();
    for (i, p) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let hist = p
            .hist_log2_us
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "\n      {{\"cat\": \"{}\", \"count\": {}, \"total_us\": {}, \"min_us\": {}, \
             \"max_us\": {}, \"hist_log2_us\": [{}]}}",
            p.cat, p.count, p.total_us, p.min_us, p.max_us, hist
        ));
    }
    if !phases.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("]\n");
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_path_swaps_json_suffix() {
        assert_eq!(
            sidecar_path(Path::new("out/results.json")),
            PathBuf::from("out/results.telemetry.json")
        );
        assert_eq!(
            sidecar_path(Path::new("results")),
            PathBuf::from("results.telemetry.json")
        );
    }

    #[test]
    fn render_embeds_deterministic_section_verbatim() {
        let _g = crate::test_gate();
        crate::counters::set_enabled(true);
        crate::counters::reset();
        crate::counters::add("test.sidecar.cells", 4);
        let det = render_deterministic();
        let full = render(12.5, Some(88.0));
        assert!(
            full.contains(&det),
            "sidecar must embed the deterministic section byte-for-byte"
        );
        assert!(full.contains("\"schema\": \"r3dla-telemetry-v1\""));
        assert!(full.contains("\"test.sidecar.cells\": 4"));
        assert!(full.contains("\"aggregate_mips\": 88.000"));
        crate::counters::set_enabled(false);
        crate::counters::reset();
    }

    #[test]
    fn empty_registry_renders_empty_counters() {
        let _g = crate::test_gate();
        // Counters disabled and reset: values may exist from other
        // tests but reset() zeroes them; structure must stay valid.
        let det = render_deterministic();
        assert!(det.starts_with("{\n    \"counters\": {"));
        assert!(det.ends_with("}\n  }"));
    }
}
