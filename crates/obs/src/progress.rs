//! Opt-in live progress meter (`--progress`).
//!
//! One process-global meter, started by a campaign entry point with
//! the total cell count; the supervisor ticks it once per finished
//! cell. Output is whole stderr lines (no carriage-return tricks, so
//! CI logs stay readable), rate-limited to roughly one line per
//! 200 ms plus a final 100% line from [`finish`].
//!
//! When no meter is active [`tick`] is one mutex lock on a cold
//! mutex — it is called once per cell, never inside the simulation
//! hot loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

static ACTIVE: Mutex<Option<Arc<Meter>>> = Mutex::new(None);

/// Minimum interval between emitted progress lines.
const EMIT_EVERY: Duration = Duration::from_millis(200);

struct Meter {
    label: String,
    total: usize,
    done: AtomicUsize,
    start: Instant,
    last_emit: Mutex<Instant>,
    extra: Mutex<String>,
}

fn current() -> Option<Arc<Meter>> {
    ACTIVE.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Starts (or restarts) the global meter: `label` names the campaign
/// (`grid`, `sampled`, `mix`, `dse`), `total` is the cell count.
pub fn start(label: &str, total: usize) {
    let now = Instant::now();
    let meter = Arc::new(Meter {
        label: label.to_string(),
        total,
        done: AtomicUsize::new(0),
        start: now,
        // Backdated so the first tick emits immediately.
        last_emit: Mutex::new(now.checked_sub(EMIT_EVERY).unwrap_or(now)),
        extra: Mutex::new(String::new()),
    });
    *ACTIVE.lock().unwrap_or_else(|e| e.into_inner()) = Some(meter);
}

/// Whether a meter is active (i.e. `--progress` was requested).
pub fn active() -> bool {
    current().is_some()
}

/// Replaces the free-form suffix appended to progress lines (e.g.
/// `cache 12/20 hit`). No-op without an active meter.
pub fn set_extra(extra: impl Into<String>) {
    if let Some(m) = current() {
        *m.extra.lock().unwrap_or_else(|e| e.into_inner()) = extra.into();
    }
}

/// Records `n` finished cells and maybe emits a progress line.
/// No-op without an active meter.
pub fn tick(n: usize) {
    let Some(m) = current() else { return };
    let done = m.done.fetch_add(n, Ordering::Relaxed) + n;
    // Rate limit: skip if another thread emitted recently (or holds
    // the stamp — losing a progress line is fine).
    let Ok(mut last) = m.last_emit.try_lock() else {
        return;
    };
    if last.elapsed() < EMIT_EVERY && done < m.total {
        return;
    }
    *last = Instant::now();
    emit_line(&m, done);
}

/// Emits the final 100% line and deactivates the meter. No-op without
/// an active meter.
pub fn finish() {
    let taken = ACTIVE.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(m) = taken {
        let done = m.done.load(Ordering::Relaxed);
        emit_line(&m, done);
    }
}

fn emit_line(m: &Meter, done: usize) {
    let elapsed = m.start.elapsed().as_secs_f64();
    let pct = if m.total == 0 {
        100.0
    } else {
        done as f64 * 100.0 / m.total as f64
    };
    let eta = if done == 0 || done >= m.total {
        0.0
    } else {
        elapsed / done as f64 * (m.total - done) as f64
    };
    let extra = m.extra.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let extra = if extra.is_empty() {
        extra
    } else {
        format!(" {extra}")
    };
    crate::diag::emit(&format!(
        "[progress] {} {}/{} ({:.0}%) elapsed {:.1}s eta {:.1}s{}",
        m.label, done, m.total, pct, elapsed, eta, extra
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_ticks_and_finishes_through_diag() {
        let _g = crate::test_gate();
        crate::diag::capture_start();
        start("test", 2);
        set_extra("cache 1/1 hit");
        tick(1);
        tick(1);
        finish();
        let lines = crate::diag::capture_take();
        assert!(!lines.is_empty());
        let last = lines.last().unwrap();
        assert!(last.contains("test 2/2 (100%)"), "got: {last}");
        assert!(last.contains("cache 1/1 hit"));
        assert!(!active(), "finish must deactivate the meter");
    }

    #[test]
    fn tick_without_meter_is_a_noop() {
        let _g = crate::test_gate();
        finish();
        tick(1);
        assert!(!active());
    }
}
