//! Uniform, whole-line stderr diagnostics.
//!
//! The campaign layers used to `eprintln!` directly from worker
//! threads, which interleaves under `--threads` and is invisible to
//! tests. [`emit`] (via the [`diag!`](crate::diag!) macro) writes each
//! line under a single stderr lock so lines never garble, supports a
//! per-key rate limit for repetitive warnings ([`emit_limited`]), and
//! can be redirected into an in-memory capture buffer for assertions
//! ([`capture_start`] / [`capture_take`]).

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static CAPTURING: AtomicBool = AtomicBool::new(false);
static CAPTURE: Mutex<Vec<String>> = Mutex::new(Vec::new());

fn limits() -> &'static Mutex<HashMap<&'static str, u64>> {
    static LIMITS: OnceLock<Mutex<HashMap<&'static str, u64>>> = OnceLock::new();
    LIMITS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Emits one whole diagnostic line (no trailing newline needed).
/// Lines go to stderr under a single lock, or to the capture buffer
/// when a test has called [`capture_start`].
pub fn emit(line: &str) {
    if CAPTURING.load(Ordering::Relaxed) {
        CAPTURE
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line.to_string());
        return;
    }
    let stderr = std::io::stderr();
    let mut out = stderr.lock();
    let _ = writeln!(out, "{line}");
}

/// Emits `line` at most `max` times for the given `key`; the first
/// suppressed occurrence emits a one-line notice instead. Use for
/// warnings that can repeat per cell (cache sweeps, store retries).
pub fn emit_limited(key: &'static str, max: u64, line: &str) {
    let seen = {
        let mut map = limits().lock().unwrap_or_else(|e| e.into_inner());
        let n = map.entry(key).or_insert(0);
        *n += 1;
        *n
    };
    if seen <= max {
        emit(line);
    } else if seen == max + 1 {
        emit(&format!(
            "[diag] {key}: further messages suppressed (limit {max})"
        ));
    }
}

/// Redirects subsequent [`emit`] calls into an in-memory buffer
/// (clearing any previous capture). Test hook; process-global.
pub fn capture_start() {
    CAPTURE.lock().unwrap_or_else(|e| e.into_inner()).clear();
    CAPTURING.store(true, Ordering::Relaxed);
}

/// Stops capturing and returns the captured lines.
pub fn capture_take() -> Vec<String> {
    CAPTURING.store(false, Ordering::Relaxed);
    std::mem::take(&mut CAPTURE.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Clears all per-key rate-limit state (test hook).
pub fn reset_limits() {
    limits().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Formats and emits one diagnostic line through the shared sink.
///
/// ```
/// r3dla_obs::diag!("[cache] swept {} orphan files", 3);
/// ```
#[macro_export]
macro_rules! diag {
    ($($fmt:tt)+) => {
        $crate::diag::emit(&format!($($fmt)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_sees_emitted_lines() {
        let _g = crate::test_gate();
        capture_start();
        emit("hello");
        crate::diag!("world {}", 42);
        let got = capture_take();
        assert_eq!(got, vec!["hello".to_string(), "world 42".to_string()]);
    }

    #[test]
    fn rate_limit_suppresses_after_max() {
        let _g = crate::test_gate();
        reset_limits();
        capture_start();
        for i in 0..5 {
            emit_limited("test.limit", 2, &format!("line {i}"));
        }
        let got = capture_take();
        assert_eq!(got.len(), 3, "2 lines + 1 suppression notice");
        assert!(got[2].contains("suppressed"));
        reset_limits();
    }
}
