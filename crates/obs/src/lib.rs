//! Campaign telemetry for the R3-DLA harness, strictly off the
//! deterministic report path.
//!
//! This crate is the instrumentation substrate for the supervised
//! campaign runners (`r3dla-bench`, `r3dla-dse`): scoped span timers,
//! named monotonic counters, a uniform stderr diagnostic sink, and a
//! live progress meter. It has **no dependencies** and is safe to link
//! from every layer of the workspace.
//!
//! Two hard rules shape the design:
//!
//! 1. **Nothing here may perturb report bytes.** All output flows to
//!    sidecar files (`R3DLA_TRACE` Chrome trace, `*.telemetry.json`)
//!    or stderr. The `BENCH_*.json` / DSE report builders never see
//!    telemetry state.
//! 2. **Disabled means free.** Every entry point checks a relaxed
//!    [`AtomicBool`](std::sync::atomic::AtomicBool) before touching a
//!    clock, formatting a name, or taking a lock, so an uninstrumented
//!    run pays one predictable branch per probe site (measured by the
//!    `obs` criterion group in `crates/bench/benches/hotpath.rs`).
//!
//! # Modules
//!
//! * [`trace`] — RAII span guards feeding per-thread buffers, drained
//!   into a Chrome trace-event JSON file loadable in Perfetto or
//!   `chrome://tracing`.
//! * [`counters`] — named monotonic counters and gauges; aggregation
//!   is deterministic across `--threads` because every increment is
//!   tied to a work item, never to a thread or a clock.
//! * [`mod@diag`] — whole-line, rate-limitable stderr diagnostics (the
//!   [`diag!`] macro), capturable in tests.
//! * [`progress`] — opt-in `--progress` stderr meter with ETA.
//! * [`sidecar`] — renders the `*.telemetry.json` sidecar with a
//!   byte-deterministic counter section and a clearly separated
//!   non-deterministic wall-time section.
//!
//! # Typical wiring (campaign entry point)
//!
//! ```
//! let sess = r3dla_obs::Session::from_env();
//! // ... run the campaign; library code uses span!/counters/diag! ...
//! r3dla_obs::counters::add("cells.total", 1);
//! sess.finalize(None, Some(12.5)).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counters;
pub mod diag;
pub mod progress;
pub mod sidecar;
pub mod trace;

pub use trace::SpanGuard;

use std::env;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Where the telemetry sidecar should be written, resolved from the
/// `R3DLA_TELEMETRY` environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SidecarDest {
    /// No sidecar requested (and tracing is off).
    Off,
    /// Derive the path from the report `--out` path (`*.telemetry.json`).
    DeriveFromOut,
    /// Explicit path given via `R3DLA_TELEMETRY=path`.
    Explicit(PathBuf),
}

/// One telemetry session for a campaign entry point.
///
/// [`Session::from_env`] reads `R3DLA_TRACE` / `R3DLA_TELEMETRY` and
/// arms span recording plus counters when either is present;
/// [`Session::finalize`] drains everything to the requested sinks.
/// When neither variable is set the session is inert and `finalize`
/// writes nothing.
#[derive(Debug)]
pub struct Session {
    trace_path: Option<PathBuf>,
    sidecar: SidecarDest,
    start: Instant,
}

impl Session {
    /// Arms telemetry from the environment.
    ///
    /// * `R3DLA_TRACE=path` — record spans and write a Chrome
    ///   trace-event JSON file to `path` on [`finalize`](Self::finalize).
    ///   Tracing implies the telemetry sidecar (written next to the
    ///   report file when one is produced).
    /// * `R3DLA_TELEMETRY=1` — record counters/spans and write the
    ///   sidecar next to the report file. Any other non-empty value
    ///   except `0` is treated as an explicit sidecar path. `0` or an
    ///   empty value disables the sidecar.
    pub fn from_env() -> Self {
        let trace_path = env::var_os("R3DLA_TRACE")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        let sidecar = match env::var("R3DLA_TELEMETRY") {
            Ok(v) if v.is_empty() || v == "0" => {
                if trace_path.is_some() {
                    SidecarDest::DeriveFromOut
                } else {
                    SidecarDest::Off
                }
            }
            Ok(v) if v == "1" || v == "true" => SidecarDest::DeriveFromOut,
            Ok(v) => SidecarDest::Explicit(PathBuf::from(v)),
            Err(_) => {
                if trace_path.is_some() {
                    SidecarDest::DeriveFromOut
                } else {
                    SidecarDest::Off
                }
            }
        };
        if trace_path.is_some() || sidecar != SidecarDest::Off {
            trace::set_recording(true);
            counters::set_enabled(true);
        }
        Session {
            trace_path,
            sidecar,
            start: Instant::now(),
        }
    }

    /// Whether any sink (trace file or sidecar) is armed.
    pub fn active(&self) -> bool {
        self.trace_path.is_some() || self.sidecar != SidecarDest::Off
    }

    /// Drains the session: stops the progress meter, writes the Chrome
    /// trace (if `R3DLA_TRACE` was set) and the telemetry sidecar.
    ///
    /// `out` is the report `--out` path, used to derive the sidecar
    /// location; when `None` and no explicit sidecar path was given,
    /// the sidecar is skipped. `mips` is the aggregate simulated MIPS
    /// for the non-deterministic section, when the caller has one.
    pub fn finalize(&self, out: Option<&Path>, mips: Option<f64>) -> io::Result<()> {
        progress::finish();
        if let Some(tp) = &self.trace_path {
            trace::write_chrome_trace(tp)?;
        }
        let dest = match &self.sidecar {
            SidecarDest::Off => None,
            SidecarDest::DeriveFromOut => out.map(sidecar::sidecar_path),
            SidecarDest::Explicit(p) => Some(p.clone()),
        };
        if let Some(dest) = dest {
            let wall_ms = self.start.elapsed().as_secs_f64() * 1e3;
            std::fs::write(dest, sidecar::render(wall_ms, mips))?;
        }
        Ok(())
    }
}

/// Serializes tests across modules: the registry, span pool and diag
/// sink are process-global, so any test that arms or resets them must
/// hold this.
#[cfg(test)]
pub(crate) fn test_gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_session_writes_nothing() {
        // Constructed directly (not from env) so the test is immune to
        // the harness environment.
        let sess = Session {
            trace_path: None,
            sidecar: SidecarDest::Off,
            start: Instant::now(),
        };
        assert!(!sess.active());
        sess.finalize(Some(Path::new("/nonexistent/dir/out.json")), None)
            .expect("inert finalize must not touch the filesystem");
    }
}
