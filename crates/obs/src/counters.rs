//! Named monotonic counters and gauges.
//!
//! Counters live in a process-global registry keyed by `&'static str`
//! name. A [`Counter`] handle resolves its registry slot once and then
//! bumps a leaked [`AtomicU64`] with relaxed ordering — after the
//! first touch there is no lock on the increment path. The free
//! functions ([`add`], [`set`]) lock the registry per call and suit
//! cold sites.
//!
//! **Determinism contract:** every increment must be tied to a work
//! item (a cell, a cache probe, a retry attempt) — never to a thread
//! identity or a clock. Relaxed atomic addition is commutative, so the
//! final [`snapshot`] is byte-identical across `--threads` for the
//! same inputs; the telemetry sidecar's deterministic section relies
//! on this (covered by `crates/bench/tests/obs_telemetry.rs`).
//!
//! When disabled (the default) every probe returns after one relaxed
//! [`AtomicBool`] load.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<BTreeMap<&'static str, &'static AtomicU64>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, &'static AtomicU64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Whether counter recording is armed (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arms or disarms counter recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Resolves (interning on first use) the slot for `name`. The slot is
/// leaked so handles can be `'static` and increments lock-free.
fn intern(name: &'static str) -> &'static AtomicU64 {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
}

/// A named counter handle for hot sites: resolves its registry slot on
/// first use, then increments are a relaxed `fetch_add` with no lock.
///
/// ```
/// static CELLS: r3dla_obs::counters::Counter =
///     r3dla_obs::counters::Counter::new("cells.completed");
/// CELLS.bump();
/// ```
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    slot: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// A handle for the counter named `name` (registered lazily).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            slot: OnceLock::new(),
        }
    }

    /// Adds `n`; no-op (one atomic load) when counters are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.slot
            .get_or_init(|| intern(self.name))
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1; no-op when counters are disabled.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }
}

/// Adds `n` to the counter named `name` (cold path: locks the
/// registry). No-op when counters are disabled.
pub fn add(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    intern(name).fetch_add(n, Ordering::Relaxed);
}

/// Overwrites the gauge named `name` with `v` (cold path). Gauges and
/// counters share the registry; a gauge's last write wins, so only
/// store values that are deterministic across thread interleavings.
pub fn set(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    intern(name).store(v, Ordering::Relaxed);
}

/// Current value of `name` (0 when never registered). Reads succeed
/// even while disabled so progress lines can render final tallies.
pub fn get(name: &str) -> u64 {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.get(name).map_or(0, |c| c.load(Ordering::Relaxed))
}

/// Sorted snapshot of every registered counter. The iteration order
/// (BTreeMap, name-sorted) makes downstream rendering deterministic.
pub fn snapshot() -> BTreeMap<&'static str, u64> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.iter()
        .map(|(k, v)| (*k, v.load(Ordering::Relaxed)))
        .collect()
}

/// Zeroes every registered counter (test hook; registration and the
/// enabled flag are untouched).
pub fn reset() {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for c in reg.values() {
        c.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_counters_do_not_register() {
        let _g = crate::test_gate();
        set_enabled(false);
        static C: Counter = Counter::new("test.disabled.never");
        C.bump();
        add("test.disabled.never2", 5);
        assert_eq!(get("test.disabled.never"), 0);
        assert!(!snapshot().contains_key("test.disabled.never"));
    }

    #[test]
    fn handles_and_free_functions_share_slots() {
        let _g = crate::test_gate();
        set_enabled(true);
        static C: Counter = Counter::new("test.shared.slot");
        C.add(2);
        add("test.shared.slot", 3);
        assert_eq!(get("test.shared.slot"), 5);
        set("test.shared.slot", 7);
        assert_eq!(snapshot()["test.shared.slot"], 7);
        set_enabled(false);
        reset();
    }

    #[test]
    fn concurrent_bumps_sum_exactly() {
        let _g = crate::test_gate();
        set_enabled(true);
        static C: Counter = Counter::new("test.concurrent.sum");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        C.bump();
                    }
                });
            }
        });
        assert_eq!(get("test.concurrent.sum"), 4000);
        set_enabled(false);
        reset();
    }
}
