//! Scoped span timers with per-thread buffers and a Chrome
//! trace-event sink.
//!
//! Spans are recorded by RAII [`SpanGuard`]s into a thread-local
//! buffer — no lock is taken on the hot path. Buffers drain into a
//! global pool when a thread exits (the campaign worker pools are
//! scoped, so every worker has drained before the main thread writes
//! the trace) or on an explicit [`flush_thread`].
//!
//! The sink is the Chrome trace-event JSON array format: `"ph":"X"`
//! complete events for spans, `"ph":"i"` instants for supervisor
//! events (retries, quarantines, timeouts) and `"ph":"M"` metadata
//! events naming worker threads. The file loads directly in Perfetto
//! or `chrome://tracing`.
//!
//! When recording is off ([`enabled`] is `false`, the default) every
//! entry point returns after one relaxed atomic load.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static RECORDING: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static POOL: Mutex<Vec<Event>> = Mutex::new(Vec::new());
/// Dense trace-thread ids; 0 is reserved so metadata rows are obvious.
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// One recorded event, times already epoch-relative in microseconds.
#[derive(Debug, Clone)]
enum Event {
    Span {
        name: String,
        cat: &'static str,
        ts_us: u64,
        dur_us: u64,
        tid: u32,
    },
    Instant {
        name: String,
        cat: &'static str,
        ts_us: u64,
        tid: u32,
    },
    ThreadName {
        name: String,
        tid: u32,
    },
}

struct LocalBuf {
    tid: u32,
    buf: Vec<Event>,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        if !self.buf.is_empty() {
            let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
            pool.append(&mut self.buf);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        buf: Vec::new(),
    });
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn push(ev: Event) {
    LOCAL.with(|l| l.borrow_mut().buf.push(ev));
}

fn ts_us(at: Instant) -> u64 {
    // saturating: an Instant taken before the epoch maps to 0.
    at.duration_since(epoch()).as_micros() as u64
}

/// Whether span recording is armed. One relaxed load — this is the
/// gate every probe site checks before doing any work.
#[inline]
pub fn enabled() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Arms (or disarms) span recording. Arming pins the time epoch so
/// all subsequent timestamps share an origin.
pub fn set_recording(on: bool) {
    if on {
        let _ = epoch();
    }
    RECORDING.store(on, Ordering::Relaxed);
}

/// RAII guard for one timed span. Created by [`span`] (or the
/// [`span!`](crate::span!) macro); records a Chrome `"ph":"X"`
/// complete event into the thread-local buffer on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: String,
    cat: &'static str,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_us = self.start.elapsed().as_micros() as u64;
        push(Event::Span {
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            ts_us: ts_us(self.start),
            dur_us,
            tid: LOCAL.with(|l| l.borrow().tid),
        });
    }
}

/// Opens a span; returns `None` (no clock read, no allocation beyond
/// the caller's `name`) when recording is off. Prefer the
/// [`span!`](crate::span!) macro, which also skips formatting the name
/// when disabled.
pub fn span(cat: &'static str, name: impl Into<String>) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    Some(SpanGuard {
        name: name.into(),
        cat,
        start: Instant::now(),
    })
}

/// Records a zero-duration instant event (supervisor retries,
/// quarantines, cache faults). No-op when recording is off.
pub fn instant(cat: &'static str, name: impl Into<String>) {
    if !enabled() {
        return;
    }
    push(Event::Instant {
        name: name.into(),
        cat,
        ts_us: ts_us(Instant::now()),
        tid: LOCAL.with(|l| l.borrow().tid),
    });
}

/// Names the calling thread in the trace (Chrome `"ph":"M"`
/// `thread_name` metadata). Call once per worker, e.g. `worker-3`.
pub fn name_thread(name: impl Into<String>) {
    if !enabled() {
        return;
    }
    let tid = LOCAL.with(|l| l.borrow().tid);
    push(Event::ThreadName {
        name: name.into(),
        tid,
    });
}

/// Drains the calling thread's buffer into the global pool. Worker
/// threads drain automatically on exit; the main thread must call this
/// (done by [`write_chrome_trace`] / [`phase_stats`]) before reading.
pub fn flush_thread() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if !l.buf.is_empty() {
            let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
            pool.append(&mut l.buf);
        }
    });
}

/// Snapshot of every recorded event (flushes the calling thread first).
fn collect() -> Vec<Event> {
    flush_thread();
    POOL.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Clears all recorded events (calling thread's buffer included).
/// Test hook; recording state is untouched.
pub fn reset() {
    LOCAL.with(|l| l.borrow_mut().buf.clear());
    POOL.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Spans escape via the shared JSON escaper so names with quotes or
/// backslashes stay loadable.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes every recorded event as a Chrome trace-event JSON array to
/// `path`. Loadable in Perfetto / `chrome://tracing`. Events are
/// sorted by `(tid, ts)` so the file is stable for a given run.
pub fn write_chrome_trace(path: &Path) -> io::Result<()> {
    let mut events = collect();
    events.sort_by_key(|e| match e {
        // Metadata first so viewers name threads before rows appear.
        Event::ThreadName { tid, .. } => (0u8, *tid, 0u64),
        Event::Span { tid, ts_us, .. } => (1, *tid, *ts_us),
        Event::Instant { tid, ts_us, .. } => (1, *tid, *ts_us),
    });
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push_str("[\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        match ev {
            Event::Span {
                name,
                cat,
                ts_us,
                dur_us,
                tid,
            } => {
                out.push_str(&format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us},\"dur\":{dur_us},\
                     \"cat\":\"{}\",\"name\":\"{}\"}}",
                    json_escape(cat),
                    json_escape(name)
                ));
            }
            Event::Instant {
                name,
                cat,
                ts_us,
                tid,
            } => {
                out.push_str(&format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us},\"s\":\"t\",\
                     \"cat\":\"{}\",\"name\":\"{}\"}}",
                    json_escape(cat),
                    json_escape(name)
                ));
            }
            Event::ThreadName { name, tid } => {
                out.push_str(&format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    json_escape(name)
                ));
            }
        }
    }
    out.push_str("\n]\n");
    std::fs::write(path, out)
}

/// Number of log2 histogram buckets in [`PhaseStat::hist_log2_us`]:
/// bucket `i > 0` counts spans with `dur_us` in `[2^(i-1), 2^i)`;
/// bucket 0 counts sub-microsecond spans.
pub const HIST_BUCKETS: usize = 20;

/// Aggregated wall-time statistics for one span category, for the
/// telemetry sidecar's non-deterministic section.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// Span category (`"prepare"`, `"measure"`, ...).
    pub cat: String,
    /// Number of spans recorded in this category.
    pub count: u64,
    /// Sum of span durations, microseconds.
    pub total_us: u64,
    /// Shortest span, microseconds.
    pub min_us: u64,
    /// Longest span, microseconds.
    pub max_us: u64,
    /// Log2-microsecond duration histogram (see [`HIST_BUCKETS`]).
    pub hist_log2_us: [u64; HIST_BUCKETS],
}

/// Aggregates recorded spans by category, sorted by category name.
pub fn phase_stats() -> Vec<PhaseStat> {
    let events = collect();
    let mut by_cat: BTreeMap<String, PhaseStat> = BTreeMap::new();
    for ev in &events {
        if let Event::Span { cat, dur_us, .. } = ev {
            let st = by_cat.entry(cat.to_string()).or_insert_with(|| PhaseStat {
                cat: cat.to_string(),
                count: 0,
                total_us: 0,
                min_us: u64::MAX,
                max_us: 0,
                hist_log2_us: [0; HIST_BUCKETS],
            });
            st.count += 1;
            st.total_us += dur_us;
            st.min_us = st.min_us.min(*dur_us);
            st.max_us = st.max_us.max(*dur_us);
            let bucket = if *dur_us == 0 {
                0
            } else {
                (64 - dur_us.leading_zeros() as usize).min(HIST_BUCKETS - 1)
            };
            st.hist_log2_us[bucket] += 1;
        }
    }
    by_cat.into_values().collect()
}

/// Builds a span that formats its name only when recording is armed.
///
/// ```
/// let _sp = r3dla_obs::span!("measure", "{}/{}", "mcf", "base");
/// ```
#[macro_export]
macro_rules! span {
    ($cat:expr, $($fmt:tt)+) => {
        if $crate::trace::enabled() {
            $crate::trace::span($cat, format!($($fmt)+))
        } else {
            None
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_none_and_records_nothing() {
        let _g = crate::test_gate();
        set_recording(false);
        reset();
        assert!(span("x", "y").is_none());
        instant("x", "y");
        assert!(phase_stats().is_empty());
    }

    #[test]
    fn spans_aggregate_and_trace_is_json_shaped() {
        let _g = crate::test_gate();
        set_recording(true);
        reset();
        name_thread("test-main");
        {
            let _a = span("measure", "wl/base");
            let _b = span("measure", "wl/dla");
        }
        instant("supervisor", "retry wl|base");
        let stats = phase_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].cat, "measure");
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].hist_log2_us.iter().sum::<u64>(), 2);

        let dir = std::env::temp_dir().join("r3dla_obs_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        write_chrome_trace(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("[\n"), "trace must be a JSON array");
        assert!(body.trim_end().ends_with(']'));
        assert!(body.contains("\"ph\":\"X\""));
        assert!(body.contains("\"ph\":\"i\""));
        assert!(body.contains("\"thread_name\""));
        assert!(body.contains("wl/dla"));
        set_recording(false);
        reset();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
