//! Chaos under the service: deterministic fault injection (cell panics
//! and I/O errors), a client disconnecting mid-stream, and spool-file
//! clients must all leave the cache and spool consistent — and every
//! served report must still be byte-identical to a batch run under the
//! same fault plan.

use std::sync::Mutex;

use r3dla_bench::runner::ConfigSpec;
use r3dla_bench::{run_grid_supervised, FaultPlan, GridSpec, SuperviseConfig, Supervisor};
use r3dla_dse::{run_dse_supervised, to_json, DseSpec, ResultCache, SearchSpace, Strategy};
use r3dla_sample::SampleSpec;
use r3dla_serve::{process_spool, ServeConfig, ServeEvent, ServeHandle};
use r3dla_workloads::{by_name, Scale};

/// Serializes tests in this binary: they share the process-global obs
/// counters through the service's probes.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("r3dla-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dse_spec() -> DseSpec {
    DseSpec {
        scale: Scale::Tiny,
        workloads: vec![by_name("libq_like").unwrap()],
        space: SearchSpace::quick(),
        strategy: Strategy::Random { seed: 7, budget: 4 },
        sample: SampleSpec::parse("2:800:none").unwrap(),
        fast_forward: true,
    }
}

fn dse_campaign(client: &str) -> String {
    format!(
        "campaign r3dla-serve-v1\nclient {client}\nkind dse\nscale tiny\n\
         workloads libq_like\nspace quick\nstrategy random\nseed 7\ntrials 4\n\
         sample 2:800:none\nend\n"
    )
}

fn faulty_config(plan: &str) -> SuperviseConfig {
    SuperviseConfig {
        plan: FaultPlan::parse(plan).unwrap(),
        backoff_ms: 0,
        ..SuperviseConfig::default()
    }
}

#[test]
fn served_reports_under_faults_match_batch_runs() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = faulty_config("seed=5:panic=0.25:io=0.2");

    // Batch reference under the exact same fault plan.
    let sup = Supervisor::new(cfg.clone());
    let reference = to_json(&run_dse_supervised(
        &dse_spec(),
        &ResultCache::disabled(),
        2,
        &sup,
    ));

    let dir = temp_dir("chaos-parity");
    let handle = ServeHandle::start(ServeConfig {
        threads: 2,
        cache_dir: Some(dir.clone()),
        supervise: cfg,
    })
    .unwrap();
    let result = handle
        .submit(&dse_campaign("chaos"))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        result.report, reference,
        "injected faults must not move a single report byte vs batch"
    );
    assert!(
        result
            .lines
            .iter()
            .any(|l| l.contains("attempts=2") || l.contains("attempts=3")),
        "the fault plan must actually fire (no retried cell observed)"
    );

    // The cache took no collateral damage: no corrupt entries, no
    // store errors (the plan injects cell faults only).
    let health = handle.cache_health();
    assert_eq!(health.corrupt, 0);
    assert_eq!(health.store_errors, 0);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_disconnect_mid_stream_leaves_cache_resumable() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = faulty_config("seed=9:panic=0.3:io=0.1");
    let sup = Supervisor::new(cfg.clone());
    let reference = to_json(&run_dse_supervised(
        &dse_spec(),
        &ResultCache::disabled(),
        2,
        &sup,
    ));

    let dir = temp_dir("chaos-disconnect");
    let handle = ServeHandle::start(ServeConfig {
        threads: 2,
        cache_dir: Some(dir.clone()),
        supervise: cfg,
    })
    .unwrap();

    // The client reads the acceptance and the first cell, then "drops
    // the connection" (drops its event receiver). The campaign keeps
    // running server-side.
    let doomed = handle.submit(&dse_campaign("flaky")).unwrap();
    assert!(matches!(doomed.recv(), Some(ServeEvent::Accepted { .. })));
    assert!(matches!(doomed.recv(), Some(ServeEvent::Cell { .. })));
    drop(doomed);
    handle.wait_idle();

    // Re-submitting resumes from the cache the disconnected campaign
    // populated: byte-identical report, with cells served from disk
    // (quarantined fault cells replay their recorded failures and are
    // the only ones that may count as fresh).
    let retry = handle
        .submit(&dse_campaign("retry"))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(retry.report, reference);
    assert!(
        retry.stats.cache_hits + retry.stats.shared > 0,
        "the resumed campaign must reuse the first campaign's cells"
    );
    let n = retry.stats.fresh + retry.stats.shared + retry.stats.cache_hits;
    assert!(
        retry.stats.cache_hits >= n / 2,
        "most cells must come from the cache, got {:?}",
        retry.stats
    );
    assert_eq!(handle.cache_health().corrupt, 0);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spool_clients_survive_faults_and_bad_specs() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = faulty_config("seed=11:panic=0.2:io=0.2");

    // Batch references under the same plan (fresh supervisors — the
    // service's quarantine replay reproduces recorded failures, so a
    // shared supervisor cannot drift from these).
    let grid_spec = GridSpec {
        scale: Scale::Tiny,
        workloads: vec![by_name("md5_like").unwrap()],
        configs: vec![
            ConfigSpec::by_name("bl").unwrap(),
            ConfigSpec::by_name("dla").unwrap(),
        ],
        warm: 300,
        win: 1500,
        fast_forward: true,
    };
    let grid_ref = run_grid_supervised(&grid_spec, 2, &Supervisor::new(cfg.clone())).to_json(false);
    let dse_ref = to_json(&run_dse_supervised(
        &dse_spec(),
        &ResultCache::disabled(),
        2,
        &Supervisor::new(cfg.clone()),
    ));

    let spool = temp_dir("chaos-spool");
    std::fs::create_dir_all(&spool).unwrap();
    std::fs::write(
        spool.join("a-grid.campaign"),
        "campaign r3dla-serve-v1\nclient spool-a\nkind grid\nscale tiny\n\
         workloads md5_like\nconfigs bl,dla\nwarm 300\nwindow 1500\nend\n",
    )
    .unwrap();
    std::fs::write(spool.join("b-dse.campaign"), dse_campaign("spool-b")).unwrap();
    // A truncated spec (no `end`): must be rejected, not half-run.
    std::fs::write(
        spool.join("c-bad.campaign"),
        "campaign r3dla-serve-v1\nkind grid\n",
    )
    .unwrap();

    let cache_dir = temp_dir("chaos-spool-cache");
    let handle = ServeHandle::start(ServeConfig {
        threads: 2,
        cache_dir: Some(cache_dir.clone()),
        supervise: cfg,
    })
    .unwrap();
    let report = process_spool(&handle, &spool).unwrap();
    assert_eq!(report.completed, 2);
    assert_eq!(report.rejected, 1);

    // Spool is consistent: inputs claimed, streams complete, reports
    // byte-identical to batch, rejection explained.
    for name in ["a-grid", "b-dse", "c-bad"] {
        assert!(!spool.join(format!("{name}.campaign")).exists());
        assert!(spool.join(format!("{name}.campaign.taken")).exists());
    }
    for name in ["a-grid", "b-dse"] {
        let stream = std::fs::read_to_string(spool.join(format!("{name}.stream"))).unwrap();
        assert!(stream.starts_with("accepted cells="));
        assert!(stream.lines().last().unwrap().starts_with("done "));
    }
    let served_grid = std::fs::read_to_string(spool.join("a-grid.report.json")).unwrap();
    let served_dse = std::fs::read_to_string(spool.join("b-dse.report.json")).unwrap();
    assert_eq!(served_grid, grid_ref);
    assert_eq!(served_dse, dse_ref);
    let error = std::fs::read_to_string(spool.join("c-bad.error")).unwrap();
    assert!(error.starts_with("rejected "), "{error}");
    assert!(!spool.join("c-bad.report.json").exists());

    assert_eq!(handle.cache_health().corrupt, 0);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
