//! Service determinism: a campaign served by `r3dla-serve` must produce
//! a report byte-identical to the batch binary's output for the same
//! spec — including when two clients submit the same campaign
//! concurrently against one warm service — and the dedup counters must
//! prove that overlapping cells were simulated only once.

use std::sync::Mutex;

use r3dla_bench::runner::ConfigSpec;
use r3dla_bench::{run_grid_supervised, GridSpec, SuperviseConfig, Supervisor, WARMUP, WINDOW};
use r3dla_dse::{run_dse, to_json, DseSpec, ResultCache, SearchSpace, Strategy};
use r3dla_obs::counters;
use r3dla_sample::SampleSpec;
use r3dla_serve::{ServeConfig, ServeHandle};
use r3dla_workloads::{by_name, Scale};

/// Counters are process-global; every test that arms or reads them
/// holds this lock so parallel tests in this binary don't cross-count.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("r3dla-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const DSE_CAMPAIGN: &str = "\
campaign r3dla-serve-v1
client {client}
priority {priority}
kind dse
scale tiny
workloads libq_like
space quick
strategy random
seed 7
trials 4
sample 2:800:none
end
";

fn dse_campaign(client: &str, priority: u32) -> String {
    DSE_CAMPAIGN
        .replace("{client}", client)
        .replace("{priority}", &priority.to_string())
}

/// The batch-layer spec the campaign text above resolves to.
fn dse_spec() -> DseSpec {
    DseSpec {
        scale: Scale::Tiny,
        workloads: vec![by_name("libq_like").unwrap()],
        space: SearchSpace::quick(),
        strategy: Strategy::Random { seed: 7, budget: 4 },
        sample: SampleSpec::parse("2:800:none").unwrap(),
        fast_forward: true,
    }
}

#[test]
fn concurrent_dse_clients_get_batch_identical_reports_and_dedup() {
    let _g = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // Reference: a fresh single-client batch run, no cache.
    let reference = to_json(&run_dse(&dse_spec(), &ResultCache::disabled(), 2));

    counters::set_enabled(true);
    counters::reset();

    let dir = temp_dir("dse-dedup");
    let handle = ServeHandle::start(ServeConfig {
        threads: 2,
        cache_dir: Some(dir.clone()),
        supervise: SuperviseConfig::default(),
    })
    .unwrap();

    // Two clients, same campaign, different priorities, submitted
    // back-to-back so their cells genuinely interleave in the pool.
    let a = handle.submit(&dse_campaign("alice", 3)).unwrap();
    let b = handle.submit(&dse_campaign("bob", 1)).unwrap();
    let ra = a.wait().unwrap();
    let rb = b.wait().unwrap();

    assert_eq!(
        ra.report, reference,
        "client a's report must be batch-identical"
    );
    assert_eq!(
        rb.report, reference,
        "client b's report must be batch-identical"
    );

    // The streams are identical line-for-line up to the `done` tallies
    // (which depend on who reached a shared cell first): same cells,
    // same order, same statuses, same report bytes.
    assert_eq!(
        ra.lines[..ra.lines.len() - 1],
        rb.lines[..rb.lines.len() - 1],
        "cell stream order must be deterministic across clients"
    );

    // Every overlapping cell simulated exactly once: each campaign
    // covers all n cells, the service simulated n fresh in total, and
    // the other n were served shared / from the disk cache.
    let n = ra.stats.fresh + ra.stats.shared + ra.stats.cache_hits;
    assert!(n > 0);
    assert_eq!(n, rb.stats.fresh + rb.stats.shared + rb.stats.cache_hits);
    let stats = handle.stats();
    assert_eq!(stats.campaigns, 2);
    assert_eq!(stats.fresh, n, "each distinct cell simulates exactly once");
    assert_eq!(stats.shared + stats.cache_hits, n);
    assert_eq!(counters::get("serve.dedup"), n);
    assert_eq!(
        counters::get("dse.cache.hits"),
        n,
        "every deduped dse cell is one disk-cache hit"
    );

    // Third client against the now-warm service: zero fresh work.
    let c = handle.submit(&dse_campaign("carol", 8)).unwrap();
    let rc = c.wait().unwrap();
    assert_eq!(rc.report, reference);
    assert_eq!(rc.stats.fresh, 0, "a warm service re-simulates nothing");

    handle.shutdown();
    counters::set_enabled(false);
    counters::reset();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn grid_campaigns_match_batch_and_memoize_on_reuse() {
    let _g = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    let spec = GridSpec {
        scale: Scale::Tiny,
        workloads: vec![by_name("md5_like").unwrap()],
        configs: vec![
            ConfigSpec::by_name("bl").unwrap(),
            ConfigSpec::by_name("dla").unwrap(),
        ],
        warm: 300,
        win: 1500,
        fast_forward: true,
    };
    let sup = Supervisor::new(SuperviseConfig::default());
    let reference = run_grid_supervised(&spec, 2, &sup).to_json(false);

    let campaign = |client: &str| {
        format!(
            "campaign r3dla-serve-v1\nclient {client}\nkind grid\nscale tiny\n\
             workloads md5_like\nconfigs bl,dla\nwarm 300\nwindow 1500\nend\n"
        )
    };
    let handle = ServeHandle::start(ServeConfig::default()).unwrap();
    let first = handle.submit(&campaign("one")).unwrap().wait().unwrap();
    assert_eq!(first.report, reference);
    assert_eq!(first.stats.shared, 0, "a cold service has nothing to share");

    // Same campaign again: every cell comes from the service memo.
    let second = handle.submit(&campaign("two")).unwrap().wait().unwrap();
    assert_eq!(second.report, reference);
    assert_eq!(second.stats.fresh, 0);
    assert_eq!(
        second.stats.shared, first.stats.fresh,
        "the repeat campaign is served entirely from memo"
    );
    handle.shutdown();
}

#[test]
fn sampled_campaigns_match_batch_reports() {
    let _g = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    let spec = GridSpec {
        scale: Scale::Tiny,
        workloads: vec![by_name("libq_like").unwrap()],
        configs: vec![
            ConfigSpec::by_name("bl").unwrap(),
            ConfigSpec::by_name("r3").unwrap(),
        ],
        warm: WARMUP,
        win: WINDOW,
        fast_forward: true,
    };
    let sample = SampleSpec::parse("2:800:none").unwrap();
    let sup = Supervisor::new(SuperviseConfig::default());
    let reference =
        r3dla_bench::sampled::run_grid_sampled_supervised(&spec, &sample, 2, &sup).to_json(false);

    let handle = ServeHandle::start(ServeConfig::default()).unwrap();
    let result = handle
        .submit(
            "campaign r3dla-serve-v1\nclient s1\nkind sample\nscale tiny\n\
             workloads libq_like\nconfigs bl,r3\nsample 2:800:none\nend\n",
        )
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(result.report, reference);
    handle.shutdown();
}
