//! Property tests for the campaign-spec parser and the service
//! scheduler (vendored proptest): arbitrary valid specs round-trip
//! through the canonical renderer, arbitrary junk never panics the
//! parser, and arbitrary client mixes of priorities and budgets never
//! starve a client, never exceed a budget, and always dispatch
//! deterministically in a per-client cell order.

use proptest::prelude::*;
use r3dla_sample::SampleSpec;
use r3dla_serve::{CampaignKind, CampaignSpec, Reorder, Scheduler, MAX_PRIORITY};
use r3dla_workloads::Scale;

// ---------------------------------------------------------------------
// Generators (from plain integers — the vendored proptest has no
// string strategies).
// ---------------------------------------------------------------------

const CLIENTS: [&str; 4] = ["alice", "bob-2", "c.i", "batch_7"];
const WORKLOAD_NAMES: [&str; 4] = ["libq_like", "md5_like", "kernel-x", "w_1"];
const CONFIG_NAMES: [&str; 3] = ["bl", "dla", "r3"];
const SPACES: [&str; 2] = ["quick", "full"];
const STRATEGIES: [&str; 3] = ["exhaustive", "random", "halving"];
const WARMUPS: [&str; 4] = ["none", "functional", "functional:7", "detailed:3"];

fn pick<'a>(table: &[&'a str], i: u64) -> &'a str {
    table[(i % table.len() as u64) as usize]
}

fn names(table: &[&'static str], picks: &[u64]) -> Vec<String> {
    // Distinct names, order given by first pick — duplicates in a spec
    // list would not round-trip (the parser keeps them, but a real
    // campaign never repeats a name).
    let mut out: Vec<String> = Vec::new();
    for &p in picks {
        let n = pick(table, p).to_string();
        if !out.contains(&n) {
            out.push(n);
        }
    }
    out
}

fn sample_of(k: u64, detailed: u64, warm: u64) -> SampleSpec {
    let label = format!(
        "{}:{}:{}",
        2 + k % 6,
        100 + detailed % 5000,
        pick(&WARMUPS, warm)
    );
    SampleSpec::parse(&label).unwrap()
}

fn scale_of(i: u64) -> Scale {
    match i % 3 {
        0 => Scale::Tiny,
        1 => Scale::Train,
        _ => Scale::Ref,
    }
}

/// Decodes one generated integer into a client's (priority, n_cells):
/// the vendored proptest has no tuple strategies.
fn client_of(v: u64) -> (u32, usize) {
    (1 + (v % 8) as u32, ((v / 8) % 12) as usize)
}

#[allow(clippy::too_many_arguments)]
fn spec_of(
    client: u64,
    priority: u64,
    budget: u64,
    scale: u64,
    workloads: &[u64],
    fast_forward: bool,
    kind_sel: u64,
    a: u64,
    b: u64,
    c: u64,
) -> CampaignSpec {
    let kind = match kind_sel % 3 {
        0 => CampaignKind::Grid {
            configs: names(&CONFIG_NAMES, &[a, b]),
            warm: 100 + b % 10_000,
            win: 1000 + c % 100_000,
        },
        1 => CampaignKind::Sample {
            configs: names(&CONFIG_NAMES, &[a]),
            sample: sample_of(a, b, c),
        },
        _ => CampaignKind::Dse {
            space: pick(&SPACES, a).to_string(),
            strategy: pick(&STRATEGIES, b).to_string(),
            seed: c,
            trials: (a % 40) as usize,
            sample: sample_of(c, a, b),
        },
    };
    CampaignSpec {
        client: pick(&CLIENTS, client).to_string(),
        priority: 1 + (priority % MAX_PRIORITY as u64) as u32,
        budget: if budget.is_multiple_of(3) {
            None
        } else {
            Some((budget % 1000) as usize)
        },
        scale: scale_of(scale),
        workloads: names(&WORKLOAD_NAMES, workloads),
        fast_forward,
        kind,
    }
}

proptest! {
    #[test]
    fn spec_round_trips_through_canonical_render(
        client: u64, priority: u64, budget: u64, scale: u64,
        workloads in prop::collection::vec(0u64..100, 0..5),
        fast_forward: bool, kind_sel: u64, a: u64, b: u64, c: u64,
    ) {
        let spec = spec_of(
            client, priority, budget, scale, &workloads, fast_forward, kind_sel, a, b, c,
        );
        let rendered = spec.render();
        prop_assert_eq!(CampaignSpec::parse(&rendered), Ok(spec));
    }

    #[test]
    fn parser_never_panics_on_junk(bytes in prop::collection::vec(0u64..96, 0..200)) {
        // Cover the grammar's separators heavily: newlines, spaces and
        // the key characters, plus arbitrary printable noise.
        const TABLE: &[u8] =
            b"\n\n  \tcampaign end kind grid dse sample priority budget 0123456789.:,=|x-_#";
        let text: String = bytes
            .iter()
            .map(|&b| TABLE[(b as usize) % TABLE.len()] as char)
            .collect();
        let _ = CampaignSpec::parse(&text);
    }

    #[test]
    fn scheduler_dispatches_every_cell_once_in_client_order(
        raw in prop::collection::vec(0u64..10_000, 1..6),
    ) {
        let clients: Vec<(u32, usize)> = raw.iter().map(|&v| client_of(v)).collect();
        let mut s = Scheduler::new();
        for (id, (priority, n)) in clients.iter().enumerate() {
            s.admit(id as u64, *priority, *n, None).unwrap();
        }
        let schedule: Vec<(u64, usize)> = std::iter::from_fn(|| s.dispatch()).collect();
        let total: usize = clients.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(schedule.len(), total);
        prop_assert!(s.is_empty());
        for (id, (_, n)) in clients.iter().enumerate() {
            let mine: Vec<usize> = schedule
                .iter()
                .filter(|(cid, _)| *cid == id as u64)
                .map(|(_, cell)| *cell)
                .collect();
            let expect: Vec<usize> = (0..*n).collect();
            prop_assert_eq!(mine, expect, "client {} cells out of order", id);
        }
    }

    #[test]
    fn scheduler_is_deterministic(
        raw in prop::collection::vec(0u64..10_000, 1..6),
    ) {
        let clients: Vec<(u32, usize)> = raw.iter().map(|&v| client_of(v)).collect();
        let run = || {
            let mut s = Scheduler::new();
            for (id, (priority, n)) in clients.iter().enumerate() {
                s.admit(id as u64, *priority, *n, None).unwrap();
            }
            std::iter::from_fn(move || s.dispatch()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn budgets_are_enforced_at_admission(
        n in 0usize..40, slack in 0usize..10, short in 1usize..10, priority in 1u32..9,
    ) {
        // A budget that covers the campaign admits it whole...
        let mut s = Scheduler::new();
        s.admit(1, priority, n, Some(n + slack)).unwrap();
        let dispatched = std::iter::from_fn(|| s.dispatch()).count();
        prop_assert_eq!(dispatched, n, "an admitted campaign runs exactly its cells");

        // ...and one that falls short rejects it whole: the client can
        // never exceed its budget because nothing is ever admitted
        // against insufficient budget.
        if n > 0 {
            let mut s = Scheduler::new();
            let budget = n.saturating_sub(short.min(n));
            prop_assert!(s.admit(1, priority, n, Some(budget)).is_err());
            prop_assert_eq!(s.depth(), 0);
        }
    }

    #[test]
    fn no_client_starves_under_any_priority_mix(
        raw in prop::collection::vec(0u64..10_000, 2..6),
    ) {
        // Every client has at least one cell so the starvation bound
        // applies to each of them.
        let clients: Vec<(u32, usize)> =
            raw.iter().map(|&v| client_of(v)).map(|(p, n)| (p, 1 + n)).collect();
        let mut s = Scheduler::new();
        for (id, (priority, n)) in clients.iter().enumerate() {
            s.admit(id as u64, *priority, *n, None).unwrap();
        }
        let schedule: Vec<(u64, usize)> = std::iter::from_fn(|| s.dispatch()).collect();
        // Starvation bound: while a client has pending cells, it waits
        // at most two full scheduling rounds (2 * sum of clamped
        // priorities dispatches) between consecutive grants.
        let window: usize = 2 * clients.iter().map(|(p, _)| *p as usize).sum::<usize>();
        for (id, (_, n)) in clients.iter().enumerate() {
            let positions: Vec<usize> = schedule
                .iter()
                .enumerate()
                .filter(|(_, (cid, _))| *cid == id as u64)
                .map(|(pos, _)| pos)
                .collect();
            prop_assert_eq!(positions.len(), *n);
            prop_assert!(
                positions[0] <= window,
                "client {} first dispatch at {} > window {}",
                id, positions[0], window
            );
            for pair in positions.windows(2) {
                prop_assert!(
                    pair[1] - pair[0] <= window,
                    "client {} starved for {} dispatches (window {})",
                    id, pair[1] - pair[0], window
                );
            }
        }
    }

    #[test]
    fn reorder_restores_index_order_from_any_completion_order(
        keys in prop::collection::vec(0u64..1_000_000, 1..60),
    ) {
        // Derive an arbitrary completion permutation by sorting indices
        // by random keys (stable, so duplicate keys stay valid).
        let n = keys.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| keys[i]);

        let mut r = Reorder::new();
        let mut emitted: Vec<usize> = Vec::new();
        for &idx in &order {
            for (i, val) in r.push(idx, idx) {
                prop_assert_eq!(i, val, "emitted item must carry its own index");
                emitted.push(i);
            }
        }
        let expect: Vec<usize> = (0..n).collect();
        prop_assert_eq!(emitted, expect);
        prop_assert_eq!(r.pending(), 0);
    }
}
