//! The `r3dla-serve` CLI: a long-running campaign service over the
//! batch experiment drivers.
//!
//! ```text
//! r3dla-serve [--spool DIR] [--listen ADDR] [--threads N]
//!             [--cache DIR] [--no-cache] [--once] [--progress]
//! ```
//!
//! At least one front end is required: `--spool DIR` watches a
//! directory for `*.campaign` files, `--listen ADDR` (e.g.
//! `127.0.0.1:7433`) accepts line-protocol connections; both may run
//! together. `--once` (spool only) processes the files present, waits
//! for their campaigns to finish and exits — the mode CI's
//! `serve-smoke` job drives. Served reports are byte-identical to the
//! batch binaries' `--out` files for the same spec; see
//! `docs/SERVE.md`.
//!
//! Telemetry (stderr/sidecar only, never the report): `--progress`
//! prints a live cells-done meter, `R3DLA_TRACE=path` records a Chrome
//! trace, `R3DLA_TELEMETRY=path` writes the `*.telemetry.json` sidecar
//! on exit (queue depth, client sessions, dedup hits).

use std::net::TcpListener;
use std::sync::Arc;

use r3dla_bench::{arg_flag, arg_str, arg_threads};
use r3dla_serve::{process_spool, serve_tcp, ServeConfig, ServeHandle};

fn main() {
    let spool = arg_str("--spool");
    let listen = arg_str("--listen");
    if spool.is_none() && listen.is_none() {
        eprintln!("r3dla-serve: need a front end: --spool DIR and/or --listen ADDR");
        std::process::exit(2);
    }
    let once = arg_flag("--once");
    if once && spool.is_none() {
        eprintln!("r3dla-serve: --once requires --spool");
        std::process::exit(2);
    }

    let mut cfg = ServeConfig::from_env();
    cfg.threads = arg_threads();
    cfg.cache_dir = if arg_flag("--no-cache") {
        None
    } else {
        Some(
            arg_str("--cache")
                .unwrap_or_else(|| "DSE_CACHE".to_string())
                .into(),
        )
    };

    let session = r3dla_obs::Session::from_env();
    if arg_flag("--progress") {
        // The meter total is unknowable up front for a service; track
        // completed cells against the campaigns admitted so far.
        r3dla_obs::progress::start("serve", 0);
    }

    let handle = Arc::new(ServeHandle::start(cfg).unwrap_or_else(|e| {
        eprintln!("r3dla-serve: {e}");
        std::process::exit(2);
    }));

    if let Some(addr) = &listen {
        let listener = TcpListener::bind(addr).unwrap_or_else(|e| {
            eprintln!("r3dla-serve: cannot listen on {addr}: {e}");
            std::process::exit(2);
        });
        eprintln!("r3dla-serve: listening on {addr}");
        let tcp_handle = Arc::clone(&handle);
        std::thread::spawn(move || {
            if let Err(e) = serve_tcp(tcp_handle, listener) {
                eprintln!("r3dla-serve: tcp front end failed: {e}");
            }
        });
    }

    let mut rejected = 0usize;
    if let Some(dir) = &spool {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("r3dla-serve: cannot create spool {}: {e}", dir.display());
            std::process::exit(2);
        });
        if once {
            let report = process_spool(&handle, dir).unwrap_or_else(|e| {
                eprintln!("r3dla-serve: spool processing failed: {e}");
                std::process::exit(2);
            });
            rejected += report.rejected;
            eprintln!(
                "r3dla-serve: spool done: {} completed, {} rejected",
                report.completed, report.rejected
            );
        } else {
            eprintln!("r3dla-serve: watching spool {}", dir.display());
            loop {
                // Rejections already leave `.error` files; the daemon
                // keeps serving.
                if let Err(e) = process_spool(&handle, dir) {
                    eprintln!("r3dla-serve: spool sweep failed: {e}");
                }
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
        }
    } else {
        // TCP-only: serve until killed.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    let stats = handle.stats();
    eprintln!(
        "r3dla-serve: {} campaign(s), {} rejected, cells: {} fresh, {} shared, {} cache hits",
        stats.campaigns, stats.rejected, stats.fresh, stats.shared, stats.cache_hits
    );
    if arg_flag("--progress") {
        r3dla_obs::progress::finish();
    }
    if let Err(e) = session.finalize(None, None) {
        eprintln!("r3dla-serve: telemetry write failed: {e}");
    }
    if rejected > 0 {
        std::process::exit(1);
    }
}
