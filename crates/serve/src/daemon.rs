//! The service front ends: a spool directory for file-based clients
//! and a line-delimited TCP protocol for interactive ones. Both are
//! thin shells over [`ServeHandle`] — they parse nothing and decide
//! nothing; every accepted byte of output is a rendered
//! [`ServeEvent`].
//!
//! # Spool protocol
//!
//! A client drops `<name>.campaign` into the spool directory. The
//! daemon claims it by renaming it to `<name>.campaign.taken` (so a
//! crashed run leaves evidence rather than re-running the file), then
//! writes:
//!
//! * `<name>.stream` — the event lines, appended as cells complete,
//! * `<name>.report.json` — the report, byte-identical to the batch
//!   binary's `--out` for the same spec (written atomically via a
//!   `.part` temp file),
//! * `<name>.error` — only on rejection, with the reason.
//!
//! The `done …` line in the stream marks completion. Files are claimed
//! in name order, and all pending files are submitted before any is
//! drained, so concurrently dropped campaigns genuinely overlap in the
//! scheduler.
//!
//! # TCP protocol
//!
//! A client connects, sends one campaign spec (ending with `end`), and
//! reads event lines until `done`; the report travels in-band after
//! its `report bytes=<n>` line. A connection may submit further
//! campaigns after the previous stream completes. A rejected spec gets
//! one `rejected <reason>` line. A client that disconnects mid-stream
//! aborts nothing: the campaign runs to completion server-side, and
//! every cell it shares with other clients stays cached and memoized.

use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;

use crate::service::{Campaign, ServeEvent, ServeHandle};

/// What one spool sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpoolReport {
    /// Campaigns accepted and run to completion.
    pub completed: usize,
    /// Campaigns rejected (`.error` file written).
    pub rejected: usize,
}

/// Claims and runs every pending `*.campaign` file in `dir`, blocking
/// until all of them have completed. Files are submitted (in name
/// order) before any stream is drained, so they share the scheduler,
/// the memo and the cache concurrently.
pub fn process_spool(handle: &ServeHandle, dir: &Path) -> std::io::Result<SpoolReport> {
    let mut pending: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "campaign"))
        .collect();
    pending.sort();

    let mut report = SpoolReport::default();
    let mut drains = Vec::new();
    for path in pending {
        let mut taken = path.clone().into_os_string();
        taken.push(".taken");
        fs::rename(&path, &taken)?;
        let text = fs::read_to_string(&taken)?;
        let base = path.with_extension("");
        match handle.submit(&text) {
            Err(reason) => {
                fs::write(base.with_extension("error"), format!("rejected {reason}\n"))?;
                report.rejected += 1;
            }
            Ok(campaign) => {
                drains.push(thread::spawn(move || drain_to_files(campaign, &base)));
            }
        }
    }
    for d in drains {
        d.join()
            .map_err(|_| std::io::Error::other("spool drain thread panicked"))??;
        report.completed += 1;
    }
    Ok(report)
}

/// Streams one campaign's events into its spool files.
fn drain_to_files(campaign: Campaign, base: &Path) -> std::io::Result<()> {
    let mut stream = fs::File::create(base.with_extension("stream"))?;
    while let Some(ev) = campaign.recv() {
        match ev {
            ServeEvent::Report { json } => {
                let part = base.with_extension("report.json.part");
                fs::write(&part, &json)?;
                fs::rename(&part, base.with_extension("report.json"))?;
                writeln!(stream, "report bytes={}", json.len())?;
            }
            other => {
                stream.write_all(other.render().as_bytes())?;
            }
        }
        stream.flush()?;
    }
    Ok(())
}

/// Accept loop for the TCP front end: one thread per connection, each
/// serving campaigns sequentially. Never returns under normal
/// operation; errors out only if the listener itself fails.
pub fn serve_tcp(handle: Arc<ServeHandle>, listener: TcpListener) -> std::io::Result<()> {
    for conn in listener.incoming() {
        let conn = conn?;
        let handle = Arc::clone(&handle);
        thread::spawn(move || {
            // A failed connection only loses that client's view; the
            // campaigns themselves run to completion regardless.
            let _ = handle_conn(&handle, conn);
        });
    }
    Ok(())
}

fn handle_conn(handle: &ServeHandle, conn: TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    let mut text = String::new();
    for line in reader.lines() {
        let line = line?;
        text.push_str(&line);
        text.push('\n');
        if line.trim() != "end" {
            continue;
        }
        match handle.submit(&text) {
            Err(reason) => writeln!(writer, "rejected {reason}")?,
            Ok(campaign) => {
                while let Some(ev) = campaign.recv() {
                    writer.write_all(ev.render().as_bytes())?;
                    writer.flush()?;
                }
            }
        }
        writer.flush()?;
        text.clear();
    }
    Ok(())
}
