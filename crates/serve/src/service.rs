//! The campaign service core: an in-process engine that admits parsed
//! campaign specs, schedules their cells across a worker pool with
//! weighted fairness and budgets, dedupes identical cells across
//! clients, and assembles the same byte-deterministic reports the batch
//! binaries write.
//!
//! # Byte-determinism by construction
//!
//! The service does not reimplement any measurement or report code. A
//! campaign resolves to the exact plan type the batch drivers use
//! ([`GridPlan`], [`SampledPlan`], [`DsePlan`]); each cell runs through
//! [`Supervisor::map`] under the same supervision key the batch path
//! uses; and the final report is the plan's pure `assemble` over the
//! per-cell [`CellOutcome`]s, serialized without timing fields. Fault
//! injection is a pure function of `(plan seed, fault kind, attempt,
//! key)` and quarantine replays record failures verbatim, so the
//! outcome of every cell — success or failure — is independent of which
//! client triggered it, which worker ran it, and whether it was served
//! from memo, disk cache, or a fresh simulation.
//!
//! # Dedup
//!
//! Grid and sampled cells memoize their full [`CellOutcome`] under the
//! supervision key for the life of the service; a second campaign
//! touching the same cell is served from memo (or waits on the in-flight
//! execution) without simulating. DSE cells already have a disk-backed
//! [`ResultCache`]; the service only adds an in-flight table so
//! concurrent clients do not race to simulate the same cell — the
//! waiter re-runs the supervised lookup and hits the cache the first
//! execution stored. `serve.dedup` counts every cell served without a
//! fresh simulation; `dse.cache.hits` keeps counting disk hits.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use r3dla_bench::{
    CellOutcome, CellStatus, GridCell, GridPlan, Prepared, SampledCell, SampledPlan,
    SuperviseConfig, Supervisor,
};
use r3dla_core::WindowReport;
use r3dla_dse::{fxhash_str, CacheHealth, DseCell, DsePlan, IntervalResult, ResultCache};
use r3dla_obs::counters;
use r3dla_sample::IntervalCheckpoint;
use r3dla_workloads::Scale;

use crate::sched::{Reorder, Scheduler};
use crate::spec::{CampaignSpec, Request};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing cells (≥ 1).
    pub threads: usize,
    /// DSE result-cache directory; `None` disables the disk cache
    /// (grid/sample memoization still applies).
    pub cache_dir: Option<PathBuf>,
    /// Supervision policy (retries, quarantine, fault plan). The fault
    /// plan also drives the cache's store-fault injection, mirroring
    /// the batch CLIs.
    pub supervise: SuperviseConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 2,
            cache_dir: None,
            supervise: SuperviseConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Default configuration plus the environment knobs the batch
    /// binaries honor (`R3DLA_FAULT_PLAN`, `R3DLA_CELL_DEADLINE_MS`,
    /// `R3DLA_CELL_CYCLE_BUDGET`).
    pub fn from_env() -> Self {
        ServeConfig {
            supervise: SuperviseConfig::from_env(),
            ..ServeConfig::default()
        }
    }
}

/// How a cell was satisfied for one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Simulated fresh by this campaign.
    Fresh,
    /// Served from the service memo or an in-flight execution.
    Shared,
    /// Served from the DSE disk cache without waiting.
    CacheHit,
}

/// Per-campaign dedup tallies, reported on the `done` stream line.
/// `fresh + shared + cache_hits` equals the campaign's cell count.
/// Unlike the cell lines and the report, the split between the three
/// buckets depends on scheduling (who got to a shared cell first), so
/// it is diagnostics, not part of the determinism contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Cells this campaign simulated fresh.
    pub fresh: u64,
    /// Cells served from memo or an in-flight execution.
    pub shared: u64,
    /// Cells served from the DSE disk cache.
    pub cache_hits: u64,
}

/// Service-level tallies across all campaigns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Campaigns accepted.
    pub campaigns: u64,
    /// Campaigns rejected (parse, resolve or budget).
    pub rejected: u64,
    /// Cells simulated fresh.
    pub fresh: u64,
    /// Cells served from memo or in-flight executions.
    pub shared: u64,
    /// Cells served from the DSE disk cache.
    pub cache_hits: u64,
    /// Cells admitted but not yet dispatched.
    pub queue_depth: usize,
}

/// One event in a campaign's result stream, in emission order:
/// `Accepted`, then one `Cell` per cell in cell-index order (the
/// reorder buffer restores this regardless of completion order), then
/// `Report`, then `Done`.
#[derive(Debug, Clone)]
pub enum ServeEvent {
    /// The campaign was admitted with this many cells.
    Accepted {
        /// Total cells the campaign will run.
        cells: usize,
    },
    /// One cell completed.
    Cell {
        /// Cell index, `0..total`.
        index: usize,
        /// Total cells in the campaign.
        total: usize,
        /// FxHash of the cell's supervision key (the stable identity
        /// dedup, fault injection and quarantine agree on).
        key_hash: u64,
        /// Supervised outcome classification.
        status: CellStatus,
        /// Attempts the supervisor consumed.
        attempts: u32,
    },
    /// The assembled report (identical bytes to the batch binary's
    /// `--out` file for the same spec).
    Report {
        /// Full report JSON.
        json: String,
    },
    /// Stream end.
    Done {
        /// Dedup tallies for this campaign.
        stats: CampaignStats,
    },
}

impl ServeEvent {
    /// Renders the event as its protocol line(s), newline-terminated.
    /// This is the exact encoding both front ends write.
    pub fn render(&self) -> String {
        match self {
            ServeEvent::Accepted { cells } => format!("accepted cells={cells}\n"),
            ServeEvent::Cell {
                index,
                total,
                key_hash,
                status,
                attempts,
            } => format!(
                "cell {}/{} {:016x} {} attempts={}\n",
                index + 1,
                total,
                key_hash,
                status.label(),
                attempts
            ),
            ServeEvent::Report { json } => {
                format!("report bytes={}\n{json}", json.len())
            }
            ServeEvent::Done { stats } => format!(
                "done fresh={} shared={} cache_hits={}\n",
                stats.fresh, stats.shared, stats.cache_hits
            ),
        }
    }
}

/// A cell's value, unifying the three plan types' results so one
/// outcome store serves every campaign kind.
#[derive(Debug, Clone)]
enum CellValue {
    /// A grid or sampled measurement window (with its wall time, which
    /// never reaches a served report).
    Window(WindowReport, u64),
    /// A DSE interval measurement.
    Interval(IntervalResult),
}

fn to_window(o: &CellOutcome<CellValue>) -> CellOutcome<(WindowReport, u64)> {
    CellOutcome {
        value: o.value.as_ref().map(|v| match v {
            CellValue::Window(r, ms) => (r.clone(), *ms),
            CellValue::Interval(_) => unreachable!("grid campaign holds an interval value"),
        }),
        status: o.status,
        attempts: o.attempts,
        error: o.error.clone(),
    }
}

fn to_interval(o: &CellOutcome<CellValue>) -> CellOutcome<IntervalResult> {
    CellOutcome {
        value: o.value.as_ref().map(|v| match v {
            CellValue::Interval(r) => r.clone(),
            CellValue::Window(..) => unreachable!("dse campaign holds a window value"),
        }),
        status: o.status,
        attempts: o.attempts,
        error: o.error.clone(),
    }
}

/// A campaign's resolved plan plus its pre-enumerated cells.
enum CampaignPlan {
    Grid {
        plan: Arc<GridPlan>,
        cells: Vec<GridCell>,
    },
    Sample {
        plan: Arc<SampledPlan>,
        cells: Vec<SampledCell>,
    },
    Dse {
        plan: Arc<DsePlan>,
        cells: Vec<DseCell>,
    },
}

/// One dispatched cell, detached from the service state so workers can
/// execute outside the lock.
enum Job {
    Grid(Arc<GridPlan>, GridCell),
    Sample(Arc<SampledPlan>, SampledCell),
    Dse(Arc<DsePlan>, DseCell),
}

impl CampaignPlan {
    fn n_cells(&self) -> usize {
        match self {
            CampaignPlan::Grid { cells, .. } => cells.len(),
            CampaignPlan::Sample { cells, .. } => cells.len(),
            CampaignPlan::Dse { cells, .. } => cells.len(),
        }
    }

    fn job(&self, idx: usize) -> Job {
        match self {
            CampaignPlan::Grid { plan, cells } => Job::Grid(Arc::clone(plan), cells[idx]),
            CampaignPlan::Sample { plan, cells } => Job::Sample(Arc::clone(plan), cells[idx]),
            CampaignPlan::Dse { plan, cells } => Job::Dse(Arc::clone(plan), cells[idx]),
        }
    }

    /// The cell's supervision key — the identity shared with the batch
    /// path (and hashed onto the `cell` stream line).
    fn sup_key(&self, idx: usize) -> String {
        match self {
            CampaignPlan::Grid { plan, cells } => plan.cell_key(cells[idx]),
            CampaignPlan::Sample { plan, cells } => plan.cell_key(cells[idx]),
            CampaignPlan::Dse { plan, cells } => plan.cell_key(cells[idx]).descr,
        }
    }

    /// Pure assembly into the batch report JSON (no timing fields, so
    /// the bytes match the batch binary run without `--timing`).
    fn assemble(&self, outcomes: &[CellOutcome<CellValue>]) -> String {
        match self {
            CampaignPlan::Grid { plan, .. } => {
                let converted: Vec<_> = outcomes.iter().map(to_window).collect();
                plan.assemble(&converted).to_json(false)
            }
            CampaignPlan::Sample { plan, .. } => {
                let converted: Vec<_> = outcomes.iter().map(to_window).collect();
                plan.assemble(&converted).to_json(false)
            }
            CampaignPlan::Dse { plan, .. } => {
                let converted: Vec<_> = outcomes.iter().map(to_interval).collect();
                r3dla_dse::to_json(&plan.assemble(&converted))
            }
        }
    }
}

/// One admitted campaign's in-flight state.
struct CampaignState {
    client: String,
    plan: CampaignPlan,
    total: usize,
    completed: usize,
    outcomes: Vec<Option<CellOutcome<CellValue>>>,
    reorder: Reorder<(u64, CellStatus, u32)>,
    stats: CampaignStats,
    events: mpsc::Sender<ServeEvent>,
}

/// State behind the service mutex: the scheduler plus every live
/// campaign.
struct State {
    scheduler: Scheduler,
    campaigns: HashMap<u64, CampaignState>,
    shutdown: bool,
}

/// Cross-client dedup state: the grid/sample outcome memo and the
/// in-flight table (shared by all kinds; grid keys and DSE key
/// descriptors live in disjoint namespaces).
#[derive(Default)]
struct DedupState {
    memo: HashMap<String, CellOutcome<CellValue>>,
    inflight: HashMap<String, Arc<(Mutex<bool>, Condvar)>>,
}

/// Pools of prepared workloads and interval plans, shared across
/// campaigns so a warm service admits repeat specs without re-profiling.
#[derive(Default)]
struct Pools {
    prepared: HashMap<(&'static str, Scale), Arc<Prepared>>,
    intervals: HashMap<(&'static str, Scale, String), Arc<Vec<IntervalCheckpoint>>>,
}

struct Inner {
    cfg: ServeConfig,
    sup: Supervisor,
    cache: ResultCache,
    state: Mutex<State>,
    work_cv: Condvar,
    idle_cv: Condvar,
    dedup: Mutex<DedupState>,
    pools: Mutex<Pools>,
    next_id: AtomicU64,
    campaigns_total: AtomicU64,
    rejected_total: AtomicU64,
    fresh_total: AtomicU64,
    shared_total: AtomicU64,
    cache_hit_total: AtomicU64,
}

/// A running service plus its worker threads. Dropping the handle shuts
/// the service down (draining already-admitted campaigns first).
pub struct ServeHandle {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// A submitted campaign's result stream, as held by an in-process
/// client (the integration-test harness, or a front end relaying the
/// events over its transport).
pub struct Campaign {
    /// Service-assigned campaign id.
    pub id: u64,
    rx: mpsc::Receiver<ServeEvent>,
}

/// A fully drained campaign: the report plus the stream it arrived on.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The report JSON (batch-identical bytes).
    pub report: String,
    /// Final dedup tallies.
    pub stats: CampaignStats,
    /// Every stream line, rendered exactly as a front end would write
    /// it (includes the report bytes).
    pub lines: Vec<String>,
}

impl Campaign {
    /// Receives the next event; `None` once the stream is complete and
    /// drained.
    pub fn recv(&self) -> Option<ServeEvent> {
        self.rx.recv().ok()
    }

    /// Drains the stream to completion and collects the result. Errors
    /// if the stream ends without a report (service shut down early).
    pub fn wait(self) -> Result<CampaignResult, String> {
        let mut report = None;
        let mut stats = CampaignStats::default();
        let mut lines = Vec::new();
        while let Some(ev) = self.recv() {
            lines.push(ev.render());
            match ev {
                ServeEvent::Report { json } => report = Some(json),
                ServeEvent::Done { stats: s } => stats = s,
                _ => {}
            }
        }
        match report {
            Some(report) => Ok(CampaignResult {
                report,
                stats,
                lines,
            }),
            None => Err("campaign stream ended without a report".to_string()),
        }
    }
}

impl ServeHandle {
    /// Starts the service: opens the cache and spawns the worker pool.
    pub fn start(cfg: ServeConfig) -> Result<ServeHandle, String> {
        let cache = match &cfg.cache_dir {
            Some(dir) => ResultCache::at_with_plan(dir, cfg.supervise.plan)
                .map_err(|e| format!("cannot open cache {}: {e}", dir.display()))?,
            None => ResultCache::disabled(),
        };
        let threads = cfg.threads.max(1);
        let inner = Arc::new(Inner {
            sup: Supervisor::new(cfg.supervise.clone()),
            cache,
            cfg,
            state: Mutex::new(State {
                scheduler: Scheduler::new(),
                campaigns: HashMap::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            dedup: Mutex::new(DedupState::default()),
            pools: Mutex::new(Pools::default()),
            next_id: AtomicU64::new(1),
            campaigns_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            fresh_total: AtomicU64::new(0),
            shared_total: AtomicU64::new(0),
            cache_hit_total: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(ServeHandle { inner, workers })
    }

    /// Parses and submits one campaign spec text.
    pub fn submit(&self, text: &str) -> Result<Campaign, String> {
        let spec = CampaignSpec::parse(text).map_err(|e| self.reject(e))?;
        self.submit_spec(&spec)
    }

    /// Submits an already-parsed campaign: resolves it, builds its plan
    /// (pooling preparation across campaigns), and admits it to the
    /// scheduler, charging the budget against the exact cell count.
    pub fn submit_spec(&self, spec: &CampaignSpec) -> Result<Campaign, String> {
        let _sp = r3dla_obs::span!("serve.submit", "{} {}", spec.client, spec.kind.name());
        let req = spec.to_request().map_err(|e| self.reject(e))?;
        let plan = self.inner.build_plan(&req);
        let total = plan.n_cells();
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();

        if total == 0 {
            // Nothing to schedule: assemble the (empty) report inline.
            let _ = tx.send(ServeEvent::Accepted { cells: 0 });
            let _ = tx.send(ServeEvent::Report {
                json: plan.assemble(&[]),
            });
            let _ = tx.send(ServeEvent::Done {
                stats: CampaignStats::default(),
            });
            self.accept();
            return Ok(Campaign { id, rx });
        }

        {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.shutdown {
                return Err(self.reject("service is shutting down".to_string()));
            }
            st.scheduler
                .admit(id, spec.priority, total, spec.budget)
                .map_err(|e| self.reject(e))?;
            let _ = tx.send(ServeEvent::Accepted { cells: total });
            st.campaigns.insert(
                id,
                CampaignState {
                    client: spec.client.clone(),
                    total,
                    completed: 0,
                    outcomes: vec![None; plan.n_cells()],
                    plan,
                    reorder: Reorder::new(),
                    stats: CampaignStats::default(),
                    events: tx,
                },
            );
            counters::set("serve.queue.depth", st.scheduler.depth() as u64);
        }
        self.accept();
        self.inner.work_cv.notify_all();
        Ok(Campaign { id, rx })
    }

    fn accept(&self) {
        self.inner.campaigns_total.fetch_add(1, Ordering::Relaxed);
        counters::add("serve.campaigns", 1);
    }

    fn reject(&self, reason: String) -> String {
        self.inner.rejected_total.fetch_add(1, Ordering::Relaxed);
        counters::add("serve.rejected", 1);
        reason
    }

    /// Blocks until every admitted campaign has completed.
    pub fn wait_idle(&self) {
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        while !(st.scheduler.is_empty() && st.campaigns.is_empty()) {
            st = self
                .inner
                .idle_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Current service-level tallies.
    pub fn stats(&self) -> ServeStats {
        let depth = {
            let st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.scheduler.depth()
        };
        ServeStats {
            campaigns: self.inner.campaigns_total.load(Ordering::Relaxed),
            rejected: self.inner.rejected_total.load(Ordering::Relaxed),
            fresh: self.inner.fresh_total.load(Ordering::Relaxed),
            shared: self.inner.shared_total.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hit_total.load(Ordering::Relaxed),
            queue_depth: depth,
        }
    }

    /// The DSE disk cache's health counters (for consistency checks
    /// after fault injection).
    pub fn cache_health(&self) -> CacheHealth {
        self.inner.cache.health()
    }

    /// Drains admitted campaigns, stops the workers and joins them.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop();
        }
    }
}

impl Inner {
    /// Resolves a request into a plan, reusing pooled preparation.
    fn build_plan(&self, req: &Request) -> CampaignPlan {
        match req {
            Request::Grid(spec) => {
                let prepared = self.pooled_prepared(&spec.workloads, spec.scale);
                let plan = Arc::new(GridPlan::from_prepared(spec, prepared));
                let cells = plan.cells();
                CampaignPlan::Grid { plan, cells }
            }
            Request::Sample(spec, sample) => {
                let prepared = self.pooled_prepared(&spec.workloads, spec.scale);
                let plans = self.pooled_intervals(&spec.workloads, spec.scale, sample, &prepared);
                let plan = Arc::new(SampledPlan::from_parts(spec, sample, prepared, plans));
                let cells = plan.cells();
                CampaignPlan::Sample { plan, cells }
            }
            Request::Dse(spec) => {
                let prepared = self.pooled_prepared(&spec.workloads, spec.scale);
                let plans =
                    self.pooled_intervals(&spec.workloads, spec.scale, &spec.sample, &prepared);
                let parts = prepared.into_iter().zip(plans).collect();
                let plan = Arc::new(DsePlan::from_parts(spec, parts, self.cfg.threads));
                let cells = plan.cells();
                CampaignPlan::Dse { plan, cells }
            }
        }
    }

    fn pooled_prepared(
        &self,
        workloads: &[r3dla_workloads::Workload],
        scale: Scale,
    ) -> Vec<Arc<Prepared>> {
        workloads
            .iter()
            .map(|w| {
                if let Some(p) = self
                    .pools
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .prepared
                    .get(&(w.name, scale))
                {
                    return Arc::clone(p);
                }
                // Built outside the pool lock; a concurrent duplicate
                // build wastes work but both results are identical, and
                // first insert wins.
                let built = Arc::new(Prepared::new(w, scale));
                let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
                Arc::clone(
                    pools
                        .prepared
                        .entry((w.name, scale))
                        .or_insert_with(|| built),
                )
            })
            .collect()
    }

    fn pooled_intervals(
        &self,
        workloads: &[r3dla_workloads::Workload],
        scale: Scale,
        sample: &r3dla_sample::SampleSpec,
        prepared: &[Arc<Prepared>],
    ) -> Vec<Arc<Vec<IntervalCheckpoint>>> {
        workloads
            .iter()
            .zip(prepared)
            .map(|(w, p)| {
                let key = (w.name, scale, sample.label());
                if let Some(plan) = self
                    .pools
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .intervals
                    .get(&key)
                {
                    return Arc::clone(plan);
                }
                let built = Arc::new(r3dla_sample::plan_intervals(&p.program, sample));
                let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
                Arc::clone(pools.intervals.entry(key).or_insert_with(|| built))
            })
            .collect()
    }

    /// Runs one cell with cross-client dedup. Returns the outcome and
    /// how it was satisfied.
    fn execute(&self, job: &Job) -> (CellOutcome<CellValue>, Class) {
        match job {
            Job::Grid(plan, cell) => self.dedup_window(&plan.cell_key(*cell), || {
                self.supervise_one(plan.cell_key(*cell), || plan.evaluate(*cell))
            }),
            Job::Sample(plan, cell) => self.dedup_window(&plan.cell_key(*cell), || {
                self.supervise_one(plan.cell_key(*cell), || plan.evaluate(*cell))
            }),
            Job::Dse(plan, cell) => {
                let key = plan.cell_key(*cell).descr;
                let waited = self.wait_inflight(&key);
                let disk_hit = AtomicBool::new(false);
                let outcomes = self.sup.map(
                    &[*cell],
                    1,
                    |_| key.clone(),
                    |&c| {
                        let (result, hit) = plan.evaluate(c, &self.cache);
                        if hit {
                            disk_hit.store(true, Ordering::Relaxed);
                        }
                        Ok(result)
                    },
                );
                self.finish_inflight(&key);
                let o = outcomes.into_iter().next().expect("one outcome per cell");
                let outcome = CellOutcome {
                    value: o.value.map(CellValue::Interval),
                    status: o.status,
                    attempts: o.attempts,
                    error: o.error,
                };
                let class = if waited {
                    Class::Shared
                } else if disk_hit.load(Ordering::Relaxed) {
                    Class::CacheHit
                } else {
                    Class::Fresh
                };
                (outcome, class)
            }
        }
    }

    /// Supervised execution of a single window-producing cell under its
    /// batch supervision key.
    fn supervise_one<F>(&self, key: String, eval: F) -> CellOutcome<CellValue>
    where
        F: Fn() -> (WindowReport, u64) + Sync,
    {
        let o = self
            .sup
            .map(&[()], 1, |_| key.clone(), |_| Ok(eval()))
            .into_iter()
            .next()
            .expect("one outcome per cell");
        CellOutcome {
            value: o.value.map(|(r, ms)| CellValue::Window(r, ms)),
            status: o.status,
            attempts: o.attempts,
            error: o.error,
        }
    }

    /// Memoizing dedup for grid/sample cells: memo hit → shared;
    /// in-flight → wait, then memo hit; otherwise execute and publish.
    fn dedup_window<F>(&self, key: &str, exec: F) -> (CellOutcome<CellValue>, Class)
    where
        F: FnOnce() -> CellOutcome<CellValue>,
    {
        loop {
            let waiter = {
                let mut d = self.dedup.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(hit) = d.memo.get(key) {
                    return (hit.clone(), Class::Shared);
                }
                match d.inflight.get(key) {
                    Some(w) => Arc::clone(w),
                    None => {
                        d.inflight.insert(
                            key.to_string(),
                            Arc::new((Mutex::new(false), Condvar::new())),
                        );
                        break;
                    }
                }
            };
            wait_done(&waiter);
        }
        let outcome = exec();
        {
            let mut d = self.dedup.lock().unwrap_or_else(|e| e.into_inner());
            d.memo.insert(key.to_string(), outcome.clone());
        }
        self.finish_inflight(key);
        (outcome, Class::Fresh)
    }

    /// DSE in-flight gate: if another worker is executing `key`, wait
    /// for it (the subsequent lookup hits the disk cache it stored),
    /// then register as the next executor. Returns whether it waited.
    fn wait_inflight(&self, key: &str) -> bool {
        let mut waited = false;
        loop {
            let waiter = {
                let mut d = self.dedup.lock().unwrap_or_else(|e| e.into_inner());
                match d.inflight.get(key) {
                    Some(w) => Arc::clone(w),
                    None => {
                        d.inflight.insert(
                            key.to_string(),
                            Arc::new((Mutex::new(false), Condvar::new())),
                        );
                        return waited;
                    }
                }
            };
            waited = true;
            wait_done(&waiter);
        }
    }

    /// Removes the in-flight marker for `key` and wakes its waiters.
    fn finish_inflight(&self, key: &str) {
        let waiter = {
            let mut d = self.dedup.lock().unwrap_or_else(|e| e.into_inner());
            d.inflight.remove(key)
        };
        if let Some(w) = waiter {
            let (lock, cv) = &*w;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cv.notify_all();
        }
    }

    fn count(&self, class: Class) {
        match class {
            Class::Fresh => {
                self.fresh_total.fetch_add(1, Ordering::Relaxed);
                counters::add("serve.cells", 1);
            }
            Class::Shared => {
                self.shared_total.fetch_add(1, Ordering::Relaxed);
                counters::add("serve.dedup", 1);
            }
            Class::CacheHit => {
                self.cache_hit_total.fetch_add(1, Ordering::Relaxed);
                counters::add("serve.dedup", 1);
            }
        }
    }
}

/// Blocks on an in-flight marker until its executor finishes.
fn wait_done(waiter: &Arc<(Mutex<bool>, Condvar)>) {
    let (lock, cv) = &**waiter;
    let mut done = lock.lock().unwrap_or_else(|e| e.into_inner());
    while !*done {
        done = cv.wait(done).unwrap_or_else(|e| e.into_inner());
    }
}

/// Worker thread body: pull `(campaign, cell)` dispatches, execute with
/// dedup, record results and finish campaigns.
fn worker_loop(inner: &Inner) {
    loop {
        let dispatched = {
            let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some((cid, idx)) = st.scheduler.dispatch() {
                    let c = st
                        .campaigns
                        .get(&cid)
                        .expect("scheduled campaigns stay registered until complete");
                    counters::set("serve.queue.depth", st.scheduler.depth() as u64);
                    break Some((cid, idx, c.plan.job(idx)));
                }
                if st.shutdown {
                    break None;
                }
                st = inner.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some((cid, idx, job)) = dispatched else {
            return;
        };

        let (outcome, class) = inner.execute(&job);
        inner.count(class);
        r3dla_obs::progress::tick(1);

        let finished = {
            let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            let c = st
                .campaigns
                .get_mut(&cid)
                .expect("campaign completes only after all its cells record");
            let (status, attempts) = (outcome.status, outcome.attempts);
            c.outcomes[idx] = Some(outcome);
            c.completed += 1;
            match class {
                Class::Fresh => c.stats.fresh += 1,
                Class::Shared => c.stats.shared += 1,
                Class::CacheHit => c.stats.cache_hits += 1,
            }
            let key_hash = fxhash_str(&c.plan.sup_key(idx));
            let total = c.total;
            for (i, (hash, status, attempts)) in c.reorder.push(idx, (key_hash, status, attempts)) {
                let _ = c.events.send(ServeEvent::Cell {
                    index: i,
                    total,
                    key_hash: hash,
                    status,
                    attempts,
                });
            }
            if c.completed == c.total {
                st.campaigns.remove(&cid)
            } else {
                None
            }
        };

        if let Some(c) = finished {
            let _sp = r3dla_obs::span!("serve.assemble", "{} {} cells", c.client, c.total);
            let outcomes: Vec<CellOutcome<CellValue>> = c
                .outcomes
                .into_iter()
                .map(|o| o.expect("completed campaign has every outcome"))
                .collect();
            let json = c.plan.assemble(&outcomes);
            let _ = c.events.send(ServeEvent::Report { json });
            let _ = c.events.send(ServeEvent::Done { stats: c.stats });
            inner.idle_cv.notify_all();
        }
    }
}
