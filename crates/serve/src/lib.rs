#![warn(missing_docs)]
//! Long-running campaign service for the R3-DLA harness.
//!
//! `r3dla-serve` turns the batch experiment drivers (`runner`,
//! `r3dla-dse`) into a daemon: clients submit campaign specs (grid,
//! sampled-grid or DSE requests) over a line-delimited TCP protocol or
//! by dropping files in a spool directory, and the service schedules
//! their cells across a shared worker pool with per-client priorities
//! and budgets, dedupes identical cells across concurrent clients, and
//! streams per-cell completions back as they happen.
//!
//! The load-bearing property is **byte-determinism**: the report a
//! served campaign produces is byte-identical to the file the batch
//! binary writes for the same spec — including under fault injection
//! and with several clients racing over the same cells. The service
//! earns this by construction rather than by normalization: campaigns
//! resolve to the exact plan types the batch drivers run
//! ([`r3dla_bench::GridPlan`], [`r3dla_bench::SampledPlan`],
//! [`r3dla_dse::DsePlan`]), every cell executes under its batch
//! supervision key, and reports are assembled by the plans' pure
//! `assemble` functions. See `docs/SERVE.md` for the protocol grammar
//! and the full determinism contract.
//!
//! # Modules
//!
//! * [`spec`] — the campaign-spec grammar: parser, canonical renderer
//!   and resolution to batch-layer requests.
//! * [`sched`] — pure scheduling state: weighted round-robin with
//!   admission budgets, plus the reorder buffer that restores
//!   deterministic stream order.
//! * [`service`] — the in-process engine and the [`ServeHandle`]
//!   harness integration tests drive directly.
//! * [`daemon`] — the spool-directory and TCP front ends.

pub mod daemon;
pub mod sched;
pub mod service;
pub mod spec;

pub use daemon::{process_spool, serve_tcp, SpoolReport};
pub use sched::{Reorder, Scheduler};
pub use service::{
    Campaign, CampaignResult, CampaignStats, ServeConfig, ServeEvent, ServeHandle, ServeStats,
};
pub use spec::{CampaignKind, CampaignSpec, Request, MAX_PRIORITY, SPEC_SCHEMA};
