//! The campaign-spec grammar: a line-delimited request format shared by
//! the TCP and spool front ends, with a canonical renderer the property
//! tests round-trip through.
//!
//! A spec is a `campaign r3dla-serve-v1` header, `key value` lines in
//! any order, and a closing `end` (which doubles as the
//! truncation guard for spool files and the submit trigger on a TCP
//! connection). Blank lines and `#` comments are ignored. Example:
//!
//! ```text
//! campaign r3dla-serve-v1
//! client alice
//! priority 3
//! budget 64
//! kind dse
//! scale tiny
//! workloads libq_like,md5_like
//! space quick
//! strategy exhaustive
//! trials 4
//! sample 2:1500:none
//! end
//! ```
//!
//! Every field except the header and `end` is optional; defaults mirror
//! the batch CLIs (`runner`, `r3dla-dse`) so a served report is
//! comparable with a batch one produced from the same explicit flags.
//! Unknown keys, malformed values and keys that do not belong to the
//! requested `kind` are errors — a service must reject a bad request,
//! not guess.

use r3dla_bench::runner::{scale_by_name, scale_name, ConfigSpec, GridSpec};
use r3dla_bench::{WARMUP, WINDOW};
use r3dla_dse::{DseSpec, SearchSpace, Strategy};
use r3dla_sample::SampleSpec;
use r3dla_workloads::{by_name, suite, Scale, Workload};

/// The spec schema tag every campaign must open with.
pub const SPEC_SCHEMA: &str = "r3dla-serve-v1";

/// Priorities are weights in `1..=MAX_PRIORITY` (credits per scheduling
/// round — see [`crate::sched::Scheduler`]).
pub const MAX_PRIORITY: u32 = 8;

/// One parsed campaign request.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Client name (diagnostics and telemetry only — results are
    /// client-independent by construction).
    pub client: String,
    /// Scheduling weight, `1..=MAX_PRIORITY` credits per round.
    pub priority: u32,
    /// Admission budget: maximum cells this campaign may schedule.
    /// `None` is unlimited.
    pub budget: Option<usize>,
    /// Input scale.
    pub scale: Scale,
    /// Workload names; empty means the full suite.
    pub workloads: Vec<String>,
    /// Event-driven cycle skipping (reports identical either way).
    pub fast_forward: bool,
    /// What to run and its kind-specific knobs.
    pub kind: CampaignKind,
}

/// The campaign's kind-specific parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignKind {
    /// A full-window `(workload × config)` grid — the batch `runner`.
    Grid {
        /// Config names; empty means the runner default `bl,dla,r3`.
        configs: Vec<String>,
        /// Warmup committed instructions per cell.
        warm: u64,
        /// Measured committed instructions per cell.
        win: u64,
    },
    /// A sampled grid (`runner --sample`).
    Sample {
        /// Config names; empty means the runner default `bl,dla,r3`.
        configs: Vec<String>,
        /// The `k:U:W` interval-sampling spec.
        sample: SampleSpec,
    },
    /// A design-space search (`r3dla-dse`). Halving parses but is
    /// rejected at admission: its cell set is adaptive, so it cannot be
    /// pre-enumerated for scheduling.
    Dse {
        /// Space name (`quick` or `full`).
        space: String,
        /// Strategy name (`exhaustive`, `random` or `halving`).
        strategy: String,
        /// PRNG seed for `random`/`halving`.
        seed: u64,
        /// Trial budget (the batch CLI's `--budget`).
        trials: usize,
        /// The sampled-evaluator `k:U:W` spec.
        sample: SampleSpec,
    },
}

impl CampaignKind {
    /// The kind's wire name.
    pub fn name(&self) -> &'static str {
        match self {
            CampaignKind::Grid { .. } => "grid",
            CampaignKind::Sample { .. } => "sample",
            CampaignKind::Dse { .. } => "dse",
        }
    }
}

impl Default for CampaignSpec {
    /// The default campaign: a full-suite DSE request with the batch
    /// CLI's defaults at tiny scale.
    fn default() -> Self {
        CampaignSpec {
            client: "anon".to_string(),
            priority: 1,
            budget: None,
            scale: Scale::Tiny,
            workloads: Vec::new(),
            fast_forward: true,
            kind: CampaignKind::Dse {
                space: "full".to_string(),
                strategy: "random".to_string(),
                seed: 1,
                trials: 12,
                sample: SampleSpec::parse("3:3000:functional").expect("default sample spec"),
            },
        }
    }
}

/// Validates a client token: non-empty, `[A-Za-z0-9_.-]` only (it shows
/// up in file names and log lines).
fn valid_client(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}

impl CampaignSpec {
    /// Parses one spec. Requires the `campaign r3dla-serve-v1` header
    /// and the closing `end`; see the module docs for the grammar.
    pub fn parse(text: &str) -> Result<CampaignSpec, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some(header) if header == format!("campaign {SPEC_SCHEMA}") => {}
            Some(other) => return Err(format!("expected `campaign {SPEC_SCHEMA}`, got `{other}`")),
            None => return Err(format!("empty spec (expected `campaign {SPEC_SCHEMA}`)")),
        }

        let mut fields: Vec<(String, String)> = Vec::new();
        let mut ended = false;
        for line in lines {
            if ended {
                return Err(format!("trailing content after `end`: `{line}`"));
            }
            if line == "end" {
                ended = true;
                continue;
            }
            let (key, value) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("malformed line `{line}` (expected `key value`)"))?;
            fields.push((key.to_string(), value.trim().to_string()));
        }
        if !ended {
            return Err("spec is missing the closing `end` (truncated?)".to_string());
        }

        let mut take = |key: &str| -> Option<String> {
            let pos = fields.iter().position(|(k, _)| k == key)?;
            Some(fields.remove(pos).1)
        };
        fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("field `{key}` has a malformed value `{value}`"))
        }

        let mut spec = CampaignSpec::default();
        if let Some(v) = take("client") {
            if !valid_client(&v) {
                return Err(format!(
                    "client name `{v}` is invalid (want 1-64 chars of [A-Za-z0-9_.-])"
                ));
            }
            spec.client = v;
        }
        if let Some(v) = take("priority") {
            let p: u32 = num("priority", &v)?;
            if !(1..=MAX_PRIORITY).contains(&p) {
                return Err(format!("priority {p} out of range 1..={MAX_PRIORITY}"));
            }
            spec.priority = p;
        }
        if let Some(v) = take("budget") {
            spec.budget = Some(num("budget", &v)?);
        }
        if let Some(v) = take("scale") {
            spec.scale =
                scale_by_name(&v).ok_or_else(|| format!("unknown scale `{v}` (tiny|train|ref)"))?;
        }
        if let Some(v) = take("workloads") {
            spec.workloads = v
                .split(',')
                .map(|w| w.trim().to_string())
                .filter(|w| !w.is_empty())
                .collect();
            if spec.workloads.is_empty() {
                return Err("`workloads` lists no names".to_string());
            }
        }
        if let Some(v) = take("fast-forward") {
            spec.fast_forward = match v.as_str() {
                "on" => true,
                "off" => false,
                _ => return Err(format!("fast-forward `{v}` is not on|off")),
            };
        }

        let kind = take("kind").unwrap_or_else(|| "dse".to_string());
        let configs =
            |take: &mut dyn FnMut(&str) -> Option<String>| -> Result<Vec<String>, String> {
                match take("configs") {
                    Some(v) => {
                        let list: Vec<String> = v
                            .split(',')
                            .map(|c| c.trim().to_string())
                            .filter(|c| !c.is_empty())
                            .collect();
                        if list.is_empty() {
                            return Err("`configs` lists no names".to_string());
                        }
                        Ok(list)
                    }
                    None => Ok(Vec::new()),
                }
            };
        let sample_spec = |key: &str,
                           v: Option<String>,
                           default: &str|
         -> Result<SampleSpec, String> {
            let text = v.unwrap_or_else(|| default.to_string());
            SampleSpec::parse(&text).ok_or_else(|| {
                format!("invalid {key} `{text}` (expected k:U:none|functional[:N]|detailed[:N], k >= 2)")
            })
        };
        spec.kind = match kind.as_str() {
            "grid" => CampaignKind::Grid {
                configs: configs(&mut take)?,
                warm: match take("warm") {
                    Some(v) => num("warm", &v)?,
                    None => WARMUP,
                },
                win: match take("window") {
                    Some(v) => num("window", &v)?,
                    None => WINDOW,
                },
            },
            "sample" => CampaignKind::Sample {
                configs: configs(&mut take)?,
                sample: sample_spec("sample", take("sample"), "4:5000:functional")?,
            },
            "dse" => {
                let space = take("space").unwrap_or_else(|| "full".to_string());
                if SearchSpace::by_name(&space).is_none() {
                    return Err(format!("unknown space `{space}` (quick|full)"));
                }
                let strategy = take("strategy").unwrap_or_else(|| "random".to_string());
                if Strategy::parse(&strategy, 0, 0).is_none() {
                    return Err(format!(
                        "unknown strategy `{strategy}` (exhaustive|random|halving)"
                    ));
                }
                CampaignKind::Dse {
                    space,
                    strategy,
                    seed: match take("seed") {
                        Some(v) => num("seed", &v)?,
                        None => 1,
                    },
                    trials: match take("trials") {
                        Some(v) => num("trials", &v)?,
                        None => 12,
                    },
                    sample: sample_spec("sample", take("sample"), "3:3000:functional")?,
                }
            }
            other => return Err(format!("unknown kind `{other}` (grid|sample|dse)")),
        };

        if let Some((key, _)) = fields.first() {
            return Err(format!(
                "field `{key}` is unknown or does not apply to kind `{}`",
                spec.kind.name()
            ));
        }
        Ok(spec)
    }

    /// Renders the canonical form: every applicable field, fixed order.
    /// `parse(render(spec)) == spec` for any valid spec — the property
    /// suite holds the parser to it.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!("campaign {SPEC_SCHEMA}\n"));
        out.push_str(&format!("client {}\n", self.client));
        out.push_str(&format!("priority {}\n", self.priority));
        if let Some(b) = self.budget {
            out.push_str(&format!("budget {b}\n"));
        }
        out.push_str(&format!("kind {}\n", self.kind.name()));
        out.push_str(&format!("scale {}\n", scale_name(self.scale)));
        if !self.workloads.is_empty() {
            out.push_str(&format!("workloads {}\n", self.workloads.join(",")));
        }
        out.push_str(&format!(
            "fast-forward {}\n",
            if self.fast_forward { "on" } else { "off" }
        ));
        match &self.kind {
            CampaignKind::Grid { configs, warm, win } => {
                if !configs.is_empty() {
                    out.push_str(&format!("configs {}\n", configs.join(",")));
                }
                out.push_str(&format!("warm {warm}\n"));
                out.push_str(&format!("window {win}\n"));
            }
            CampaignKind::Sample { configs, sample } => {
                if !configs.is_empty() {
                    out.push_str(&format!("configs {}\n", configs.join(",")));
                }
                out.push_str(&format!("sample {}\n", sample.label()));
            }
            CampaignKind::Dse {
                space,
                strategy,
                seed,
                trials,
                sample,
            } => {
                out.push_str(&format!("space {space}\n"));
                out.push_str(&format!("strategy {strategy}\n"));
                out.push_str(&format!("seed {seed}\n"));
                out.push_str(&format!("trials {trials}\n"));
                out.push_str(&format!("sample {}\n", sample.label()));
            }
        }
        out.push_str("end\n");
        out
    }

    /// Resolves names against the workload/config registries and builds
    /// the batch-layer request. This is where admission catches unknown
    /// workloads, unknown configs and the unservable halving strategy.
    pub fn to_request(&self) -> Result<Request, String> {
        let workloads: Vec<Workload> = if self.workloads.is_empty() {
            suite()
        } else {
            self.workloads
                .iter()
                .map(|n| by_name(n).ok_or_else(|| format!("unknown workload `{n}`")))
                .collect::<Result<_, _>>()?
        };
        let resolve_configs = |names: &[String]| -> Result<Vec<ConfigSpec>, String> {
            if names.is_empty() {
                return Ok(["bl", "dla", "r3"]
                    .iter()
                    .map(|n| ConfigSpec::by_name(n).expect("built-in config"))
                    .collect());
            }
            names
                .iter()
                .map(|n| ConfigSpec::by_name(n).ok_or_else(|| format!("unknown config `{n}`")))
                .collect()
        };
        match &self.kind {
            CampaignKind::Grid { configs, warm, win } => Ok(Request::Grid(GridSpec {
                scale: self.scale,
                workloads,
                configs: resolve_configs(configs)?,
                warm: *warm,
                win: *win,
                fast_forward: self.fast_forward,
            })),
            CampaignKind::Sample { configs, sample } => Ok(Request::Sample(
                GridSpec {
                    scale: self.scale,
                    workloads,
                    configs: resolve_configs(configs)?,
                    // Ignored by the sampled path (the sample spec
                    // drives window sizing), kept at the batch defaults
                    // so the supervision keys match `runner --sample`.
                    warm: WARMUP,
                    win: WINDOW,
                    fast_forward: self.fast_forward,
                },
                *sample,
            )),
            CampaignKind::Dse {
                space,
                strategy,
                seed,
                trials,
                sample,
            } => {
                if strategy == "halving" {
                    return Err(
                        "strategy `halving` is not servable: its cell set is adaptive \
                         (use the r3dla-dse batch CLI, or exhaustive/random here)"
                            .to_string(),
                    );
                }
                Ok(Request::Dse(Box::new(DseSpec {
                    scale: self.scale,
                    workloads,
                    space: SearchSpace::by_name(space).expect("validated at parse"),
                    strategy: Strategy::parse(strategy, *seed, *trials)
                        .expect("validated at parse"),
                    sample: *sample,
                    fast_forward: self.fast_forward,
                })))
            }
        }
    }
}

/// A resolved campaign request in batch-layer terms.
#[derive(Debug, Clone)]
pub enum Request {
    /// Full-window grid (`r3dla-bench-grid-v1` report).
    Grid(GridSpec),
    /// Sampled grid (`r3dla-bench-sample-v1` report).
    Sample(GridSpec, SampleSpec),
    /// Design-space search (`r3dla-dse-v1` report).
    Dse(Box<DseSpec>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips() {
        let spec = CampaignSpec::default();
        assert_eq!(CampaignSpec::parse(&spec.render()), Ok(spec));
    }

    #[test]
    fn minimal_spec_parses_to_defaults() {
        let spec = CampaignSpec::parse("campaign r3dla-serve-v1\nend\n").unwrap();
        assert_eq!(spec, CampaignSpec::default());
    }

    #[test]
    fn comments_blanks_and_order_are_free() {
        let text =
            "# a comment\n\ncampaign r3dla-serve-v1\nscale train\n\n# mid\nclient bob\nend\n";
        let spec = CampaignSpec::parse(text).unwrap();
        assert_eq!(spec.client, "bob");
        assert_eq!(spec.scale, Scale::Train);
    }

    #[test]
    fn truncated_spec_is_rejected() {
        let full = CampaignSpec::default().render();
        let cut = &full[..full.len() - 4]; // drop "end\n"
        assert!(CampaignSpec::parse(cut).unwrap_err().contains("end"));
    }

    #[test]
    fn wrong_kind_fields_are_rejected() {
        let err = CampaignSpec::parse("campaign r3dla-serve-v1\nkind grid\nspace quick\nend\n")
            .unwrap_err();
        assert!(err.contains("space"), "{err}");
        let err =
            CampaignSpec::parse("campaign r3dla-serve-v1\nkind dse\nwarm 100\nend\n").unwrap_err();
        assert!(err.contains("warm"), "{err}");
    }

    #[test]
    fn halving_parses_but_does_not_resolve() {
        let spec =
            CampaignSpec::parse("campaign r3dla-serve-v1\nkind dse\nstrategy halving\nend\n")
                .unwrap();
        assert!(spec.to_request().unwrap_err().contains("halving"));
    }

    #[test]
    fn priority_range_is_enforced() {
        for bad in ["0", "9", "x"] {
            assert!(CampaignSpec::parse(&format!(
                "campaign r3dla-serve-v1\npriority {bad}\nend\n"
            ))
            .is_err());
        }
    }
}
