//! Pure scheduling state for the campaign service: a weighted
//! round-robin cell scheduler with admission budgets, and a reorder
//! buffer that turns out-of-order cell completions back into the
//! deterministic stream order.
//!
//! Both types are plain data — no threads, no clocks, no I/O — so the
//! property suite can drive arbitrary interleavings of admissions and
//! dispatches and check fairness, budget and ordering invariants
//! exhaustively.

use std::collections::{BTreeMap, VecDeque};

use crate::spec::MAX_PRIORITY;

/// One admitted campaign's queue state.
#[derive(Debug)]
struct ClientQueue {
    /// Campaign id (service-assigned, unique).
    id: u64,
    /// Clamped priority: credits granted per refill.
    priority: u32,
    /// Credits left in the current round.
    credits: u32,
    /// Cell indices not yet dispatched, in cell order.
    pending: VecDeque<usize>,
}

/// Weighted round-robin over admitted campaigns.
///
/// Semantics:
///
/// - `admit` enqueues a campaign's cells `0..n_cells` and charges its
///   budget up front: a campaign whose exact cell count exceeds its
///   budget is rejected whole, so a dispatched campaign can never
///   exceed its budget by construction.
/// - Priorities are credit weights clamped to `1..=MAX_PRIORITY`. A
///   scheduling round gives each campaign `priority` dispatches;
///   when every queued campaign is out of credits, all credits refill.
/// - `next` scans campaigns in admission order and dispatches the
///   first with credits and pending cells; a campaign's cells are
///   dispatched in cell-index order. The whole schedule is a pure
///   function of the admit/next call sequence.
///
/// Starvation bound (checked by the property suite): over any `K`
/// complete rounds, a campaign with priority `p` and `t` total cells
/// receives at least `min(K * p, t)` dispatches, regardless of what
/// the other campaigns do.
#[derive(Debug, Default)]
pub struct Scheduler {
    clients: Vec<ClientQueue>,
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits a campaign of `n_cells` cells, or rejects it if `budget`
    /// cannot cover the whole campaign. Priorities outside
    /// `1..=MAX_PRIORITY` are clamped.
    pub fn admit(
        &mut self,
        id: u64,
        priority: u32,
        n_cells: usize,
        budget: Option<usize>,
    ) -> Result<(), String> {
        if let Some(b) = budget {
            if n_cells > b {
                return Err(format!("campaign needs {n_cells} cells, budget is {b}"));
            }
        }
        let priority = priority.clamp(1, MAX_PRIORITY);
        self.clients.push(ClientQueue {
            id,
            priority,
            credits: priority,
            pending: (0..n_cells).collect(),
        });
        Ok(())
    }

    /// Dispatches the next `(campaign id, cell index)` pair, or `None`
    /// when no campaign has pending cells.
    pub fn dispatch(&mut self) -> Option<(u64, usize)> {
        self.clients.retain(|c| !c.pending.is_empty());
        if self.clients.is_empty() {
            return None;
        }
        if self.clients.iter().all(|c| c.credits == 0) {
            for c in &mut self.clients {
                c.credits = c.priority;
            }
        }
        let c = self.clients.iter_mut().find(|c| c.credits > 0)?;
        c.credits -= 1;
        let cell = c
            .pending
            .pop_front()
            .expect("retained queues are non-empty");
        Some((c.id, cell))
    }

    /// Total undispatched cells across all campaigns (queue depth).
    pub fn depth(&self) -> usize {
        self.clients.iter().map(|c| c.pending.len()).sum()
    }

    /// True when no campaign has pending cells.
    pub fn is_empty(&self) -> bool {
        self.depth() == 0
    }
}

/// Reorders out-of-order completions into index order.
///
/// Workers finish cells in wall-clock order, which is nondeterministic;
/// the result stream must not be. `push` buffers a completion and
/// returns the (possibly empty) run of results that are now ready to
/// emit in order.
#[derive(Debug)]
pub struct Reorder<T> {
    next: usize,
    buf: BTreeMap<usize, T>,
}

impl<T> Default for Reorder<T> {
    fn default() -> Self {
        Reorder {
            next: 0,
            buf: BTreeMap::new(),
        }
    }
}

impl<T> Reorder<T> {
    /// An empty buffer expecting index 0 first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the completion of cell `idx` and drains every result
    /// that is now in sequence.
    pub fn push(&mut self, idx: usize, item: T) -> Vec<(usize, T)> {
        let prev = self.buf.insert(idx, item);
        debug_assert!(prev.is_none(), "cell {idx} completed twice");
        let mut ready = Vec::new();
        while let Some(item) = self.buf.remove(&self.next) {
            ready.push((self.next, item));
            self.next += 1;
        }
        ready
    }

    /// Completions buffered behind a gap.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_client_dispatches_in_cell_order() {
        let mut s = Scheduler::new();
        s.admit(7, 3, 4, None).unwrap();
        let order: Vec<_> = std::iter::from_fn(|| s.dispatch()).collect();
        assert_eq!(order, vec![(7, 0), (7, 1), (7, 2), (7, 3)]);
    }

    #[test]
    fn priorities_weight_the_round() {
        let mut s = Scheduler::new();
        s.admit(1, 2, 4, None).unwrap();
        s.admit(2, 1, 2, None).unwrap();
        let order: Vec<_> = std::iter::from_fn(|| s.dispatch()).collect();
        // Round 1: client 1 twice, client 2 once; round 2 likewise;
        // then client 1 drains alone.
        assert_eq!(order, vec![(1, 0), (1, 1), (2, 0), (1, 2), (1, 3), (2, 1)]);
    }

    #[test]
    fn budget_rejects_whole_campaigns() {
        let mut s = Scheduler::new();
        assert!(s.admit(1, 1, 5, Some(4)).is_err());
        assert!(s.admit(1, 1, 4, Some(4)).is_ok());
        assert_eq!(s.depth(), 4);
    }

    #[test]
    fn late_admission_joins_the_current_round() {
        let mut s = Scheduler::new();
        s.admit(1, 1, 2, None).unwrap();
        assert_eq!(s.dispatch(), Some((1, 0)));
        s.admit(2, 1, 1, None).unwrap();
        let rest: Vec<_> = std::iter::from_fn(|| s.dispatch()).collect();
        assert_eq!(rest, vec![(2, 0), (1, 1)]);
    }

    #[test]
    fn reorder_emits_in_index_order() {
        let mut r = Reorder::new();
        assert!(r.push(2, "c").is_empty());
        assert!(r.push(1, "b").is_empty());
        assert_eq!(r.pending(), 2);
        assert_eq!(r.push(0, "a"), vec![(0, "a"), (1, "b"), (2, "c")]);
        assert_eq!(r.pending(), 0);
        assert_eq!(r.push(3, "d"), vec![(3, "d")]);
    }
}
