//! A small fully-associative data TLB with LRU replacement.
//!
//! The look-ahead thread sends TLB hints through the footnote queue
//! (paper §III-A); [`Tlb::fill`] models the hint prefill path.

use r3dla_stats::Counter;

/// TLB configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes (must be a power of two).
    pub page_bytes: u64,
    /// Miss (walk) penalty in cycles.
    pub miss_penalty: u64,
}

impl TlbConfig {
    /// A 64-entry 4 KiB-page DTLB with a 30-cycle walk.
    pub fn paper() -> Self {
        Self {
            entries: 64,
            page_bytes: 4096,
            miss_penalty: 30,
        }
    }
}

/// A fully-associative TLB.
///
/// # Examples
///
/// ```
/// use r3dla_mem::{Tlb, TlbConfig};
/// let mut t = Tlb::new(TlbConfig::paper());
/// assert_eq!(t.access(0x2000_0000), 30); // cold miss pays the walk
/// assert_eq!(t.access(0x2000_0F00), 0);  // same page: hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    entries: Vec<(u64, u64)>, // (page, stamp)
    stamp: u64,
    /// Lookup count.
    pub lookups: Counter,
    /// Miss count.
    pub misses: Counter,
}

impl Tlb {
    /// Creates a TLB from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two or `entries` is zero.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(
            cfg.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(cfg.entries > 0, "TLB needs at least one entry");
        Self {
            entries: Vec::with_capacity(cfg.entries),
            stamp: 0,
            lookups: Counter::new(),
            misses: Counter::new(),
            cfg,
        }
    }

    #[inline]
    fn page_of(&self, addr: u64) -> u64 {
        addr / self.cfg.page_bytes
    }

    /// Translates `addr`; returns the added latency (0 on hit, the walk
    /// penalty on miss). The entry is installed on miss.
    pub fn access(&mut self, addr: u64) -> u64 {
        self.lookups.inc();
        let page = self.page_of(addr);
        self.stamp += 1;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.stamp;
            return 0;
        }
        self.misses.inc();
        self.install(page);
        self.cfg.miss_penalty
    }

    /// Prefills the translation for `addr` without charging a walk (the
    /// footnote-queue TLB-hint path).
    pub fn fill(&mut self, addr: u64) {
        let page = self.page_of(addr);
        self.stamp += 1;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.stamp;
            return;
        }
        self.install(page);
    }

    fn install(&mut self, page: u64) {
        if self.entries.len() < self.cfg.entries {
            self.entries.push((page, self.stamp));
            return;
        }
        let victim = self
            .entries
            .iter_mut()
            .min_by_key(|(_, s)| *s)
            .expect("nonempty TLB");
        *victim = (page, self.stamp);
    }

    /// Drops all translations.
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_penalty: 30,
        })
    }

    #[test]
    fn hit_after_install() {
        let mut t = tiny();
        assert_eq!(t.access(0x1000), 30);
        assert_eq!(t.access(0x1FF8), 0);
        assert_eq!(t.misses.get(), 1);
        assert_eq!(t.lookups.get(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tiny();
        t.access(0x1000); // page 1
        t.access(0x2000); // page 2
        t.access(0x1000); // refresh page 1
        t.access(0x3000); // evicts page 2
        assert_eq!(t.access(0x1000), 0);
        assert_eq!(t.access(0x2000), 30);
    }

    #[test]
    fn fill_avoids_walk() {
        let mut t = tiny();
        t.fill(0x5000);
        assert_eq!(t.access(0x5000), 0);
        assert_eq!(t.misses.get(), 0);
    }

    #[test]
    fn flush_forgets() {
        let mut t = tiny();
        t.access(0x1000);
        t.flush();
        assert_eq!(t.access(0x1000), 30);
    }
}
