//! A set-associative, write-back/write-allocate cache model with MSHRs,
//! LRU replacement, prefetch-fill tracking and an optional "discard dirty"
//! mode used by look-ahead cores.

use r3dla_stats::Counter;

use crate::LINE_BYTES;

/// Configuration of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Access (hit) latency in cycles.
    pub latency: u64,
    /// Number of miss-status holding registers.
    pub mshrs: usize,
    /// When true, dirty evictions are dropped instead of written back
    /// (look-ahead containment, paper §III-A).
    pub discard_dirty: bool,
}

impl CacheConfig {
    /// The paper's 32 KiB 4-way L1 (1 ns ≈ 3 cycles at 3 GHz).
    pub fn l1() -> Self {
        Self {
            size_bytes: 32 * 1024,
            ways: 4,
            latency: 3,
            mshrs: 32,
            discard_dirty: false,
        }
    }

    /// The paper's 256 KiB 8-way L2 (3 ns ≈ 9 cycles).
    pub fn l2() -> Self {
        Self {
            size_bytes: 256 * 1024,
            ways: 8,
            latency: 9,
            mshrs: 32,
            discard_dirty: false,
        }
    }

    /// The paper's 2 MiB 16-way L3 (12 ns ≈ 36 cycles).
    pub fn l3() -> Self {
        Self {
            size_bytes: 2 * 1024 * 1024,
            ways: 16,
            latency: 36,
            mshrs: 64,
            discard_dirty: false,
        }
    }

    fn num_sets(&self) -> usize {
        (self.size_bytes / LINE_BYTES) as usize / self.ways
    }
}

/// Demand access kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read (load or instruction fetch).
    Read,
    /// A write (store); write-allocate.
    Write,
}

/// Aggregate statistics for one cache.
#[derive(Debug, Default, Clone)]
pub struct CacheStats {
    /// Demand accesses.
    pub accesses: Counter,
    /// Demand misses (excluding MSHR merges into outstanding fills).
    pub misses: Counter,
    /// Demand accesses that merged into an in-flight fill (late hits).
    pub mshr_merges: Counter,
    /// Lines written back to the level below.
    pub writebacks: Counter,
    /// Dirty lines dropped because of discard-dirty mode.
    pub discarded_dirty: Counter,
    /// Prefetch fills inserted.
    pub prefetch_fills: Counter,
    /// Demand hits on never-touched prefetched lines (useful prefetches).
    pub prefetch_useful: Counter,
    /// Demand accesses that merged with an in-flight prefetch (late
    /// prefetches: they helped, but not fully).
    pub prefetch_late: Counter,
    /// Prefetched lines evicted before any demand touch (wasted).
    pub prefetch_evicted_unused: Counter,
}

impl CacheStats {
    /// Demand miss ratio in [0, 1]; 0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses.get();
        if a == 0 {
            0.0
        } else {
            self.misses.get() as f64 / a as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
    prefetched: bool,
    touched: bool,
}

const INVALID_LINE: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    stamp: 0,
    prefetched: false,
    touched: false,
};

#[derive(Debug, Clone, Copy)]
struct Mshr {
    line_addr: u64,
    ready: u64,
    prefetch: bool,
}

/// The result of probing one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Probe {
    /// Hit; data available at the contained cycle. The bool is true when
    /// this was the first demand touch of a prefetched line — a trigger
    /// event for Best-Offset-style prefetchers.
    Hit(u64, bool),
    /// Merged into an outstanding fill finishing at the contained cycle.
    /// The bool reports whether the outstanding fill was a prefetch.
    Merge(u64, bool),
    /// True miss: the caller must fetch from below and then `fill`.
    Miss,
}

/// A set-associative cache tag array with MSHRs.
///
/// # Examples
///
/// ```
/// use r3dla_mem::{Cache, CacheConfig, AccessKind};
/// let mut c = Cache::new(CacheConfig::l1());
/// assert!(!c.touch(0x1000));       // cold miss
/// assert!(c.touch(0x1000));        // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    mshrs: Vec<Mshr>,
    stamp: u64,
    /// Statistics; public for read access in the C-struct spirit.
    pub stats: CacheStats,
}

impl Cache {
    /// Creates a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets();
        assert!(sets > 0 && sets.is_power_of_two(), "bad cache geometry");
        Self {
            sets: vec![vec![INVALID_LINE; cfg.ways]; sets],
            mshrs: Vec::with_capacity(cfg.mshrs),
            stamp: 0,
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / LINE_BYTES) as usize) & (self.sets.len() - 1)
    }

    fn prune_mshrs(&mut self, now: u64) {
        self.mshrs.retain(|m| m.ready > now);
    }

    /// Simple presence/LRU update without timing — used by the offline
    /// profiler's tag-array simulation. Returns whether the line hit, and
    /// fills it on miss.
    pub fn touch(&mut self, addr: u64) -> bool {
        let line_addr = crate::line_of(addr);
        let si = self.set_index(line_addr);
        self.stamp += 1;
        let stamp = self.stamp;
        let set = &mut self.sets[si];
        if let Some(l) = set.iter_mut().find(|l| l.valid && l.tag == line_addr) {
            l.stamp = stamp;
            return true;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp } else { 0 })
            .expect("nonzero ways");
        *victim = Line {
            tag: line_addr,
            valid: true,
            dirty: false,
            stamp,
            prefetched: false,
            touched: true,
        };
        false
    }

    /// Checks whether the line containing `addr` is resident (no state
    /// change).
    pub fn contains(&self, addr: u64) -> bool {
        let line_addr = crate::line_of(addr);
        let si = self.set_index(line_addr);
        self.sets[si].iter().any(|l| l.valid && l.tag == line_addr)
    }

    /// Probes for a demand access, updating statistics and LRU.
    ///
    /// Outstanding fills (MSHRs) are checked before the tag array: a line
    /// whose fill is still in flight is a *merge*, not a hit, even though
    /// its tag is already installed.
    pub(crate) fn probe(&mut self, addr: u64, kind: AccessKind, now: u64) -> Probe {
        let line_addr = crate::line_of(addr);
        let si = self.set_index(line_addr);
        self.stamp += 1;
        let stamp = self.stamp;
        self.stats.accesses.inc();
        self.prune_mshrs(now);
        if let Some(m) = self.mshrs.iter().find(|m| m.line_addr == line_addr) {
            self.stats.mshr_merges.inc();
            let was_prefetch = m.prefetch;
            if was_prefetch {
                self.stats.prefetch_late.inc();
            }
            let ready = m.ready.max(now + self.cfg.latency);
            if let Some(l) = self.sets[si]
                .iter_mut()
                .find(|l| l.valid && l.tag == line_addr)
            {
                l.stamp = stamp;
                if kind == AccessKind::Write {
                    l.dirty = true;
                }
                l.touched = true;
            }
            return Probe::Merge(ready, was_prefetch);
        }
        let set = &mut self.sets[si];
        if let Some(l) = set.iter_mut().find(|l| l.valid && l.tag == line_addr) {
            l.stamp = stamp;
            if kind == AccessKind::Write {
                l.dirty = true;
            }
            let first_prefetch_touch = l.prefetched && !l.touched;
            if first_prefetch_touch {
                self.stats.prefetch_useful.inc();
            }
            l.touched = true;
            return Probe::Hit(now + self.cfg.latency, first_prefetch_touch);
        }
        self.stats.misses.inc();
        Probe::Miss
    }

    /// Earliest cycle strictly after `now` at which an outstanding fill
    /// completes, or `None` when no fill is in flight.
    ///
    /// Fill timing in this model is *pull-based*: `fill` installs the
    /// line immediately with its data-ready stamp, and consumers carry
    /// that stamp in their own wakeups (a load's `exec_done`), so
    /// nothing needs to poll this. It exists for the event-driven
    /// scheduler's observability: the next MSHR completion bounds when
    /// cache occupancy can next change.
    pub fn next_mshr_ready(&self, now: u64) -> Option<u64> {
        self.mshrs
            .iter()
            .map(|m| m.ready)
            .filter(|&r| r > now)
            .min()
    }

    /// Earliest cycle at which a new miss can be accepted, given MSHR
    /// occupancy (structural hazard on MSHRs).
    pub(crate) fn mshr_admit_cycle(&mut self, now: u64) -> u64 {
        self.prune_mshrs(now);
        if self.mshrs.len() < self.cfg.mshrs {
            now
        } else {
            self.mshrs.iter().map(|m| m.ready).min().unwrap_or(now)
        }
    }

    /// Installs the line after a fill from below. `ready` is when data
    /// arrives; `prefetch` marks prefetch fills. Returns the address of a
    /// dirty line that must be written back, if any.
    pub(crate) fn fill(
        &mut self,
        addr: u64,
        kind: AccessKind,
        ready: u64,
        prefetch: bool,
    ) -> Option<u64> {
        let line_addr = crate::line_of(addr);
        let si = self.set_index(line_addr);
        self.stamp += 1;
        let stamp = self.stamp;
        if self.mshrs.len() < self.cfg.mshrs {
            self.mshrs.push(Mshr {
                line_addr,
                ready,
                prefetch,
            });
        }
        let set = &mut self.sets[si];
        if let Some(l) = set.iter_mut().find(|l| l.valid && l.tag == line_addr) {
            // Already present (prefetch raced with a demand fill, or a
            // writeback landing on a resident copy): refresh LRU and keep
            // the strongest dirtiness.
            l.stamp = stamp;
            if kind == AccessKind::Write {
                l.dirty = true;
            }
            return None;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp } else { 0 })
            .expect("nonzero ways");
        let mut wb = None;
        if victim.valid {
            if victim.prefetched && !victim.touched {
                self.stats.prefetch_evicted_unused.inc();
            }
            if victim.dirty {
                if self.cfg.discard_dirty {
                    self.stats.discarded_dirty.inc();
                } else {
                    self.stats.writebacks.inc();
                    wb = Some(victim.tag);
                }
            }
        }
        *victim = Line {
            tag: line_addr,
            valid: true,
            dirty: kind == AccessKind::Write,
            stamp,
            prefetched: prefetch,
            touched: !prefetch,
        };
        if prefetch {
            self.stats.prefetch_fills.inc();
        }
        wb
    }

    /// Invalidates everything (used on context reinitialization).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for l in set {
                *l = INVALID_LINE;
            }
        }
        self.mshrs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            ways: 2,
            latency: 2,
            mshrs: 4,
            discard_dirty: false,
        }
    }

    #[test]
    fn probe_miss_then_fill_then_hit() {
        let mut c = Cache::new(tiny_cfg());
        assert_eq!(c.probe(0x40, AccessKind::Read, 0), Probe::Miss);
        c.fill(0x40, AccessKind::Read, 10, false);
        match c.probe(0x40, AccessKind::Read, 20) {
            Probe::Hit(t, _) => assert_eq!(t, 22),
            p => panic!("expected hit, got {p:?}"),
        }
        assert_eq!(c.stats.accesses.get(), 2);
        assert_eq!(c.stats.misses.get(), 1);
    }

    #[test]
    fn mshr_merge_reports_outstanding_ready() {
        let mut c = Cache::new(tiny_cfg());
        assert_eq!(c.probe(0x40, AccessKind::Read, 0), Probe::Miss);
        c.fill(0x40, AccessKind::Read, 100, false);
        // Same line again while fill outstanding → merge at cycle 100.
        match c.probe(0x44, AccessKind::Read, 5) {
            Probe::Merge(t, pf) => {
                assert_eq!(t, 100);
                assert!(!pf);
            }
            p => panic!("expected merge, got {p:?}"),
        }
        assert_eq!(c.stats.mshr_merges.get(), 1);
        assert_eq!(c.stats.misses.get(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1024 B, 2-way, 64 B lines → 8 sets. Lines 0x0000, 0x2000, 0x4000
        // (spaced by 8 KiB) all map to set 0.
        let mut c = Cache::new(tiny_cfg());
        c.fill(0x0000, AccessKind::Read, 0, false);
        c.fill(0x2000, AccessKind::Read, 0, false);
        assert!(c.contains(0x0000));
        c.probe(0x0000, AccessKind::Read, 1); // refresh LRU for 0x0000
        c.fill(0x4000, AccessKind::Read, 2, false); // evicts 0x2000
        assert!(c.contains(0x0000));
        assert!(!c.contains(0x2000));
        assert!(c.contains(0x4000));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = Cache::new(tiny_cfg());
        c.fill(0x0000, AccessKind::Write, 0, false);
        c.fill(0x2000, AccessKind::Read, 0, false);
        let wb = c.fill(0x4000, AccessKind::Read, 0, false);
        assert_eq!(wb, Some(0x0000));
        assert_eq!(c.stats.writebacks.get(), 1);
    }

    #[test]
    fn discard_dirty_drops_writeback() {
        let mut cfg = tiny_cfg();
        cfg.discard_dirty = true;
        let mut c = Cache::new(cfg);
        c.fill(0x0000, AccessKind::Write, 0, false);
        c.fill(0x2000, AccessKind::Read, 0, false);
        let wb = c.fill(0x4000, AccessKind::Read, 0, false);
        assert_eq!(wb, None);
        assert_eq!(c.stats.discarded_dirty.get(), 1);
        assert_eq!(c.stats.writebacks.get(), 0);
    }

    #[test]
    fn prefetch_usefulness_tracking() {
        let mut c = Cache::new(tiny_cfg());
        c.fill(0x40, AccessKind::Read, 5, true);
        assert_eq!(c.stats.prefetch_fills.get(), 1);
        c.probe(0x40, AccessKind::Read, 10);
        assert_eq!(c.stats.prefetch_useful.get(), 1);
        // A second hit does not double-count usefulness.
        c.probe(0x40, AccessKind::Read, 11);
        assert_eq!(c.stats.prefetch_useful.get(), 1);
    }

    #[test]
    fn prefetch_evicted_unused_is_counted() {
        let mut c = Cache::new(tiny_cfg());
        c.fill(0x0000, AccessKind::Read, 0, true);
        c.fill(0x2000, AccessKind::Read, 0, false);
        c.fill(0x4000, AccessKind::Read, 0, false); // evicts untouched prefetch
        assert_eq!(c.stats.prefetch_evicted_unused.get(), 1);
    }

    #[test]
    fn mshr_admit_models_structural_stall() {
        let mut c = Cache::new(tiny_cfg()); // 4 MSHRs
        for i in 0..4u64 {
            let a = 0x1_0000 + i * 0x2000;
            assert_eq!(c.probe(a, AccessKind::Read, 0), Probe::Miss);
            c.fill(a, AccessKind::Read, 50 + i, false);
        }
        // All MSHRs busy until ≥50.
        assert_eq!(c.mshr_admit_cycle(10), 50);
        // After they drain, admission is immediate.
        assert_eq!(c.mshr_admit_cycle(60), 60);
    }

    #[test]
    fn touch_behaves_like_presence_test() {
        let mut c = Cache::new(tiny_cfg());
        assert!(!c.touch(0x40));
        assert!(c.touch(0x40));
        c.flush();
        assert!(!c.touch(0x40));
    }

    #[test]
    fn miss_ratio_reports_fraction() {
        let mut c = Cache::new(tiny_cfg());
        c.probe(0x40, AccessKind::Read, 0);
        c.fill(0x40, AccessKind::Read, 0, false);
        c.probe(0x40, AccessKind::Read, 1);
        assert!((c.stats.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
