//! Composition of the paper's three-level hierarchy: private L1I/L1D/L2
//! per core, a shared L3, and DRAM, with prefetcher attachment points at
//! L1D and L2.

use std::cell::RefCell;
use std::rc::Rc;

use crate::cache::{AccessKind, Cache, CacheConfig, CacheStats, Probe};
use crate::dram::{Dram, DramConfig, DramStats};
use crate::tlb::{Tlb, TlbConfig};

/// A hardware prefetch engine attached to one cache level.
///
/// Implementations live in `r3dla-prefetch`; the trait lives here so the
/// hierarchy can drive engines without a dependency cycle.
pub trait PrefetchEngine {
    /// Engine name for reports.
    fn name(&self) -> &str;
    /// Observes a demand access (line-aligned address) and appends any
    /// prefetch target addresses to `out`.
    fn on_access(&mut self, pc: u64, line_addr: u64, miss: bool, now: u64, out: &mut Vec<u64>);
}

/// Full memory-system configuration for one core plus the shared levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Private instruction L1.
    pub l1i: CacheConfig,
    /// Private data L1.
    pub l1d: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Shared L3.
    pub l3: CacheConfig,
    /// Main memory.
    pub dram: DramConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
}

impl MemConfig {
    /// The paper's Table I configuration.
    pub fn paper() -> Self {
        Self {
            l1i: CacheConfig::l1(),
            l1d: CacheConfig::l1(),
            l2: CacheConfig::l2(),
            l3: CacheConfig::l3(),
            dram: DramConfig::paper(),
            dtlb: TlbConfig::paper(),
        }
    }

    /// The paper configuration with look-ahead containment: private caches
    /// discard dirty lines instead of writing them back.
    pub fn paper_lookahead() -> Self {
        let mut cfg = Self::paper();
        cfg.l1d.discard_dirty = true;
        cfg.l2.discard_dirty = true;
        cfg
    }
}

/// The shared part of the hierarchy: L3 plus DRAM.
#[derive(Debug)]
pub struct SharedLlc {
    l3: Cache,
    dram: Dram,
}

impl SharedLlc {
    /// Builds the shared levels from a configuration.
    pub fn new(cfg: &MemConfig) -> Self {
        Self {
            l3: Cache::new(cfg.l3.clone()),
            dram: Dram::new(cfg.dram.clone()),
        }
    }

    /// Services an L2 miss; returns the data-ready cycle.
    pub fn access(&mut self, addr: u64, kind: AccessKind, now: u64, prefetch: bool) -> u64 {
        match self.l3.probe(addr, kind, now) {
            Probe::Hit(t, _) => t,
            Probe::Merge(t, _) => t,
            Probe::Miss => {
                let admit = self.l3.mshr_admit_cycle(now);
                let ready = self.dram.access(crate::line_of(addr), admit, false);
                let wb = self.l3.fill(addr, kind, ready, prefetch);
                if let Some(dirty) = wb {
                    self.dram.access(dirty, ready, true);
                }
                ready
            }
        }
    }

    /// Accepts a dirty line written back from a private L2.
    pub fn writeback(&mut self, addr: u64, now: u64) {
        if self.l3.contains(addr) {
            // Mark dirty by re-filling as a write (refreshes LRU).
            self.l3.fill(addr, AccessKind::Write, now, false);
        } else if let Some(dirty) = self.l3.fill(addr, AccessKind::Write, now, false) {
            self.dram.access(dirty, now, true);
        }
    }

    /// L3 statistics.
    pub fn l3_stats(&self) -> &CacheStats {
        &self.l3.stats
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> &DramStats {
        &self.dram.stats
    }

    /// Direct access to the L3 tag array (used by warm-up utilities).
    pub fn l3_mut(&mut self) -> &mut Cache {
        &mut self.l3
    }

    /// Functional warm touch: installs the line in the L3 tag array with
    /// an LRU refresh but no timing, MSHR or statistics effects. Driven
    /// by the sampled-simulation warmup replay.
    pub fn warm(&mut self, addr: u64) {
        self.l3.touch(addr);
    }

    /// Earliest cycle strictly after `now` at which an outstanding L3
    /// fill completes or a DRAM bank/channel frees, or `None` when the
    /// shared levels are fully idle. Observability for the event-driven
    /// scheduler (see [`CoreMem::next_event_at`]).
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        [self.l3.next_mshr_ready(now), self.dram.next_idle_at(now)]
            .into_iter()
            .flatten()
            .min()
    }
}

/// The timing outcome of one data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Cycle at which the data is available.
    pub ready: u64,
    /// Whether the access hit in L1D.
    pub l1_hit: bool,
    /// Whether the access hit in (or merged at) L2.
    pub l2_hit: bool,
    /// Whether the access hit in L3 (false when it went to DRAM).
    pub l3_hit: bool,
    /// Extra cycles charged by a TLB walk.
    pub tlb_penalty: u64,
}

/// One core's private memory system plus a handle to the shared levels.
pub struct CoreMem {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dtlb: Tlb,
    shared: Rc<RefCell<SharedLlc>>,
    l1_prefetcher: Option<Box<dyn PrefetchEngine>>,
    l2_prefetcher: Option<Box<dyn PrefetchEngine>>,
    pf_buf: Vec<u64>,
}

impl std::fmt::Debug for CoreMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreMem")
            .field("l1i", &self.l1i.stats.accesses)
            .field("l1d", &self.l1d.stats.accesses)
            .field("l2", &self.l2.stats.accesses)
            .field(
                "l1_prefetcher",
                &self.l1_prefetcher.as_ref().map(|p| p.name().to_string()),
            )
            .field(
                "l2_prefetcher",
                &self.l2_prefetcher.as_ref().map(|p| p.name().to_string()),
            )
            .finish_non_exhaustive()
    }
}

impl CoreMem {
    /// Builds one core's private hierarchy attached to `shared`.
    pub fn new(cfg: &MemConfig, shared: Rc<RefCell<SharedLlc>>) -> Self {
        Self {
            l1i: Cache::new(cfg.l1i.clone()),
            l1d: Cache::new(cfg.l1d.clone()),
            l2: Cache::new(cfg.l2.clone()),
            dtlb: Tlb::new(cfg.dtlb.clone()),
            shared,
            l1_prefetcher: None,
            l2_prefetcher: None,
            pf_buf: Vec::new(),
        }
    }

    /// Attaches a prefetcher trained on the L1D access stream, filling L1D.
    pub fn set_l1_prefetcher(&mut self, engine: Box<dyn PrefetchEngine>) {
        self.l1_prefetcher = Some(engine);
    }

    /// Attaches a prefetcher trained on the L2 access stream, filling L2
    /// (the paper's BOP placement).
    pub fn set_l2_prefetcher(&mut self, engine: Box<dyn PrefetchEngine>) {
        self.l2_prefetcher = Some(engine);
    }

    fn l2_and_below(
        &mut self,
        addr: u64,
        kind: AccessKind,
        now: u64,
        train: bool,
    ) -> (u64, bool, bool) {
        // Returns (ready, l2_hit, l3_hit). `train` is true only for demand
        // data accesses: prefetch fills and instruction fetches must not
        // train the demand prefetcher (feeding a prefetcher its own output
        // corrupts Best-Offset's scoring).
        let (ready, l2_hit, l3_hit, trigger) = match self.l2.probe(addr, kind, now) {
            // First touches of prefetched lines are prefetcher trigger
            // events, exactly like misses (Best-Offset's trigger rule).
            Probe::Hit(t, pf_touch) => (t, true, true, pf_touch),
            Probe::Merge(t, pf) => (t, true, true, pf),
            Probe::Miss => {
                let admit = self.l2.mshr_admit_cycle(now);
                let mut shared = self.shared.borrow_mut();
                let l3_hit = shared.l3.contains(addr);
                let ready = shared.access(addr, AccessKind::Read, admit, false);
                drop(shared);
                if let Some(dirty) = self.l2.fill(addr, kind, ready, false) {
                    self.shared.borrow_mut().writeback(dirty, ready);
                }
                (ready, false, l3_hit, true)
            }
        };
        // Train the L2 prefetcher on the demand L2 access stream.
        if let Some(pf) = self.l2_prefetcher.as_mut().filter(|_| train) {
            let mut buf = std::mem::take(&mut self.pf_buf);
            buf.clear();
            pf.on_access(0, crate::line_of(addr), trigger, now, &mut buf);
            for &line in &buf {
                self.prefetch_into_l2(line, now);
            }
            self.pf_buf = buf;
        }
        (ready, l2_hit, l3_hit)
    }

    fn data_access(&mut self, addr: u64, pc: u64, now: u64, kind: AccessKind) -> LoadOutcome {
        let tlb_penalty = self.dtlb.access(addr);
        let start = now + tlb_penalty;
        let (ready, l1_hit, l2_hit, l3_hit) = match self.l1d.probe(addr, kind, start) {
            Probe::Hit(t, _) => (t, true, true, true),
            Probe::Merge(t, _) => (t, false, true, true),
            Probe::Miss => {
                let admit = self.l1d.mshr_admit_cycle(start);
                let (ready, l2_hit, l3_hit) =
                    self.l2_and_below(addr, AccessKind::Read, admit, true);
                if let Some(dirty) = self.l1d.fill(addr, kind, ready, false) {
                    self.writeback_to_l2(dirty, ready);
                }
                (ready, false, l2_hit, l3_hit)
            }
        };
        if let Some(pf) = self.l1_prefetcher.as_mut() {
            let mut buf = std::mem::take(&mut self.pf_buf);
            buf.clear();
            pf.on_access(pc, crate::line_of(addr), !l1_hit, now, &mut buf);
            for &line in &buf {
                self.prefetch_into_l1(line, now);
            }
            self.pf_buf = buf;
        }
        LoadOutcome {
            ready,
            l1_hit,
            l2_hit,
            l3_hit,
            tlb_penalty,
        }
    }

    /// Performs a timed load.
    pub fn load(&mut self, addr: u64, pc: u64, now: u64) -> LoadOutcome {
        self.data_access(addr, pc, now, AccessKind::Read)
    }

    /// Performs a timed store (write-allocate, write-back).
    pub fn store(&mut self, addr: u64, pc: u64, now: u64) -> LoadOutcome {
        self.data_access(addr, pc, now, AccessKind::Write)
    }

    fn writeback_to_l2(&mut self, addr: u64, now: u64) {
        if self.l2.contains(addr) {
            if let Some(d) = self.l2.fill(addr, AccessKind::Write, now, false) {
                self.shared.borrow_mut().writeback(d, now);
            }
        } else if let Some(d) = self.l2.fill(addr, AccessKind::Write, now, false) {
            self.shared.borrow_mut().writeback(d, now);
        }
    }

    /// Fetches an instruction line; returns `(ready_cycle, l1i_hit)`.
    pub fn inst_fetch(&mut self, pc: u64, now: u64) -> (u64, bool) {
        match self.l1i.probe(pc, AccessKind::Read, now) {
            Probe::Hit(t, _) => (t, true),
            Probe::Merge(t, _) => (t, false),
            Probe::Miss => {
                let admit = self.l1i.mshr_admit_cycle(now);
                let (ready, _, _) = self.l2_and_below(pc, AccessKind::Read, admit, false);
                self.l1i.fill(pc, AccessKind::Read, ready, false);
                (ready, false)
            }
        }
    }

    /// Inserts a prefetch into L1D (the DLA L1-hint path and L1 stride
    /// prefetchers). Data is pulled through L2/L3 as needed.
    ///
    /// The walk *does* train the L2 demand prefetcher: DLA's L1 hints are
    /// the look-ahead thread's committed miss addresses — future demand,
    /// delivered early — so they are legitimate training input (unlike a
    /// prefetcher's own speculative output).
    pub fn prefetch_into_l1(&mut self, addr: u64, now: u64) {
        if self.l1d.contains(addr) {
            return;
        }
        let (ready, _, _) = self.l2_and_below(addr, AccessKind::Read, now, true);
        if let Some(dirty) = self.l1d.fill(addr, AccessKind::Read, ready, true) {
            self.writeback_to_l2(dirty, ready);
        }
    }

    /// Inserts a prefetch into L2 (the BOP placement).
    pub fn prefetch_into_l2(&mut self, addr: u64, now: u64) {
        if self.l2.contains(addr) {
            return;
        }
        let ready = {
            let mut shared = self.shared.borrow_mut();
            shared.access(addr, AccessKind::Read, now, true)
        };
        if let Some(dirty) = self.l2.fill(addr, AccessKind::Read, ready, true) {
            self.shared.borrow_mut().writeback(dirty, ready);
        }
    }

    /// Prefills a TLB translation (footnote-queue TLB hint).
    pub fn tlb_fill(&mut self, addr: u64) {
        self.dtlb.fill(addr);
    }

    /// Functional warm touch of the data path: installs the line in
    /// L1D/L2/shared L3 tag arrays and prefills the TLB, with LRU
    /// refreshes but no timing, MSHR or statistics effects — the
    /// microarchitectural warmup primitive for sampled simulation, driven
    /// by the functional emulator's load/store stream.
    pub fn warm_data(&mut self, addr: u64) {
        self.dtlb.fill(addr);
        self.l1d.touch(addr);
        self.l2.touch(addr);
        self.shared.borrow_mut().warm(addr);
    }

    /// Functional warm touch of the instruction path: L1I/L2/shared L3,
    /// same no-stats contract as [`warm_data`](Self::warm_data).
    pub fn warm_inst(&mut self, pc: u64) {
        self.l1i.touch(pc);
        self.l2.touch(pc);
        self.shared.borrow_mut().warm(pc);
    }

    /// L1I statistics.
    pub fn l1i_stats(&self) -> &CacheStats {
        &self.l1i.stats
    }

    /// L1D statistics.
    pub fn l1d_stats(&self) -> &CacheStats {
        &self.l1d.stats
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        &self.l2.stats
    }

    /// TLB miss count.
    pub fn dtlb_misses(&self) -> u64 {
        self.dtlb.misses.get()
    }

    /// Earliest cycle strictly after `now` at which any outstanding fill
    /// anywhere in this core's hierarchy (L1I/L1D/L2 MSHRs, shared L3,
    /// DRAM occupancy) completes, or `None` when everything is idle.
    ///
    /// The timing model is pull-based — every probe/fill returns its
    /// data-ready cycle up front and consumers carry that stamp in their
    /// own wakeups — so the core's event-driven fast path never needs to
    /// poll this; it exists so tools and tests can bound when the memory
    /// system can next change state.
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        [
            self.l1i.next_mshr_ready(now),
            self.l1d.next_mshr_ready(now),
            self.l2.next_mshr_ready(now),
            self.shared.borrow().next_event_at(now),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Handle to the shared levels.
    pub fn shared(&self) -> Rc<RefCell<SharedLlc>> {
        Rc::clone(&self.shared)
    }

    /// Flushes the private caches and TLB (context reinitialization).
    pub fn flush_private(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
        self.dtlb.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> (CoreMem, Rc<RefCell<SharedLlc>>) {
        let cfg = MemConfig::paper();
        let shared = Rc::new(RefCell::new(SharedLlc::new(&cfg)));
        (CoreMem::new(&cfg, Rc::clone(&shared)), shared)
    }

    #[test]
    fn cold_miss_walks_to_dram() {
        let (mut m, shared) = system();
        let out = m.load(0x2000_0000, 0x10, 0);
        assert!(!out.l1_hit && !out.l2_hit && !out.l3_hit);
        // TLB walk (30) + L1+L2 probes + L3 + DRAM activation.
        assert!(out.ready > 100, "ready={}", out.ready);
        assert_eq!(shared.borrow().dram_stats().reads.get(), 1);
    }

    #[test]
    fn locality_is_rewarded_at_each_level() {
        let (mut m, _s) = system();
        let a = 0x2000_0000;
        let t0 = m.load(a, 0, 0).ready;
        let h = m.load(a, 0, t0);
        assert!(h.l1_hit);
        assert!(h.ready - t0 < 10);
    }

    #[test]
    fn l3_warming_benefits_second_core() {
        let cfg = MemConfig::paper();
        let shared = Rc::new(RefCell::new(SharedLlc::new(&cfg)));
        let mut lt = CoreMem::new(&MemConfig::paper_lookahead(), Rc::clone(&shared));
        let mut mt = CoreMem::new(&cfg, Rc::clone(&shared));
        let a = 0x3000_0000;
        let warm = lt.load(a, 0, 0); // LT pulls the line into shared L3
        assert!(!warm.l3_hit);
        let out = mt.load(a, 0, warm.ready);
        assert!(out.l3_hit, "MT should find the line in the shared L3");
        assert!(!out.l1_hit);
    }

    #[test]
    fn lookahead_core_discards_dirty_lines() {
        let cfg = MemConfig::paper_lookahead();
        let shared = Rc::new(RefCell::new(SharedLlc::new(&MemConfig::paper())));
        let mut lt = CoreMem::new(&cfg, Rc::clone(&shared));
        // Write a line, then thrash its set so it gets evicted.
        let base = 0x4000_0000u64;
        lt.store(base, 0, 0);
        // L1 is 32 KiB 4-way: lines spaced 8 KiB apart share a set.
        for i in 1..=8u64 {
            lt.load(base + i * 8192, 0, 1000 * i);
        }
        let dram_writes = shared.borrow().dram_stats().writes.get();
        assert_eq!(
            dram_writes, 0,
            "look-ahead dirty data must never reach DRAM"
        );
    }

    #[test]
    fn normal_core_dirty_eviction_eventually_writes_back() {
        let (mut m, shared) = system();
        let base = 0x4000_0000u64;
        m.store(base, 0, 0);
        // Evict through L1 (8 KiB apart) and L2 (32 KiB apart) and L3
        // (128 KiB apart): hammer enough conflicting lines.
        let mut now = 100;
        for i in 1..=600u64 {
            now = m.load(base + i * 128 * 1024, 0, now).ready;
        }
        assert!(
            shared.borrow().dram_stats().writes.get() > 0,
            "dirty line should have been written back to DRAM"
        );
    }

    #[test]
    fn l1_prefetch_hint_hits_later() {
        let (mut m, _s) = system();
        let a = 0x5000_0000;
        m.prefetch_into_l1(a, 0);
        let out = m.load(a, 0, 10_000);
        assert!(out.l1_hit);
        assert_eq!(m.l1d_stats().prefetch_useful.get(), 1);
    }

    #[test]
    fn tlb_hint_removes_walk() {
        let (mut m, _s) = system();
        m.tlb_fill(0x6000_0000);
        let out = m.load(0x6000_0000, 0, 0);
        assert_eq!(out.tlb_penalty, 0);
    }

    #[test]
    fn inst_fetch_uses_l1i() {
        let (mut m, _s) = system();
        let (t0, hit0) = m.inst_fetch(0x1_0000, 0);
        assert!(!hit0);
        let (t1, hit1) = m.inst_fetch(0x1_0000, t0);
        assert!(hit1);
        assert!(t1 - t0 <= 3);
    }

    struct NextLine;
    impl PrefetchEngine for NextLine {
        fn name(&self) -> &str {
            "next-line"
        }
        fn on_access(&mut self, _pc: u64, line: u64, miss: bool, _now: u64, out: &mut Vec<u64>) {
            if miss {
                out.push(line + 64);
            }
        }
    }

    #[test]
    fn attached_prefetcher_fills_ahead() {
        let (mut m, _s) = system();
        m.set_l2_prefetcher(Box::new(NextLine));
        let a = 0x7000_0000;
        let t = m.load(a, 0, 0).ready; // miss → prefetch a+64 into L2
        let out = m.load(a + 64, 0, t + 500);
        assert!(out.l2_hit, "next line should be resident in L2");
    }

    #[test]
    fn next_event_tracks_outstanding_fills() {
        let (mut m, _s) = system();
        assert_eq!(m.next_event_at(0), None, "cold hierarchy is idle");
        let out = m.load(0x2000_0000, 0x10, 0);
        let wake = m
            .next_event_at(0)
            .expect("a DRAM-bound miss leaves outstanding work");
        assert!(
            wake <= out.ready,
            "first memory event at {wake} cannot be after the load's data ready {}",
            out.ready
        );
        // Long after the fill lands the hierarchy is idle again.
        assert_eq!(m.next_event_at(out.ready + 10_000), None);
    }

    #[test]
    fn warm_touches_install_lines_without_stats() {
        let (mut m, shared) = system();
        let a = 0x2000_0000;
        m.warm_data(a);
        m.warm_inst(0x1_0000);
        assert_eq!(m.l1d_stats().accesses.get(), 0, "warming must be free");
        assert_eq!(m.l1i_stats().accesses.get(), 0);
        assert_eq!(shared.borrow().l3_stats().accesses.get(), 0);
        assert_eq!(shared.borrow().dram_stats().reads.get(), 0);
        // A later demand access hits everywhere and skips the TLB walk.
        let out = m.load(a, 0, 0);
        assert!(out.l1_hit);
        assert_eq!(out.tlb_penalty, 0);
        let (_, ihit) = m.inst_fetch(0x1_0000, 0);
        assert!(ihit);
    }

    #[test]
    fn flush_private_clears_state() {
        let (mut m, _s) = system();
        let a = 0x2000_0000;
        let t = m.load(a, 0, 0).ready;
        m.flush_private();
        let out = m.load(a, 0, t + 10);
        assert!(!out.l1_hit);
    }
}
