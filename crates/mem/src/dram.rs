//! A DDR3-1600-style main-memory model: channels, ranks and banks with
//! open-row tracking, bank/bus occupancy, and the activity counters the
//! DRAM energy model consumes (our DRAMPower substitute).

use r3dla_stats::Counter;

/// DRAM organization and timing (in CPU cycles at 3 GHz).
///
/// The paper's part: DDR3-1600, 2 channels, 2 ranks/channel, 8 banks/rank,
/// tRCD = 13.75 ns, tRP = 13.75 ns, CAS ≈ 13.75 ns. At 3 GHz those are
/// ≈ 41 cycles each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Row size in bytes.
    pub row_bytes: u64,
    /// Column access latency (CAS) in CPU cycles.
    pub t_cas: u64,
    /// Row-activate latency (tRCD) in CPU cycles.
    pub t_rcd: u64,
    /// Precharge latency (tRP) in CPU cycles.
    pub t_rp: u64,
    /// Data-bus occupancy per 64-byte transfer in CPU cycles.
    pub t_burst: u64,
}

impl DramConfig {
    /// The paper's DDR3-1600 configuration at a 3 GHz core clock.
    pub fn paper() -> Self {
        Self {
            channels: 2,
            ranks: 2,
            banks: 8,
            row_bytes: 8192,
            t_cas: 41,
            t_rcd: 41,
            t_rp: 41,
            t_burst: 15, // 64 B over a 12.8 GB/s channel ≈ 5 ns
        }
    }

    fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.banks
    }
}

/// Activity counters feeding the energy model.
#[derive(Debug, Default, Clone)]
pub struct DramStats {
    /// Read transfers (64-byte lines).
    pub reads: Counter,
    /// Write transfers (64-byte lines).
    pub writes: Counter,
    /// Row activations (row-buffer misses).
    pub activations: Counter,
    /// Row-buffer hits.
    pub row_hits: Counter,
}

impl DramStats {
    /// Total line transfers in either direction — the paper's "memory
    /// traffic" metric (Fig 12-b).
    pub fn traffic_lines(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// The DRAM device model.
///
/// # Examples
///
/// ```
/// use r3dla_mem::{Dram, DramConfig};
/// let mut d = Dram::new(DramConfig::paper());
/// let t1 = d.access(0x4000, 100, false);
/// // A second access to the same row is a row hit and faster.
/// let t2 = d.access(0x4040, t1, false);
/// assert!(t2 - t1 < t1 - 100);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    channel_busy_until: Vec<u64>,
    /// Activity statistics.
    pub stats: DramStats,
}

impl Dram {
    /// Creates the device from its configuration.
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: 0
                };
                cfg.total_banks()
            ],
            channel_busy_until: vec![0; cfg.channels],
            stats: DramStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    #[inline]
    fn map(&self, line_addr: u64) -> (usize, usize, u64) {
        // Row-granule interleaving: a contiguous `row_bytes` region maps
        // to one (channel, bank, row), so streaming accesses enjoy
        // row-buffer hits within a row and spread across channels/banks
        // between rows.
        let granule = line_addr / self.cfg.row_bytes;
        let ch = (granule as usize) % self.cfg.channels;
        let t = granule / self.cfg.channels as u64;
        let bank_in_ch = (t as usize) % (self.cfg.banks * self.cfg.ranks);
        let row = t / (self.cfg.banks * self.cfg.ranks) as u64;
        let flat = ch * self.cfg.ranks * self.cfg.banks + bank_in_ch;
        (ch, flat, row)
    }

    /// Earliest cycle strictly after `now` at which a currently busy
    /// bank or channel frees up, or `None` when the device is idle.
    ///
    /// Like the caches, the DRAM model is pull-based — `access` returns
    /// the completion cycle up front — so this is an observability hook
    /// for the event-driven scheduler, not something the cores poll.
    pub fn next_idle_at(&self, now: u64) -> Option<u64> {
        self.banks
            .iter()
            .map(|b| b.busy_until)
            .chain(self.channel_busy_until.iter().copied())
            .filter(|&t| t > now)
            .min()
    }

    /// Performs one 64-byte access; returns the cycle the data transfer
    /// completes. `write` selects the transfer direction (timing is
    /// symmetrical; energy is not).
    pub fn access(&mut self, line_addr: u64, now: u64, write: bool) -> u64 {
        let (ch, bank_idx, row) = self.map(line_addr);
        let bank = &mut self.banks[bank_idx];
        let start = now.max(bank.busy_until).max(self.channel_busy_until[ch]);
        let access_lat = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits.inc();
                self.cfg.t_cas
            }
            Some(_) => {
                self.stats.activations.inc();
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
            }
            None => {
                self.stats.activations.inc();
                self.cfg.t_rcd + self.cfg.t_cas
            }
        };
        bank.open_row = Some(row);
        let data_ready = start + access_lat + self.cfg.t_burst;
        bank.busy_until = start + access_lat;
        self.channel_busy_until[ch] = data_ready;
        if write {
            self.stats.writes.inc();
        } else {
            self.stats.reads.inc();
        }
        data_ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_faster_than_activation() {
        let mut d = Dram::new(DramConfig::paper());
        let t1 = d.access(0x10000, 0, false);
        let t2 = d.access(0x10040, t1, false);
        let first_lat = t1;
        let second_lat = t2 - t1;
        assert!(second_lat < first_lat);
        assert_eq!(d.stats.row_hits.get(), 1);
        assert_eq!(d.stats.activations.get(), 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let cfg = DramConfig::paper();
        let row_bytes = cfg.row_bytes;
        let mut d = Dram::new(cfg.clone());
        let a = 0x10000u64;
        // Same bank, different row: stride by row_bytes *
        // channels*ranks*banks to stay in the same bank.
        let stride = row_bytes * (cfg.channels * cfg.ranks * cfg.banks) as u64;
        let t1 = d.access(a, 0, false);
        let t2 = d.access(a + stride, t1, false);
        // Find whether they mapped to the same bank; if so the second pays
        // tRP extra versus a fresh activation.
        assert!(t2 > t1);
        assert_eq!(d.stats.activations.get(), 2);
    }

    #[test]
    fn bank_occupancy_queues_requests() {
        let mut d = Dram::new(DramConfig::paper());
        // Two back-to-back requests to the same bank issued at the same
        // cycle: the second starts after the first's bank busy time.
        let t1 = d.access(0x10000, 0, false);
        let t2 = d.access(0x10000, 0, false);
        assert!(t2 > t1);
    }

    #[test]
    fn channels_give_parallelism() {
        let cfg = DramConfig::paper();
        let row = cfg.row_bytes;
        let mut d = Dram::new(cfg);
        // Adjacent row granules map to different channels.
        let t1 = d.access(0x0, 0, false);
        let t2 = d.access(row, 0, false);
        // Both start immediately on independent channels.
        assert_eq!(t1, t2);
    }

    #[test]
    fn traffic_counts_reads_and_writes() {
        let mut d = Dram::new(DramConfig::paper());
        d.access(0x0, 0, false);
        d.access(0x40, 0, true);
        assert_eq!(d.stats.reads.get(), 1);
        assert_eq!(d.stats.writes.get(), 1);
        assert_eq!(d.stats.traffic_lines(), 2);
    }
}
