//! Memory hierarchy for the R3-DLA simulator: set-associative caches with
//! MSHRs, a TLB, a DDR3-style DRAM model, and a three-level composition
//! matching the paper's baseline (32 KiB L1s, 256 KiB L2, 2 MiB shared L3,
//! DDR3-1600-like main memory).
//!
//! Caches are *timing-only* tag arrays: functional data lives in the
//! architectural memory image (`r3dla_isa::VecMem` plus the look-ahead
//! overlay). This mirrors how trace-driven simulators separate semantics
//! from timing, and is what allows the look-ahead core's private caches to
//! be "discard-dirty" (paper §III-A) with no correctness implications.
//!
//! # Examples
//!
//! ```
//! use r3dla_mem::{CoreMem, MemConfig, SharedLlc};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let shared = Rc::new(RefCell::new(SharedLlc::new(&MemConfig::paper())));
//! let mut core_mem = CoreMem::new(&MemConfig::paper(), shared);
//! let out = core_mem.load(0x2000_0000, 0, 100);
//! assert!(out.ready > 100); // cold miss goes to DRAM
//! let out2 = core_mem.load(0x2000_0000, 0, out.ready);
//! assert!(out2.l1_hit);
//! ```

mod cache;
mod dram;
mod hierarchy;
mod tlb;

pub use cache::{AccessKind, Cache, CacheConfig, CacheStats};
pub use dram::{Dram, DramConfig, DramStats};
pub use hierarchy::{CoreMem, LoadOutcome, MemConfig, PrefetchEngine, SharedLlc};
pub use tlb::{Tlb, TlbConfig};

/// Cache line size in bytes used throughout the hierarchy.
pub const LINE_BYTES: u64 = 64;

/// Returns the line-aligned address containing `addr`.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_masks_offset() {
        assert_eq!(line_of(0x1000), 0x1000);
        assert_eq!(line_of(0x103F), 0x1000);
        assert_eq!(line_of(0x1040), 0x1040);
    }
}
