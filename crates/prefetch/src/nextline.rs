//! Next-line prefetcher: the simplest member of the comparison pool.

use r3dla_mem::{PrefetchEngine, LINE_BYTES};

/// Prefetches the next `degree` sequential lines on every miss.
///
/// # Examples
///
/// ```
/// use r3dla_mem::PrefetchEngine;
/// use r3dla_prefetch::NextLine;
/// let mut pf = NextLine::new(2);
/// let mut out = Vec::new();
/// pf.on_access(0, 0x1000, true, 0, &mut out);
/// assert_eq!(out, vec![0x1040, 0x1080]);
/// ```
#[derive(Debug, Clone)]
pub struct NextLine {
    degree: u64,
}

impl NextLine {
    /// Creates a next-line prefetcher issuing `degree` lines per miss.
    pub fn new(degree: u64) -> Self {
        Self { degree }
    }
}

impl PrefetchEngine for NextLine {
    fn name(&self) -> &str {
        "nextline"
    }

    fn on_access(&mut self, _pc: u64, line_addr: u64, miss: bool, _now: u64, out: &mut Vec<u64>) {
        if !miss {
            return;
        }
        for k in 1..=self.degree {
            out.push(line_addr + k * LINE_BYTES);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issues_on_miss_only() {
        let mut pf = NextLine::new(1);
        let mut out = Vec::new();
        pf.on_access(0, 0x40, false, 0, &mut out);
        assert!(out.is_empty());
        pf.on_access(0, 0x40, true, 0, &mut out);
        assert_eq!(out, vec![0x80]);
    }
}
