//! A Global History Buffer delta-correlation prefetcher (Nesbit & Smith,
//! HPCA 2004 — the paper's reference [76]).
//!
//! Misses enter a circular global history buffer; an index table keyed by
//! PC links each PC's misses together. On a miss we compute the last two
//! deltas for the PC, search the chain for a previous occurrence of that
//! delta pair, and prefetch the deltas that followed it.

use std::collections::HashMap;

use r3dla_mem::{PrefetchEngine, LINE_BYTES};

#[derive(Debug, Clone, Copy)]
struct GhbEntry {
    line: u64,
    prev: Option<usize>, // previous entry for the same PC (absolute slot)
    seq: u64,
}

/// The GHB/DC prefetch engine.
#[derive(Debug)]
pub struct GhbPrefetcher {
    buf: Vec<GhbEntry>,
    head: usize,
    seq: u64,
    index: HashMap<u64, usize>, // pc -> newest absolute slot
    degree: usize,
    capacity: usize,
}

impl GhbPrefetcher {
    /// Creates a GHB with `capacity` entries issuing up to `degree`
    /// prefetches per trigger.
    pub fn new(capacity: usize, degree: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
            head: 0,
            seq: 0,
            index: HashMap::new(),
            degree,
            capacity,
        }
    }

    fn push(&mut self, pc: u64, line: u64) -> usize {
        let prev = self.index.get(&pc).copied();
        let entry = GhbEntry {
            line,
            prev,
            seq: self.seq,
        };
        let slot = if self.buf.len() < self.capacity {
            self.buf.push(entry);
            self.buf.len() - 1
        } else {
            let s = self.head;
            self.buf[s] = entry;
            self.head = (self.head + 1) % self.capacity;
            s
        };
        self.seq += 1;
        self.index.insert(pc, slot);
        slot
    }

    /// Walks the per-PC chain from `slot`, collecting up to `n` most
    /// recent lines (newest first). Stale links (overwritten slots) are
    /// detected via sequence numbers.
    fn chain(&self, slot: usize, n: usize) -> Vec<u64> {
        let mut lines = Vec::with_capacity(n);
        let mut cur = Some(slot);
        let mut last_seq = u64::MAX;
        while let Some(s) = cur {
            let e = &self.buf[s];
            if e.seq >= last_seq {
                break; // stale link: slot was recycled
            }
            last_seq = e.seq;
            lines.push(e.line);
            if lines.len() == n {
                break;
            }
            cur = e.prev;
        }
        lines
    }
}

impl PrefetchEngine for GhbPrefetcher {
    fn name(&self) -> &str {
        "ghb"
    }

    fn on_access(&mut self, pc: u64, line_addr: u64, miss: bool, _now: u64, out: &mut Vec<u64>) {
        if !miss {
            return;
        }
        let line = line_addr / LINE_BYTES;
        let slot = self.push(pc, line);
        // Need ≥ 3 older entries to form two reference deltas + history.
        let hist = self.chain(slot, 16);
        if hist.len() < 4 {
            return;
        }
        // hist[0] = current, newest first. Deltas between consecutive.
        let d1 = hist[0] as i64 - hist[1] as i64;
        let d2 = hist[1] as i64 - hist[2] as i64;
        // Search older history for the same (d2, d1) pair.
        for w in 2..hist.len() - 1 {
            let hd1 = hist[w] as i64 - hist[w + 1] as i64;
            if w >= 1 {
                let hd0 = hist[w - 1] as i64 - hist[w] as i64;
                if hd1 == d2 && hd0 == d1 {
                    // Replay the deltas that followed the match.
                    let mut line_cursor = hist[0] as i64;
                    let mut idx = w as i64 - 2;
                    let mut issued = 0;
                    while idx >= 0 && issued < self.degree {
                        let delta = hist[idx as usize] as i64 - hist[idx as usize + 1] as i64;
                        line_cursor += delta;
                        if line_cursor > 0 {
                            out.push(line_cursor as u64 * LINE_BYTES);
                            issued += 1;
                        }
                        idx -= 1;
                    }
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeating_delta_pattern_is_replayed() {
        // Pattern of deltas: +1, +2, +1, +2, ... lines.
        let mut pf = GhbPrefetcher::new(64, 2);
        let mut out = Vec::new();
        let mut line = 100u64;
        let deltas = [1u64, 2, 1, 2, 1, 2, 1, 2];
        for (i, d) in deltas.iter().enumerate() {
            out.clear();
            pf.on_access(0x40, line * 64, true, i as u64, &mut out);
            line += d;
        }
        // After seeing (1,2) repeat, the prefetcher should predict the
        // continuation.
        assert!(!out.is_empty(), "expected delta-correlated prefetches");
    }

    #[test]
    fn distinct_pcs_have_distinct_chains() {
        let mut pf = GhbPrefetcher::new(64, 2);
        let mut out = Vec::new();
        for i in 0..10u64 {
            pf.on_access(0x100, (1000 + i) * 64, true, i, &mut out);
            pf.on_access(0x200, (9000 + i * 3) * 64, true, i, &mut out);
        }
        let chain_a = pf.chain(pf.index[&0x100], 4);
        assert!(chain_a.iter().all(|&l| (1000..2000).contains(&l)));
        let chain_b = pf.chain(pf.index[&0x200], 4);
        assert!(chain_b.iter().all(|&l| l >= 9000));
    }

    #[test]
    fn recycled_slots_terminate_chains() {
        let mut pf = GhbPrefetcher::new(4, 2); // tiny buffer forces recycling
        let mut out = Vec::new();
        for i in 0..20u64 {
            pf.on_access(0x100 + (i % 3) * 4, i * 64, true, i, &mut out);
        }
        // Just ensure chain walking never panics or loops forever.
        for (_, &slot) in pf.index.iter() {
            let _ = pf.chain(slot, 16);
        }
    }
}
