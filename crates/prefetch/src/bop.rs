//! The Best-Offset prefetcher (Michaud, HPCA 2016) — the paper's baseline
//! L2 prefetcher, "configured with 256 RR table entries and 52 offsets".
//!
//! BOP learns a single best constant line offset `D`: on each trigger
//! access to line `X` it prefetches `X + D`, while concurrently scoring
//! candidate offsets by testing whether `X − d` was recently requested
//! (i.e. whether a `d`-offset prefetch would have been timely).

use r3dla_mem::{PrefetchEngine, LINE_BYTES};

/// Best-Offset configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BopConfig {
    /// Recent-requests table size (direct mapped).
    pub rr_entries: usize,
    /// Score that immediately ends a learning phase.
    pub score_max: u32,
    /// Maximum rounds per learning phase.
    pub round_max: u32,
    /// Minimum winning score for prefetch to stay enabled.
    pub bad_score: u32,
    /// Cycles between a trigger access and its base address entering the
    /// RR table — models "inserted when the prefetch completes", which is
    /// BOP's timeliness filter: offsets too small to cover the memory
    /// latency never find their base in the RR table and score zero.
    pub insert_delay: u64,
}

impl BopConfig {
    /// The paper's configuration: 256 RR entries (52 offsets come from
    /// [`BestOffset::offset_list`]).
    pub fn paper() -> Self {
        Self {
            rr_entries: 256,
            score_max: 31,
            round_max: 12,
            bad_score: 1,
            insert_delay: 200,
        }
    }
}

/// The Best-Offset prefetch engine.
#[derive(Debug, Clone)]
pub struct BestOffset {
    cfg: BopConfig,
    offsets: Vec<i64>,
    scores: Vec<u32>,
    rr: Vec<u64>,
    pending: std::collections::VecDeque<(u64, u64)>, // (ready cycle, line)
    test_idx: usize,
    round: u32,
    best: i64,
    enabled: bool,
}

impl BestOffset {
    /// Creates a BOP with the paper's configuration.
    pub fn paper() -> Self {
        Self::new(BopConfig::paper())
    }

    /// Creates a BOP from a configuration.
    pub fn new(cfg: BopConfig) -> Self {
        let offsets = Self::offset_list();
        Self {
            scores: vec![0; offsets.len()],
            rr: vec![u64::MAX; cfg.rr_entries],
            pending: std::collections::VecDeque::new(),
            test_idx: 0,
            round: 0,
            best: 8,
            enabled: true,
            offsets,
            cfg,
        }
    }

    /// The 52-entry offset list from the BOP paper: the offsets 1..256
    /// whose prime factorization uses only 2, 3 and 5 (there are exactly
    /// 52 such 5-smooth numbers).
    pub fn offset_list() -> Vec<i64> {
        let v: Vec<i64> = (1..=256i64)
            .filter(|&n| {
                let mut m = n;
                for p in [2, 3, 5] {
                    while m % p == 0 {
                        m /= p;
                    }
                }
                m == 1
            })
            .collect();
        debug_assert_eq!(v.len(), 52);
        v
    }

    #[inline]
    fn rr_index(&self, line: u64) -> usize {
        // Fold the line number into the direct-mapped RR table.
        let x = line / LINE_BYTES;
        ((x ^ (x >> 8)) as usize) % self.rr.len()
    }

    fn rr_insert(&mut self, line: u64) {
        let i = self.rr_index(line);
        self.rr[i] = line;
    }

    fn rr_contains(&self, line: u64) -> bool {
        self.rr[self.rr_index(line)] == line
    }

    /// The currently selected offset (in lines), for inspection.
    pub fn current_offset(&self) -> i64 {
        self.best
    }

    /// Whether prefetching is currently enabled (a winning score below
    /// `bad_score` turns BOP off until the next phase).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

impl PrefetchEngine for BestOffset {
    fn name(&self) -> &str {
        "bop"
    }

    fn on_access(&mut self, _pc: u64, line_addr: u64, miss: bool, now: u64, out: &mut Vec<u64>) {
        // BOP triggers on L2 misses and first touches of prefetched lines
        // (the hierarchy reports both through `miss`).
        if !miss {
            return;
        }
        // Drain pending RR insertions whose modelled prefetch completed.
        while let Some(&(ready, line)) = self.pending.front() {
            if ready > now {
                break;
            }
            self.rr_insert(line);
            self.pending.pop_front();
        }
        // Learning: test one candidate offset per trigger.
        let d = self.offsets[self.test_idx];
        let base = line_addr as i64 - d * LINE_BYTES as i64;
        if base > 0 && self.rr_contains(base as u64) {
            self.scores[self.test_idx] += 1;
            if self.scores[self.test_idx] >= self.cfg.score_max {
                self.finish_phase();
            }
        }
        self.test_idx += 1;
        if self.test_idx == self.offsets.len() {
            self.test_idx = 0;
            self.round += 1;
            if self.round >= self.cfg.round_max {
                self.finish_phase();
            }
        }
        // The base enters the RR table when its prefetch would complete —
        // the timeliness filter that steers BOP toward offsets large
        // enough to cover the memory latency.
        self.pending
            .push_back((now + self.cfg.insert_delay, line_addr));
        if self.pending.len() > 64 {
            if let Some((_, l)) = self.pending.pop_front() {
                self.rr_insert(l);
            }
        }
        // Issue the actual prefetch with the current best offset.
        if self.enabled {
            let target = line_addr as i64 + self.best * LINE_BYTES as i64;
            if target > 0 {
                out.push(target as u64);
            }
        }
    }
}

impl BestOffset {
    fn finish_phase(&mut self) {
        let (best_idx, &best_score) = self
            .scores
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| **s)
            .expect("nonempty offsets");
        self.best = self.offsets[best_idx];
        self.enabled = best_score >= self.cfg.bad_score;
        self.scores.iter_mut().for_each(|s| *s = 0);
        self.round = 0;
        self.test_idx = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_list_matches_published_count() {
        let offs = BestOffset::offset_list();
        assert_eq!(offs.len(), 52);
        assert!(offs.contains(&1));
        assert!(offs.contains(&256));
        assert!(!offs.contains(&7)); // 7 has a prime factor other than 2,3,5
    }

    #[test]
    fn sequential_stream_converges_to_useful_offset() {
        let mut bop = BestOffset::paper();
        let mut out = Vec::new();
        // A long sequential miss stream at ~50 cycles/line: the selected
        // offset must be positive and large enough to cover the modelled
        // 200-cycle latency (≥ 4 lines ahead).
        for i in 0..20_000u64 {
            out.clear();
            bop.on_access(0, i * 64, true, i * 50, &mut out);
        }
        assert!(bop.current_offset() >= 4, "offset={}", bop.current_offset());
        assert!(bop.is_enabled());
        // Prefetches land ahead of the stream.
        out.clear();
        bop.on_access(0, 20_000 * 64, true, 0, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0] > 20_000 * 64);
    }

    #[test]
    fn strided_stream_learns_the_stride() {
        let mut bop = BestOffset::paper();
        let mut out = Vec::new();
        // Stride of 4 lines at ~100 cycles per access.
        for i in 0..30_000u64 {
            out.clear();
            bop.on_access(0, i * 4 * 64, true, i * 100, &mut out);
        }
        // The best offset should be a multiple of the stride.
        assert_eq!(
            bop.current_offset().rem_euclid(4),
            0,
            "best={}",
            bop.current_offset()
        );
    }

    #[test]
    fn random_stream_disables_prefetching() {
        let mut bop = BestOffset::paper();
        let mut rng = r3dla_stats::Rng::new(3);
        let mut out = Vec::new();
        for i in 0..60_000u64 {
            out.clear();
            bop.on_access(0, rng.range_u64(0, 1 << 30) & !63, true, i * 40, &mut out);
        }
        assert!(!bop.is_enabled(), "random misses should turn BOP off");
    }

    #[test]
    fn hits_do_not_trigger() {
        let mut bop = BestOffset::paper();
        let mut out = Vec::new();
        bop.on_access(0, 64, false, 0, &mut out);
        assert!(out.is_empty());
    }
}
