//! A stream prefetcher: detects unit-direction miss streams within a
//! window and runs a configurable depth ahead (Jouppi-style stream
//! buffers, flattened into prefetch-into-cache form).

use r3dla_mem::{PrefetchEngine, LINE_BYTES};

#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    last_line: u64,
    dir: i64, // +1 / -1, 0 = unconfirmed
    confirmations: u8,
    valid: bool,
    stamp: u64,
}

/// The stream prefetch engine.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    depth: u64,
    stamp: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher tracking `streams` concurrent streams and
    /// running `depth` lines ahead.
    pub fn new(streams: usize, depth: u64) -> Self {
        Self {
            streams: vec![Stream::default(); streams],
            depth,
            stamp: 0,
        }
    }
}

impl PrefetchEngine for StreamPrefetcher {
    fn name(&self) -> &str {
        "stream"
    }

    fn on_access(&mut self, _pc: u64, line_addr: u64, miss: bool, _now: u64, out: &mut Vec<u64>) {
        if !miss {
            return;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let line = line_addr / LINE_BYTES;
        // Find a stream this miss extends (within 4 lines either way).
        let hit = self
            .streams
            .iter_mut()
            .find(|s| s.valid && (line.abs_diff(s.last_line)) <= 4 && line != s.last_line);
        match hit {
            Some(s) => {
                let dir = if line > s.last_line { 1 } else { -1 };
                if dir == s.dir {
                    s.confirmations = s.confirmations.saturating_add(1);
                } else {
                    s.dir = dir;
                    s.confirmations = 1;
                }
                s.last_line = line;
                s.stamp = stamp;
                if s.confirmations >= 2 {
                    for k in 1..=self.depth {
                        let t = line as i64 + s.dir * k as i64;
                        if t > 0 {
                            out.push(t as u64 * LINE_BYTES);
                        }
                    }
                }
            }
            None => {
                let v = self
                    .streams
                    .iter_mut()
                    .min_by_key(|s| if s.valid { s.stamp } else { 0 })
                    .expect("nonzero streams");
                *v = Stream {
                    last_line: line,
                    dir: 0,
                    confirmations: 0,
                    valid: true,
                    stamp,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_stream_detected() {
        let mut pf = StreamPrefetcher::new(4, 2);
        let mut out = Vec::new();
        for i in 0..6u64 {
            out.clear();
            pf.on_access(0, i * 64, true, i, &mut out);
        }
        assert_eq!(out, vec![6 * 64, 7 * 64]);
    }

    #[test]
    fn descending_stream_detected() {
        let mut pf = StreamPrefetcher::new(4, 1);
        let mut out = Vec::new();
        for i in 0..6u64 {
            out.clear();
            pf.on_access(0, (100 - i) * 64, true, i, &mut out);
        }
        // Final access was line 95; depth-1 descending prefetch is line 94.
        assert_eq!(out, vec![94 * 64]);
    }

    #[test]
    fn far_jumps_do_not_extend_streams() {
        let mut pf = StreamPrefetcher::new(2, 2);
        let mut out = Vec::new();
        pf.on_access(0, 0, true, 0, &mut out);
        pf.on_access(0, 1 << 20, true, 1, &mut out);
        pf.on_access(0, 2 << 20, true, 2, &mut out);
        assert!(out.is_empty());
    }
}
