//! A per-PC stride prefetcher in the style of Fu/Patel/Janssens (the
//! paper's reference [46]), with the tuning the paper applied for its
//! Table III comparison: 32 entries, prefetch degree 4.
//!
//! This is the *conventional* engine that must detect strides in the
//! presence of noise — deliberately harder work than DLA's T1, which is
//! told exactly which instructions stride (paper §III-C).

use r3dla_mem::{PrefetchEngine, LINE_BYTES};

/// Stride-prefetcher configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrideConfig {
    /// Number of table entries (per-PC).
    pub entries: usize,
    /// Lines prefetched ahead once confident.
    pub degree: u64,
    /// Confidence threshold (consecutive stride confirmations) before
    /// prefetching begins.
    pub threshold: u8,
}

impl StrideConfig {
    /// The paper's tuned configuration: 32 strides, degree 4.
    pub fn paper() -> Self {
        Self {
            entries: 32,
            degree: 4,
            threshold: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
    stamp: u64,
}

/// The classic reference-prediction-table stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    cfg: StrideConfig,
    table: Vec<Entry>,
    stamp: u64,
}

impl StridePrefetcher {
    /// Creates the prefetcher with the paper's tuning.
    pub fn paper() -> Self {
        Self::new(StrideConfig::paper())
    }

    /// Creates the prefetcher from a configuration.
    pub fn new(cfg: StrideConfig) -> Self {
        Self {
            table: vec![Entry::default(); cfg.entries],
            stamp: 0,
            cfg,
        }
    }
}

impl PrefetchEngine for StridePrefetcher {
    fn name(&self) -> &str {
        "stride"
    }

    fn on_access(&mut self, pc: u64, line_addr: u64, _miss: bool, _now: u64, out: &mut Vec<u64>) {
        self.stamp += 1;
        let stamp = self.stamp;
        let idx = match self.table.iter().position(|e| e.valid && e.pc == pc) {
            Some(i) => i,
            None => {
                // Allocate: LRU victim.
                let v = self
                    .table
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| if e.valid { e.stamp } else { 0 })
                    .map(|(i, _)| i)
                    .expect("nonzero table");
                self.table[v] = Entry {
                    pc,
                    last_addr: line_addr,
                    stride: 0,
                    confidence: 0,
                    valid: true,
                    stamp,
                };
                return;
            }
        };
        let e = &mut self.table[idx];
        e.stamp = stamp;
        let new_stride = line_addr as i64 - e.last_addr as i64;
        e.last_addr = line_addr;
        if new_stride == 0 {
            return; // same line; no information
        }
        if new_stride == e.stride {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = new_stride;
            e.confidence = 0;
        }
        if e.confidence >= self.cfg.threshold {
            for k in 1..=self.cfg.degree {
                let target = line_addr as i64 + e.stride * k as i64;
                if target > 0 {
                    out.push((target as u64) & !(LINE_BYTES - 1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(pf: &mut StridePrefetcher, pc: u64, addrs: &[u64]) -> Vec<u64> {
        let mut all = Vec::new();
        let mut out = Vec::new();
        for (i, &a) in addrs.iter().enumerate() {
            out.clear();
            pf.on_access(pc, a, true, i as u64, &mut out);
            all.extend_from_slice(&out);
        }
        all
    }

    #[test]
    fn learns_constant_stride() {
        let mut pf = StridePrefetcher::paper();
        let addrs: Vec<u64> = (0..6).map(|i| 0x10000 + i * 192).collect();
        let issued = drive(&mut pf, 0x40, &addrs);
        assert!(!issued.is_empty());
        // Prefetches must be ahead of the stream, stride 192, line aligned.
        for a in &issued {
            assert_eq!(a % 64, 0);
            assert_eq!((a - 0x10000) % 192, 0);
        }
    }

    #[test]
    fn no_prefetch_for_random_pattern() {
        let mut pf = StridePrefetcher::paper();
        let mut rng = r3dla_stats::Rng::new(1);
        let addrs: Vec<u64> = (0..50)
            .map(|_| rng.range_u64(0x1000, 0x100000) & !63)
            .collect();
        let issued = drive(&mut pf, 0x40, &addrs);
        assert!(
            issued.len() < 10,
            "random stream should rarely trigger, got {}",
            issued.len()
        );
    }

    #[test]
    fn interleaved_pcs_tracked_independently() {
        let mut pf = StridePrefetcher::paper();
        let mut out = Vec::new();
        let mut issued_a = 0;
        let mut issued_b = 0;
        for i in 0..8u64 {
            out.clear();
            pf.on_access(0x100, 0x1_0000 + i * 64, true, i, &mut out);
            issued_a += out.len();
            out.clear();
            pf.on_access(0x200, 0x8_0000 + i * 128, true, i, &mut out);
            issued_b += out.len();
        }
        assert!(issued_a > 0);
        assert!(issued_b > 0);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut pf = StridePrefetcher::new(StrideConfig {
            entries: 2,
            degree: 1,
            threshold: 1,
        });
        let mut out = Vec::new();
        // Train pc 1 and pc 2, then a third pc evicts the older (pc 1).
        for i in 0..4u64 {
            pf.on_access(0x100, 0x1000 + i * 64, true, i, &mut out);
            pf.on_access(0x200, 0x9000 + i * 64, true, i, &mut out);
        }
        pf.on_access(0x300, 0x5000, true, 99, &mut out);
        // pc 0x100 (LRU at eviction) or 0x200 must have been evicted;
        // table still holds exactly 2 valid entries.
        let valid = pf.table.iter().filter(|e| e.valid).count();
        assert_eq!(valid, 2);
    }

    #[test]
    fn negative_stride_supported() {
        let mut pf = StridePrefetcher::paper();
        let addrs: Vec<u64> = (0..6).map(|i| 0x100000 - i * 64).collect();
        let issued = drive(&mut pf, 0x44, &addrs);
        assert!(!issued.is_empty());
        assert!(issued.iter().all(|&a| a < 0x100000));
    }
}
