//! Hardware prefetchers for the R3-DLA simulator.
//!
//! The paper's baseline attaches a Best-Offset prefetcher (BOP, Michaud
//! HPCA 2016) at L2 — chosen as the best of a group of state-of-the-art
//! prefetchers — and Table III / Fig 12 compare a *stride prefetcher at
//! L1* against DLA's T1 offload engine. This crate provides those engines
//! plus next-line, stream and GHB delta-correlation alternatives, all
//! implementing [`r3dla_mem::PrefetchEngine`].
//!
//! # Examples
//!
//! ```
//! use r3dla_mem::PrefetchEngine;
//! use r3dla_prefetch::StridePrefetcher;
//!
//! let mut pf = StridePrefetcher::paper();
//! let mut out = Vec::new();
//! // A strided stream from one PC trains the table…
//! for i in 0..4u64 {
//!     out.clear();
//!     pf.on_access(0x400, 0x1000 + i * 128, true, i, &mut out);
//! }
//! // …after which prefetches run ahead of the stream.
//! assert!(!out.is_empty());
//! assert!(out.iter().all(|a| *a > 0x1000 + 3 * 128));
//! ```

mod bop;
mod ghb;
mod nextline;
mod stream;
mod stride;

pub use bop::{BestOffset, BopConfig};
pub use ghb::GhbPrefetcher;
pub use nextline::NextLine;
pub use stream::StreamPrefetcher;
pub use stride::{StrideConfig, StridePrefetcher};

use r3dla_mem::PrefetchEngine;

/// Instantiates a prefetcher by name: `"bop"`, `"stride"`, `"nextline"`,
/// `"stream"`, or `"ghb"`.
///
/// Supports the paper's "chosen from among N prefetchers for best
/// performance" selection experiments.
///
/// # Examples
///
/// ```
/// let pf = r3dla_prefetch::by_name("bop").unwrap();
/// assert_eq!(pf.name(), "bop");
/// ```
pub fn by_name(name: &str) -> Option<Box<dyn PrefetchEngine>> {
    match name {
        "bop" => Some(Box::new(BestOffset::paper())),
        "stride" => Some(Box::new(StridePrefetcher::paper())),
        "nextline" => Some(Box::new(NextLine::new(1))),
        "stream" => Some(Box::new(StreamPrefetcher::new(8, 4))),
        "ghb" => Some(Box::new(GhbPrefetcher::new(256, 2))),
        _ => None,
    }
}

/// Names accepted by [`by_name`].
pub const ALL_PREFETCHERS: &[&str] = &["bop", "stride", "nextline", "stream", "ghb"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_knows_all_names() {
        for name in ALL_PREFETCHERS {
            let pf = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(pf.name(), *name);
        }
        assert!(by_name("bogus").is_none());
    }
}
