//! T1: the "dumb" stride-prefetch FSM on the main core (paper §III-C,
//! the *reduce* optimization).
//!
//! Unlike a conventional stride prefetcher, T1 is told exactly which
//! instructions stride (the S bits); it only computes the stride and the
//! prefetch distance, then issues one prefetch per loop iteration. Table
//! entries move `Invalid → Observed → Transient → Steady` and the whole
//! table clears when the enclosing loop terminates.

use r3dla_stats::Counter;

/// FSM states of one prefetch-table entry (paper Fig 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum T1State {
    Observed,
    Transient,
    Steady,
}

#[derive(Debug, Clone, Copy)]
struct T1Entry {
    inst_pc: u64,
    last_addr: u64,
    stride: i64,
    last_cycle: u64,
    pref_distance: u64,
    state: T1State,
    stamp: u64,
}

/// The T1 prefetch engine.
///
/// # Examples
///
/// ```
/// use r3dla_core::T1;
/// let mut t1 = T1::new(16, 200);
/// let mut out = Vec::new();
/// // A strided instruction observed on consecutive iterations…
/// for i in 0..4u64 {
///     out.clear();
///     t1.observe(0x400, 0x1000 + i * 256, i * 10, &mut out);
/// }
/// // …yields prefetches ahead of the stream.
/// assert!(!out.is_empty());
/// ```
#[derive(Debug)]
pub struct T1 {
    entries: Vec<Option<T1Entry>>,
    avg_mem_latency: u64,
    stamp: u64,
    current_loop: Option<u64>,
    /// Prefetches issued.
    pub issued: Counter,
    /// Table clears on loop termination.
    pub loop_clears: Counter,
}

impl T1 {
    /// Maximum prefetch distance in iterations.
    pub const MAX_DISTANCE: u64 = 64;
    /// Maximum catch-up prefetches issued at once on stride confirmation.
    pub const MAX_BURST: u64 = 8;

    /// Creates a T1 with `entries` table slots (paper Table I: 16) and an
    /// assumed average memory latency used for distance calculation.
    pub fn new(entries: usize, avg_mem_latency: u64) -> Self {
        Self {
            entries: vec![None; entries],
            avg_mem_latency,
            stamp: 0,
            current_loop: None,
            issued: Counter::new(),
            loop_clears: Counter::new(),
        }
    }

    /// Observes a committed S-marked memory instruction; appends prefetch
    /// addresses (8-byte aligned) to `out`.
    pub fn observe(&mut self, inst_pc: u64, addr: u64, cycle: u64, out: &mut Vec<u64>) {
        self.stamp += 1;
        let stamp = self.stamp;
        let slot = self
            .entries
            .iter()
            .position(|e| e.map(|e| e.inst_pc) == Some(inst_pc));
        let slot = match slot {
            Some(s) => s,
            None => {
                // Allocate: prefer an empty slot, else LRU.
                let s = self
                    .entries
                    .iter()
                    .position(|e| e.is_none())
                    .unwrap_or_else(|| {
                        self.entries
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, e)| e.map(|e| e.stamp).unwrap_or(0))
                            .map(|(i, _)| i)
                            .expect("nonzero table")
                    });
                self.entries[s] = Some(T1Entry {
                    inst_pc,
                    last_addr: addr,
                    stride: 0,
                    last_cycle: cycle,
                    pref_distance: 1,
                    state: T1State::Observed,
                    stamp,
                });
                return;
            }
        };
        let mut e = self.entries[slot].expect("present");
        e.stamp = stamp;
        let stride = addr as i64 - e.last_addr as i64;
        let iter_time = cycle.saturating_sub(e.last_cycle).max(1);
        e.last_addr = addr;
        e.last_cycle = cycle;
        match e.state {
            T1State::Observed => {
                if stride != 0 {
                    e.stride = stride;
                    e.state = T1State::Transient;
                    // "T1 starts issuing prefetches as soon as the first
                    // instance of a stride is calculated."
                    self.push_prefetch(addr, stride, 1, out);
                }
            }
            T1State::Transient => {
                if stride == e.stride && stride != 0 {
                    // Stride confirmed: compute the prefetch distance and
                    // launch catch-up prefetches (paper §III-C3). The
                    // burst is capped: a mistrained entry must not flood
                    // the hierarchy, and the steady per-iteration stream
                    // closes the remaining distance anyway.
                    let distance = (self.avg_mem_latency / iter_time).clamp(1, Self::MAX_DISTANCE);
                    e.pref_distance = distance;
                    for k in 1..=distance.min(Self::MAX_BURST) {
                        self.push_prefetch(addr, stride, k, out);
                    }
                    e.state = T1State::Steady;
                } else if stride != 0 {
                    e.stride = stride; // guard against OoO-reordered strides
                }
            }
            T1State::Steady => {
                if stride == e.stride {
                    // One prefetch per iteration at the steady distance.
                    self.push_prefetch(addr, e.stride, e.pref_distance, out);
                } else if stride != 0 {
                    // The stream broke: retrain from scratch rather than
                    // re-bursting on every hiccup.
                    e.stride = 0;
                    e.state = T1State::Observed;
                }
            }
        }
        self.entries[slot] = Some(e);
    }

    fn push_prefetch(&mut self, addr: u64, stride: i64, k: u64, out: &mut Vec<u64>) {
        let target = addr as i64 + stride * k as i64;
        if target > 0 {
            out.push(target as u64 & !7);
            self.issued.inc();
        }
    }

    /// Tracks loop context from committed backward branches; a loop
    /// change clears the table (paper: "all entries in the table are
    /// cleared when a loop terminates").
    pub fn on_loop_branch(&mut self, target_pc: u64) {
        if self.current_loop != Some(target_pc) {
            if self.current_loop.is_some() {
                self.entries.iter_mut().for_each(|e| *e = None);
                self.loop_clears.inc();
            }
            self.current_loop = Some(target_pc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_prefetches_at_distance() {
        let mut t1 = T1::new(16, 200);
        let mut out = Vec::new();
        // iteration time 20 cycles → distance = 200/20 = 10.
        for i in 0..8u64 {
            out.clear();
            t1.observe(0x100, 0x1_0000 + i * 64, i * 20, &mut out);
        }
        // Steady state: one prefetch per iteration at +10 strides.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], 0x1_0000 + 7 * 64 + 10 * 64);
    }

    #[test]
    fn catch_up_burst_on_confirmation() {
        let mut t1 = T1::new(16, 100);
        let mut out = Vec::new();
        t1.observe(0x100, 0x1000, 0, &mut out); // allocate
        out.clear();
        t1.observe(0x100, 0x1040, 50, &mut out); // stride observed → 1 pf
        assert_eq!(out.len(), 1);
        out.clear();
        t1.observe(0x100, 0x1080, 100, &mut out); // confirmed → catch-up

        // distance = 100/50 = 2 → two catch-up prefetches.
        assert_eq!(out, vec![0x10C0, 0x1100]);
    }

    #[test]
    fn irregular_addresses_never_reach_steady() {
        let mut t1 = T1::new(16, 200);
        let mut rng = r3dla_stats::Rng::new(4);
        let mut out = Vec::new();
        for i in 0..50u64 {
            t1.observe(
                0x200,
                rng.range_u64(0x1000, 0x100000) & !7,
                i * 10,
                &mut out,
            );
        }
        // A couple of lucky transient prefetches at most.
        assert!(out.len() < 10, "issued {}", out.len());
    }

    #[test]
    fn loop_change_clears_table() {
        let mut t1 = T1::new(16, 200);
        let mut out = Vec::new();
        for i in 0..4u64 {
            t1.observe(0x100, 0x1000 + i * 64, i * 10, &mut out);
        }
        t1.on_loop_branch(0x500);
        t1.on_loop_branch(0x900); // loop changed → clear
        assert_eq!(t1.loop_clears.get(), 1);
        out.clear();
        // The entry must re-train from scratch.
        t1.observe(0x100, 0x9000, 100, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut t1 = T1::new(2, 200);
        let mut out = Vec::new();
        t1.observe(0x100, 0x1000, 0, &mut out);
        t1.observe(0x200, 0x2000, 1, &mut out);
        t1.observe(0x100, 0x1040, 2, &mut out); // refresh 0x100
        t1.observe(0x300, 0x3000, 3, &mut out); // evicts 0x200
        out.clear();
        t1.observe(0x100, 0x1080, 4, &mut out);
        assert!(!out.is_empty(), "0x100 should still be tracked");
    }

    #[test]
    fn negative_strides_supported() {
        let mut t1 = T1::new(16, 100);
        let mut out = Vec::new();
        for i in 0..6u64 {
            out.clear();
            t1.observe(0x100, 0x10000 - i * 128, i * 25, &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|&a| a < 0x10000));
    }
}
