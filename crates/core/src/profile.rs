//! Offline profiling (the paper's "training run"): per-static-instruction
//! cache miss rates, branch bias, stride consistency, observed memory
//! dependences, and — from a baseline timing run — dispatch-to-execute
//! latencies for value-reuse targeting.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use r3dla_bpred::Tage;
use r3dla_cpu::{BaseMem, CommitRecord, CommitSink, Core, CoreConfig, PredictorDirection};
use r3dla_isa::{run, step, ArchState, MemKind, Program, VecMem};
use r3dla_mem::{Cache, CacheConfig, CoreMem, MemConfig, SharedLlc};

/// Per-static-instruction profile gathered from a training run.
#[derive(Debug, Clone)]
pub struct ProfileData {
    /// Execution count per static instruction.
    pub exec_count: Vec<u64>,
    /// L1D misses per static memory instruction.
    pub l1_miss: Vec<u64>,
    /// L2 misses per static memory instruction.
    pub l2_miss: Vec<u64>,
    /// Taken count per static conditional branch.
    pub taken: Vec<u64>,
    /// Number of instances where a memory instruction repeated its
    /// previous address stride.
    pub stride_consistent: Vec<u64>,
    /// Instances per memory instruction (denominator for stride ratio).
    pub mem_instances: Vec<u64>,
    /// Whether the instruction's last observed occurrence was inside a
    /// loop (between a backward branch and its target).
    pub in_loop: Vec<bool>,
    /// Observed store→load dependences: load index → store indices.
    pub mem_deps: HashMap<usize, Vec<usize>>,
    /// Average dispatch-to-execute latency per static instruction (from a
    /// baseline timing run); 0 when never sampled.
    pub avg_d2e: Vec<f64>,
}

impl ProfileData {
    /// L1 miss ratio of static instruction `i`.
    pub fn l1_miss_rate(&self, i: usize) -> f64 {
        if self.mem_instances[i] == 0 {
            0.0
        } else {
            self.l1_miss[i] as f64 / self.mem_instances[i] as f64
        }
    }

    /// L2 miss ratio of static instruction `i`.
    pub fn l2_miss_rate(&self, i: usize) -> f64 {
        if self.mem_instances[i] == 0 {
            0.0
        } else {
            self.l2_miss[i] as f64 / self.mem_instances[i] as f64
        }
    }

    /// Branch bias (max of taken/not-taken ratio) of static branch `i`.
    pub fn bias(&self, i: usize) -> f64 {
        if self.exec_count[i] == 0 {
            return 0.0;
        }
        let t = self.taken[i] as f64 / self.exec_count[i] as f64;
        t.max(1.0 - t)
    }

    /// The biased direction of static branch `i` (true = taken).
    pub fn biased_taken(&self, i: usize) -> bool {
        self.taken[i] * 2 >= self.exec_count[i]
    }

    /// Stride consistency ratio of memory instruction `i`.
    pub fn stride_ratio(&self, i: usize) -> f64 {
        if self.mem_instances[i] < 4 {
            0.0
        } else {
            self.stride_consistent[i] as f64 / self.mem_instances[i] as f64
        }
    }
}

/// Runs the functional profiler over (at most) `max_insts` instructions of
/// a training execution.
///
/// Uses tag-array L1/L2 caches for miss attribution and tracks the last
/// writer of every address for memory-dependence capture.
pub fn profile_functional(prog: &Program, max_insts: u64) -> ProfileData {
    let n = prog.len();
    let mut data = ProfileData {
        exec_count: vec![0; n],
        l1_miss: vec![0; n],
        l2_miss: vec![0; n],
        taken: vec![0; n],
        stride_consistent: vec![0; n],
        mem_instances: vec![0; n],
        in_loop: vec![false; n],
        mem_deps: HashMap::new(),
        avg_d2e: vec![0.0; n],
    };
    let mut l1 = Cache::new(CacheConfig::l1());
    let mut l2 = Cache::new(CacheConfig::l2());
    let mut last_writer: HashMap<u64, usize> = HashMap::new();
    let mut last_addr: Vec<u64> = vec![0; n];
    let mut last_stride: Vec<i64> = vec![0; n];
    let mut loop_depth_marker: Vec<(u64, u64)> = Vec::new(); // (target, branch pc)
    let mut st = ArchState::new(prog.entry());
    let mut mem = VecMem::new();
    mem.load_image(prog.image());
    for _ in 0..max_insts {
        let pc = st.pc;
        let out = match step(prog, &mut st, &mut mem) {
            Ok(o) => o,
            Err(_) => break,
        };
        let idx = prog.pc_to_index(pc).expect("profiled pc in range");
        data.exec_count[idx] += 1;
        if let Some(taken) = out.taken {
            if taken {
                data.taken[idx] += 1;
                if out.next_pc < pc {
                    // Entering/continuing a loop body.
                    loop_depth_marker.push((out.next_pc, pc));
                    if loop_depth_marker.len() > 8 {
                        loop_depth_marker.remove(0);
                    }
                }
            }
        }
        if let Some((kind, addr, _)) = out.mem {
            data.mem_instances[idx] += 1;
            if !l1.touch(addr) {
                data.l1_miss[idx] += 1;
                if !l2.touch(addr) {
                    data.l2_miss[idx] += 1;
                }
            }
            let stride = addr as i64 - last_addr[idx] as i64;
            if data.mem_instances[idx] > 1 && stride == last_stride[idx] && stride != 0 {
                data.stride_consistent[idx] += 1;
            }
            last_stride[idx] = stride;
            last_addr[idx] = addr;
            data.in_loop[idx] = loop_depth_marker.iter().any(|&(t, b)| pc >= t && pc <= b);
            match kind {
                MemKind::Store => {
                    last_writer.insert(addr, idx);
                }
                MemKind::Load => {
                    if let Some(&w) = last_writer.get(&addr) {
                        let deps = data.mem_deps.entry(idx).or_default();
                        if !deps.contains(&w) {
                            deps.push(w);
                        }
                    }
                }
            }
        }
        if out.halted {
            break;
        }
    }
    data
}

struct D2eSink {
    sum: Vec<f64>,
    count: Vec<u64>,
    prog: Rc<Program>,
}

impl CommitSink for D2eSink {
    fn on_commit(&mut self, rec: &CommitRecord) {
        if let Some(idx) = self.prog.pc_to_index(rec.pc) {
            self.sum[idx] += rec.dispatch_to_exec as f64;
            self.count[idx] += 1;
        }
    }
}

/// Augments `data` with dispatch-to-execute latencies measured on the
/// baseline timing core over (at most) `max_insts` committed instructions.
pub fn profile_timing(prog: &Rc<Program>, data: &mut ProfileData, max_insts: u64) {
    let mem_cfg = MemConfig::paper();
    let shared = Rc::new(RefCell::new(SharedLlc::new(&mem_cfg)));
    let mut core_mem = CoreMem::new(&mem_cfg, shared);
    if let Some(pf) = r3dla_prefetch::by_name("bop") {
        core_mem.set_l2_prefetcher(pf);
    }
    let mut core = Core::new(CoreConfig::paper(), Rc::clone(prog), core_mem);
    let vm = Rc::new(RefCell::new(VecMem::new()));
    vm.borrow_mut().load_image(prog.image());
    let dir = Box::new(PredictorDirection::new(Box::new(Tage::paper())));
    let t = core.add_thread(
        prog.entry(),
        ArchState::new(prog.entry()).regs(),
        dir,
        Rc::new(RefCell::new(BaseMem(vm))),
    );
    let sink = Rc::new(RefCell::new(D2eSink {
        sum: vec![0.0; prog.len()],
        count: vec![0; prog.len()],
        prog: Rc::clone(prog),
    }));
    core.set_commit_sink(t, sink.clone());
    let max_cycles = max_insts * 30; // generous bound
    let mut last_probe = u64::MAX;
    while !core.halted() && core.committed(t) < max_insts && core.cycle() < max_cycles {
        // Fast-forward quiescent stretches (cold-cache stalls dominate
        // the training run); identical results to stepping every cycle.
        core.step_or_skip(max_cycles, &mut last_probe);
    }
    let sink = sink.borrow();
    for i in 0..prog.len() {
        if sink.count[i] > 0 {
            data.avg_d2e[i] = sink.sum[i] / sink.count[i] as f64;
        }
    }
}

/// Convenience: functional profile + timing augmentation.
pub fn profile(prog: &Rc<Program>, max_insts: u64) -> ProfileData {
    let mut data = profile_functional(prog, max_insts);
    profile_timing(prog, &mut data, (max_insts / 4).max(20_000));
    data
}

/// Runs a pure functional execution to completion and returns the dynamic
/// instruction count (used by experiment harnesses for window sizing).
pub fn dynamic_length(prog: &Program, cap: u64) -> u64 {
    let mut st = ArchState::new(prog.entry());
    let mut mem = VecMem::new();
    mem.load_image(prog.image());
    run(prog, &mut st, &mut mem, cap).unwrap_or(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_isa::{Asm, Reg};

    fn strided_and_biased_program() -> Program {
        let mut a = Asm::new();
        let arr = a.data().alloc_words(4096);
        let (i, n, b, v) = (Reg::int(10), Reg::int(11), Reg::int(12), Reg::int(13));
        a.li(i, 0);
        a.li(n, 4096);
        a.li(b, arr as i64);
        a.label("loop");
        a.slli(v, i, 3);
        a.add(v, v, b);
        a.ld(Reg::int(14), v, 0); // strided load (index 5)
        a.addi(i, i, 1);
        a.blt(i, n, "loop"); // biased taken branch
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn detects_stride_and_bias() {
        let p = strided_and_biased_program();
        let d = profile_functional(&p, 1_000_000);
        // Find the load.
        let load_idx = p.insts().iter().position(|i| i.is_load()).unwrap();
        assert!(
            d.stride_ratio(load_idx) > 0.9,
            "ratio={}",
            d.stride_ratio(load_idx)
        );
        assert!(d.in_loop[load_idx]);
        let br_idx = p.insts().iter().position(|i| i.is_cond_branch()).unwrap();
        assert!(d.bias(br_idx) > 0.99);
        assert!(d.biased_taken(br_idx));
    }

    #[test]
    fn l1_misses_attributed_to_streaming_load() {
        let p = strided_and_biased_program();
        let d = profile_functional(&p, 1_000_000);
        let load_idx = p.insts().iter().position(|i| i.is_load()).unwrap();
        // 4096 words = 512 lines; one miss per 8 accesses.
        assert!(d.l1_miss[load_idx] >= 500, "misses={}", d.l1_miss[load_idx]);
        assert!(d.l1_miss_rate(load_idx) > 0.1);
    }

    #[test]
    fn memory_dependences_observed() {
        let mut a = Asm::new();
        let slot = a.data().words(&[0]);
        let b = Reg::int(10);
        a.li(b, slot as i64);
        a.li(Reg::int(11), 9);
        a.st(Reg::int(11), b, 0); // 2
        a.ld(Reg::int(12), b, 0); // 3
        a.halt();
        let p = a.finish().unwrap();
        let d = profile_functional(&p, 1000);
        assert_eq!(d.mem_deps.get(&3), Some(&vec![2usize]));
    }

    #[test]
    fn timing_profile_marks_slow_instructions() {
        // A pointer chase is slow; an add is not.
        let mut rng = r3dla_stats::Rng::new(5);
        let n = 8192usize;
        let mut a = Asm::new();
        let arr = a.data().alloc_words(n);
        let mut perm: Vec<u64> = (0..n as u64).collect();
        for i in (1..n).rev() {
            let j = rng.range_usize(0, i);
            perm.swap(i, j);
        }
        for (i, &pv) in perm.iter().enumerate() {
            a.data().put_word(arr + (i as u64) * 8, arr + pv * 8);
        }
        let (cur, cnt, lim) = (Reg::int(10), Reg::int(11), Reg::int(12));
        a.li(cur, arr as i64);
        a.li(cnt, 0);
        a.li(lim, 4000);
        a.label("chase");
        a.ld(cur, cur, 0); // 3: slow load
        a.addi(cnt, cnt, 1); // 4: fast add
        a.blt(cnt, lim, "chase");
        a.halt();
        let p = Rc::new(a.finish().unwrap());
        let mut d = profile_functional(&p, 100_000);
        profile_timing(&p, &mut d, 20_000);
        assert!(
            d.avg_d2e[3] > d.avg_d2e[4] + 5.0,
            "load {} vs add {}",
            d.avg_d2e[3],
            d.avg_d2e[4]
        );
    }
}
